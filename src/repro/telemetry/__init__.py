"""Observability for server chiplet networking (§4 directions #1 and #5).

* :mod:`~repro.telemetry.counters` — per-link byte/transaction counters;
* :mod:`~repro.telemetry.sketch` — count-min sketch for compact per-flow
  accounting (the paper's proposed PMU + sketch profiler);
* :mod:`~repro.telemetry.matrix` — the intra-server traffic matrix the paper
  argues is "essential for maximizing the data transmission performance";
* :mod:`~repro.telemetry.devtree` — the `/sys/firmware/chiplet-net`-style
  hardware description and `/proc/chiplet-net`-style runtime report;
* :mod:`~repro.telemetry.profiler` — a perf-like per-flow profiler.
"""

from repro.telemetry.counters import CounterRegistry, LinkCounters
from repro.telemetry.devtree import build_devtree, proc_chiplet_net, render_dts
from repro.telemetry.history import UtilizationHistory
from repro.telemetry.matrix import TrafficMatrix
from repro.telemetry.profiler import FlowProfiler
from repro.telemetry.sketch import CountMinSketch

__all__ = [
    "CounterRegistry",
    "LinkCounters",
    "build_devtree",
    "render_dts",
    "proc_chiplet_net",
    "TrafficMatrix",
    "FlowProfiler",
    "CountMinSketch",
    "UtilizationHistory",
]
