"""Accelerator device and job models."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict

from repro.errors import ConfigurationError

__all__ = ["AcceleratorModel", "AcceleratorJob", "JobTrace"]


@dataclass(frozen=True)
class AcceleratorModel:
    """A PCIe accelerator's execution characteristics.

    ``launch_overhead_ns`` covers command decode and kernel scheduling on
    the device; ``compute_gbps`` is the streaming rate at which the kernel
    consumes its input bytes (a bandwidth-style model in the LogCA spirit —
    the paper cites exactly that lineage for accelerator modelling).
    """

    name: str = "accel0"
    pcie_dev_id: int = 0
    launch_overhead_ns: float = 1500.0
    compute_gbps: float = 200.0

    def __post_init__(self) -> None:
        if self.launch_overhead_ns < 0:
            raise ConfigurationError("negative launch overhead")
        if self.compute_gbps <= 0:
            raise ConfigurationError("compute rate must be positive")

    def kernel_time_ns(self, bytes_in: int) -> float:
        """Device-side execution time for a job over ``bytes_in``."""
        return self.launch_overhead_ns + bytes_in / self.compute_gbps


@dataclass(frozen=True)
class AcceleratorJob:
    """One offloaded kernel invocation."""

    bytes_in: int
    bytes_out: int
    host_core: int = 0

    def __post_init__(self) -> None:
        if self.bytes_in <= 0 or self.bytes_out <= 0:
            raise ConfigurationError("job sizes must be positive")


@dataclass
class JobTrace:
    """Per-phase timings of one dispatched job (all ns)."""

    phases: Dict[str, float] = field(default_factory=dict)
    start_ns: float = 0.0
    end_ns: float = 0.0

    #: Phase order for reporting.
    PHASE_ORDER = (
        "doorbell",
        "descriptor_fetch",
        "input_dma",
        "compute",
        "output_dma",
        "completion",
    )

    @property
    def total_ns(self) -> float:
        return self.end_ns - self.start_ns

    @property
    def signal_ns(self) -> float:
        """The latency-sensitive signal plane: doorbell + descriptor +
        completion (what the paper's intra-host switch protects)."""
        return (
            self.phases.get("doorbell", 0.0)
            + self.phases.get("descriptor_fetch", 0.0)
            + self.phases.get("completion", 0.0)
        )

    @property
    def data_ns(self) -> float:
        """The bandwidth-intensive data plane: input + output DMA."""
        return self.phases.get("input_dma", 0.0) + self.phases.get(
            "output_dma", 0.0
        )

    def render(self) -> str:
        """One-line per-phase summary of the job timings."""
        parts = [
            f"{phase}={self.phases[phase]:.0f}"
            for phase in self.PHASE_ORDER
            if phase in self.phases
        ]
        return f"total={self.total_ns:.0f}ns ({', '.join(parts)})"
