"""Shared construction of the Figure 4–6 style contention cell.

Several experiments probe sender-driven bandwidth partitioning with the
same two-stream setup — a rate-controlled *victim* on chiplet 0 against a
*hog* on chiplet 1 (``chaos`` measures how the victim's share degrades
with fabric faults; ``netstack`` measures how the networking stack
restores it). This module is the single source of that construction so
the probes stay comparable cell-for-cell.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.core.fabric import FabricModel
from repro.core.flows import StreamSpec
from repro.platform.numa import NpsMode
from repro.platform.topology import Platform
from repro.transport.message import OpKind

__all__ = ["VICTIM_DEMAND_GBPS", "contention_streams", "shared_umc_ids"]

#: Demand of the paced victim stream (GB/s). Fits comfortably on a healthy
#: GMI port (share 1.0 when uncontended) but exceeds what a squeezed or
#: derated path delivers, so the share responds smoothly to pressure.
VICTIM_DEMAND_GBPS = 24.0


def contention_streams(
    platform: Platform,
    victim_cores: Optional[Tuple[int, ...]] = None,
    hog_cores: Optional[Tuple[int, ...]] = None,
    victim_demand_gbps: float = VICTIM_DEMAND_GBPS,
    hog_demand_gbps: Optional[float] = None,
) -> Tuple[StreamSpec, StreamSpec]:
    """The canonical (victim, hog) stream pair.

    Defaults reproduce the partitioning probe: the victim paces
    ``VICTIM_DEMAND_GBPS`` from chiplet 0, the hog reads unthrottled
    (``hog_demand_gbps=None``) from chiplet 1. Callers reshape the cell by
    overriding the core sets (e.g. a small single-CCX victim against a
    whole-chiplet aggressor) or by pacing the hog at an aggressive rate.
    """
    ccd_ids = sorted(platform.ccds)
    if victim_cores is None:
        victim_cores = tuple(
            core.core_id for core in platform.cores_of_ccd(ccd_ids[0])
        )
    if hog_cores is None:
        # The aggressor lives on the next chiplet over — queried from the
        # platform rather than assumed to be literal id 1, so generated
        # topologies of any CCD count build a valid cell. A single-chiplet
        # platform falls back to intra-CCD contention: the victim's first
        # CCX against the rest of its chiplet.
        if len(ccd_ids) > 1:
            hog_cores = tuple(
                core.core_id for core in platform.cores_of_ccd(ccd_ids[1])
            )
        else:
            victim_set = set(victim_cores)
            hog_cores = tuple(
                core.core_id
                for core in platform.cores_of_ccd(ccd_ids[0])
                if core.core_id not in victim_set
            ) or victim_cores
    victim = StreamSpec(
        "victim", OpKind.READ, victim_cores, demand_gbps=victim_demand_gbps
    )
    hog = StreamSpec(
        "hog", OpKind.READ, hog_cores, demand_gbps=hog_demand_gbps
    )
    return victim, hog


def shared_umc_ids(platform: Platform, ccd_id: int = 0) -> List[int]:
    """The victim chiplet's NPS4 interleave set.

    Forcing both streams onto this set puts them in front of the *same*
    memory endpoints — the endpoint contention the Figure 4–6 cells need.
    (The chiplets' default NPS4 domains are disjoint, which would let the
    streams pass each other untouched.)
    """
    return FabricModel(platform).umc_ids_for_nps(ccd_id, NpsMode.NPS4)
