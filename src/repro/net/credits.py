"""Receiver-driven credit-based congestion control.

Today's chiplet fabrics let the *sender* decide how much of a link it
occupies: whoever keeps more requests outstanding wins the FIFO arbitration
(§3.5, "sender-driven aggressive bandwidth partitioning"). The fix the
paper's §4 argues for is the one datacenter transports converged on: make
the *receiver* hand out credits, so no sender can put more traffic in
flight toward an endpoint than the receiver has agreed to absorb.

The model here:

* every endpoint (a UMC channel, a CXL device, a PCIe endpoint) owns a
  credit budget sized to its bandwidth-delay product — the endpoint's
  service rate times the platform's worst-case unloaded round trip to it,
  both derived from the platform calibration (per-hop latencies, per-link
  rates), scaled by a configurable ``rtt_factor``;
* the budget is partitioned among the active flows (equal split, optionally
  skewed by a QoS credit scale), so a hog's in-flight occupancy at the
  endpoint is bounded by its share rather than by its issue capability;
* a sender must hold one credit per outstanding cacheline toward the
  endpoint; credits return home on completion (conservation is an
  invariant, tested).

:class:`CreditScheduler` is the DES realization — per-(endpoint, flow)
:class:`~repro.noc.flowcontrol.TokenPool` objects, created lazily inside
one simulation environment. The fluid-mode counterpart is the rate cap
:func:`credit_rate_gbps`: a window of ``c`` credits over a round trip
``rtt`` sustains at most ``c × CACHELINE / rtt`` — the classic window/RTT
throughput bound.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Sequence, Tuple

from repro.errors import ConfigurationError, TopologyError
from repro.noc.flowcontrol import TokenPool
from repro.platform.topology import Platform
from repro.sim.engine import Environment
from repro.units import CACHELINE

__all__ = [
    "CreditConfig",
    "endpoint_rtt_ns",
    "endpoint_rate_gbps",
    "credit_budget",
    "link_credit_budget",
    "credit_rate_gbps",
    "credit_share",
    "CreditScheduler",
]


@dataclass(frozen=True)
class CreditConfig:
    """Tunables of the receiver-driven credit machinery.

    ``rtt_factor`` scales the bandwidth-delay-product window: 1.0 is the
    bare BDP (full throughput only at exactly the unloaded latency). The
    default 1.5 adds half an RTT of headroom — enough that a paced flow
    within its fair share is never credit-starved, while an aggressive
    sender's in-flight occupancy stays tightly bounded.
    ``min_credits_per_flow`` keeps every sender able to make progress no
    matter how many flows share an endpoint.
    """

    rtt_factor: float = 1.5
    min_credits_per_flow: int = 2

    def __post_init__(self) -> None:
        if self.rtt_factor <= 0:
            raise ConfigurationError(
                f"rtt_factor must be positive, got {self.rtt_factor}"
            )
        if self.min_credits_per_flow < 1:
            raise ConfigurationError(
                f"min_credits_per_flow must be >= 1, got "
                f"{self.min_credits_per_flow}"
            )


def _endpoint(platform: Platform, name: str) -> Tuple[str, int]:
    """Split an endpoint name ("umc3", "cxldev0", "pciedev0") into kind+id."""
    for kind in ("umc", "cxldev", "pciedev"):
        if name.startswith(kind) and name[len(kind):].isdigit():
            index = int(name[len(kind):])
            registry = {
                "umc": platform.umcs,
                "cxldev": platform.cxl_devices,
                "pciedev": platform.pcie_devices,
            }[kind]
            if index not in registry:
                raise TopologyError(
                    f"{platform.name} has no endpoint {name!r}"
                )
            return kind, index
    raise TopologyError(
        f"{name!r} is not a creditable endpoint (expected umcN, cxldevN, "
        "or pciedevN)"
    )


def endpoint_rtt_ns(platform: Platform, endpoint: str) -> float:
    """Worst-case unloaded round trip (ns) any core sees to ``endpoint``.

    The platform's calibrated load-to-use latencies already cover the full
    request/response loop, so the RTT is the *maximum over source chiplets*
    of the analytic unloaded latency — the receiver must provision its
    credit loop for the farthest sender.
    """
    kind, index = _endpoint(platform, endpoint)
    ccd_ids = sorted(platform.ccds)
    if kind == "umc":
        return max(
            platform.dram_latency_ns(ccd_id, index) for ccd_id in ccd_ids
        )
    if kind == "cxldev":
        return max(
            platform.cxl_latency_ns(ccd_id, index) for ccd_id in ccd_ids
        )
    return max(
        platform.mmio_read_latency_ns(ccd_id, index) for ccd_id in ccd_ids
    )


def endpoint_rate_gbps(
    platform: Platform, endpoint: str, is_write: bool = False
) -> float:
    """Calibrated service rate (GB/s) of one endpoint's direction."""
    kind, __ = _endpoint(platform, endpoint)
    bw = platform.spec.bandwidth
    if kind == "umc":
        return bw.umc_write_gbps if is_write else bw.umc_read_gbps
    if kind == "cxldev":
        rate = bw.cxl_dev_write_gbps if is_write else bw.cxl_dev_read_gbps
        if rate is None:
            raise TopologyError(
                f"{platform.name} has no CXL bandwidth calibration"
            )
        return rate
    return bw.p_link_write_gbps if is_write else bw.p_link_read_gbps


def credit_budget(
    platform: Platform,
    endpoint: str,
    config: CreditConfig = CreditConfig(),
    is_write: bool = False,
) -> int:
    """The endpoint's total credit budget, in cacheline-sized credits.

    BDP sizing: ``rate × RTT`` bytes keep the endpoint's service pipe full;
    ``rtt_factor`` adds the configured headroom. Never below one credit per
    flow's minimum (enforced at partition time).
    """
    rtt = endpoint_rtt_ns(platform, endpoint)
    rate = endpoint_rate_gbps(platform, endpoint, is_write=is_write)
    return max(1, math.ceil(rate * rtt * config.rtt_factor / CACHELINE))


def link_credit_budget(
    gbps: float,
    hop_rtt_ns: float,
    config: CreditConfig = CreditConfig(),
) -> int:
    """Credit depth of one *router output port*, in cacheline credits.

    Same BDP sizing as :func:`credit_budget` but over a single mesh link:
    the round trip is one hop out plus the credit return, so a window of
    ``gbps × hop_rtt × rtt_factor`` bytes keeps the link busy. The
    adaptive NoC router (:class:`repro.noc.router.AdaptiveMeshNetwork`)
    uses these pools as its downstream-credit telemetry — the occupancy
    signal its outport selection reads.
    """
    if gbps <= 0:
        raise ConfigurationError(f"gbps must be positive, got {gbps}")
    if hop_rtt_ns <= 0:
        raise ConfigurationError(
            f"hop_rtt_ns must be positive, got {hop_rtt_ns}"
        )
    return max(
        config.min_credits_per_flow,
        math.ceil(gbps * hop_rtt_ns * config.rtt_factor / CACHELINE),
    )


def credit_rate_gbps(
    platform: Platform,
    endpoint: str,
    credits: int,
    config: CreditConfig = CreditConfig(),
) -> float:
    """Fluid-mode throughput bound of a ``credits``-deep window: c·L/RTT."""
    if credits < 1:
        raise ConfigurationError(f"credits must be >= 1, got {credits}")
    return credits * CACHELINE / endpoint_rtt_ns(platform, endpoint)


def credit_share(
    platform: Platform,
    endpoint: str,
    flows: Sequence[str],
    flow: str,
    config: CreditConfig = CreditConfig(),
    credit_scales: Dict[str, float] | None = None,
    is_write: bool = False,
) -> int:
    """The credit count ``flow`` holds at ``endpoint``.

    The receiver splits its budget over the active flows in proportion to
    each flow's credit scale (QoS classes skew the split), floored at the
    configured per-flow minimum. Backend-independent: the DES sizes its
    token pools with it, the fluid backend turns it into a rate cap via
    :func:`credit_rate_gbps`.
    """
    if not flows:
        raise ConfigurationError("credit split needs at least one flow")
    if flow not in flows:
        raise ConfigurationError(f"unregistered flow {flow!r}")
    scales = {
        name: (credit_scales or {}).get(name, 1.0) for name in flows
    }
    for name, scale in scales.items():
        if scale <= 0:
            raise ConfigurationError(
                f"flow {name!r}: credit scale must be positive, got {scale}"
            )
    budget = credit_budget(platform, endpoint, config, is_write=is_write)
    return max(
        config.min_credits_per_flow,
        int(budget * scales[flow] / sum(scales.values())),
    )


class CreditScheduler:
    """Per-(endpoint, flow) credit pools inside one DES environment.

    The receiver's budget is split across the registered flows in
    proportion to each flow's credit scale (QoS classes shrink or grow a
    sender's share), floored at ``min_credits_per_flow``. Pools are
    created lazily — an endpoint nobody sends to costs nothing — and
    :meth:`assert_credits_home` checks conservation after a run: every
    credit granted must have been returned.
    """

    def __init__(
        self,
        env: Environment,
        platform: Platform,
        flows: Sequence[str],
        config: CreditConfig = CreditConfig(),
        credit_scales: Dict[str, float] | None = None,
    ) -> None:
        if not flows:
            raise ConfigurationError("credit scheduler needs at least one flow")
        if len(set(flows)) != len(flows):
            raise ConfigurationError(f"duplicate flow names in {list(flows)}")
        self.env = env
        self.platform = platform
        self.flows = list(flows)
        self.config = config
        self.credit_scales = dict(credit_scales or {})
        for name, scale in self.credit_scales.items():
            if name not in self.flows:
                raise ConfigurationError(
                    f"credit scale for unregistered flow {name!r}"
                )
            if scale <= 0:
                raise ConfigurationError(
                    f"flow {name!r}: credit scale must be positive, got {scale}"
                )
        self._pools: Dict[Tuple[str, str], TokenPool] = {}

    def share(self, endpoint: str, flow: str, is_write: bool = False) -> int:
        """The credit count ``flow`` holds at ``endpoint``."""
        return credit_share(
            self.platform, endpoint, self.flows, flow,
            config=self.config, credit_scales=self.credit_scales,
            is_write=is_write,
        )

    def pool(self, endpoint: str, flow: str) -> TokenPool:
        """The (lazily created) credit pool for one (endpoint, flow) pair."""
        key = (endpoint, flow)
        existing = self._pools.get(key)
        if existing is None:
            existing = TokenPool(
                self.env,
                self.share(endpoint, flow),
                name=f"credits/{endpoint}/{flow}",
            )
            self._pools[key] = existing
        return existing

    @property
    def pools(self) -> Dict[Tuple[str, str], TokenPool]:
        return dict(self._pools)

    def assert_credits_home(self) -> None:
        """Conservation invariant: at quiescence every credit is back home."""
        for (endpoint, flow), pool in self._pools.items():
            if pool.available != pool.capacity:
                raise ConfigurationError(
                    f"credit leak at {endpoint}/{flow}: "
                    f"{pool.capacity - pool.available} of {pool.capacity} "
                    "credits never returned"
                )
