"""§4 #6: collective communication on the chiplet network.

Regenerates the all-reduce algorithm comparison: flat/tree/ring completion
time across payload sizes on both platforms, with the ring-vs-tree
crossover. Shape criteria: small payloads are latency-bound (flat/tree
win), large payloads are bandwidth-bound (ring wins), and the 12-chiplet
9634 pushes the crossover to larger payloads than the 4-chiplet 7302.
"""

from repro.analysis.report import render_table
from repro.collective import Algorithm, allreduce_time_ns, crossover_bytes

from benchmarks.conftest import emit

_SIZES = (256, 4 * 1024, 64 * 1024, 1 << 20, 16 << 20)


def bench_collective_allreduce(benchmark, p7302, p9634):
    def sweep():
        out = {}
        for platform in (p7302, p9634):
            rows = []
            for n in _SIZES:
                rows.append([
                    n,
                    *(
                        f"{allreduce_time_ns(platform, n, a) / 1e3:.1f}"
                        for a in Algorithm
                    ),
                ])
            out[platform.name] = (rows, crossover_bytes(platform))
        return out

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for name, (rows, crossover) in results.items():
        emit(render_table(
            ["bytes", "flat (us)", "tree (us)", "ring (us)"],
            rows,
            title=f"All-reduce across chiplets ({name})",
        ))
        emit(f"ring beats tree from {crossover:.0f} bytes")

    assert results["EPYC 9634"][1] > results["EPYC 7302"][1]
    for platform in (p7302, p9634):
        big = 16 << 20
        ring = allreduce_time_ns(platform, big, Algorithm.RING)
        tree = allreduce_time_ns(platform, big, Algorithm.TREE)
        flat = allreduce_time_ns(platform, big, Algorithm.FLAT)
        assert ring < tree < flat
        small = 256
        assert allreduce_time_ns(platform, small, Algorithm.RING) > min(
            allreduce_time_ns(platform, small, Algorithm.FLAT),
            allreduce_time_ns(platform, small, Algorithm.TREE),
        )
