"""Property tier (hypothesis) over the generated topology design space.

Four invariants the ISSUE pins for *every* valid generator point, not just
the catalog entries:

* the router grid is connected (any layered mesh with at least one
  vertical pillar reaches every stop);
* every CCD↔UMC pair has a minimal route the adaptive port sets can walk
  end to end;
* XY (escape) and adaptive routing agree on hop count for same-layer
  minimal paths — adaptivity buys path *diversity*, never extra hops;
* the escape layer is provably deadlock-free: the channel-dependency
  graph over (directed link, virtual channel) pairs is acyclic (Duato),
  for 2D meshes and for 3D grids with arbitrary sparse pillar sets.
"""

import networkx as nx
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc.routing import (
    RouterGrid,
    RoutingPolicy,
    is_deadlock_free,
    route_split,
)
from repro.platform.generator import TopologyGen
from repro.platform.presets import EPYC_7302_SPEC


@st.composite
def grids(draw, max_dim: int = 4, max_layers: int = 3):
    """Arbitrary valid router grids, pillars included."""
    width = draw(st.integers(1, max_dim))
    height = draw(st.integers(1, max_dim))
    layers = draw(st.integers(1, max_layers))
    coords = [(x, y) for x in range(width) for y in range(height)]
    pillars = ()
    if layers > 1:
        chosen = draw(
            st.sets(
                st.sampled_from(coords),
                min_size=1,
                max_size=min(3, len(coords)),
            )
        )
        pillars = tuple(sorted(chosen))
    return RouterGrid(
        width=width,
        height=height,
        layers=layers,
        pillars=pillars,
        x_weight=draw(st.integers(1, 3)),
        y_weight=draw(st.integers(1, 3)),
        z_weight=draw(st.integers(1, 4)),
    )


@st.composite
def grids_with_pair(draw):
    """A grid plus a distinct (src, dst) router pair on it."""
    grid = draw(grids())
    nodes = list(grid.nodes())
    src = draw(st.sampled_from(nodes))
    dst = draw(st.sampled_from(nodes))
    return grid, src, dst


@st.composite
def topologies(draw):
    """Arbitrary valid TopologyGen points over the 7302 donor calibration."""
    grid = draw(grids(max_dim=3, max_layers=2))
    coords = [(x, y) for x in range(grid.width) for y in range(grid.height)]
    placements = st.lists(
        st.sampled_from(coords), min_size=1, max_size=4
    ).map(tuple)
    layer_ids = st.lists(
        st.integers(0, grid.layers - 1), min_size=1, max_size=4
    ).map(tuple)
    return TopologyGen(
        name="prop",
        base=EPYC_7302_SPEC,
        mesh_x=grid.width,
        mesh_y=grid.height,
        layers=grid.layers,
        pillars=grid.pillars,
        ccd_count=draw(st.integers(1, 4)),
        ccd_coords=draw(placements),
        ccd_layers=draw(layer_ids) if grid.layers > 1 else None,
        umc_count=draw(st.integers(1, 4)),
        umc_coords=draw(placements),
        umc_layers=draw(layer_ids) if grid.layers > 1 else None,
        io_hub_coord=draw(st.sampled_from(coords)),
        x_weight=grid.x_weight,
        y_weight=grid.y_weight,
        z_weight=grid.z_weight,
        width_factor=draw(st.sampled_from([0.5, 1.0, 2.0])),
    )


def _adaptive_walk_hops(grid, src, dst, pick=min) -> int:
    """Walk adaptive port sets to ``dst``; returns the hop count."""
    here, hops = src, 0
    bound = grid.distance(src, dst) + 1
    while here != dst:
        ports = grid.adaptive_ports(here, dst)
        assert ports, f"no productive port at {here} toward {dst}"
        here = pick(ports)
        hops += 1
        assert hops <= bound, "adaptive walk exceeded the distance bound"
    return hops


class TestGridProperties:
    @given(grid=grids())
    @settings(max_examples=40, deadline=None)
    def test_grid_is_connected(self, grid):
        graph = nx.Graph()
        graph.add_nodes_from(grid.nodes())
        graph.add_edges_from(grid.links())
        assert nx.is_connected(graph)

    @given(data=grids_with_pair())
    @settings(max_examples=60, deadline=None)
    def test_adaptive_walk_reaches_destination(self, data):
        grid, src, dst = data
        if src != dst:
            # Every productive step strictly reduces weighted distance, so
            # any tie-break choice terminates; min/max bound both extremes.
            _adaptive_walk_hops(grid, src, dst, pick=min)
            _adaptive_walk_hops(grid, src, dst, pick=max)

    @given(data=grids_with_pair())
    @settings(max_examples=60, deadline=None)
    def test_same_layer_hop_count_agreement(self, data):
        grid, src, dst = data
        if src == dst or src[2] != dst[2]:
            return
        manhattan = abs(src[0] - dst[0]) + abs(src[1] - dst[1])
        assert grid.hop_distance(src, dst) == manhattan
        assert _adaptive_walk_hops(grid, src, dst, pick=min) == manhattan
        assert _adaptive_walk_hops(grid, src, dst, pick=max) == manhattan

    @given(data=grids_with_pair())
    @settings(max_examples=40, deadline=None)
    def test_route_split_conserves_flow(self, data):
        grid, src, dst = data
        for policy in (RoutingPolicy.XY, RoutingPolicy.ADAPTIVE):
            split = route_split(grid, src, dst, policy)
            if src == dst:
                assert split == {}
                continue
            into_dst = sum(
                frac for (__, b), frac in split.items() if b == dst
            )
            assert abs(into_dst - 1.0) < 1e-9
            out_of_src = sum(
                frac for (a, __), frac in split.items() if a == src
            )
            assert abs(out_of_src - 1.0) < 1e-9

    @given(grid=grids(max_dim=3, max_layers=3))
    @settings(max_examples=25, deadline=None)
    def test_escape_layer_is_deadlock_free(self, grid):
        assert is_deadlock_free(grid)


class TestTopologyProperties:
    @given(gen=topologies())
    @settings(max_examples=25, deadline=None)
    def test_generated_platform_builds(self, gen):
        platform = gen.platform()
        assert len(platform.ccds) == len(gen.ccd_coords3)
        assert len(platform.umcs) == len(gen.umc_coords3)

    @given(gen=topologies())
    @settings(max_examples=25, deadline=None)
    def test_every_ccd_umc_pair_has_minimal_route(self, gen):
        grid = gen.router_grid()
        for src in gen.ccd_coords3:
            for dst in gen.umc_coords3:
                if src != dst:
                    _adaptive_walk_hops(grid, src, dst, pick=min)
