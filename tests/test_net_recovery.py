"""Unit tests for :mod:`repro.net.recovery` — detect, reclaim, reroute.

The chaos recovery sweep (``tests/test_chaos_determinism.py``, the
conformance tier) exercises the closed loop end to end; these tests pin
the pieces: the health state machine's transition rules, the reclaimable
pool's conservation accounting, the failover router's residual-capacity
choice, the health-aware behavior of the selector and admission
controller, and the install contract (disabled == the PR-6 stack).
"""

import pytest

from repro.core.fabric import FabricModel
from repro.core.flows import StreamSpec
from repro.errors import ConfigurationError, SimulationError
from repro.faults.inject import install as install_faults
from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.net.inject import NetInstallation
from repro.net.multipath import MultipathSelector
from repro.net.qos import AdmissionController
from repro.net.recovery import (
    FailoverRouter,
    HealthMonitor,
    LinkHealth,
    ReclaimableTokenPool,
    RecoveryConfig,
    RecoveryInstallation,
    install,
)
from repro.net.stack import NetStackConfig
from repro.sim.engine import Environment
from repro.sim.sharded import ShardedEnvironment
from repro.transport.message import OpKind
from repro.transport.path import PathResolver
from repro.transport.transaction import TransactionExecutor


class TestRecoveryConfig:
    def test_off_is_disabled_default(self):
        config = RecoveryConfig.off()
        assert not config.enabled
        assert config.label == "off"

    def test_on_enables_with_overrides(self):
        config = RecoveryConfig.on(dead_after=5)
        assert config.enabled
        assert config.dead_after == 5
        assert config.label == "on"

    @pytest.mark.parametrize(
        "overrides",
        [
            dict(probe_interval_ns=0.0),
            dict(dead_threshold=0.9, degraded_threshold=0.5),
            dict(dead_threshold=0.0),
            dict(dead_after=0),
            dict(revive_after=0),
            dict(max_retries=-1),
            dict(retry_timeout_ns=0.0),
            dict(service_timeout_ns=0.0),
            dict(backoff_base_ns=0.0),
            dict(backoff_base_ns=100.0, backoff_cap_ns=50.0),
            dict(jitter_fraction=1.0),
            dict(probe_size_bytes=1),
            dict(probe_latency_factor=1.0),
        ],
    )
    def test_validation(self, overrides):
        with pytest.raises(ConfigurationError):
            RecoveryConfig.on(**overrides)


class TestHealthMonitor:
    def _monitor(self, **overrides):
        return HealthMonitor(RecoveryConfig.on(**overrides))

    def test_unknown_endpoint_is_healthy(self):
        monitor = self._monitor()
        assert monitor.state("umc0") is LinkHealth.HEALTHY
        assert not monitor.is_dead("umc0")
        assert monitor.detect_ns("umc0") is None

    def test_consecutive_collapses_declare_dead(self):
        monitor = self._monitor(dead_after=3)
        for step in range(3):
            monitor.observe_window("umc0", 200.0 * (step + 1), 0.02, queued=True)
        assert monitor.is_dead("umc0")
        assert monitor.detect_ns("umc0") == pytest.approx(600.0)
        assert monitor.dead_endpoints() == ["umc0"]

    def test_idle_windows_never_strike(self):
        monitor = self._monitor(dead_after=1)
        for step in range(5):
            monitor.observe_window("umc0", float(step), 0.0, queued=False)
        assert monitor.state("umc0") is LinkHealth.HEALTHY

    def test_healthy_window_resets_the_strike_count(self):
        monitor = self._monitor(dead_after=3)
        monitor.observe_window("umc0", 200.0, 0.02, queued=True)
        monitor.observe_window("umc0", 400.0, 0.02, queued=True)
        monitor.observe_window("umc0", 600.0, 0.95, queued=True)
        monitor.observe_window("umc0", 800.0, 0.02, queued=True)
        assert not monitor.is_dead("umc0")

    def test_intermediate_ratio_is_degraded(self):
        monitor = self._monitor()
        state = monitor.observe_window("umc0", 200.0, 0.5, queued=True)
        assert state is LinkHealth.DEGRADED

    def test_window_telemetry_never_revives_dead(self):
        monitor = self._monitor(dead_after=1)
        monitor.observe_window("umc0", 200.0, 0.0, queued=True)
        assert monitor.is_dead("umc0")
        monitor.observe_window("umc0", 400.0, 1.0, queued=True)
        assert monitor.is_dead("umc0")

    def test_probes_revive_after_streak(self):
        monitor = self._monitor(dead_after=1, revive_after=3)
        monitor.credit_timeout("umc0", 100.0)
        assert monitor.is_dead("umc0")
        monitor.observe_probe("umc0", 300.0, healthy=True)
        monitor.observe_probe("umc0", 500.0, healthy=False)  # streak resets
        monitor.observe_probe("umc0", 700.0, healthy=True)
        monitor.observe_probe("umc0", 900.0, healthy=True)
        assert monitor.is_dead("umc0")
        monitor.observe_probe("umc0", 1100.0, healthy=True)
        assert monitor.state("umc0") is LinkHealth.HEALTHY

    def test_credit_timeouts_strike(self):
        monitor = self._monitor(dead_after=2)
        monitor.credit_timeout("umc0", 100.0)
        assert not monitor.is_dead("umc0")
        monitor.credit_timeout("umc0", 200.0)
        assert monitor.is_dead("umc0")

    def test_capacity_mask_covers_dead_directions(self):
        monitor = self._monitor(dead_after=1)
        monitor.credit_timeout("umc1", 100.0)
        mask = monitor.capacity_mask()
        assert set(mask) == {"umc1:r", "umc1:w"}
        assert all(0.0 < factor < 0.01 for factor in mask.values())
        assert monitor.capacity_mask(directions=("r",)) == {
            "umc1:r": mask["umc1:r"]
        }

    def test_transitions_are_recorded_once_per_change(self):
        monitor = self._monitor(dead_after=1)
        monitor.credit_timeout("umc0", 100.0)
        monitor.credit_timeout("umc0", 200.0)
        dead = [
            t for t in monitor.transitions if t.state is LinkHealth.DEAD
        ]
        assert len(dead) == 1 and dead[0].t_ns == pytest.approx(100.0)


class TestReclaimableTokenPool:
    def _invariant(self, pool):
        assert pool.available == (
            pool.capacity - pool.leases + pool.forgiven_pending
        )

    def test_plain_acquire_release_keeps_the_invariant(self):
        env = Environment()
        pool = ReclaimableTokenPool(env, 2)

        def flow():
            yield pool.acquire()
            self._invariant(pool)
            assert pool.leases == 1
            yield env.timeout(5.0)
            pool.release()
            self._invariant(pool)
            assert pool.leases == 0

        env.process(flow())
        env.run()
        assert pool.available == pool.capacity
        assert pool.reclaimed_total == 0

    def test_reclaim_sends_stranded_credits_home(self):
        env = Environment()
        pool = ReclaimableTokenPool(env, 2)

        def strand():
            yield pool.acquire()
            yield pool.acquire()
            yield env.timeout(100.0)
            pool.release()  # late return: forgiven, not double-counted
            pool.release()

        def reclaim():
            yield env.timeout(10.0)
            assert pool.reclaim_all() == 2
            assert pool.available == pool.capacity
            assert pool.forgiven_pending == 2
            self._invariant(pool)

        env.process(strand())
        env.process(reclaim())
        env.run()
        assert pool.available == pool.capacity
        assert pool.leases == 0
        assert pool.forgiven_pending == 0
        assert pool.forgiven_total == 2

    def test_reclaim_grants_fifo_waiters_first(self):
        env = Environment()
        pool = ReclaimableTokenPool(env, 1)
        granted = []

        def holder():
            yield pool.acquire()
            yield env.timeout(1000.0)
            pool.release()

        def waiter(name):
            yield pool.acquire()
            granted.append((name, env.now))
            pool.release()

        def reclaimer():
            yield env.timeout(10.0)
            pool.reclaim_all()

        env.process(holder())
        env.process(waiter("a"))
        env.process(waiter("b"))
        env.process(reclaimer())
        env.run()
        # Reclamation granted the first waiter at t=10. Its release is
        # consumed as the forgiveness for the reclaimed credit (no new
        # credit is minted), so the second waiter correctly rides the
        # holder's real return at t=1000 — conservation, not double-spend.
        assert granted == [("a", 10.0), ("b", 1000.0)]
        assert pool.available == pool.capacity
        assert pool.forgiven_pending == 0

    def test_cancel_withdraws_a_waiting_acquire(self):
        env = Environment()
        pool = ReclaimableTokenPool(env, 1)

        def holder():
            yield pool.acquire()
            yield env.timeout(100.0)
            pool.release()

        outcome = {}

        def impatient():
            grant = pool.acquire()
            assert not grant.triggered
            yield env.timeout(5.0)
            outcome["cancelled"] = pool.cancel(grant)

        env.process(holder())
        env.process(impatient())
        env.run()
        assert outcome["cancelled"] is True
        assert pool.queue_length == 0
        assert pool.available == pool.capacity

    def test_cancel_returns_false_once_granted(self):
        env = Environment()
        pool = ReclaimableTokenPool(env, 1)
        outcome = {}

        def flow():
            grant = pool.acquire()
            yield grant
            outcome["cancelled"] = pool.cancel(grant)
            pool.release()

        env.process(flow())
        env.run()
        assert outcome["cancelled"] is False
        assert pool.available == pool.capacity


class TestFailoverRouter:
    def _router(self, platform, dead=()):
        monitor = HealthMonitor(RecoveryConfig.on(dead_after=1))
        for endpoint in dead:
            monitor.credit_timeout(endpoint, 100.0)
        return FailoverRouter(platform, monitor), monitor

    def test_reroute_prefers_most_residual_capacity(self, p7302):
        router, __ = self._router(p7302, dead=("umc0",))
        for umc in (0, 1, 2):
            router.register(
                0, f"umc{umc}", primary=(umc == 0), slice_gbps=6.0
            )
        # umc1 carries someone else's load; umc2 is idle and wins.
        router.register(1, "umc1", primary=True, slice_gbps=10.0)
        rerouted = router.reroute(0)
        assert rerouted is not None and rerouted[0] == "umc2"
        assert router.home(0) == "umc2"

    def test_successive_reroutes_spread_by_load_book(self, p7302):
        router, __ = self._router(p7302, dead=("umc0",))
        for worker in (0, 1):
            for umc in (0, 1, 2):
                router.register(
                    worker, f"umc{umc}", primary=(umc == 0), slice_gbps=6.0
                )
        first = router.reroute(0)
        second = router.reroute(1)
        assert first is not None and second is not None
        # The first failover loads its target, so the second picks the
        # other candidate instead of piling on.
        assert {first[0], second[0]} == {"umc1", "umc2"}

    def test_dead_candidates_are_excluded(self, p7302):
        router, monitor = self._router(p7302, dead=("umc0", "umc2"))
        for umc in (0, 1, 2):
            router.register(0, f"umc{umc}", primary=(umc == 0))
        rerouted = router.reroute(0)
        assert rerouted is not None and rerouted[0] == "umc1"

    def test_no_healthy_candidate_returns_none(self, p7302):
        router, __ = self._router(p7302, dead=("umc0", "umc1"))
        router.register(0, "umc0", primary=True)
        router.register(0, "umc1")
        assert router.reroute(0) is None

    def test_unregistered_worker_returns_none(self, p7302):
        router, __ = self._router(p7302)
        assert router.reroute(7) is None


class TestHealthAwareMultipath:
    def test_none_health_is_the_old_selector(self, p7302):
        plain = MultipathSelector(p7302)
        aware = MultipathSelector(
            p7302, health=HealthMonitor(RecoveryConfig.on())
        )
        umcs = sorted(p7302.umcs)
        assert plain.rank_umcs(0) == aware.rank_umcs(0)
        assert plain.split_weights(umcs) == aware.split_weights(umcs)

    def test_dead_endpoints_leave_rank_and_weights(self, p7302):
        monitor = HealthMonitor(RecoveryConfig.on(dead_after=1))
        monitor.credit_timeout("umc0", 100.0)
        selector = MultipathSelector(p7302, health=monitor)
        assert 0 not in selector.rank_umcs(0)
        weights = selector.split_weights(sorted(p7302.umcs))
        assert weights[0] == 0.0
        assert sum(weights.values()) == pytest.approx(1.0)

    def test_all_dead_falls_back_to_total_routing(self, p7302):
        monitor = HealthMonitor(RecoveryConfig.on(dead_after=1))
        for umc in p7302.umcs:
            monitor.credit_timeout(f"umc{umc}", 100.0)
        selector = MultipathSelector(p7302, health=monitor)
        assert selector.rank_umcs(0) == MultipathSelector(p7302).rank_umcs(0)


class TestHealthAwareAdmission:
    def _controller(self, platform, monitor=None):
        return AdmissionController(FabricModel(platform), health=monitor)

    def test_dead_channel_offers_no_headroom(self, p7302):
        monitor = HealthMonitor(RecoveryConfig.on(dead_after=1))
        controller = self._controller(p7302, monitor)
        healthy = controller.headroom_gbps("umc0:r")
        assert healthy > 0.0
        monitor.credit_timeout("umc0", 100.0)
        assert controller.headroom_gbps("umc0:r") == 0.0

    def test_revalidate_reports_stranded_flows_without_revoking(self, p7302):
        monitor = HealthMonitor(RecoveryConfig.on(dead_after=1))
        controller = self._controller(p7302, monitor)
        cores = tuple(c.core_id for c in p7302.cores_of_ccd(0))
        spec = StreamSpec("victim", OpKind.READ, cores[:1])
        controller.admit(spec, 2.0, umc_ids=[0])
        assert controller.revalidate() == {}
        monitor.credit_timeout("umc0", 100.0)
        stranded = controller.revalidate()
        assert stranded == {"victim": 2.0}
        # Never auto-revoked: the guarantee is still admitted.
        assert controller.admitted == {"victim": 2.0}
        # The caller closes the loop: release, then re-admit elsewhere.
        controller.release("victim")
        controller.admit(spec, 2.0, umc_ids=[1])
        assert controller.revalidate() == {}


class TestInstallContract:
    def test_disabled_is_the_plain_stack(self, p7302):
        env = Environment()
        resolver = PathResolver(env, p7302)
        installation = install(
            resolver,
            NetStackConfig.with_credits(),
            RecoveryConfig.off(),
            flows=["victim"],
            endpoints=["umc0"],
        )
        assert type(installation) is NetInstallation

    def test_enabled_requires_credits_and_flows(self, p7302):
        env = Environment()
        resolver = PathResolver(env, p7302)
        with pytest.raises(ConfigurationError):
            install(resolver, NetStackConfig(), RecoveryConfig.on(), flows=["v"])
        with pytest.raises(ConfigurationError):
            install(
                resolver, NetStackConfig.with_credits(), RecoveryConfig.on()
            )

    def test_enabled_builds_the_recovery_installation(self, p7302):
        env = Environment()
        resolver = PathResolver(env, p7302)
        installation = install(
            resolver,
            NetStackConfig.with_credits(),
            RecoveryConfig.on(),
            flows=["victim"],
            endpoints=["umc0", "umc1"],
        )
        assert isinstance(installation, RecoveryInstallation)
        assert installation.scheduler.pool("umc0", "victim").capacity > 0


class TestRecoveryGateFailover:
    def test_dead_home_fails_over_before_issuing(self, p7302):
        env = Environment()
        resolver = PathResolver(env, p7302)
        installation = install(
            resolver,
            NetStackConfig.with_credits(),
            RecoveryConfig.on(dead_after=1),
            flows=["victim"],
            endpoints=["umc0", "umc1"],
        )
        core = p7302.cores_of_ccd(0)[0].core_id
        for umc in (0, 1):
            installation.router.register(
                0, f"umc{umc}",
                path=resolver.dram_path(core, umc),
                primary=(umc == 0),
                slice_gbps=6.0,
            )
        installation.health.credit_timeout("umc0", 0.0)
        assert installation.health.is_dead("umc0")
        executor = TransactionExecutor(env, flow="victim")
        gate = installation.gate(executor, "victim", worker=0)
        from repro.transport.message import Transaction

        results = []

        def issue():
            txn = Transaction(OpKind.READ, 64, src_core=core)
            done = yield from gate.execute(
                txn, resolver.dram_path(core, 0)
            )
            results.append(done)

        env.process(issue())
        env.run()
        assert len(results) == 1
        assert installation.stats.failovers == 1
        assert installation.router.home(0) == "umc1"
        # Delivered bytes accounted at the failover endpoint.
        assert installation.registry.get("umc1").read_bytes == 64
        installation.assert_credits_home()


class TestShardedFaultGuard:
    def _schedule(self):
        return FaultSchedule(
            [FaultEvent.failure("umc0:r", start=100.0, factor=0.05)]
        )

    def test_multi_shard_install_is_refused(self, p7302):
        sharded = ShardedEnvironment(2, lookahead_ns=50.0)
        resolver = PathResolver(sharded.shard(0), p7302)
        with pytest.raises(SimulationError, match="2 shards"):
            install_faults(resolver, self._schedule())

    def test_single_shard_install_is_allowed(self, p7302):
        sharded = ShardedEnvironment(1, lookahead_ns=50.0)
        resolver = PathResolver(sharded.shard(0), p7302)
        processes = install_faults(resolver, self._schedule())
        assert processes

    def test_null_schedule_ignores_sharding(self, p7302):
        sharded = ShardedEnvironment(4, lookahead_ns=50.0)
        resolver = PathResolver(sharded.shard(0), p7302)
        assert install_faults(resolver, FaultSchedule([])) == []
