"""Preset platforms: the two processors characterized in the paper (Table 1).

Every constant below is either taken directly from Table 1 (counts, cache
sizes, process nodes, frequencies) or calibrated so the *measured* quantities
of Tables 2-3 and Figures 3-6 emerge from the simulation. Calibration targets
are quoted in the comments; EXPERIMENTS.md records measured-vs-paper numbers.

Latency decomposition targets (Table 2):

====================  =========  =========
stage                 EPYC 7302  EPYC 9634
====================  =========  =========
L1                    1.24 ns    1.19 ns
L2                    5.66 ns    7.51 ns
L3                    34.3 ns    40.8 ns
max CCX queueing      30 ns      20 ns
max CCD queueing      20 ns      (absent)
switching hop         ~8 ns      ~4 ns
I/O hub               ~15 ns     ~15 ns
DRAM near             124 ns     141 ns
DRAM vertical         131 ns     145 ns
DRAM horizontal       141 ns     150 ns
DRAM diagonal         145 ns     149 ns
CXL DIMM              (absent)   243 ns
====================  =========  =========

Bandwidth ceiling targets (Table 3, read/write GB/s):

==================  ===========  =============
bottleneck          EPYC 7302    EPYC 9634
==================  ===========  =============
core → DIMM         14.9 / 3.6   14.6 / 3.3
CCX pool            25.1 / 7.1   (= GMI)
GMI (CCD)           32.5 / 14.3  35.2 / 23.8
UMC (one channel)   21.1 / 19.0  34.9 / 28.3
NoC (whole CPU)     106.7/ 55.1  366.2 / 270.6
core → CXL          (absent)     5.4 / 2.8
CCX → CXL           (absent)     23.6 / 15.8
CPU → CXL           (absent)     88.1 / 87.7
==================  ===========  =============
"""

from __future__ import annotations

from repro.platform.topology import (
    BandwidthParams,
    LatencyParams,
    Platform,
    PlatformSpec,
)
from repro.units import GIB, KIB, MIB

__all__ = [
    "epyc_7302",
    "epyc_9634",
    "synthetic_ucie",
    "EPYC_7302_SPEC",
    "EPYC_9634_SPEC",
    "SYNTHETIC_UCIE_SPEC",
]


# --------------------------------------------------------------------- 7302

#: Zen 2 "Rome" — Dell 7525 box (per-socket view; the box has two sockets).
EPYC_7302_SPEC = PlatformSpec(
    name="EPYC 7302",
    microarchitecture="Zen 2",
    sockets=2,
    cores=16,
    ccx_count=8,
    ccd_count=4,
    l1_bytes=32 * KIB,
    l2_bytes=512 * KIB,
    l3_total_bytes=128 * MIB,
    umc_count=8,                      # 8 DDR4 channels
    dimm_capacity_bytes=16 * GIB,     # 256 GB / 2 sockets / 8 channels
    cxl_device_count=0,
    cxl_device_capacity_bytes=0,
    pcie_gen=4,
    pcie_lanes=128,
    base_ghz=3.0,
    turbo_ghz=3.3,
    compute_process_nm=7,
    io_process_nm=12,
    latency=LatencyParams(
        l1_ns=1.24,
        l2_ns=5.66,
        l3_ns=34.3,
        ccx_queue_max_ns=30.0,
        ccd_queue_max_ns=20.0,
        if_link_ns=9.0,
        ccm_ns=4.0,
        # Switching hop "~8 ns": x hops 8.5 ns, y hops 7 ns; XY turns cost
        # 5 ns. Position deltas: vertical +7, horizontal +17, diagonal +20.5
        # → 124 / 131 / 141 / 144.5 ns against the paper's 124/131/141/145.
        x_hop_ns=8.5,
        y_hop_ns=7.0,
        turn_ns=5.0,
        cs_ns=4.0,
        umc_ns=8.0,
        dram_ns=64.7,                 # closes the near-DIMM sum at 124.0 ns
        io_hub_ns=15.0,
        root_complex_ns=8.0,
        p_link_ns=25.0,
        cxl_device_ns=None,           # no CXL memory on this box
        # The Dell 7525 is a two-socket box: crossing the xGMI link to the
        # other socket's memory adds ~105 ns (remote near = 229 ns, the
        # usual 2S Rome figure).
        xgmi_ns=105.0,
    ),
    bandwidth=BandwidthParams(
        # 29 outstanding reads × 64 B / 124 ns = 14.97 GB/s (paper: 14.9);
        # 7 write-combining buffers × 64 B / 124 ns = 3.61 GB/s (paper: 3.6).
        mlp_read=29,
        wcb_write=7,
        # Two cores per CCX could drive 29.9/7.2; the CCX token pool caps
        # the complex at the measured 25.1/7.1.
        ccx_read_gbps=25.1,
        ccx_write_gbps=7.1,
        gmi_read_gbps=32.5,
        gmi_write_gbps=14.3,
        umc_read_gbps=21.1,
        umc_write_gbps=19.0,
        # Whole-CPU peak binds here: 4×GMI = 130/57.2 exceeds the NoC.
        noc_read_gbps=106.7,
        noc_write_gbps=55.1,
        hub_port_read_gbps=24.0,
        hub_port_write_gbps=16.0,
        p_link_read_gbps=26.0,
        p_link_write_gbps=26.0,
        cxl_dev_read_gbps=None,
        cxl_dev_write_gbps=None,
        # Saturating one CCX (2 cores × 29 reads = 58 issuable) against 50
        # tokens leaves an 8-deep backlog recycling every ~3.7 ns → ≈30 ns
        # max queueing; the CCD module's backlog at the GMI drain → ≈21 ns
        # (Table 2's 30/20 ns rows, measured by the saturation probes).
        ccx_tokens=50,
        ccd_tokens=94,
        # Socket-to-socket: four xGMI-2 links = ~70/55 GB/s usable.
        xgmi_read_gbps=70.0,
        xgmi_write_gbps=55.0,
    ),
)


# --------------------------------------------------------------------- 9634

#: Zen 4 "Genoa" — Supermicro 1U box with four Micron CZ120 CXL modules.
EPYC_9634_SPEC = PlatformSpec(
    name="EPYC 9634",
    microarchitecture="Zen 4",
    sockets=1,
    cores=84,
    ccx_count=12,
    ccd_count=12,
    l1_bytes=64 * KIB,
    l2_bytes=1 * MIB,
    l3_total_bytes=384 * MIB,
    umc_count=12,                     # 12 DDR5 channels
    dimm_capacity_bytes=64 * GIB,
    cxl_device_count=4,               # 4 × Micron CZ120
    cxl_device_capacity_bytes=256 * GIB,
    pcie_gen=5,
    pcie_lanes=128,
    base_ghz=2.25,
    turbo_ghz=3.7,
    compute_process_nm=5,
    io_process_nm=6,
    latency=LatencyParams(
        l1_ns=1.19,
        l2_ns=7.51,
        l3_ns=40.8,
        ccx_queue_max_ns=20.0,
        ccd_queue_max_ns=0.0,         # Table 2: N/A on the 9634
        if_link_ns=9.0,
        ccm_ns=4.0,
        # Switching hop "~4 ns": x 4.5 ns, y 4 ns, free turns (the newer I/O
        # die routes diagonals without a turn penalty). Position deltas:
        # vertical +4, horizontal +9, diagonal +8.5 → 141/145/150/149.5
        # against the paper's 141/145/150/149.
        x_hop_ns=4.5,
        y_hop_ns=4.0,
        turn_ns=0.0,
        cs_ns=4.0,
        umc_ns=8.0,
        dram_ns=75.2,                 # closes the near-DIMM sum at 141.0 ns
        io_hub_ns=15.0,
        root_complex_ns=8.0,
        p_link_ns=25.0,
        # 40.8+9+4+4.5 (one x hop to the hub) +15+8+25+136.7 = 243.0 ns.
        cxl_device_ns=136.7,
    ),
    bandwidth=BandwidthParams(
        # 32 × 64 B / 141 ns = 14.52 GB/s (paper 14.6);
        # 7 × 64 B / 141 ns = 3.18 GB/s (paper 3.3).
        mlp_read=32,
        wcb_write=7,
        # One CCX per CCD: no separate CCX token pool; GMI binds.
        ccx_read_gbps=None,
        ccx_write_gbps=None,
        gmi_read_gbps=35.2,
        gmi_write_gbps=23.8,
        umc_read_gbps=34.9,
        umc_write_gbps=28.3,
        # Whole-CPU peak binds here: 12×GMI = 422/286 exceeds the NoC.
        noc_read_gbps=366.2,
        noc_write_gbps=270.6,
        # CCX→CXL measures 23.6/15.8: the per-CCD mesh→hub segment binds.
        hub_port_read_gbps=24.0,
        hub_port_write_gbps=16.0,
        p_link_read_gbps=23.0,
        p_link_write_gbps=23.0,
        # CPU→CXL measures 88.1/87.7 over four modules: per-device ceiling.
        # Configured as the *wire* rate; 68 B FLITs carry 64 B payload, so
        # payload peaks at 23.5/1.0625 = 22.1 and 23.4/1.0625 = 22.0 GB/s
        # per device (×4 devices → 88.4/88.1 against the paper's 88.1/87.7).
        cxl_dev_read_gbps=23.5,
        cxl_dev_write_gbps=23.4,
        # 20 × 64 B / 243 ns = 5.27 GB/s (paper 5.4);
        # 11 × 64 B / 243 ns = 2.90 GB/s (paper 2.8).
        cxl_mlp_read=20,
        cxl_wcb_write=11,
        # 7 cores × 32 reads = 224 issuable against 213 tokens: an 11-deep
        # backlog recycling every ~1.8 ns → ≈20 ns max queueing (Table 2).
        # No CCD-level module on Zen 4 (one CCX per CCD).
        ccx_tokens=213,
        ccd_tokens=None,
    ),
)


# ---------------------------------------------------------------- synthetic

#: A hypothetical next-generation part with a UCIe die-to-die fabric —
#: *not* calibrated against hardware. It exists to exercise the
#: cross-platform characterization framework (§4 #5): faster/narrower
#: die-to-die hops, one CCX per CCD, more generous MLP, CXL 3.x devices.
SYNTHETIC_UCIE_SPEC = PlatformSpec(
    name="Synthetic UCIe",
    microarchitecture="synthetic-next",
    sockets=1,
    cores=64,
    ccx_count=8,
    ccd_count=8,
    l1_bytes=64 * KIB,
    l2_bytes=2 * MIB,
    l3_total_bytes=256 * MIB,
    umc_count=12,
    dimm_capacity_bytes=96 * GIB,
    cxl_device_count=4,
    cxl_device_capacity_bytes=512 * GIB,
    pcie_gen=6,
    pcie_lanes=160,
    base_ghz=3.0,
    turbo_ghz=4.2,
    compute_process_nm=3,
    io_process_nm=4,
    latency=LatencyParams(
        l1_ns=1.0,
        l2_ns=6.0,
        l3_ns=38.0,
        ccx_queue_max_ns=15.0,
        ccd_queue_max_ns=0.0,
        if_link_ns=6.0,             # UCIe advanced-package reach
        ccm_ns=3.0,
        x_hop_ns=2.5,
        y_hop_ns=2.5,
        turn_ns=0.0,
        cs_ns=3.0,
        umc_ns=7.0,
        dram_ns=70.0,               # near DRAM = 127 ns
        io_hub_ns=10.0,
        root_complex_ns=6.0,
        p_link_ns=15.0,
        cxl_device_ns=109.5,        # CXL = 190 ns
        pcie_device_ns=300.0,
    ),
    bandwidth=BandwidthParams(
        mlp_read=40,
        wcb_write=10,
        ccx_read_gbps=None,
        ccx_write_gbps=None,
        gmi_read_gbps=50.0,
        gmi_write_gbps=35.0,
        umc_read_gbps=40.0,
        umc_write_gbps=33.0,
        noc_read_gbps=340.0,        # still below 8 x 50: the wall remains
        noc_write_gbps=250.0,
        hub_port_read_gbps=40.0,
        hub_port_write_gbps=28.0,
        p_link_read_gbps=40.0,
        p_link_write_gbps=40.0,
        cxl_dev_read_gbps=38.0,
        cxl_dev_write_gbps=38.0,
        cxl_mlp_read=28,
        cxl_wcb_write=16,
        # 8 cores x 40 = 320 issuable vs 310 tokens: ~10-deep backlog at
        # the 50 GB/s GMI drain -> ~13 ns, near the configured 15 ns bound.
        ccx_tokens=310,
        ccd_tokens=None,
    ),
)


def epyc_7302() -> Platform:
    """Build the EPYC 7302 (Zen 2) platform of the paper's Dell 7525 box."""
    return Platform(EPYC_7302_SPEC)


def epyc_9634() -> Platform:
    """Build the EPYC 9634 (Zen 4) platform of the paper's Supermicro box."""
    return Platform(EPYC_9634_SPEC)


def synthetic_ucie() -> Platform:
    """Build the uncalibrated synthetic UCIe platform (framework demo)."""
    return Platform(SYNTHETIC_UCIE_SPEC)
