"""Span-based tracing with per-hop latency attribution.

The observability layer over the DES: :class:`Tracer` records spans on
the simulated clock (:mod:`repro.trace.tracer`), the exporter emits
Chrome trace-event / Perfetto JSON (:mod:`repro.trace.export`), and the
breakdown module decomposes end-to-end latencies into per-hop queueing
and service time (:mod:`repro.trace.breakdown`). See ``docs/TRACING.md``
for the walkthrough and ``repro trace`` for the CLI entry point.
"""

from repro.trace.breakdown import (
    HopStat,
    assert_tiles,
    fill_counters,
    hop_stats,
    render_breakdown,
    txn_latency_stats,
)
from repro.trace.export import chrome_trace, dumps, event_count
from repro.trace.tracer import (
    NULL_TRACER,
    NullTracer,
    Span,
    TraceRecording,
    Tracer,
    merge_recordings,
)

__all__ = [
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "Span",
    "TraceRecording",
    "merge_recordings",
    "chrome_trace",
    "dumps",
    "event_count",
    "HopStat",
    "hop_stats",
    "txn_latency_stats",
    "assert_tiles",
    "render_breakdown",
    "fill_counters",
]
