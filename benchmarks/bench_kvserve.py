"""Hybrid serving-engine benchmark: the million-request tentpole.

Two acceptance bars, both recorded in ``BENCH_results.json``:

* ``bench_kvserve_speedup`` — requests per wall-second, hybrid engine vs
  the per-event DES reference on the identical serving cell. The
  multiple is algorithmic (vectorized recurrences + one fluid solve
  replace ~15 heap events per GET), so it holds on a single core; the
  assertion floor is far below the measured ~1000x so a loaded runner
  cannot flake the gate.
* ``bench_kvserve_million`` — a 1,000,000-request multi-tenant sweep
  (four tenants, mixed arrival shapes, colocated background hog) must
  finish in seconds, and its merged cross-tenant p99/p999 land in the
  trajectory file.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_kvserve.py -q
"""

import time

from repro.apps import (
    ArrivalSpec,
    HybridKvServer,
    KvServerModel,
    KvWorkload,
    TenantSpec,
)

#: Generous hang-catching ceilings (seconds), not jitter-sensitive bars.
DES_CEILING_S = 60.0
MILLION_CEILING_S = 30.0

#: The ISSUE's floor is >=100x requests/wall-second; measured ~1000x+.
#: Asserting the floor itself (not the measurement) keeps the gate
#: robust to scheduler jitter while the recorded metadata tracks the
#: true multiple.
MIN_SPEEDUP = 100.0

_DES_REQUESTS = 1_000
_HYBRID_REQUESTS = 200_000
_QPS = 2_000_000.0


def bench_kvserve_speedup(benchmark, p9634, record_timing):
    """Hybrid vs per-event DES requests/wall-second on one serving cell."""
    workload_des = KvWorkload(qps=_QPS, requests=_DES_REQUESTS)
    background = [core.core_id for core in p9634.cores_of_ccd(0)[4:]]

    des = KvServerModel(p9634, workers=4, seed=0, with_dram_jitter=False)
    began = time.perf_counter()
    des.serve(workload_des, background_cores=background)
    des_s = time.perf_counter() - began
    des_rate = _DES_REQUESTS / des_s

    hybrid = HybridKvServer(p9634, seed=0)
    workload_hybrid = KvWorkload(qps=_QPS, requests=_HYBRID_REQUESTS)

    def serve():
        return hybrid.serve(
            workload_hybrid, workers=4, background_cores=background
        )

    benchmark.pedantic(serve, rounds=3, iterations=1)
    hybrid_s = benchmark.stats.stats.min
    hybrid_rate = _HYBRID_REQUESTS / hybrid_s

    speedup = hybrid_rate / des_rate
    record_timing(
        "bench_kvserve_speedup",
        hybrid_s,
        des_s=des_s,
        des_requests=_DES_REQUESTS,
        hybrid_requests=_HYBRID_REQUESTS,
        des_requests_per_wall_second=des_rate,
        hybrid_requests_per_wall_second=hybrid_rate,
        speedup=speedup,
    )
    assert speedup >= MIN_SPEEDUP
    assert des_s < DES_CEILING_S


def bench_kvserve_million(benchmark, p9634, record_timing):
    """A 1M-request, four-tenant open-loop sweep with colocated background."""
    per_tenant = 250_000
    tenants = [
        TenantSpec(
            name="web", workload=KvWorkload(qps=_QPS, requests=per_tenant),
            server_ccd=0, workers=4,
        ),
        TenantSpec(
            name="feed", workload=KvWorkload(qps=_QPS, requests=per_tenant),
            server_ccd=1, workers=4,
            arrival=ArrivalSpec(kind="onoff"),
        ),
        TenantSpec(
            name="ads",
            workload=KvWorkload(
                qps=_QPS, requests=per_tenant, value_tier="cxl"
            ),
            server_ccd=2, workers=4,
            arrival=ArrivalSpec(kind="diurnal", levels=(1.0, 2.0, 0.5, 0.5)),
        ),
        TenantSpec(
            name="batch",
            workload=KvWorkload(qps=_QPS, requests=per_tenant, index_depth=4),
            server_ccd=3, workers=4,
        ),
    ]
    total = sum(t.workload.requests for t in tenants)
    assert total >= 1_000_000
    background = [core.core_id for core in p9634.cores_of_ccd(0)[4:]]
    server = HybridKvServer(p9634, seed=0)

    def sweep():
        return server.serve_tenants(tenants, background_cores=background)

    reports, merged = benchmark.pedantic(sweep, rounds=3, iterations=1)
    wall_s = benchmark.stats.stats.min

    record_timing(
        "bench_kvserve_million",
        wall_s,
        requests=total,
        tenants=len(tenants),
        requests_per_wall_second=total / wall_s,
        p50_ns=merged.p50,
        p99_ns=merged.p99,
        p999_ns=merged.p999,
    )
    assert merged.count == total
    assert len(reports) == len(tenants)
    # Tails must be ordered and finite: the sweep is stable, not saturated.
    assert merged.p50 <= merged.p99 <= merged.p999 <= merged.maximum
    assert wall_s < MILLION_CEILING_S
