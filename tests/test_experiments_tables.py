"""Tests for the Table 1/2/3 experiment harnesses against paper values."""

import pytest

from repro.experiments import table1, table2, table3


class TestTable1:
    def test_matches_paper_exactly(self):
        result = table1.run()
        for name, expected in table1.PAPER_TABLE1.items():
            measured = result.row(name)
            for key, value in expected.items():
                assert measured[key] == value, (name, key)

    def test_render(self):
        text = table1.render(table1.run())
        assert "Zen 2" in text and "Zen 4" in text
        assert "384" in text  # 9634 L3 MiB


@pytest.fixture(scope="module")
def table2_rows(p7302, p9634):
    return {
        p7302.name: table2.run(p7302, iterations=800),
        p9634.name: table2.run(p9634, iterations=800),
    }


class TestTable2:
    def test_cache_levels_within_five_percent(self, table2_rows):
        for name, row in table2_rows.items():
            paper = table2.PAPER_TABLE2[name]
            assert row.l1 == pytest.approx(paper["l1"], rel=0.05)
            assert row.l2 == pytest.approx(paper["l2"], rel=0.05)
            assert row.l3 == pytest.approx(paper["l3"], rel=0.05)

    def test_dram_positions_within_five_percent(self, table2_rows):
        for name, row in table2_rows.items():
            paper = table2.PAPER_TABLE2[name]
            for key in ("near", "vertical", "horizontal", "diagonal"):
                measured = getattr(row, key)
                assert measured == pytest.approx(paper[key], rel=0.05), (
                    name, key,
                )

    def test_queueing_bounds(self, table2_rows):
        row7 = table2_rows["EPYC 7302"]
        assert row7.max_ccx_q == pytest.approx(30.0, abs=3.0)
        assert row7.max_ccd_q == pytest.approx(20.0, abs=3.0)
        row9 = table2_rows["EPYC 9634"]
        assert row9.max_ccx_q == pytest.approx(20.0, abs=3.0)
        assert row9.max_ccd_q is None

    def test_cxl_only_on_9634(self, table2_rows):
        assert table2_rows["EPYC 7302"].cxl is None
        assert table2_rows["EPYC 9634"].cxl == pytest.approx(243.0, rel=0.03)

    def test_position_ordering_holds(self, table2_rows):
        for row in table2_rows.values():
            assert row.near < row.vertical
            assert row.near < row.diagonal
            assert row.vertical < row.horizontal

    def test_9634_diagonal_beats_horizontal(self, table2_rows):
        row = table2_rows["EPYC 9634"]
        assert row.diagonal < row.horizontal

    def test_render(self, table2_rows):
        text = table2.render(table2_rows)
        assert "DRAM near" in text
        assert "CXL DIMM" in text
        assert "(paper)" in text


@pytest.fixture(scope="module")
def table3_results(p7302, p9634):
    return {
        p7302.name: table3.run(p7302),
        p9634.name: table3.run(p9634),
    }


class TestTable3:
    @pytest.mark.parametrize("name", ["EPYC 7302", "EPYC 9634"])
    def test_dram_cells_within_ten_percent(self, table3_results, name):
        result = table3_results[name]
        for (scope, target), (read, write) in table3.PAPER_TABLE3[name].items():
            if target != "dram" or scope == "ccd":
                continue  # paper's CCD/CCX split on 9634 is within noise
            measured_read, measured_write = result.cells[(scope, target)]
            assert measured_read == pytest.approx(read, rel=0.10), (scope, "r")
            assert measured_write == pytest.approx(write, rel=0.10), (scope, "w")

    def test_cxl_cells_within_ten_percent(self, table3_results):
        result = table3_results["EPYC 9634"]
        paper = table3.PAPER_TABLE3["EPYC 9634"]
        for scope in ("core", "ccx", "cpu"):
            read, write = paper[(scope, "cxl")]
            measured_read, measured_write = result.cells[(scope, "cxl")]
            assert measured_read == pytest.approx(read, rel=0.10)
            assert measured_write == pytest.approx(write, rel=0.10)

    def test_scope_scaling_monotonic(self, table3_results):
        for result in table3_results.values():
            reads = [
                result.read_gbps(scope) for scope in ("core", "ccx", "cpu")
            ]
            assert reads == sorted(reads)

    def test_write_below_read_everywhere(self, table3_results):
        for result in table3_results.values():
            for (scope, target), (read, write) in result.cells.items():
                assert write < read, (scope, target)

    def test_cpu_binds_on_noc_not_gmi_sum(self, table3_results, p7302):
        result = table3_results["EPYC 7302"]
        gmi_sum = 4 * p7302.spec.bandwidth.gmi_read_gbps
        assert result.read_gbps("cpu") < gmi_sum

    def test_cxl_below_local_dram(self, table3_results):
        result = table3_results["EPYC 9634"]
        for scope in ("core", "ccx", "cpu"):
            assert result.read_gbps(scope, "cxl") < result.read_gbps(scope)

    def test_single_umc_ceiling(self, p7302):
        read, write = table3.umc_channel_bandwidth(p7302)
        assert read == pytest.approx(21.1, rel=0.05)
        assert write == pytest.approx(19.0, rel=0.10)

    def test_render(self, table3_results):
        text = table3.render(table3_results)
        assert "From CPU" in text
        assert "106.7/55.1" in text  # paper column present
