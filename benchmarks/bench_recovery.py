"""Recovery benchmarks: what the fault-reactive layer costs when off.

The contract of ``repro.net.recovery`` is that a disabled configuration
is free: ``install(..., RecoveryConfig.off())`` *is* the plain stack
install, so a recovery-disabled run must pay nothing beyond one branch.
This bench times the DES recovery cell (the netstack-style credit-gated
victim under a permanent link failure) through the recovery install with
the disabled config, against a hand-built twin of the same simulation
installed through ``repro.net.inject`` directly — and gates the overhead
at < 5 % (with a small absolute jitter floor, like ``check_bench.py``).
A second bench keeps a hang-catching ceiling on the recovery-enabled
cell.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_recovery.py -q
"""

import time

from repro.core.loadgen import ClosedLoopIssuer
from repro.experiments import chaos
from repro.faults.inject import install as install_faults
from repro.net.inject import install as install_plain
from repro.net.stack import NetStackConfig
from repro.sim.engine import Environment
from repro.transport.message import OpKind
from repro.transport.path import PathResolver
from repro.transport.transaction import TransactionExecutor

#: Generous hang-catching ceiling (seconds) on the recovery-on cell.
RECOVERY_CEILING_S = 30.0

#: Relative overhead gate for the disabled arm, plus a jitter floor so a
#: sub-millisecond wobble on near-identical work cannot fail the gate.
OVERHEAD_GATE = 0.05
JITTER_FLOOR_S = 0.025

_TRANSACTIONS = 600


def _disabled_cell(p7302):
    return chaos.run_recovery_point(
        p7302, "des", False, transactions_per_core=_TRANSACTIONS
    )


def _plain_twin(platform):
    """The recovery-off DES cell, installed through ``repro.net.inject``.

    Mirrors ``chaos._des_recovery(recover=False)`` line for line except
    for the install entry point — what the simulation cost before the
    recovery layer existed.
    """
    schedule = chaos.recovery_schedule(seed=0)
    cores, shared, rate_each = chaos._victim_cell(platform)
    homes = chaos._initial_homes(cores, shared)
    endpoints = [f"umc{u}" for u in shared]
    env = Environment()
    resolver = PathResolver(env, platform, seed=0)
    install_faults(resolver, schedule)
    installation = install_plain(
        resolver, NetStackConfig.with_credits(),
        flows=["victim"], endpoints=endpoints,
    )
    executor = TransactionExecutor(env, flow="victim")
    meter = chaos._DeliveryMeter(env, executor)
    window = platform.spec.bandwidth.mlp_read
    finished = []
    for index, core_id in enumerate(cores):
        gate = installation.gate(meter, "victim")
        umc_id = int(homes[index][len("umc"):])
        path = resolver.dram_path(core_id, umc_id)
        issuer = ClosedLoopIssuer(
            env, gate, lambda worker, path=path: path, OpKind.READ,
            workers=1, window=window, count_per_worker=_TRANSACTIONS,
            rate_gbps=rate_each,
        )
        finished.append(issuer.start())
    env.run(env.all_of(finished))
    env.run()
    installation.assert_credits_home()


def _timed(fn, *args):
    start = time.perf_counter()
    fn(*args)
    return time.perf_counter() - start


def bench_recovery_disabled_overhead(benchmark, p7302, record_timing):
    """Recovery-disabled DES cell vs the same cell on the plain stack."""
    point = benchmark.pedantic(
        _disabled_cell, args=(p7302,), rounds=3, iterations=1,
    )
    if benchmark.stats is not None:
        disabled = benchmark.stats.stats.min
    else:  # --benchmark-disable smoke pass: time it directly
        disabled = min(_timed(_disabled_cell, p7302) for __ in range(3))
    baseline = min(_timed(_plain_twin, p7302) for __ in range(3))
    overhead = disabled - baseline
    record_timing(
        "bench_recovery_disabled_overhead",
        disabled,
        baseline=baseline,
        overhead=overhead,
        recovered=point.recovered,
    )
    assert point.recovered < 0.8  # the off arm really collapses
    assert overhead < max(OVERHEAD_GATE * baseline, JITTER_FLOOR_S), (
        f"recovery-disabled overhead {overhead * 1e3:.1f} ms over a "
        f"{baseline * 1e3:.1f} ms baseline exceeds the 5% gate"
    )


def bench_recovery_enabled_cell(benchmark, p7302, record_timing):
    """The full detect -> reclaim -> reroute DES cell, hang-guarded."""
    point = benchmark.pedantic(
        chaos.run_recovery_point, args=(p7302, "des", True),
        kwargs=dict(transactions_per_core=_TRANSACTIONS),
        rounds=1, iterations=1,
    )
    if benchmark.stats is not None:
        best = benchmark.stats.stats.min
    else:  # --benchmark-disable smoke pass: time it directly
        best = _timed(
            chaos.run_recovery_point, p7302, "des", True
        )
    record_timing(
        "bench_recovery_enabled_cell",
        best,
        recovered=point.recovered,
        reclaimed=point.reclaimed,
        retries=point.retries,
    )
    assert point.recovered >= 0.8  # the on arm really recovers
    assert best < RECOVERY_CEILING_S
