"""FIFO link arbitration — the "traffic-oblivious" service discipline.

Every intermediate point in the chiplet network "is unaware of (a) what a
flow is and (b) what the demand of a flow is" (§3.5). A link therefore
serves whatever requests are in flight in arrival order; a sender that keeps
more requests outstanding receives proportionally more service. That single
property produces the paper's "sender-driven aggressive bandwidth
partitioning".

:class:`LinkArbiter` is the DES element: per-direction serializers with
deterministic per-transaction service time (``bytes / capacity``), FIFO
queues, and utilization counters for telemetry.
"""

from __future__ import annotations

from typing import Generator

from repro.platform.interconnect import LinkSpec
from repro.sim.engine import Environment, Event, Resource

__all__ = ["LinkArbiter"]


class _DirectionServer:
    """One direction of a link: a FIFO serializer at a fixed byte rate."""

    def __init__(self, env: Environment, gbps: float, lanes: int = 1) -> None:
        self.env = env
        self.gbps = gbps
        self.resource = Resource(env, capacity=lanes)
        self.busy_ns = 0.0
        self.bytes_served = 0
        #: Deepest backlog observed (how much buffering this direction needs).
        self.max_queue_len = 0

    def service_ns(self, size_bytes: int) -> float:
        # lanes parallel sub-channels each carry gbps/lanes.
        return size_bytes / (self.gbps / self.resource.capacity)

    def transfer(self, size_bytes: int) -> Generator[Event, None, None]:
        """DES process fragment: queue for the serializer, then occupy it."""
        with self.resource.request() as grant:
            backlog = self.resource.queue_length
            if backlog > self.max_queue_len:
                self.max_queue_len = backlog
            yield grant
            service = self.service_ns(size_bytes)
            self.busy_ns += service
            self.bytes_served += size_bytes
            yield self.env.timeout(service)

    @property
    def queue_length(self) -> int:
        return self.resource.queue_length


class LinkArbiter:
    """Traffic-oblivious FIFO arbitration for both directions of a link."""

    def __init__(self, env: Environment, spec: LinkSpec, lanes: int = 1) -> None:
        self.env = env
        self.spec = spec
        self.read_dir = _DirectionServer(env, spec.read_gbps, lanes)
        self.write_dir = _DirectionServer(env, spec.write_gbps, lanes)

    def transfer(
        self, size_bytes: int, is_write: bool
    ) -> Generator[Event, None, None]:
        """Serve one transaction's data movement on the appropriate direction."""
        direction = self.write_dir if is_write else self.read_dir
        yield from direction.transfer(size_bytes)

    def utilization(self, is_write: bool, elapsed_ns: float) -> float:
        """Fraction of ``elapsed_ns`` the chosen direction was busy."""
        if elapsed_ns <= 0:
            return 0.0
        direction = self.write_dir if is_write else self.read_dir
        return min(1.0, direction.busy_ns / elapsed_ns)

    def achieved_gbps(self, is_write: bool, elapsed_ns: float) -> float:
        """Average delivered bandwidth on the chosen direction."""
        if elapsed_ns <= 0:
            return 0.0
        direction = self.write_dir if is_write else self.read_dir
        return direction.bytes_served / elapsed_ns
