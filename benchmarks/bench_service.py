"""Service-layer benchmarks: submit latency and warm-sweep throughput.

Both timings land in ``BENCH_results.json`` via
:func:`conftest.record_timing`. The server runs in-process on a
:class:`~repro.service.server.ServiceThread` so the numbers measure the
service stack itself — NDJSON framing, scheduling, the async bridge, and
the cache probe — not daemon spawn time. Ceilings are generous: they
catch order-of-magnitude regressions, not scheduler jitter.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_service.py -q
"""

import shutil
import tempfile
import time

#: Never-exceed ceilings (seconds) — the cold submit runs real DES cells.
FIRST_RESULT_CEILING_S = 60.0
WARM_SWEEP_CEILING_S = 10.0

_SPEC = {
    "kind": "netstack",
    "platform": "synthetic",
    "params": {"transactions_per_core": 60},
}


def bench_service_submit_roundtrip(record_timing):
    """Submit-to-first-result latency, cold and warm, plus warm throughput.

    One server, one client, the same netstack batch twice: the cold pass
    times how long a submission takes to stream its first cell result
    (scheduling + dispatch + one real cell, or a cache hit); the warm
    pass resubmits against the now-warm store, where every cell must
    resolve as a hit — that sweep's wall clock is the service's pure
    bookkeeping cost per cached cell.
    """
    from repro.cache import ResultCache
    from repro.service import ServiceClient, ServiceThread

    workdir = tempfile.mkdtemp(prefix="reprosvc-bench-", dir="/tmp")
    try:
        socket_path = f"{workdir}/svc.sock"
        cache = ResultCache(f"{workdir}/cache")
        with ServiceThread(
            socket_path, cache=cache, artifacts_dir=f"{workdir}/artifacts"
        ):
            def timed_submit(label):
                first = []

                def on_event(frame):
                    if frame.get("event") == "cell" and not first:
                        first.append(time.perf_counter() - started)

                with ServiceClient(socket_path, client=label) as client:
                    started = time.perf_counter()
                    outcome = client.submit(_SPEC, on_event=on_event)
                total = time.perf_counter() - started
                assert outcome.status == "done" and not outcome.failures
                return first[0], total, outcome

            cold_first, cold_total, cold = timed_submit("bench-cold")
            warm_first, warm_total, warm = timed_submit("bench-warm")

        cells = len(warm.results)
        assert cells == len(cold.results) > 0
        # The warm pass is the satellite's >=90% bar, at 100%: every cell
        # resolves from the store the cold pass populated.
        assert warm.hits == cells
        assert warm.render() == cold.render()

        record_timing(
            "service_submit_first_result_cold", cold_first,
            total_seconds=cold_total, cells=cells,
        )
        record_timing(
            "service_submit_first_result_warm", warm_first,
            total_seconds=warm_total, cells=cells,
            cells_per_second=cells / warm_total,
        )
        assert cold_first < FIRST_RESULT_CEILING_S
        assert warm_total < WARM_SWEEP_CEILING_S
    finally:
        shutil.rmtree(workdir, ignore_errors=True)
