"""Benchmark fixtures: the two paper platforms, built once per session.

Also the timing trajectory: :func:`record_timing` appends one sample to
``BENCH_results.json`` at the repository root, so successive sessions can
track how the hot paths move (see docs/PERFORMANCE.md).
"""

import json
import time
from pathlib import Path

import pytest

from repro.platform.presets import epyc_7302, epyc_9634

#: The trajectory file: a JSON list of timing samples, append-only.
RESULTS_PATH = Path(__file__).resolve().parent.parent / "BENCH_results.json"


@pytest.fixture(scope="session")
def p7302():
    return epyc_7302()


@pytest.fixture(scope="session")
def p9634():
    return epyc_9634()


def emit(text: str) -> None:
    """Print a regenerated paper artifact (visible with ``pytest -s``)."""
    print()
    print(text)


def record_timing(name: str, seconds: float, **meta) -> dict:
    """Append one timing sample to the BENCH_results.json trajectory.

    Each entry records the bench name, the measured seconds, a UTC
    timestamp, and any extra metadata (seed baselines, speedups, cell
    counts). The file is a flat JSON list; a corrupt or missing file is
    replaced rather than crashing the bench run.
    """
    try:
        history = json.loads(RESULTS_PATH.read_text())
        if not isinstance(history, list):
            history = []
    except (FileNotFoundError, ValueError):
        history = []
    entry = {
        "bench": name,
        "seconds": seconds,
        "recorded_at": time.strftime("%Y-%m-%dT%H:%M:%SZ", time.gmtime()),
    }
    entry.update(meta)
    history.append(entry)
    RESULTS_PATH.write_text(json.dumps(history, indent=2) + "\n")
    return entry


@pytest.fixture(scope="session", name="record_timing")
def record_timing_fixture():
    """The :func:`record_timing` helper as a session fixture."""
    return record_timing
