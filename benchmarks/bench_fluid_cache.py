"""Vectorized-backend and result-cache benchmarks: the PR's two payoffs.

Two acceptance bars, both recorded in ``BENCH_results.json``:

* the NumPy fluid backend runs a real Figure 5 sweep at least 3x faster
  than the pure-Python reference, with bit-identical traces;
* a content-addressed cache hit makes an immediate re-run of a real sweep
  (netstack, both backends' cells) at least 10x faster, with identical
  rendered output.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_fluid_cache.py -q
"""

import time

from repro.cache import ResultCache
from repro.experiments import fig5, netstack
from repro.fluid.solver import BACKEND_ENV_VAR

#: Acceptance floors (the measured ratios are far above both).
MIN_BACKEND_SPEEDUP = 3.0
MIN_CACHE_SPEEDUP = 10.0

#: DES transaction count for the cached-sweep bench: big enough that the
#: cold run dwarfs cache bookkeeping, small enough for a short bench.
_TRANSACTIONS = 200


def _timed(fn, *args, **kwargs):
    start = time.perf_counter()
    value = fn(*args, **kwargs)
    return time.perf_counter() - start, value


def bench_fig5_vectorized_speedup(p9634, record_timing, monkeypatch):
    """Figure 5 (9634 IF): reference backend vs NumPy fast path."""
    monkeypatch.setenv(BACKEND_ENV_VAR, "python")
    reference_s, reference = _timed(fig5.run, p9634, "if")
    monkeypatch.setenv(BACKEND_ENV_VAR, "numpy")
    fast_s, fast = _timed(fig5.run, p9634, "if")

    # Same sweep, bit-identical traces — the backends may only differ in
    # wall clock, never in output.
    assert set(fast.traces) == set(reference.traces)
    for name, trace in reference.traces.items():
        assert fast.traces[name].times_s == trace.times_s
        assert fast.traces[name].achieved_gbps == trace.achieved_gbps
    assert fast.harvest_delay_s == reference.harvest_delay_s

    speedup = reference_s / fast_s
    record_timing("fig5_fluid_reference", reference_s, backend="python")
    record_timing(
        "fig5_fluid_vectorized", fast_s, backend="numpy", speedup=speedup
    )
    assert speedup >= MIN_BACKEND_SPEEDUP, speedup


def bench_netstack_cached_rerun(p7302, record_timing, tmp_path, monkeypatch):
    """The full netstack sweep: cold solve vs immediate cached re-run."""
    monkeypatch.delenv(BACKEND_ENV_VAR, raising=False)
    cache = ResultCache(tmp_path / "store")

    def sweep():
        return netstack.run(
            p7302, jobs=1, transactions_per_core=_TRANSACTIONS, cache=cache,
        )

    cold_s, cold = _timed(sweep)
    warm_s, warm = _timed(sweep)

    assert all(result.ok for result in cold)
    assert not any(result.cached for result in cold)
    assert all(result.cached for result in warm)
    assert netstack.render(p7302.name, warm) == netstack.render(
        p7302.name, cold
    )

    speedup = cold_s / warm_s
    record_timing(
        "netstack_sweep_cold", cold_s, transactions_per_core=_TRANSACTIONS
    )
    record_timing(
        "netstack_sweep_cached", warm_s, cache_speedup=speedup
    )
    assert speedup >= MIN_CACHE_SPEEDUP, speedup
