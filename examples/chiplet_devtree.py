#!/usr/bin/env python3
"""The chiplet-network device tree — the paper's §4 direction #1, running.

Exports the hardware description the paper proposes for
``/sys/firmware/chiplet-net`` and, after replaying a short workload through
the transaction-level simulator, the runtime per-link telemetry report it
proposes for ``/proc/chiplet-net``.

Run:  python examples/chiplet_devtree.py
"""

from repro import OpKind, epyc_9634
from repro.core.loadgen import ClosedLoopIssuer
from repro.platform.numa import Position
from repro.sim.engine import Environment
from repro.telemetry.counters import CounterRegistry
from repro.telemetry.devtree import build_devtree, proc_chiplet_net, render_dts
from repro.transport.path import PathResolver
from repro.transport.transaction import TransactionExecutor


def main() -> None:
    platform = epyc_9634()

    print("== /sys/firmware/chiplet-net (static hardware description) ==\n")
    text = render_dts(build_devtree(platform))
    lines = text.splitlines()
    print("\n".join(lines[:40]))
    print(f"\t... ({len(lines) - 40} more lines)")

    # Replay a mixed workload: CCD0 streams reads to its near DIMMs while
    # CCD1 writes to CXL, then read the fabric's counters back out.
    env = Environment()
    resolver = PathResolver(env, platform, seed=3)
    executor = TransactionExecutor(env)
    near = [u.umc_id for u in platform.umcs_at(0, Position.NEAR)]
    read_paths = {
        i: resolver.dram_path(core.core_id, near[i % len(near)])
        for i, core in enumerate(platform.cores_of_ccd(0))
    }
    write_paths = {
        i: resolver.cxl_path(core.core_id, i % 4, op=OpKind.NT_WRITE)
        for i, core in enumerate(platform.cores_of_ccd(1))
    }
    readers = ClosedLoopIssuer(
        env, executor, lambda w: read_paths[w], OpKind.READ,
        workers=len(read_paths), window=8, count_per_worker=300,
    )
    writers = ClosedLoopIssuer(
        env, executor, lambda w: write_paths[w], OpKind.NT_WRITE,
        workers=len(write_paths), window=8, count_per_worker=300,
    )
    env.run(env.all_of([readers.start(), writers.start()]))

    # Read the fabric's own byte counters back into the telemetry registry.
    registry = CounterRegistry()
    elapsed = env.now
    utilizations = {}
    for ccd_id in (0, 1):
        for name, arbiter in (
            (f"if/ccd{ccd_id}", resolver.if_arbiter(ccd_id)),
            (f"gmi/ccd{ccd_id}", resolver.gmi_arbiter(ccd_id)),
        ):
            link = platform.link(name)
            counters = registry.attach(link)
            counters.read_bytes = arbiter.read_dir.bytes_served
            counters.write_bytes = arbiter.write_dir.bytes_served
            utilizations[f"{name}:r"] = arbiter.utilization(False, elapsed)
            utilizations[f"{name}:w"] = arbiter.utilization(True, elapsed)
    for umc_id in near:
        arbiter = resolver.umc_server(umc_id).arbiter
        counters = registry.attach(platform.link(f"umc{umc_id}"))
        counters.read_bytes = arbiter.read_dir.bytes_served
        counters.write_bytes = arbiter.write_dir.bytes_served
    for dev_id in range(4):
        arbiter = resolver.cxl_device(dev_id).arbiter
        counters = registry.attach(platform.link(f"cxldev{dev_id}"))
        counters.read_bytes = arbiter.read_dir.bytes_served
        counters.write_bytes = arbiter.write_dir.bytes_served

    print("\n== /proc/chiplet-net (runtime telemetry after the replay) ==\n")
    print(proc_chiplet_net(platform, registry, elapsed, utilizations))


if __name__ == "__main__":
    main()
