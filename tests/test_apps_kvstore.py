"""Tests for the KV-server application study."""

import pytest

from repro.apps import KvServerModel, KvWorkload
from repro.errors import ConfigurationError


@pytest.fixture(scope="module")
def server(p9634):
    return KvServerModel(p9634, workers=4)


def _workload(**kwargs):
    defaults = dict(qps=2_000_000, requests=200)
    defaults.update(kwargs)
    return KvWorkload(**defaults)


class TestValidation:
    def test_workload_validation(self):
        with pytest.raises(ConfigurationError):
            KvWorkload(qps=0)
        with pytest.raises(ConfigurationError):
            KvWorkload(qps=1e6, requests=5)
        with pytest.raises(ConfigurationError):
            KvWorkload(qps=1e6, index_depth=0)
        with pytest.raises(ConfigurationError):
            KvWorkload(qps=1e6, value_tier="tape")

    def test_server_validation(self, p9634):
        with pytest.raises(ConfigurationError):
            KvServerModel(p9634, server_ccd=99)
        with pytest.raises(ConfigurationError):
            KvServerModel(p9634, workers=0)

    def test_cxl_tier_requires_cxl(self, p7302):
        server = KvServerModel(p7302, workers=2)
        with pytest.raises(ConfigurationError):
            server.serve(_workload(value_tier="cxl"))


class TestLatency:
    def test_baseline_latency_is_fabric_shaped(self, server, p9634):
        from repro.platform.numa import Position

        report = server.serve(_workload())
        # Two dependent index reads + a value read + NIC crossings: several
        # hundred ns, clearly sub-microsecond at this load.
        floor = 2 * p9634.dram_latency_at(0, Position.NEAR)
        assert report.latency.mean > floor
        assert report.latency.p99 < 2000.0

    def test_deeper_index_costs_a_dram_round_trip(self, server):
        shallow = server.serve(_workload(index_depth=1))
        deep = server.serve(_workload(index_depth=3))
        delta = deep.latency.mean - shallow.latency.mean
        assert delta == pytest.approx(2 * 141.0, rel=0.25)

    def test_cxl_values_cost_the_latency_premium(self, server):
        dram = server.serve(_workload())
        cxl = server.serve(_workload(value_tier="cxl"))
        assert cxl.latency.mean > dram.latency.mean + 80.0

    def test_overload_inflates_latency(self, server):
        light = server.serve(_workload(qps=500_000))
        # Far beyond what 4 workers can serve: queueing at the worker pool.
        heavy = server.serve(_workload(qps=8_000_000))
        assert heavy.latency.mean > 1.5 * light.latency.mean

    def test_slo_helper(self, server):
        report = server.serve(_workload(qps=500_000))
        assert report.meets_slo(p99_us=5.0)
        assert not report.meets_slo(p99_us=0.1)


class TestColocation:
    def test_noisy_neighbor_inflates_tail(self, p9634):
        server = KvServerModel(p9634, workers=3)
        background = [c.core_id for c in p9634.cores_of_ccd(0)[3:]]
        quiet = server.serve(_workload())
        noisy = server.serve(_workload(), background_cores=background)
        assert noisy.latency.p99 > quiet.latency.p99

    def test_pacing_the_background_restores_latency(self, p9634):
        server = KvServerModel(p9634, workers=3)
        background = [c.core_id for c in p9634.cores_of_ccd(0)[3:]]
        noisy = server.serve(_workload(), background_cores=background)
        paced = server.serve(
            _workload(), background_cores=background,
            background_rate_gbps=8.0,
        )
        assert paced.latency.mean < noisy.latency.mean


class TestAchievedQps:
    def test_tracks_offered_rate(self, server):
        # Open-loop achieved QPS is count over the first-arrival→last-
        # completion span, so a stable server approximates the offered
        # rate (dividing by absolute completion time would understate it
        # by the first request's arrival offset).
        report = server.serve(_workload(qps=500_000, requests=400))
        assert report.achieved_qps == pytest.approx(500_000, rel=0.10)

    def test_overload_caps_achieved_below_offered(self, server):
        report = server.serve(_workload(qps=8_000_000, requests=400))
        assert report.achieved_qps < 8_000_000 * 0.95
