"""Plain-text table rendering in the style of the paper's tables."""

from __future__ import annotations

from typing import Iterable, List, Sequence

__all__ = ["render_table", "format_pair"]


def format_pair(read_value: float, write_value: float, digits: int = 1) -> str:
    """Render a read/write pair the way Table 3 does (``106.7/55.1``)."""
    return f"{read_value:.{digits}f}/{write_value:.{digits}f}"


def render_table(
    headers: Sequence[str], rows: Iterable[Sequence[object]], title: str = ""
) -> str:
    """Render an aligned monospace table with optional title."""
    str_rows: List[List[str]] = [[str(cell) for cell in row] for row in rows]
    widths = [len(header) for header in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    lines = []
    if title:
        lines.append(title)
    separator = "-+-".join("-" * width for width in widths)
    lines.append(" | ".join(h.ljust(w) for h, w in zip(headers, widths)))
    lines.append(separator)
    for row in str_rows:
        lines.append(" | ".join(cell.ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)
