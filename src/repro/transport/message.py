"""Transaction message types."""

from __future__ import annotations

import enum
import itertools
from dataclasses import dataclass, field
from typing import Optional

from repro.errors import ConfigurationError
from repro.units import CACHELINE

__all__ = ["OpKind", "Transaction"]

_txn_ids = itertools.count()


class OpKind(enum.Enum):
    """Memory operation kinds the microbenchmark utility generates (§3.1)."""

    READ = "read"
    #: Regular (temporal) store: allocates in cache, write-back semantics.
    WRITE = "write"
    #: Non-temporal store: bypasses the cache hierarchy, streams to memory —
    #: the paper's bandwidth experiments use AVX-512 NT writes (Table 3).
    NT_WRITE = "nt-write"

    @property
    def is_write(self) -> bool:
        return self is not OpKind.READ


@dataclass
class Transaction:
    """One cacheline-granularity data movement through the chiplet network."""

    op: OpKind
    size_bytes: int = CACHELINE
    src_core: int = 0
    target: str = "dram"
    flow_id: Optional[int] = None
    txn_id: int = field(default_factory=lambda: next(_txn_ids))
    issued_ns: Optional[float] = None
    completed_ns: Optional[float] = None

    def __post_init__(self) -> None:
        if self.size_bytes <= 0:
            raise ConfigurationError(
                f"transaction size must be positive, got {self.size_bytes}"
            )

    @property
    def latency_ns(self) -> float:
        if self.issued_ns is None or self.completed_ns is None:
            raise ConfigurationError(
                f"transaction {self.txn_id} has not completed"
            )
        return self.completed_ns - self.issued_ns
