"""Property-based tests (hypothesis) on the conservative sync protocol.

The safety property of null-message PDES, checked mechanically: *no
cross-shard delivery ever lands before its send time plus the lookahead,
and never in a receiver's past*. The engine raises
:class:`~repro.errors.SimulationError` on any violation (the
``_deliver`` guard), so the property is "random workloads never trip the
guard, and every observed delivery respects the bound".

Runs in the conformance tier alongside the agreement sweeps (hypothesis
is a conformance-job install, not a tier-1 dependency).
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings  # noqa: E402
from hypothesis import strategies as st  # noqa: E402

from repro.errors import SimulationError  # noqa: E402
from repro.sim.engine import Timeout  # noqa: E402
from repro.sim.sharded import ShardedEnvironment  # noqa: E402

pytestmark = pytest.mark.conformance


sends = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=100.0, allow_nan=False),  # when
        st.integers(min_value=0, max_value=3),                       # src
        st.integers(min_value=0, max_value=3),                       # dst
        st.floats(min_value=0.0, max_value=50.0, allow_nan=False),   # extra
    ),
    min_size=1,
    max_size=40,
)


@given(batch=sends, lookahead=st.floats(min_value=0.5, max_value=20.0))
@settings(max_examples=200, deadline=None)
def test_deliveries_respect_lookahead_bound(batch, lookahead):
    """Scheduled sends at random times never violate the lookahead bound."""
    sharded = ShardedEnvironment(4, lookahead_ns=lookahead)
    deliveries = []

    for shard_id, shard in enumerate(sharded.shards):
        shard.on_message(
            lambda message, shard=shard: deliveries.append(
                (shard._now, message)
            )
        )

    for when, src, dst, extra in batch:
        src_env = sharded.shard(src)

        def fire(_event, src=src, dst=dst, extra=extra):
            sharded.send(src, dst, "payload", delay_ns=lookahead + extra)

        Timeout(src_env, when).callbacks.append(fire)

    # The run itself asserts safety: the _deliver guard raises if any
    # message lands in a receiver's past.
    sharded.run()

    assert len(deliveries) == len(batch)
    for clock_ns, message in deliveries:
        assert message.deliver_ns >= message.send_ns + lookahead - 1e-9
        assert clock_ns <= message.deliver_ns + 1e-9


@given(
    shortfall=st.floats(min_value=1e-3, max_value=0.99, allow_nan=False),
    lookahead=st.floats(min_value=0.5, max_value=20.0),
)
@settings(max_examples=50, deadline=None)
def test_undercutting_lookahead_always_raises(shortfall, lookahead):
    sharded = ShardedEnvironment(2, lookahead_ns=lookahead)
    with pytest.raises(SimulationError):
        sharded.send(0, 1, "x", delay_ns=lookahead * (1.0 - shortfall))


@given(
    times=st.lists(
        st.floats(min_value=0.0, max_value=200.0, allow_nan=False),
        min_size=1,
        max_size=30,
    ),
    lookahead=st.floats(min_value=0.5, max_value=20.0),
)
@settings(max_examples=100, deadline=None)
def test_window_bounds_strictly_increase(times, lookahead):
    """The coordinator always makes progress: windows grow, events drain."""
    sharded = ShardedEnvironment(2, lookahead_ns=lookahead)
    for index, when in enumerate(times):
        Timeout(sharded.shard(index % 2), when)
    sharded.run()
    assert sharded.events_processed == len(times)
    assert all(not shard._queue for shard in sharded.shards)
