"""Ablations for the design points DESIGN.md calls out.

* :func:`manager_vs_sender_driven` — re-runs the Figure 4 cases under the
  §4-proposed global traffic manager (max-min fair) and contrasts the
  allocations and Jain fairness with the hardware's sender-driven split.
* :func:`detailed_vs_collapsed_noc` — validates the collapsed-latency path
  model against the hop-by-hop mesh simulation (they must agree unloaded).
* :func:`token_pool_ablation` — Figure 3 panel (d) with the traffic-control
  modules removed, showing the queueing the Phantom-Queue-like structure
  bounds (§3.2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.core.flows import StreamSpec
from repro.core.loadgen import ClosedLoopIssuer
from repro.core.microbench import MicroBench
from repro.core.partition import contend
from repro.experiments.fig4 import CASES, link_capacity_gbps
from repro.fluid.solver import Policy
from repro.manager.manager import ManagedAllocation
from repro.noc.mesh import Mesh
from repro.noc.router import MeshNetwork
from repro.platform.numa import Position
from repro.platform.topology import Platform
from repro.sim.engine import Environment
from repro.transport.message import OpKind
from repro.transport.path import PathResolver
from repro.transport.transaction import TransactionExecutor
from repro.units import CACHELINE

__all__ = [
    "ManagerAblation",
    "manager_vs_sender_driven",
    "detailed_vs_collapsed_noc",
    "token_pool_ablation",
]


@dataclass(frozen=True)
class ManagerAblation:
    """Sender-driven vs managed allocation for one Figure 4 case."""

    case: str
    requested: Dict[str, float]
    sender_driven: Dict[str, float]
    managed: Dict[str, float]

    def fairness(self) -> Tuple[float, float]:
        """(sender-driven, managed) Jain indices."""
        return (
            ManagedAllocation(self.sender_driven, Policy.DEMAND_PROPORTIONAL)
            .jain_fairness(),
            ManagedAllocation(self.managed, Policy.MAX_MIN).jain_fairness(),
        )


def manager_vs_sender_driven(
    platform: Platform, link: str = "gmi"
) -> Dict[str, ManagerAblation]:
    """Figure 4 cases under both allocation disciplines."""
    capacity = link_capacity_gbps(platform, link)
    out: Dict[str, ManagerAblation] = {}
    for case, (frac0, frac1) in CASES.items():
        requested = {"flow0": frac0 * capacity, "flow1": frac1 * capacity}
        out[case] = ManagerAblation(
            case=case,
            requested=requested,
            sender_driven=contend(capacity, requested, Policy.DEMAND_PROPORTIONAL),
            managed=contend(capacity, requested, Policy.MAX_MIN),
        )
    return out


def detailed_vs_collapsed_noc(
    platform: Platform, size_bytes: int = CACHELINE
) -> Dict[str, float]:
    """Unloaded mesh traversal: hop-by-hop DES vs the analytic collapse.

    The detailed network adds per-hop serialization (bytes/port-rate) that
    the analytic model folds into the path's fixed service deduction, so the
    comparison subtracts it explicitly.
    """
    lat = platform.spec.latency
    mesh = Mesh(
        width=platform.spec.mesh_grid[0],
        height=platform.spec.mesh_grid[1],
        x_hop_ns=lat.x_hop_ns,
        y_hop_ns=lat.y_hop_ns,
        turn_ns=lat.turn_ns,
    )
    env = Environment()
    port_gbps = platform.spec.bandwidth.noc_read_gbps / platform.spec.ccd_count
    network = MeshNetwork(env, mesh, port_gbps=port_gbps)
    src = platform.ccds[0].coord
    results: Dict[str, float] = {}
    for position in Position:
        umcs = platform.umcs_at(0, position)
        if not umcs:
            continue
        dst = umcs[0].coord
        done = env.process(network.send(src, dst, size_bytes))
        measured = env.run(done)
        hops = mesh.hop_count(src, dst)
        serialization = hops * size_bytes / port_gbps
        analytic = mesh.cost_ns(src, dst)
        detailed = measured - serialization
        # Express-channel (negative turn) credit is analytic-only.
        if mesh.turn_ns < 0 and mesh.turns(src, dst):
            detailed += mesh.turn_ns
        results[position.value] = detailed - analytic
    return results


def token_pool_ablation(
    platform: Platform,
    transactions_per_core: int = 400,
    seed: int = 0,
) -> Dict[str, Dict[str, float]]:
    """GMI saturation with and without the traffic-control modules.

    End-to-end latency is conserved (Little's law: the in-flight requests
    wait *somewhere*), but the token pools move the backlog from the I/O
    die's buffers to the chiplet edge — exactly what the Phantom-Queue-like
    "queueless structure … tokens and backpressure" of §3.2 is for. Returns,
    per variant, the mean latency and the deepest I/O-die-side (GMI) backlog.
    """
    core_ids = [c.core_id for c in platform.cores_of_ccd(0)]
    bench = MicroBench(platform, seed=seed)
    near = bench.fabric.default_umc_ids(
        StreamSpec("probe", OpKind.READ, tuple(core_ids))
    )
    out: Dict[str, Dict[str, float]] = {}
    for label, use_pools in (("with_tokens", True), ("without_tokens", False)):
        env = Environment()
        resolver = PathResolver(env, platform, seed=seed)
        executor = TransactionExecutor(env)
        paths = {
            i: resolver.dram_path(
                core, near[i % len(near)], use_token_pools=use_pools
            )
            for i, core in enumerate(core_ids)
        }
        issuer = ClosedLoopIssuer(
            env,
            executor,
            path_of_worker=lambda w: paths[w],
            op=OpKind.READ,
            workers=len(core_ids),
            window=platform.spec.bandwidth.mlp_read,
            count_per_worker=transactions_per_core,
        )
        result = issuer.run()
        gmi = resolver.gmi_arbiter(0)
        out[label] = {
            "mean_latency_ns": result.stats.mean,
            "gmi_max_backlog": float(gmi.read_dir.max_queue_len),
        }
    return out
