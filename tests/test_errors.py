"""Tests for the exception hierarchy."""

import pytest

from repro import errors


@pytest.mark.parametrize(
    "exc",
    [
        errors.ConfigurationError,
        errors.TopologyError,
        errors.SimulationError,
        errors.ConvergenceError,
        errors.MeasurementError,
    ],
)
def test_all_derive_from_chiplet_error(exc):
    assert issubclass(exc, errors.ChipletError)


def test_chiplet_error_is_exception():
    assert issubclass(errors.ChipletError, Exception)


def test_catchable_as_base():
    with pytest.raises(errors.ChipletError):
        raise errors.TopologyError("no such link")


def test_distinct_types():
    # Sibling error types must not catch each other.
    with pytest.raises(errors.SimulationError):
        try:
            raise errors.SimulationError("boom")
        except errors.ConfigurationError:  # pragma: no cover
            pytest.fail("wrong handler caught the error")
