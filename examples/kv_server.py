#!/usr/bin/env python3
"""A sub-microsecond KV server on a chiplet machine: where the time goes.

The "killer microseconds" scenario the paper's motivation cites: a GET
request costs NIC crossings, dependent index walks, and a value fetch —
all over the chiplet network. This example decomposes the request budget,
prices the CXL value tier, and shows a colocated scan wrecking (and a
traffic-manager grant restoring) the P99.

Run:  python examples/kv_server.py
"""

from repro.apps import KvServerModel, KvWorkload
from repro.platform.presets import epyc_9634


def report_line(tag, report):
    latency = report.latency
    print(
        f"  {tag:<26} mean {latency.mean:6.0f} ns   "
        f"p99 {latency.p99:6.0f} ns   slo(1.5us) "
        f"{'PASS' if report.meets_slo(1.5) else 'FAIL'}"
    )


def main() -> None:
    platform = epyc_9634()
    server = KvServerModel(platform, workers=4, seed=3)
    workload = KvWorkload(qps=1_000_000, requests=600)
    print(f"KV server on {platform.name}: 4 workers on ccd0, 1M QPS GETs\n")

    print("-- request anatomy --")
    base = server.serve(workload)
    report_line("baseline (DRAM values)", base)
    deep = server.serve(KvWorkload(qps=1_000_000, requests=600, index_depth=4))
    report_line("deep index (4 hops)", deep)
    cxl = server.serve(
        KvWorkload(qps=1_000_000, requests=600, value_tier="cxl")
    )
    report_line("values tiered to CXL", cxl)
    big = server.serve(
        KvWorkload(qps=1_000_000, requests=600, value_bytes=4096)
    )
    report_line("4 KiB values", big)

    print("\n-- colocation --")
    background = [core.core_id for core in platform.cores_of_ccd(0)[4:]]
    noisy = server.serve(workload, background_cores=background)
    report_line("with unthrottled scan", noisy)
    paced = server.serve(
        workload, background_cores=background, background_rate_gbps=8.0
    )
    report_line("scan paced to 8 GB/s", paced)

    print(
        "\nevery extra dependent hop is a full fabric round trip; CXL "
        "tiering adds\n~100 ns per value; and a same-chiplet scan moves the "
        "tail until a traffic-\nmanager grant pins it back."
    )


if __name__ == "__main__":
    main()
