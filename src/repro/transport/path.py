"""Route resolution: from (core, target) to a compiled DES path.

A compiled path separates the two things that determine a transaction's
latency:

* ``fixed_ns`` — the load-independent propagation/pipeline latency (cache
  lookup, IF crossing, mesh hops, controller logic, DRAM/CXL media), summed
  exactly as :class:`~repro.platform.topology.LatencyParams` decomposes it;
* ``stages`` — the ordered *queued* resources (token pools, link serializers,
  the UMC/CXL device) where load-dependent delay arises.

So an unloaded transaction experiences ``fixed_ns`` plus each stage's service
time, which the compiler deducts from ``fixed_ns`` so that the unloaded DES
latency equals the platform's analytic latency; every extra nanosecond under
load is genuine emergent queueing.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional

from repro.errors import TopologyError
from repro.memory.cxl import CxlDeviceModel
from repro.memory.dram import DramTimingModel
from repro.memory.umc import UmcServer
from repro.noc.arbiter import LinkArbiter
from repro.noc.flowcontrol import TokenPool, ccd_token_pool, ccx_token_pool
from repro.platform.topology import Platform
from repro.sim.engine import Environment, Event
from repro.sim.rng import SplitRng
from repro.transport.message import OpKind
from repro.units import CACHELINE

__all__ = ["QueuedStage", "CompiledPath", "PathResolver"]


@dataclass(frozen=True)
class QueuedStage:
    """One queued resource on a path (an arbiter, UMC, or device)."""

    name: str
    server: object  # LinkArbiter | UmcServer | CxlDeviceModel

    def serve(
        self, size_bytes: int, is_write: bool
    ) -> Generator[Event, None, None]:
        """DES fragment: pass one transaction through this stage."""
        if isinstance(self.server, LinkArbiter):
            yield from self.server.transfer(size_bytes, is_write)
        elif isinstance(self.server, (UmcServer, CxlDeviceModel)):
            yield from self.server.access(size_bytes, is_write)
        else:
            raise TopologyError(f"stage {self.name}: unsupported server type")

    def unloaded_service_ns(self, size_bytes: int, is_write: bool) -> float:
        """Service time with empty queues (used for fixed-latency deduction)."""
        if isinstance(self.server, LinkArbiter):
            direction = self.server.write_dir if is_write else self.server.read_dir
            return direction.service_ns(size_bytes)
        if isinstance(self.server, UmcServer):
            direction = (
                self.server.arbiter.write_dir if is_write
                else self.server.arbiter.read_dir
            )
            return direction.service_ns(size_bytes)
        if isinstance(self.server, CxlDeviceModel):
            from repro.memory.cxl import wire_bytes

            direction = (
                self.server.arbiter.write_dir if is_write
                else self.server.arbiter.read_dir
            )
            return direction.service_ns(wire_bytes(size_bytes, self.server.flit_bytes))
        raise TopologyError(f"stage {self.name}: unsupported server type")


@dataclass
class CompiledPath:
    """The DES execution plan for one (source, target, op) combination."""

    name: str
    fixed_ns: float
    stages: List[QueuedStage]
    tokens: List[TokenPool]
    #: Analytic unloaded end-to-end latency (for validation/telemetry).
    unloaded_ns: float


class PathResolver:
    """Builds and caches the DES elements of a platform, and compiles paths.

    One resolver owns one platform's worth of simulated hardware: per-CCX
    token pools, per-CCD IF/GMI arbiters, the NoC aggregate arbiter, per-UMC
    servers, and the P-Link/CXL chain. Paths compiled for different cores
    share these elements, which is what makes contention emerge.

    Compiled paths are memoized: a sweep that re-resolves the same
    (core, target, op, size) combination gets the cached
    :class:`CompiledPath` back instead of recompiling it. This is safe
    because a compiled path is immutable in practice — executors only read
    its fields — and its stages/tokens are the resolver's shared elements
    either way.
    """

    def __init__(
        self,
        env: Environment,
        platform: Platform,
        seed: int = 0,
        with_dram_jitter: bool = True,
    ) -> None:
        self.env = env
        self.platform = platform
        self._rng = SplitRng(seed)
        self._timing = (
            DramTimingModel.for_platform(platform.name) if with_dram_jitter else None
        )
        self._ccx_pools: Dict[int, TokenPool] = {}
        self._ccd_pools: Dict[int, Optional[TokenPool]] = {}
        self._if_arbiters: Dict[int, LinkArbiter] = {}
        self._gmi_arbiters: Dict[int, LinkArbiter] = {}
        self._hub_arbiters: Dict[int, LinkArbiter] = {}
        self._umc_servers: Dict[int, UmcServer] = {}
        self._plink_arbiters: Dict[int, LinkArbiter] = {}
        self._cxl_devices: Dict[int, CxlDeviceModel] = {}
        self._pcie_arbiters: Dict[int, LinkArbiter] = {}
        self._noc_arbiter: Optional[LinkArbiter] = None
        self._xgmi_arbiter: Optional[LinkArbiter] = None
        #: Memoized compiled paths, keyed by the full compile signature.
        self._path_cache: Dict[tuple, CompiledPath] = {}

    # ------------------------------------------------------------ DES elements

    def ccx_pool(self, ccx_id: int) -> TokenPool:
        """The (cached) per-CCX traffic-control token pool."""
        if ccx_id not in self._ccx_pools:
            self._ccx_pools[ccx_id] = ccx_token_pool(self.env, self.platform, ccx_id)
        return self._ccx_pools[ccx_id]

    def ccd_pool(self, ccd_id: int) -> Optional[TokenPool]:
        """The (cached) per-CCD token pool, or None when absent."""
        if ccd_id not in self._ccd_pools:
            self._ccd_pools[ccd_id] = ccd_token_pool(self.env, self.platform, ccd_id)
        return self._ccd_pools[ccd_id]

    def if_arbiter(self, ccd_id: int) -> LinkArbiter:
        """The (cached) CCD-to-I/O-die IF link arbiter."""
        if ccd_id not in self._if_arbiters:
            spec = self.platform.link(f"if/ccd{ccd_id}")
            self._if_arbiters[ccd_id] = LinkArbiter(self.env, spec)
        return self._if_arbiters[ccd_id]

    def gmi_arbiter(self, ccd_id: int) -> LinkArbiter:
        """The (cached) per-CCD GMI port arbiter."""
        if ccd_id not in self._gmi_arbiters:
            spec = self.platform.link(f"gmi/ccd{ccd_id}")
            self._gmi_arbiters[ccd_id] = LinkArbiter(self.env, spec)
        return self._gmi_arbiters[ccd_id]

    def hub_arbiter(self, ccd_id: int) -> LinkArbiter:
        """The (cached) per-CCD mesh-to-hub port arbiter."""
        if ccd_id not in self._hub_arbiters:
            spec = self.platform.link(f"hubport/ccd{ccd_id}")
            self._hub_arbiters[ccd_id] = LinkArbiter(self.env, spec)
        return self._hub_arbiters[ccd_id]

    def noc_arbiter(self) -> LinkArbiter:
        """The (cached) aggregate NoC routing arbiter."""
        if self._noc_arbiter is None:
            spec = self.platform.link("noc")
            # The NoC provisions multiple routing paths; model it as a
            # multi-lane arbiter (one lane per CCD port keeps per-lane rates
            # sensible while preserving the aggregate ceiling).
            self._noc_arbiter = LinkArbiter(
                self.env, spec, lanes=self.platform.spec.ccd_count
            )
        return self._noc_arbiter

    def umc_server(self, umc_id: int) -> UmcServer:
        """The (cached) memory-channel server for one UMC."""
        if umc_id not in self._umc_servers:
            bw = self.platform.spec.bandwidth
            self._umc_servers[umc_id] = UmcServer(
                self.env,
                f"umc{umc_id}",
                read_gbps=bw.umc_read_gbps,
                write_gbps=bw.umc_write_gbps,
                timing=self._timing,
                rng=self._rng.stream(f"umc{umc_id}"),
            )
        return self._umc_servers[umc_id]

    def plink_arbiter(self, rc_id: int) -> LinkArbiter:
        """The (cached) P Link arbiter for one root complex."""
        if rc_id not in self._plink_arbiters:
            spec = self.platform.link(f"plink/rc{rc_id}")
            self._plink_arbiters[rc_id] = LinkArbiter(self.env, spec)
        return self._plink_arbiters[rc_id]

    def cxl_device(self, dev_id: int) -> CxlDeviceModel:
        """The (cached) CXL device model."""
        if dev_id not in self._cxl_devices:
            bw = self.platform.spec.bandwidth
            if bw.cxl_dev_read_gbps is None or bw.cxl_dev_write_gbps is None:
                raise TopologyError(
                    f"{self.platform.name} has no CXL bandwidth calibration"
                )
            device = self.platform.cxl_devices[dev_id]
            self._cxl_devices[dev_id] = CxlDeviceModel(
                self.env,
                f"cxldev{dev_id}",
                read_gbps=bw.cxl_dev_read_gbps,
                write_gbps=bw.cxl_dev_write_gbps,
                flit_bytes=device.flit_bytes,
                timing=self._timing,
                rng=self._rng.stream(f"cxl{dev_id}"),
            )
        return self._cxl_devices[dev_id]

    # ------------------------------------------------------------- compilation

    def _finalize(
        self,
        name: str,
        unloaded_ns: float,
        stages: List[QueuedStage],
        tokens: List[TokenPool],
        op: OpKind,
        size_bytes: int,
    ) -> CompiledPath:
        # The platform's calibrated unloaded latencies are cacheline
        # latencies, so the deduction uses cacheline-scale service. Larger
        # transactions (bulk DMA chunks) then pay their genuine extra
        # serialization on top — cut-through at the head, body behind it.
        reference = min(size_bytes, CACHELINE)
        service = sum(
            stage.unloaded_service_ns(reference, op.is_write) for stage in stages
        )
        fixed = unloaded_ns - service
        if fixed < 0:
            raise TopologyError(
                f"path {name}: queued service ({service:.1f} ns) exceeds the "
                f"unloaded latency ({unloaded_ns:.1f} ns)"
            )
        return CompiledPath(name, fixed, stages, tokens, unloaded_ns)

    def xgmi_arbiter(self) -> LinkArbiter:
        """The (cached) inter-socket xGMI arbiter."""
        if self._xgmi_arbiter is None:
            spec = self.platform.link("xgmi")
            self._xgmi_arbiter = LinkArbiter(self.env, spec, lanes=4)
        return self._xgmi_arbiter

    def dram_path(
        self,
        core_id: int,
        umc_id: int,
        op: OpKind = OpKind.READ,
        size_bytes: int = CACHELINE,
        use_token_pools: bool = True,
        remote: bool = False,
    ) -> CompiledPath:
        """Compile the core→DIMM path through IF, the mesh, and the UMC.

        ``remote=True`` targets the other socket's memory: the request
        additionally crosses the xGMI link (2-socket platforms only).
        """
        key = ("dram", core_id, umc_id, op, size_bytes, use_token_pools, remote)
        cached = self._path_cache.get(key)
        if cached is not None:
            return cached
        core = self.platform.core(core_id)
        if remote:
            unloaded = self.platform.remote_dram_latency_ns(
                core.ccd_id, umc_id
            )
        else:
            unloaded = self.platform.dram_latency_ns(core.ccd_id, umc_id)
        stages = [
            QueuedStage(f"if/ccd{core.ccd_id}", self.if_arbiter(core.ccd_id)),
            QueuedStage(f"gmi/ccd{core.ccd_id}", self.gmi_arbiter(core.ccd_id)),
            QueuedStage("noc", self.noc_arbiter()),
            QueuedStage(f"umc{umc_id}", self.umc_server(umc_id)),
        ]
        if remote:
            stages.insert(2, QueuedStage("xgmi", self.xgmi_arbiter()))
        tokens: List[TokenPool] = []
        if use_token_pools:
            tokens.append(self.ccx_pool(core.ccx_id))
            ccd = self.ccd_pool(core.ccd_id)
            if ccd is not None:
                tokens.append(ccd)
        path = self._finalize(
            f"core{core_id}->dimm{umc_id}", unloaded, stages, tokens, op, size_bytes
        )
        self._path_cache[key] = path
        return path

    def pcie_arbiter(self, dev_id: int) -> LinkArbiter:
        """The (cached) PCIe endpoint arbiter."""
        if dev_id not in self._pcie_arbiters:
            spec = self.platform.link(f"pciedev{dev_id}")
            self._pcie_arbiters[dev_id] = LinkArbiter(self.env, spec)
        return self._pcie_arbiters[dev_id]

    def mmio_read_path(
        self,
        core_id: int,
        dev_id: int = 0,
        size_bytes: int = CACHELINE,
        use_token_pools: bool = True,
    ) -> CompiledPath:
        """Compile a non-posted MMIO read to a PCIe endpoint."""
        key = ("mmio", core_id, dev_id, size_bytes, use_token_pools)
        cached = self._path_cache.get(key)
        if cached is not None:
            return cached
        core = self.platform.core(core_id)
        unloaded = self.platform.mmio_read_latency_ns(core.ccd_id, dev_id)
        dev = self.platform.pcie_devices[dev_id]
        stages = [
            QueuedStage(f"if/ccd{core.ccd_id}", self.if_arbiter(core.ccd_id)),
            QueuedStage("noc", self.noc_arbiter()),
            QueuedStage(f"hubport/ccd{core.ccd_id}", self.hub_arbiter(core.ccd_id)),
            QueuedStage(f"plink/rc{dev.rc_id}", self.plink_arbiter(dev.rc_id)),
            QueuedStage(f"pciedev{dev_id}", self.pcie_arbiter(dev_id)),
        ]
        tokens: List[TokenPool] = []
        if use_token_pools:
            tokens.append(self.ccx_pool(core.ccx_id))
        path = self._finalize(
            f"core{core_id}->mmio{dev_id}", unloaded, stages, tokens,
            OpKind.READ, size_bytes,
        )
        self._path_cache[key] = path
        return path

    def doorbell_path(
        self,
        core_id: int,
        dev_id: int = 0,
        size_bytes: int = 8,
    ) -> CompiledPath:
        """Compile a posted doorbell write (retires at the root complex)."""
        key = ("doorbell", core_id, dev_id, size_bytes)
        cached = self._path_cache.get(key)
        if cached is not None:
            return cached
        core = self.platform.core(core_id)
        unloaded = self.platform.doorbell_latency_ns(core.ccd_id, dev_id)
        stages = [
            QueuedStage(f"if/ccd{core.ccd_id}", self.if_arbiter(core.ccd_id)),
            QueuedStage("noc", self.noc_arbiter()),
            QueuedStage(f"hubport/ccd{core.ccd_id}", self.hub_arbiter(core.ccd_id)),
        ]
        path = self._finalize(
            f"core{core_id}->doorbell{dev_id}", unloaded, stages, [],
            OpKind.NT_WRITE, size_bytes,
        )
        self._path_cache[key] = path
        return path

    def dma_path(
        self,
        dev_id: int,
        umc_id: int,
        op: OpKind = OpKind.READ,
        size_bytes: int = CACHELINE,
    ) -> CompiledPath:
        """Compile a device-initiated DMA access to DRAM."""
        key = ("dma", dev_id, umc_id, op, size_bytes)
        cached = self._path_cache.get(key)
        if cached is not None:
            return cached
        dev = self.platform.pcie_devices[dev_id]
        hub = self.platform.io_hubs[0]
        umc = self.platform.umcs[umc_id]
        dx, dy = self.platform.mesh_offset(hub.coord, umc.coord)
        unloaded = self.platform.spec.latency.dma_dram_ns(dx, dy)
        stages = [
            QueuedStage(f"pciedev{dev_id}", self.pcie_arbiter(dev_id)),
            QueuedStage(f"plink/rc{dev.rc_id}", self.plink_arbiter(dev.rc_id)),
            QueuedStage("noc", self.noc_arbiter()),
            QueuedStage(f"umc{umc_id}", self.umc_server(umc_id)),
        ]
        path = self._finalize(
            f"pcie{dev_id}->dimm{umc_id}", unloaded, stages, [], op, size_bytes
        )
        self._path_cache[key] = path
        return path

    def cxl_path(
        self,
        core_id: int,
        dev_id: int = 0,
        op: OpKind = OpKind.READ,
        size_bytes: int = CACHELINE,
        use_token_pools: bool = True,
    ) -> CompiledPath:
        """Compile the core→CXL path through IF, mesh, hub, P Link, device."""
        key = ("cxl", core_id, dev_id, op, size_bytes, use_token_pools)
        cached = self._path_cache.get(key)
        if cached is not None:
            return cached
        core = self.platform.core(core_id)
        unloaded = self.platform.cxl_latency_ns(core.ccd_id, dev_id)
        dev = self.platform.cxl_devices[dev_id]
        stages = [
            QueuedStage(f"if/ccd{core.ccd_id}", self.if_arbiter(core.ccd_id)),
            QueuedStage("noc", self.noc_arbiter()),
            QueuedStage(f"hubport/ccd{core.ccd_id}", self.hub_arbiter(core.ccd_id)),
            QueuedStage(f"plink/rc{dev.rc_id}", self.plink_arbiter(dev.rc_id)),
            QueuedStage(f"cxldev{dev_id}", self.cxl_device(dev_id)),
        ]
        tokens: List[TokenPool] = []
        if use_token_pools:
            tokens.append(self.ccx_pool(core.ccx_id))
            ccd = self.ccd_pool(core.ccd_id)
            if ccd is not None:
                tokens.append(ccd)
        path = self._finalize(
            f"core{core_id}->cxl{dev_id}", unloaded, stages, tokens, op, size_bytes
        )
        self._path_cache[key] = path
        return path
