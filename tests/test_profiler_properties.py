"""Property tests for the count-min sketch and flow profiler.

Only *guaranteed* invariants are asserted — never "collisions are
unlikely" statements, which hypothesis would disprove by searching for
colliding keys: a count-min estimate never under-counts, never exceeds
the total, and the advertised ``ε·N`` bound follows from the actual
width; the profiler's top-k report never under-reports a flow's bytes
and never loses a flow while the candidate set fits its budget.
"""

import math

import pytest

hypothesis = pytest.importorskip("hypothesis")

from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.telemetry.profiler import FlowProfiler, FlowSample  # noqa: E402
from repro.telemetry.sketch import CountMinSketch  # noqa: E402

#: (flow-name, byte-count) event streams. Few distinct names with repeats
#: exercises accumulation; many names exercises collisions and eviction.
_EVENTS = st.lists(
    st.tuples(
        st.text(
            alphabet=st.characters(min_codepoint=33, max_codepoint=126),
            min_size=1,
            max_size=8,
        ),
        st.integers(min_value=0, max_value=1 << 20),
    ),
    min_size=1,
    max_size=200,
)


def _truth(events):
    true = {}
    for key, count in events:
        true[key] = true.get(key, 0) + count
    return true


class TestSketchProperties:
    @given(events=_EVENTS, width=st.integers(8, 256), depth=st.integers(1, 6))
    @settings(max_examples=60, deadline=None)
    def test_never_underestimates_never_exceeds_total(
        self, events, width, depth
    ):
        sketch = CountMinSketch(width=width, depth=depth)
        for key, count in events:
            sketch.add(key, count)
        true = _truth(events)
        total = sum(count for __, count in events)
        assert sketch.total == total
        for key, exact in true.items():
            estimate = sketch.estimate(key)
            assert estimate >= exact
            assert estimate <= total

    @given(events=_EVENTS)
    @settings(max_examples=40, deadline=None)
    def test_estimates_are_monotone_in_the_stream(self, events):
        sketch = CountMinSketch(width=64, depth=4)
        watched = events[0][0]
        previous = 0
        for key, count in events:
            sketch.add(key, count)
            current = sketch.estimate(watched)
            assert current >= previous
            previous = current

    @given(
        epsilon=st.floats(0.001, 0.9, allow_nan=False),
        delta=st.floats(0.001, 0.9, allow_nan=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_from_error_bounds_honours_the_request(self, epsilon, delta):
        sketch = CountMinSketch.from_error_bounds(epsilon, delta)
        # The constructor rounds dimensions *up*, so the advertised
        # parameters are at least as tight as requested.
        assert sketch.epsilon <= epsilon + 1e-12
        assert sketch.delta <= delta + 1e-12
        assert sketch.width >= math.e / epsilon - 1
        assert sketch.depth >= math.log(1.0 / delta) - 1

    @given(events=_EVENTS)
    @settings(max_examples=40, deadline=None)
    def test_error_bound_tracks_the_actual_width(self, events):
        sketch = CountMinSketch(width=32, depth=4)
        for key, count in events:
            sketch.add(key, count)
        assert sketch.error_bound() == pytest.approx(
            sketch.epsilon * sketch.total
        )
        assert sketch.epsilon == pytest.approx(math.e / 32)


class TestProfilerProperties:
    @given(events=_EVENTS, top_k=st.integers(1, 8))
    @settings(max_examples=60, deadline=None)
    def test_top_k_never_under_reports(self, events, top_k):
        profiler = FlowProfiler(top_k=top_k, sketch_width=64, sketch_depth=4)
        for t, (key, count) in enumerate(events):
            profiler.record(FlowSample(key, count, float(t)))
        true = _truth(events)
        for flow, reported in profiler.top_flows():
            assert reported >= true[flow]
            # The report must be the sketch's *current* answer, not a
            # stale snapshot from the flow's last record() call.
            assert reported == profiler.sketch.estimate(flow)

    @given(events=_EVENTS)
    @settings(max_examples=60, deadline=None)
    def test_all_flows_reported_when_they_fit(self, events):
        true = _truth(events)
        distinct = len(true)
        profiler = FlowProfiler(top_k=max(1, distinct))
        for t, (key, count) in enumerate(events):
            profiler.record(FlowSample(key, count, float(t)))
        reported = {flow for flow, __ in profiler.top_flows()}
        assert reported == set(true)

    @given(events=_EVENTS, top_k=st.integers(1, 4))
    @settings(max_examples=40, deadline=None)
    def test_ranking_is_descending_and_deterministic(self, events, top_k):
        profiler = FlowProfiler(top_k=top_k, sketch_width=64)
        for t, (key, count) in enumerate(events):
            profiler.record(FlowSample(key, count, float(t)))
        top = profiler.top_flows()
        estimates = [estimate for __, estimate in top]
        assert estimates == sorted(estimates, reverse=True)
        assert top == profiler.top_flows()
        for (flow_a, est_a), (flow_b, est_b) in zip(top, top[1:]):
            if est_a == est_b:
                assert flow_a < flow_b  # ties break by name

    def test_stale_estimate_regression(self):
        """top_flows must re-query the sketch (the pre-fix failure mode).

        With a width-1 sketch every key shares one counter, so any later
        traffic raises every flow's current estimate; a stale snapshot
        from record() time would under-report the first flow.
        """
        profiler = FlowProfiler(top_k=2, sketch_width=1, sketch_depth=1)
        profiler.record(FlowSample("early", 10, 0.0))
        profiler.record(FlowSample("later", 90, 1.0))
        top = dict(profiler.top_flows())
        assert top["early"] == profiler.sketch.estimate("early") == 100
        assert top["later"] == 100
