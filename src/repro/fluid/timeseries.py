"""Time-stepped fluid simulation for bandwidth-over-time experiments.

Each step the simulator (1) evaluates every flow's offered demand from its
:class:`DemandSchedule`, (2) solves the steady-state allocation with the
configured policy, and (3) advances every flow's *achieved* rate toward its
allocation through the flow's adaptation model. The output is one
:class:`FlowTrace` per flow — directly comparable to Figure 5's bandwidth
utilization timelines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.timeseries import TimeSeries
from repro.errors import ConfigurationError, SimulationError
from repro.fluid.adaptation import AdaptationModel, InstantAdaptation
from repro.fluid.solver import Channel, FluidFlow, Policy, solve

#: Tolerance for the strict-mode allocation invariants (GB/s).
_INVARIANT_EPS = 1e-6

__all__ = ["DemandSchedule", "FlowTrace", "FluidSimulator"]


@dataclass(frozen=True)
class DemandSchedule:
    """A base demand plus timed deltas (e.g. "throttle by 2 GB/s in [2s,3s)")."""

    base_gbps: float
    #: (start_s, end_s, delta_gbps) — delta is *added* during the interval.
    deltas: Tuple[Tuple[float, float, float], ...] = ()

    def __post_init__(self) -> None:
        if self.base_gbps < 0:
            raise ConfigurationError("base demand must be non-negative")
        for start, end, __ in self.deltas:
            if end <= start:
                raise ConfigurationError(f"empty delta interval [{start}, {end})")

    def at(self, t_s: float) -> float:
        """Offered demand (GB/s) at time t (seconds)."""
        demand = self.base_gbps
        for start, end, delta in self.deltas:
            if start <= t_s < end:
                demand += delta
        return max(0.0, demand)


@dataclass
class FlowTrace:
    """One flow's sampled achieved bandwidth (plus demand, for reference)."""

    name: str
    times_s: List[float] = field(default_factory=list)
    achieved_gbps: List[float] = field(default_factory=list)
    demand_gbps: List[float] = field(default_factory=list)

    def achieved_series(self) -> TimeSeries:
        """The achieved-bandwidth samples as a TimeSeries."""
        return TimeSeries(np.asarray(self.times_s), np.asarray(self.achieved_gbps))

    def demand_series(self) -> TimeSeries:
        """The offered-demand samples as a TimeSeries."""
        return TimeSeries(np.asarray(self.times_s), np.asarray(self.demand_gbps))


class FluidSimulator:
    """Drives scheduled flows through the allocation solver over time.

    ``capacity_schedules`` makes channel capacities time-varying: a mapping
    from channel name to a schedule of capacity *multipliers* (base 1.0,
    deltas negative for throttling). Any object with an ``at(t_s) -> float``
    method qualifies — a :class:`DemandSchedule`, or the multiplicative
    per-channel factor curves a :class:`~repro.faults.schedule.FaultSchedule`
    compiles to (``schedule.capacity_factors()``). This models link-level
    events — a thermally throttled P Link, a flapping xGMI lane — and the
    flows' adaptation to them.

    ``strict=True`` checks the solver's allocation invariants every step —
    no flow above its demand, no channel above its (scheduled) capacity —
    raising :class:`~repro.errors.SimulationError` with the offending flow
    or channel and timestamp instead of silently producing plausible-but-
    wrong curves.
    """

    def __init__(
        self,
        flows: Sequence[FluidFlow],
        schedules: Dict[str, DemandSchedule],
        adaptations: Optional[Dict[str, AdaptationModel]] = None,
        policy: Policy = Policy.DEMAND_PROPORTIONAL,
        dt_s: float = 0.005,
        capacity_schedules: Optional[Dict[str, DemandSchedule]] = None,
        strict: bool = False,
    ) -> None:
        if dt_s <= 0:
            raise ConfigurationError(f"dt must be positive, got {dt_s}")
        names = {flow.name for flow in flows}
        missing = names - set(schedules)
        if missing:
            raise ConfigurationError(f"flows without a demand schedule: {missing}")
        channel_names = {
            channel.name for flow in flows for channel, __ in flow.path
        }
        unknown = set(capacity_schedules or {}) - channel_names
        if unknown:
            raise ConfigurationError(
                f"capacity schedules for unknown channels: {unknown}"
            )
        self.flows = list(flows)
        self.schedules = schedules
        self.capacity_schedules = dict(capacity_schedules or {})
        self.adaptations: Dict[str, AdaptationModel] = {
            name: (adaptations or {}).get(name, InstantAdaptation())
            for name in names
        }
        self.policy = policy
        self.dt_s = dt_s
        self.strict = bool(strict)

    def _check_invariants(
        self, flows: List[FluidFlow], allocation: Dict[str, float], t_s: float
    ) -> None:
        """Strict mode: the solver's contract, verified on every step."""
        loads: Dict[str, float] = {}
        capacities: Dict[str, float] = {}
        for flow in flows:
            granted = allocation[flow.name]
            if granted < -_INVARIANT_EPS:
                raise SimulationError(
                    f"t={t_s:.4f}s: flow {flow.name!r} got a negative "
                    f"allocation ({granted} GB/s)"
                )
            if granted > flow.demand_gbps + _INVARIANT_EPS:
                raise SimulationError(
                    f"t={t_s:.4f}s: flow {flow.name!r} was allocated "
                    f"{granted} GB/s above its demand {flow.demand_gbps}"
                )
            for channel, weight in flow.path:
                loads[channel.name] = (
                    loads.get(channel.name, 0.0) + granted * weight
                )
                capacities[channel.name] = channel.capacity_gbps
        for name, load in loads.items():
            if load > capacities[name] * (1.0 + 1e-9) + _INVARIANT_EPS:
                raise SimulationError(
                    f"t={t_s:.4f}s: channel {name!r} oversubscribed — "
                    f"load {load} GB/s exceeds capacity {capacities[name]}"
                )

    def _flows_at(self, t_s: float) -> List[FluidFlow]:
        """The flow set with channel capacities scaled for time ``t``."""
        if not self.capacity_schedules:
            return self.flows
        scaled: Dict[str, Channel] = {}
        for flow in self.flows:
            for channel, __ in flow.path:
                if channel.name in scaled:
                    continue
                schedule = self.capacity_schedules.get(channel.name)
                factor = schedule.at(t_s) if schedule is not None else 1.0
                if factor <= 0:
                    raise ConfigurationError(
                        f"channel {channel.name}: capacity factor must stay "
                        f"positive (got {factor} at t={t_s})"
                    )
                scaled[channel.name] = Channel(
                    channel.name, channel.capacity_gbps * factor
                )
        return [
            FluidFlow(
                flow.name,
                flow.demand_gbps,
                [(scaled[c.name], w) for c, w in flow.path],
                elastic=flow.elastic,
                weight=flow.weight,
            )
            for flow in self.flows
        ]

    def run(self, duration_s: float) -> Dict[str, FlowTrace]:
        """Simulate ``duration_s`` seconds; returns a trace per flow."""
        if duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        traces = {flow.name: FlowTrace(flow.name) for flow in self.flows}
        # Start every flow at its t=0 allocation (steady state before the run).
        for flow in self.flows:
            flow.demand_gbps = self.schedules[flow.name].at(0.0)
        initial = solve(self._flows_at(0.0), self.policy)
        for flow in self.flows:
            self.adaptations[flow.name].reset(initial[flow.name])

        steps = int(round(duration_s / self.dt_s))
        for step in range(steps):
            t = step * self.dt_s
            for flow in self.flows:
                flow.demand_gbps = self.schedules[flow.name].at(t)
            stepped = self._flows_at(t)
            allocation = solve(stepped, self.policy)
            if self.strict:
                self._check_invariants(stepped, allocation, t)
            for flow in self.flows:
                achieved = self.adaptations[flow.name].step(
                    allocation[flow.name], self.dt_s
                )
                # A sender can undershoot its allocation while ramping, but it
                # can never exceed what the channels actually grant it... with
                # one exception: an under-damped sender (the 7302 IF) briefly
                # overshoots into the other flow's share — that *is* the
                # "drastic variation" of Figure 5, so only clamp to demand.
                achieved = min(achieved, flow.demand_gbps)
                trace = traces[flow.name]
                trace.times_s.append(t)
                trace.achieved_gbps.append(achieved)
                trace.demand_gbps.append(flow.demand_gbps)
        return traces
