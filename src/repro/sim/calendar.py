"""Numpy-backed event calendars: bulk scheduling of precomputed timestamps.

A sharded run (:mod:`repro.sim.sharded`) knows large batches of future
wakeups ahead of time — the chunk boundaries of a batched flow, telemetry
ticks, window deadlines. Pushing each one through the engine's heap costs a
``Timeout`` allocation plus an ``O(log n)`` heap push per event. An
:class:`EventCalendar` instead sorts the whole batch once with numpy,
buckets identical timestamps, and walks the buckets with a *single* live
heap entry: when one bucket fires, the walker fires the user callback for
every entry in the bucket and arms one timeout for the next distinct
timestamp. ``n`` scheduled wakeups therefore cost ``O(n log n)`` vectorized
sort work up front and only ``O(buckets)`` engine events — sorted ndarray
buckets instead of per-event heap pushes.

The calendar respects the engine's ordering contract: each bucket is one
ordinary :class:`~repro.sim.engine.Timeout`, sequenced like any other event,
and entries inside a bucket fire in their original (stable-sorted) input
order within that single callback.
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.errors import SimulationError
from repro.sim.engine import Environment, Event, Timeout

__all__ = ["EventCalendar"]


class _CalendarWalk:
    """The chained walker: one armed timeout per *distinct* timestamp."""

    __slots__ = ("env", "times", "order", "bounds", "on_fire", "done", "cursor")

    def __init__(
        self,
        env: Environment,
        times: np.ndarray,
        order: np.ndarray,
        bounds: np.ndarray,
        on_fire: Callable[[float, np.ndarray], None],
        done: Event,
    ) -> None:
        self.env = env
        self.times = times       # sorted ascending
        self.order = order       # original index of each sorted entry
        self.bounds = bounds     # bucket boundaries into times/order
        self.on_fire = on_fire
        self.done = done
        self.cursor = 0

    def arm(self) -> None:
        when = self.times[self.bounds[self.cursor]]
        timer = Timeout(self.env, float(when) - self.env.now)
        timer.callbacks.append(self._fire)

    def _fire(self, _event: Event) -> None:
        bounds = self.bounds
        lo = bounds[self.cursor]
        hi = bounds[self.cursor + 1]
        self.cursor += 1
        self.on_fire(self.env.now, self.order[lo:hi])
        if self.cursor < len(bounds) - 1:
            self.arm()
        else:
            self.done.succeed(int(self.times.size))


class EventCalendar:
    """Bulk-schedule an ndarray of future timestamps on one environment."""

    __slots__ = ("env",)

    def __init__(self, env: Environment) -> None:
        self.env = env

    def schedule(
        self,
        times_ns,
        on_fire: Callable[[float, np.ndarray], None],
    ) -> Event:
        """Schedule every timestamp in ``times_ns``; returns a completion event.

        ``on_fire(now_ns, indices)`` runs once per distinct timestamp with
        the ndarray of *original* indices that share it (stable input
        order). The returned event succeeds with the total entry count
        after the last bucket fires; an empty batch succeeds immediately.
        Timestamps in the simulated past raise
        :class:`~repro.errors.SimulationError`.
        """
        times = np.asarray(times_ns, dtype=float)
        if times.ndim != 1:
            raise SimulationError(
                f"calendar expects a 1-D array of timestamps, got shape "
                f"{times.shape}"
            )
        done = Event(self.env)
        if times.size == 0:
            return done.succeed(0)
        if float(times.min()) < self.env.now:
            raise SimulationError(
                f"calendar timestamp {float(times.min())} is in the past "
                f"(clock at t={self.env.now})"
            )
        order = np.argsort(times, kind="stable")
        sorted_times = times[order]
        # Bucket boundaries: every position where the timestamp changes.
        changes = np.flatnonzero(np.diff(sorted_times) > 0) + 1
        bounds = np.concatenate(([0], changes, [sorted_times.size]))
        _CalendarWalk(self.env, sorted_times, order, bounds, on_fire, done).arm()
        return done
