"""repro — Server Chiplet Networking (HotNets '25) reproduction.

A chiplet-server interconnect simulator plus the paper's characterization
suite. Quickstart::

    from repro import MicroBench, epyc_9634, OpKind, Scope

    bench = MicroBench(epyc_9634())
    level, stats = bench.pointer_chase(working_set_bytes=64 * 2**20)
    print(level, stats)                        # DRAM, ~141 ns
    print(bench.stream_bandwidth(Scope.CPU, OpKind.READ))   # ~366 GB/s

Layers (bottom-up): :mod:`repro.sim` (DES kernel), :mod:`repro.platform`
(the SoC model and the EPYC 7302/9634 presets), :mod:`repro.noc` /
:mod:`repro.memory` / :mod:`repro.transport` (substrates),
:mod:`repro.fluid` (flow-level contention), :mod:`repro.core` (the
microbenchmark utility), :mod:`repro.manager` and :mod:`repro.telemetry`
(the paper's §4 proposals), :mod:`repro.experiments` (one module per
table/figure), and :mod:`repro.runner` (deterministic fan-out of
independent experiment cells over worker processes).
"""

from repro.core.flows import Scope, StreamSpec
from repro.core.microbench import MicroBench
from repro.errors import (
    CellExecutionError,
    ChipletError,
    ConfigurationError,
    ConvergenceError,
    FaultInjectionError,
    MeasurementError,
    SimulationError,
    TopologyError,
)
from repro.faults import FaultEvent, FaultKind, FaultSchedule
from repro.platform.numa import NpsMode, Position
from repro.platform.presets import epyc_7302, epyc_9634
from repro.platform.topology import Platform, PlatformSpec
from repro.runner import (
    Cell,
    CellFailure,
    CellResult,
    platform_map,
    resolve_jobs,
    run_cells,
    run_cells_detailed,
    starmap,
)
from repro.transport.message import OpKind

__version__ = "1.0.0"

__all__ = [
    "MicroBench",
    "Scope",
    "StreamSpec",
    "OpKind",
    "Platform",
    "PlatformSpec",
    "Position",
    "NpsMode",
    "epyc_7302",
    "epyc_9634",
    "Cell",
    "CellFailure",
    "CellResult",
    "resolve_jobs",
    "run_cells",
    "run_cells_detailed",
    "starmap",
    "platform_map",
    "FaultEvent",
    "FaultKind",
    "FaultSchedule",
    "CellExecutionError",
    "ChipletError",
    "ConfigurationError",
    "FaultInjectionError",
    "ConvergenceError",
    "MeasurementError",
    "SimulationError",
    "TopologyError",
    "__version__",
]
