"""Failure-injection tests: degraded links and their blast radius."""

import pytest

from repro.core.fabric import FabricModel
from repro.core.flows import Scope, StreamSpec
from repro.core.microbench import MicroBench
from repro.errors import ConfigurationError
from repro.faults import FaultEvent, FaultSchedule
from repro.transport.message import OpKind


def _cpu_read_gbps(fabric, platform):
    cores = StreamSpec.cores_for_scope(platform, Scope.CPU)
    spec = StreamSpec("scan", OpKind.READ, cores)
    return fabric.achieved_gbps([spec])["scan"]


class TestDerates:
    def test_validation(self, p7302):
        with pytest.raises(ConfigurationError):
            FabricModel(p7302, derates={"gmi0:r": 0.0})
        with pytest.raises(ConfigurationError):
            FabricModel(p7302, derates={"gmi0:r": 1.5})
        with pytest.raises(ConfigurationError):
            FabricModel(p7302, derates={"nonexistent:r": 0.5})

    def test_derated_channel_capacity(self, p7302):
        fabric = FabricModel(p7302, derates={"gmi0:r": 0.5})
        assert fabric.channel("gmi0:r").capacity_gbps == pytest.approx(
            32.5 * 0.5
        )
        assert fabric.channel("gmi1:r").capacity_gbps == pytest.approx(32.5)

    def test_gmi_failure_halves_one_chiplet(self, p7302):
        healthy = FabricModel(p7302)
        degraded = FabricModel(p7302, derates={"gmi0:r": 0.5})
        cores = tuple(c.core_id for c in p7302.cores_of_ccd(0))
        spec = StreamSpec("scan", OpKind.READ, cores)
        assert degraded.achieved_gbps([spec])["scan"] == pytest.approx(
            healthy.achieved_gbps([spec])["scan"] / 2, rel=0.05
        )

    def test_gmi_failure_does_not_hurt_other_chiplets(self, p7302):
        degraded = FabricModel(p7302, derates={"gmi0:r": 0.5})
        cores = tuple(c.core_id for c in p7302.cores_of_ccd(1))
        spec = StreamSpec("scan", OpKind.READ, cores)
        assert degraded.achieved_gbps([spec])["scan"] == pytest.approx(
            32.5, rel=0.02
        )

    def test_noc_degradation_caps_whole_cpu(self, p9634):
        healthy = _cpu_read_gbps(FabricModel(p9634), p9634)
        degraded = _cpu_read_gbps(
            FabricModel(p9634, derates={"noc:r": 0.75}), p9634
        )
        assert degraded == pytest.approx(healthy * 0.75, rel=0.02)

    def test_one_umc_failure_shifts_not_kills(self, p7302):
        # A half-speed memory channel under NPS1 interleave: the aggregate
        # is bound by that channel's share of the stripes.
        healthy = _cpu_read_gbps(FabricModel(p7302), p7302)
        degraded = _cpu_read_gbps(
            FabricModel(p7302, derates={"umc0:r": 0.5}), p7302
        )
        assert degraded < healthy
        assert degraded > healthy * 0.5

    def test_cxl_device_derate(self, p9634):
        healthy = FabricModel(p9634)
        degraded = FabricModel(p9634, derates={"cxldev0:r": 0.5})
        cores = StreamSpec.cores_for_scope(p9634, Scope.CPU)
        spec = StreamSpec("tier", OpKind.READ, cores, target="cxl")
        assert (
            degraded.achieved_gbps([spec])["tier"]
            < healthy.achieved_gbps([spec])["tier"]
        )

    def test_manager_adapts_to_degradation(self, p9634):
        # The traffic manager allocates against the *degraded* fabric, so
        # grants stay feasible after a failure.
        from repro.manager.manager import TrafficManager

        degraded = FabricModel(p9634, derates={"gmi0:r": 0.4})
        manager = TrafficManager(degraded)
        cores = tuple(c.core_id for c in p9634.cores_of_ccd(0))
        manager.register(StreamSpec("a", OpKind.READ, cores[:3]))
        manager.register(StreamSpec("b", OpKind.READ, cores[3:]))
        grants = manager.allocate().grants_gbps
        assert sum(grants.values()) <= 35.2 * 0.4 * 1.01


# --------------------------------------------------------------------------
# dynamic fault schedules on the DES backend


def _loaded(platform, schedule=None, cores=4, transactions=150):
    bench = MicroBench(platform, seed=0)
    core_ids = [c.core_id for c in platform.cores_of_ccd(0)][:cores]
    return bench.loaded_latency(
        core_ids, OpKind.READ, offered_gbps=None,
        transactions_per_core=transactions,
        fault_schedule=schedule, strict=True,
    )


class TestDynamicDes:
    def test_mid_run_derate_raises_latency(self, p7302):
        healthy = _loaded(p7302)
        faulted = _loaded(p7302, FaultSchedule([
            FaultEvent.derate("gmi0:r", start=100.0, end=2000.0, factor=0.25)
        ]))
        assert faulted.stats.mean > healthy.stats.mean
        assert faulted.achieved_gbps < healthy.achieved_gbps

    def test_stall_stretches_the_tail(self, p7302):
        healthy = _loaded(p7302)
        stalled = _loaded(p7302, FaultSchedule([
            FaultEvent.stall("gmi0:r", start=300.0, end=800.0)
        ]))
        assert stalled.stats.p999 > healthy.stats.p999
        assert stalled.elapsed_ns > healthy.elapsed_ns

    def test_severity_zero_is_bit_identical_to_healthy(self, p7302):
        schedule = FaultSchedule([
            FaultEvent.derate("gmi0:r", start=100.0, end=900.0, factor=0.3),
            FaultEvent.flapping(
                "noc:r", start=0.0, end=1500.0, period=200.0, factor=0.5
            ),
            FaultEvent.stall("umc0:r", start=400.0, end=600.0),
        ])
        healthy = _loaded(p7302)
        null = _loaded(p7302, schedule.scaled(0.0))
        assert null.stats.mean == healthy.stats.mean
        assert null.stats.p999 == healthy.stats.p999
        assert null.achieved_gbps == healthy.achieved_gbps
        assert null.elapsed_ns == healthy.elapsed_ns

    def test_flap_determinism_same_seed_same_curve(self, p7302):
        def run(seed):
            schedule = FaultSchedule(
                [FaultEvent.flapping(
                    "gmi0:r", start=0.0, end=2000.0, period=150.0, factor=0.3
                )],
                seed=seed,
            )
            result = _loaded(p7302, schedule)
            return (result.stats.mean, result.stats.p999, result.elapsed_ns)

        assert run(1) == run(1)
        assert run(1) != run(2)

    def test_monotone_severity_degrades_monotonically(self, p7302):
        schedule = FaultSchedule([
            FaultEvent.derate("gmi0:r", start=0.0, end=5000.0, factor=0.2)
        ])
        means = [
            _loaded(p7302, schedule.scaled(s)).stats.mean
            for s in (0.0, 0.5, 1.0)
        ]
        assert means[0] < means[1] < means[2]
