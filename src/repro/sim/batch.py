"""Batched closed-loop transaction recurrences.

A shard of the sharded engine (:mod:`repro.sim.sharded`) does not need the
generator machinery of the serial DES to time a closed-loop stream: with
deterministic per-stage service times, FIFO departure times obey exact
recurrences. For a single server with constant service ``s``,

    ``d_i = max(a_i, d_{i-1}) + s``

which unrolls to the vectorizable prefix-max form

    ``d_i = s * (i + 1) + max_{j <= i} (a_j - s * j)``

(:func:`fifo_departures` computes it with one ``np.maximum.accumulate``).
A ``c``-server FIFO splits into ``c`` independent interleaved chains
(``d_i = max(a_i, d_{i-c}) + s``), and a token pool of capacity ``T`` is
the same lag recurrence on completions.

:func:`simulate_closed_loops` generalizes this to the coupled case — many
lanes, shared stages, shared token pools, a shared pacing gate — by
processing transactions in lane-ready order and resolving each stage/pool
constraint against a small heap of in-flight departure times. That is one
arithmetic pass per transaction instead of the serial engine's ~15 heap
events, generator frames, and callback sweeps per transaction, and it is
where the sharded engine's throughput multiple comes from. The lane
semantics deliberately mirror :class:`repro.core.loadgen.ClosedLoopIssuer`:
``window`` lanes per worker, per-lane quota ``divmod(count, window)``, a
group-wide pacing gate that never falls behind the clock, and the same
warmup-skip rule.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from heapq import heappop, heappush
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError

__all__ = [
    "fifo_departures",
    "open_loop_departures",
    "BatchStage",
    "BatchPool",
    "BatchLane",
    "BatchFlow",
    "FlowTiming",
    "simulate_closed_loops",
]


def fifo_departures(arrivals, service_ns: float, servers: int = 1) -> np.ndarray:
    """Exact departure times of a constant-service FIFO (vectorized).

    ``arrivals`` must be sorted non-decreasing; ``servers`` parallel
    servers each take ``service_ns`` per job (jobs are served in arrival
    order, each by the first free server — the lag-``servers`` recurrence).
    """
    a = np.asarray(arrivals, dtype=float)
    if a.ndim != 1:
        raise ConfigurationError("arrivals must be a 1-D array")
    if service_ns < 0:
        raise ConfigurationError(f"negative service time: {service_ns}")
    if servers < 1:
        raise ConfigurationError(f"servers must be >= 1, got {servers}")
    if a.size == 0:
        return a.copy()
    if np.any(np.diff(a) < 0):
        raise ConfigurationError("arrivals must be sorted non-decreasing")
    out = np.empty_like(a)
    for lane in range(min(servers, a.size)):
        chain = a[lane::servers]
        idx = np.arange(chain.size, dtype=float)
        out[lane::servers] = (
            np.maximum.accumulate(chain - service_ns * idx)
            + service_ns * (idx + 1.0)
        )
    return out


def open_loop_departures(arrivals, service_ns, servers: int = 1) -> np.ndarray:
    """Exact departure times of an open-loop FIFO, vectorized.

    ``arrivals`` is a sorted non-decreasing array of request arrival
    times. ``service_ns`` may be:

    * a scalar — constant service; identical to :func:`fifo_departures`;
    * an array of length ``servers`` (with ``servers > 1`` or a 1-element
      array) — per-server constant service, where request ``i`` is bound
      to server ``i % servers`` (the worker-pool assignment the DES
      kvstore model uses), so each interleaved chain is an independent
      single-server FIFO with its own constant service;
    * an array of length ``len(arrivals)`` with ``servers == 1`` —
      per-request service, computed through the cumulative-sum
      generalization of the prefix-max recurrence:
      ``d_i = S_i + max_{j <= i} (a_j - S_{j-1})`` with
      ``S_i = sum(service[:i+1])``.

    All three forms are exact recurrences, not approximations.
    """
    a = np.asarray(arrivals, dtype=float)
    if a.ndim != 1:
        raise ConfigurationError("arrivals must be a 1-D array")
    if servers < 1:
        raise ConfigurationError(f"servers must be >= 1, got {servers}")
    if a.size > 1 and np.any(np.diff(a) < 0):
        raise ConfigurationError("arrivals must be sorted non-decreasing")
    service = np.asarray(service_ns, dtype=float)
    if np.any(service < 0):
        raise ConfigurationError("negative service time")
    if service.ndim == 0:
        return fifo_departures(a, float(service), servers)
    if service.ndim != 1:
        raise ConfigurationError("service_ns must be a scalar or 1-D array")
    if a.size == 0:
        return a.copy()
    if service.size == servers:
        out = np.empty_like(a)
        for lane in range(min(servers, a.size)):
            chain = a[lane::servers]
            s = float(service[lane])
            idx = np.arange(chain.size, dtype=float)
            out[lane::servers] = (
                np.maximum.accumulate(chain - s * idx) + s * (idx + 1.0)
            )
        return out
    if servers == 1 and service.size == a.size:
        cum = np.cumsum(service)
        start = np.empty_like(cum)
        start[0] = 0.0
        start[1:] = cum[:-1]
        return cum + np.maximum.accumulate(a - start)
    raise ConfigurationError(
        "service_ns array must have length servers "
        f"({servers}) or, for a single server, length len(arrivals) "
        f"({a.size}); got {service.size}"
    )


class BatchStage:
    """One queued stage (arbiter direction / UMC) shared by batched flows.

    ``servers`` parallel servers; each transaction occupies one for its
    service time. Transactions are granted in processing order (the global
    ready order of :func:`simulate_closed_loops`), each starting no earlier
    than the earliest in-flight departure once all servers are busy.
    """

    __slots__ = ("name", "servers", "_busy", "busy_ns", "bytes_served")

    def __init__(self, name: str, servers: int) -> None:
        if servers < 1:
            raise ConfigurationError(
                f"stage {name}: servers must be >= 1, got {servers}"
            )
        self.name = name
        self.servers = servers
        self._busy: List[float] = []
        self.busy_ns = 0.0
        self.bytes_served = 0

    def serve(self, ready_ns: float, service_ns: float) -> float:
        """Grant one transaction arriving at ``ready_ns``; its departure."""
        busy = self._busy
        if len(busy) >= self.servers:
            earliest = heappop(busy)
            if earliest > ready_ns:
                ready_ns = earliest
        depart = ready_ns + service_ns
        heappush(busy, depart)
        self.busy_ns += service_ns
        return depart


class BatchPool:
    """A token pool (counted semaphore) shared by batched flows.

    Tokens are granted in processing order and held until the holder's
    completion time (the serial executor releases after the fixed
    remainder), so the gate constraint is the earliest in-flight
    completion once the pool is exhausted.
    """

    __slots__ = ("name", "capacity", "_held")

    def __init__(self, name: str, capacity: int) -> None:
        if capacity < 1:
            raise ConfigurationError(
                f"pool {name}: capacity must be >= 1, got {capacity}"
            )
        self.name = name
        self.capacity = capacity
        self._held: List[float] = []

    def gate(self, ready_ns: float) -> float:
        """Earliest time a token is free for a request ready at ``ready_ns``."""
        held = self._held
        if len(held) >= self.capacity:
            earliest = heappop(held)
            if earliest > ready_ns:
                ready_ns = earliest
        return ready_ns

    def commit(self, complete_ns: float) -> None:
        """Record the granted token as held until ``complete_ns``."""
        heappush(self._held, complete_ns)


@dataclass(frozen=True)
class BatchLane:
    """One outstanding-transaction slot: its route and transaction quota."""

    #: Ordered (stage, service_ns) pairs the transaction clears in sequence.
    stages: Tuple[Tuple[BatchStage, float], ...]
    #: Token pools acquired at issue and released at completion.
    pools: Tuple[BatchPool, ...]
    #: Load-independent remainder added after the last stage.
    fixed_ns: float
    quota: int


@dataclass
class BatchFlow:
    """A closed-loop stream: lanes plus an optional shared pacing gate."""

    name: str
    lanes: List[BatchLane]
    size_bytes: int
    #: ``size_bytes / rate_gbps`` — None issues as fast as the windows allow.
    interval_ns: Optional[float] = None
    #: Per-lane warmup samples to skip (loadgen's ``warmup // window``).
    warmup_skip: int = 0
    _next_issue_ns: float = field(default=0.0, repr=False)


@dataclass(frozen=True)
class FlowTiming:
    """Per-flow outcome arrays (in transaction processing order)."""

    name: str
    issued_ns: np.ndarray
    completed_ns: np.ndarray
    #: Boolean mask of samples counted after the warmup skip.
    counted: np.ndarray

    @property
    def latencies_ns(self) -> np.ndarray:
        return self.completed_ns[self.counted] - self.issued_ns[self.counted]

    def achieved_gbps(self, size_bytes: int) -> float:
        """Counted bytes over the counted issue-to-completion span."""
        counted = self.counted
        if not counted.any():
            raise ConfigurationError(
                f"flow {self.name}: no samples survived the warmup skip"
            )
        begin = float(self.issued_ns[counted].min())
        end = float(self.completed_ns[counted].max())
        elapsed = max(end - begin, 1e-9)
        return int(counted.sum()) * size_bytes / elapsed


def simulate_closed_loops(flows: Sequence[BatchFlow]) -> Dict[str, FlowTiming]:
    """Run every flow's lanes to quota exhaustion; returns per-flow timings.

    Transactions are processed one at a time in lane-ready order (ties
    broken by ``(flow index, lane index)`` — the order the serial engine's
    process-creation sequence induces). Each transaction claims its pacing
    slot, gates through its token pools, clears its stages, then commits
    its completion back to the pools — the exact lifecycle of
    :meth:`repro.transport.transaction.TransactionExecutor.execute`, as
    arithmetic instead of events.
    """
    if not flows:
        return {}
    totals = [sum(lane.quota for lane in flow.lanes) for flow in flows]
    issued = [np.empty(total) for total in totals]
    completed = [np.empty(total) for total in totals]
    lane_index = [np.empty(total, dtype=np.int64) for total in totals]
    cursor = [0] * len(flows)
    quotas = [[lane.quota for lane in flow.lanes] for flow in flows]

    # (ready_ns, flow_idx, lane_idx): all lanes start at t=0, in the same
    # order the serial engine bootstraps its lane processes.
    heap: List[Tuple[float, int, int]] = [
        (0.0, flow_idx, lane_idx)
        for flow_idx, flow in enumerate(flows)
        for lane_idx in range(len(flow.lanes))
        if flow.lanes[lane_idx].quota > 0
    ]
    # Already sorted by construction (all times 0.0, tie keys ascending).

    while heap:
        ready, flow_idx, lane_idx = heappop(heap)
        flow = flows[flow_idx]
        lane = flow.lanes[lane_idx]
        if flow.interval_ns is not None:
            # Claim the group's next pacing slot; pacing never falls
            # behind the clock (matching ClosedLoopIssuer._lane).
            slot = flow._next_issue_ns
            if ready > slot:
                slot = ready
            flow._next_issue_ns = slot + flow.interval_ns
            t = slot
        else:
            t = ready
        issue = t
        for pool in lane.pools:
            t = pool.gate(t)
        size = flow.size_bytes
        for stage, service in lane.stages:
            t = stage.serve(t, service)
            stage.bytes_served += size
        t += lane.fixed_ns
        for pool in lane.pools:
            pool.commit(t)
        at = cursor[flow_idx]
        issued[flow_idx][at] = issue
        completed[flow_idx][at] = t
        lane_index[flow_idx][at] = lane_idx
        cursor[flow_idx] = at + 1
        remaining = quotas[flow_idx][lane_idx] - 1
        quotas[flow_idx][lane_idx] = remaining
        if remaining > 0:
            heappush(heap, (t, flow_idx, lane_idx))

    out: Dict[str, FlowTiming] = {}
    for flow_idx, flow in enumerate(flows):
        lanes = lane_index[flow_idx]
        # Count a sample when its per-lane ordinal clears the warmup skip:
        # occurrence number of each lane at each position.
        counted = np.ones(totals[flow_idx], dtype=bool)
        if flow.warmup_skip > 0:
            seen = np.zeros(len(flow.lanes), dtype=np.int64)
            for position, lane_idx in enumerate(lanes):
                counted[position] = seen[lane_idx] >= flow.warmup_skip
                seen[lane_idx] += 1
        out[flow.name] = FlowTiming(
            name=flow.name,
            issued_ns=issued[flow_idx],
            completed_ns=completed[flow_idx],
            counted=counted,
        )
    return out
