"""Global software traffic manager — the paper's §4 proposal, realized.

Implication #4 argues for "the communication flow abstraction, materialize[d]
in a global software-based traffic manager". :class:`TrafficManager`
registers flows, computes max-min fair allocations over the platform's
bandwidth domains, and emits per-flow rate limits — replacing the hardware's
sender-driven aggressive partitioning with policy. The ablation benchmark
(`benchmarks/bench_ablation_manager.py`) contrasts the two on Figure 4's
cases.
"""

from repro.manager.manager import ManagedAllocation, TrafficManager
from repro.manager.ratelimit import TokenBucket

__all__ = ["TrafficManager", "ManagedAllocation", "TokenBucket"]
