"""A perf-like per-flow profiler (§4 direction #5).

Combines exact top-k accounting with a count-min sketch backing store: the
sketch bounds memory regardless of flow cardinality, the heap keeps the
heavy hitters exact — the structure the paper proposes for distilling
"application-specific execution telemetry" at sub-microsecond granularity.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.errors import ConfigurationError
from repro.telemetry.sketch import CountMinSketch

__all__ = ["FlowProfiler", "FlowSample"]


@dataclass(frozen=True)
class FlowSample:
    """One profiler event: a flow moved ``size_bytes`` at time ``t_ns``."""

    flow: str
    size_bytes: int
    t_ns: float


class FlowProfiler:
    """Streaming per-flow byte accounting with bounded memory."""

    def __init__(
        self, top_k: int = 8, sketch_width: int = 2048, sketch_depth: int = 4
    ) -> None:
        if top_k < 1:
            raise ConfigurationError(f"top_k must be >= 1, got {top_k}")
        self.top_k = top_k
        self.sketch = CountMinSketch(sketch_width, sketch_depth)
        self._heavy: Dict[str, int] = {}
        self.samples = 0
        self.first_ns: float | None = None
        self.last_ns = 0.0

    @classmethod
    def from_error_bounds(
        cls, epsilon: float, delta: float, top_k: int = 8
    ) -> "FlowProfiler":
        """A profiler whose sketch honours ``ε``/``δ`` overestimate bounds."""
        profiler = cls(top_k=top_k, sketch_width=1, sketch_depth=1)
        profiler.sketch = CountMinSketch.from_error_bounds(epsilon, delta)
        return profiler

    def record(self, sample: FlowSample) -> None:
        """Account one flow event in the sketch and top-k set."""
        self.sketch.add(sample.flow, sample.size_bytes)
        self.samples += 1
        if self.first_ns is None:
            self.first_ns = sample.t_ns
        self.last_ns = max(self.last_ns, sample.t_ns)
        # Track candidates; estimates are re-queried at ranking time (a
        # stored snapshot goes stale as later collisions raise the
        # sketch's answer, under-reporting — and mis-evicting — flows).
        self._heavy[sample.flow] = sample.size_bytes
        if len(self._heavy) > 4 * self.top_k:
            for flow, __ in heapq.nsmallest(
                len(self._heavy) - 2 * self.top_k,
                (
                    (flow, self.sketch.estimate(flow))
                    for flow in self._heavy
                ),
                key=lambda item: item[1],
            ):
                del self._heavy[flow]

    def top_flows(self) -> List[Tuple[str, int]]:
        """The heaviest flows as (name, bytes-estimate), descending.

        Estimates come fresh from the sketch, so each reported count is
        the flow's current (never-under) estimate; ties rank by name for
        run-to-run byte-identical reports.
        """
        ranked = sorted(
            ((flow, self.sketch.estimate(flow)) for flow in self._heavy),
            key=lambda item: (-item[1], item[0]),
        )
        return ranked[: self.top_k]

    def flow_gbps(self, flow: str) -> float:
        """Average rate of one flow over the observed window."""
        if self.first_ns is None or self.last_ns <= self.first_ns:
            return 0.0
        return self.sketch.estimate(flow) / (self.last_ns - self.first_ns)

    def report(self) -> str:
        """Multi-line text summary of the heaviest flows."""
        window = (
            (self.last_ns - self.first_ns) if self.first_ns is not None else 0.0
        )
        lines = [
            f"flow profiler: {self.samples} samples over {window:.0f} ns "
            f"({self.sketch.memory_cells} sketch cells)",
            f"{'flow':<28}{'bytes':>14}{'GB/s':>9}",
        ]
        for flow, estimate in self.top_flows():
            rate = estimate / window if window > 0 else 0.0
            lines.append(f"{flow:<28}{estimate:>14}{rate:>9.2f}")
        return "\n".join(lines)
