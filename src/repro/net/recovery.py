"""Fault-reactive recovery: failure detection, credit reclamation, failover.

The stack from :mod:`repro.net` is fault-*oblivious*: inject a permanent
link failure from :mod:`repro.faults` and credits strand on the dead link,
the :class:`~repro.net.qos.AdmissionController` keeps admitting onto
zero-capacity channels, and the
:class:`~repro.net.multipath.MultipathSelector` keeps splitting traffic
onto a link whose telemetry shows it dead. This module closes the
detect -> reclaim -> reroute loop:

* **Detection** — :class:`HealthMonitor` is an engine-agnostic state
  machine fed from telemetry on the *simulated* clock: per-window
  utilization collapse (delivered bytes from a
  :class:`~repro.telemetry.counters.CounterRegistry` against the
  endpoint's expected rate, judged only while demand is queued) and
  credit-return timeouts reported by the transport gate. ``dead_after``
  consecutive strikes declare the endpoint DEAD; revival goes through
  active probes (:class:`RecoveryInstallation`), never through silence.
* **Credit reclamation** — :class:`ReclaimableTokenPool` extends the
  credit pools with count-based forgiveness: when an endpoint is declared
  dead, the in-flight credits are reclaimed back home after
  ``drain_deadline_ns``; a stranded transaction that completes later has
  its late return *forgiven* instead of double-counted, so the
  conservation invariant (:meth:`ReclaimingCreditScheduler.
  assert_credits_home`) holds through permanent failures.
* **Retransmission with backoff** — :class:`RecoveryGate` puts a deadline
  on the credit wait; a stranded transaction backs off (capped
  exponential, deterministic :class:`~repro.sim.rng.SplitRng` jitter) and
  retries — on a failover path once the endpoint is declared dead. The
  final attempt waits unbounded: a transaction is retried or reported,
  never silently dropped.
* **Failover** — :class:`FailoverRouter` re-homes a worker's stranded
  endpoint onto the healthy candidate with the most residual capacity;
  the selector and admission controller consume the same health state
  (dead links leave split weights and admission capacity).

Both engines compile the same configuration: the DES interposes
:class:`RecoveryGate` plus monitor/prober processes
(:func:`install`), the fluid backend derives the identical
:class:`HealthMonitor` verdicts from the schedule's capacity-factor
telemetry (:func:`fluid_health`) and masks dead capacity out of the
solve (:meth:`HealthMonitor.capacity_mask`). ``RecoveryConfig.off()``
installs nothing — byte-identical to a run that never imported this
module, the same null contract fault injection and tracing keep.
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.net.credits import CreditScheduler, endpoint_rate_gbps
from repro.net.inject import NetInstallation, install as install_stack
from repro.net.stack import NetStackConfig
from repro.noc.flowcontrol import TokenPool
from repro.sim.engine import Event
from repro.sim.rng import SplitRng
from repro.telemetry.counters import CounterRegistry
from repro.transport.message import OpKind, Transaction
from repro.transport.path import CompiledPath, PathResolver
from repro.transport.transaction import TransactionExecutor
from repro.units import CACHELINE

__all__ = [
    "RECOVERY_ENV_VAR",
    "LinkHealth",
    "HealthTransition",
    "RecoveryConfig",
    "RecoveryStats",
    "HealthMonitor",
    "ReclaimableTokenPool",
    "ReclaimingCreditScheduler",
    "FailoverRouter",
    "RecoveryGate",
    "RecoveryInstallation",
    "install",
    "fluid_health",
    "recovery_enabled_by_env",
]

#: Environment switch mirrored into every cache key (see
#: :func:`repro.cache.recovery_variant`): when truthy, ``repro chaos``
#: runs its recovery sweep without the ``--recover`` flag.
RECOVERY_ENV_VAR = "REPRO_NET_RECOVERY"

_FALSY = {"", "0", "off", "false", "no"}

#: Residue factor a dead link keeps in a fluid capacity mask — the same
#: floor :mod:`repro.faults.schedule` keeps so solver capacities stay
#: positive.
_MASK_RESIDUE = 1e-3


def recovery_enabled_by_env() -> bool:
    """Does :data:`RECOVERY_ENV_VAR` ask for the recovery sweep?"""
    return os.environ.get(RECOVERY_ENV_VAR, "").strip().lower() not in _FALSY


class LinkHealth(enum.Enum):
    """Health verdict of one endpoint/link."""

    HEALTHY = "healthy"
    DEGRADED = "degraded"
    DEAD = "dead"


@dataclass(frozen=True)
class HealthTransition:
    """One recorded state change (simulated time, endpoint, new state)."""

    t_ns: float
    endpoint: str
    state: LinkHealth


@dataclass(frozen=True)
class RecoveryConfig:
    """Tunables of the detect -> reclaim -> reroute loop.

    Everything defaults to *off*; :meth:`on` returns the calibrated
    defaults the ``repro chaos --recover`` sweep uses. Times are
    nanoseconds on the simulated clock, so both backends read the same
    numbers.
    """

    enabled: bool = False
    #: Health sampling / probing period.
    probe_interval_ns: float = 200.0
    #: Delivered/expected ratio below which a sampled window (with queued
    #: demand) counts as a strike toward DEAD.
    dead_threshold: float = 0.25
    #: Ratio below which the endpoint is merely DEGRADED.
    degraded_threshold: float = 0.75
    #: Consecutive strikes before an endpoint is declared DEAD.
    dead_after: int = 3
    #: Consecutive healthy probes before a DEAD endpoint is re-admitted.
    revive_after: int = 3
    #: Credits stranded toward a dead endpoint go home this long after
    #: the death declaration.
    drain_deadline_ns: float = 400.0
    #: Deadline on the credit wait before a retry attempt.
    retry_timeout_ns: float = 300.0
    #: Deadline on the in-service (credit-return) phase: a transaction
    #: holding credits longer than this strikes the endpoint, and — once
    #: the endpoint is declared dead — is abandoned to the wreck and
    #: retransmitted over a failover path. Must exceed the healthy loaded
    #: tail latency, or live traffic strikes its own links.
    service_timeout_ns: float = 700.0
    #: Retry attempts with a deadline; the final attempt waits unbounded
    #: (retried or reported, never lost).
    max_retries: int = 8
    #: Capped exponential backoff between attempts.
    backoff_base_ns: float = 50.0
    backoff_cap_ns: float = 400.0
    #: Deterministic jitter fraction on each backoff (SplitRng stream).
    jitter_fraction: float = 0.25
    #: Active-probe transaction size; large enough that a capacity
    #: collapse (not just added latency) is visible in one service time.
    probe_size_bytes: int = 1024
    #: A probe is healthy when it completes within this factor of the
    #: healthy expectation (unloaded latency + probe service time).
    probe_latency_factor: float = 3.0

    def __post_init__(self) -> None:
        if self.probe_interval_ns <= 0:
            raise ConfigurationError(
                f"probe interval must be positive, got {self.probe_interval_ns}"
            )
        if not 0.0 < self.dead_threshold <= self.degraded_threshold <= 1.0:
            raise ConfigurationError(
                "thresholds must satisfy 0 < dead <= degraded <= 1, got "
                f"dead={self.dead_threshold}, degraded={self.degraded_threshold}"
            )
        if self.dead_after < 1 or self.revive_after < 1:
            raise ConfigurationError(
                "dead_after and revive_after must be >= 1"
            )
        if self.max_retries < 0:
            raise ConfigurationError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.retry_timeout_ns <= 0 or self.service_timeout_ns <= 0:
            raise ConfigurationError(
                "retry and service timeouts must be positive"
            )
        if self.backoff_base_ns <= 0 or self.backoff_cap_ns < self.backoff_base_ns:
            raise ConfigurationError(
                "backoff must satisfy 0 < base <= cap, got "
                f"base={self.backoff_base_ns}, cap={self.backoff_cap_ns}"
            )
        if not 0.0 <= self.jitter_fraction < 1.0:
            raise ConfigurationError(
                f"jitter fraction must be in [0, 1), got {self.jitter_fraction}"
            )
        if self.probe_size_bytes < CACHELINE:
            raise ConfigurationError(
                f"probe size must be >= {CACHELINE} bytes, "
                f"got {self.probe_size_bytes}"
            )
        if self.probe_latency_factor <= 1.0:
            raise ConfigurationError(
                "probe_latency_factor must be > 1, got "
                f"{self.probe_latency_factor}"
            )

    @classmethod
    def off(cls) -> "RecoveryConfig":
        """No recovery: the stack behaves exactly as before this module."""
        return cls()

    @classmethod
    def on(cls, **overrides) -> "RecoveryConfig":
        """The calibrated recovery defaults (override any field)."""
        return cls(enabled=True, **overrides)

    @property
    def label(self) -> str:
        return "on" if self.enabled else "off"


@dataclass
class RecoveryStats:
    """What the recovery layer did during one run (reported, not lost)."""

    retries: int = 0
    failovers: int = 0
    credit_timeouts: int = 0
    reclaimed_credits: int = 0
    forgiven_returns: int = 0
    probes_sent: int = 0
    gave_up_deadlines: int = 0


class HealthMonitor:
    """Deterministic, engine-agnostic link-health state machine.

    Inputs arrive as discrete observations stamped with simulated time:
    :meth:`observe_window` (utilization collapse), :meth:`credit_timeout`
    (a transport deadline expired toward the endpoint), and
    :meth:`observe_probe` (an active probe's verdict, the only path back
    to HEALTHY). The same machine serves both backends — the DES feeds it
    from live counters, the fluid backend from the fault schedule's
    capacity-factor telemetry (:func:`fluid_health`).
    """

    def __init__(self, config: RecoveryConfig) -> None:
        self.config = config
        self._state: Dict[str, LinkHealth] = {}
        self._strikes: Dict[str, int] = {}
        self._heal_streak: Dict[str, int] = {}
        self.transitions: List[HealthTransition] = []

    # ---------------------------------------------------------------- queries

    def state(self, endpoint: str) -> LinkHealth:
        """Current verdict for ``endpoint`` (unknown links are HEALTHY)."""
        return self._state.get(endpoint, LinkHealth.HEALTHY)

    def is_dead(self, endpoint: str) -> bool:
        """Has ``endpoint`` been declared DEAD (and not yet revived)?"""
        return self._state.get(endpoint) is LinkHealth.DEAD

    def dead_endpoints(self) -> List[str]:
        """Every endpoint currently DEAD, in name order."""
        return sorted(
            name
            for name, state in self._state.items()
            if state is LinkHealth.DEAD
        )

    def detect_ns(self, endpoint: str) -> Optional[float]:
        """Simulated time of the first DEAD declaration, or None."""
        for transition in self.transitions:
            if (
                transition.endpoint == endpoint
                and transition.state is LinkHealth.DEAD
            ):
                return transition.t_ns
        return None

    def capacity_mask(self, directions: Sequence[str] = ("r", "w")) -> Dict[str, float]:
        """Fluid-solver derates for dead endpoints (residue-floored).

        Merged into :class:`~repro.core.fabric.FabricModel` derates, a
        dead link's channels keep only :data:`_MASK_RESIDUE` of their
        capacity — the health-aware capacity masking the vectorized
        solver consumes.
        """
        return {
            f"{endpoint}:{direction}": _MASK_RESIDUE
            for endpoint in self.dead_endpoints()
            for direction in directions
        }

    # ------------------------------------------------------------ transitions

    def _set_state(self, endpoint: str, t_ns: float, state: LinkHealth) -> None:
        if self.state(endpoint) is state:
            return
        self._state[endpoint] = state
        self.transitions.append(HealthTransition(t_ns, endpoint, state))

    def _strike(self, endpoint: str, t_ns: float) -> None:
        self._heal_streak[endpoint] = 0
        strikes = self._strikes.get(endpoint, 0) + 1
        self._strikes[endpoint] = strikes
        if strikes >= self.config.dead_after:
            self._set_state(endpoint, t_ns, LinkHealth.DEAD)

    # ------------------------------------------------------------ observations

    def observe_window(
        self, endpoint: str, t_ns: float, delivered_ratio: float, queued: bool
    ) -> LinkHealth:
        """Judge one sampling window of delivered/expected throughput.

        A collapse only counts while demand was actually queued toward
        the endpoint — an idle link is unknown, not dead. Window
        telemetry never revives a DEAD endpoint (that would mistake
        "nobody sends here since failover" for health); revival is the
        probes' job.
        """
        if not queued:
            return self.state(endpoint)
        if delivered_ratio < self.config.dead_threshold:
            self._strike(endpoint, t_ns)
        elif self.is_dead(endpoint):
            pass  # only probes revive
        elif delivered_ratio < self.config.degraded_threshold:
            self._strikes[endpoint] = 0
            self._set_state(endpoint, t_ns, LinkHealth.DEGRADED)
        else:
            self._strikes[endpoint] = 0
            self._set_state(endpoint, t_ns, LinkHealth.HEALTHY)
        return self.state(endpoint)

    def credit_timeout(self, endpoint: str, t_ns: float) -> LinkHealth:
        """A transport-level credit wait expired toward ``endpoint``."""
        self._strike(endpoint, t_ns)
        return self.state(endpoint)

    def observe_probe(
        self, endpoint: str, t_ns: float, healthy: bool
    ) -> LinkHealth:
        """Feed one active-probe verdict (the only path out of DEAD)."""
        if not healthy:
            self._heal_streak[endpoint] = 0
            return self.state(endpoint)
        streak = self._heal_streak.get(endpoint, 0) + 1
        self._heal_streak[endpoint] = streak
        if self.is_dead(endpoint) and streak >= self.config.revive_after:
            self._strikes[endpoint] = 0
            self._set_state(endpoint, t_ns, LinkHealth.HEALTHY)
        return self.state(endpoint)


class ReclaimableTokenPool(TokenPool):
    """A credit pool whose stranded credits can be sent home early.

    Accounting: ``available == capacity - leases + forgiven_pending`` at
    every instant. :meth:`reclaim_all` moves the outstanding unforgiven
    leases home (granting FIFO waiters first, like a release would) and
    remembers them as *forgiven*; when a stranded transaction completes
    later, its late return consumes one forgiveness instead of minting a
    credit. At full drain ``leases == 0`` and ``forgiven_pending == 0``,
    so conservation is checkable through permanent failures.
    """

    def __init__(self, env, tokens: int, name: str = "tokens") -> None:
        super().__init__(env, tokens, name=name)
        #: Open leases (granted, not yet released).
        self.leases = 0
        self.reclaimed_total = 0
        self.forgiven_total = 0

    @property
    def forgiven_pending(self) -> int:
        return self.reclaimed_total - self.forgiven_total

    def _record_wait(self, wait_ns: float) -> None:
        self.leases += 1
        super()._record_wait(wait_ns)

    def release(self) -> None:
        """Return one credit — or settle a reclaimed credit's late return."""
        if self.forgiven_total < self.reclaimed_total:
            # This credit already went home via reclamation: forgive the
            # late return instead of double-counting it.
            self.forgiven_total += 1
            self.leases -= 1
            return
        self.leases -= 1
        super().release()

    def cancel(self, event: Event) -> bool:
        """Withdraw a pending :meth:`acquire` (deadline expired).

        Returns False when the event is not waiting anymore — either it
        was already granted (the caller holds a credit and must release
        it) or it was never queued here.
        """
        for index, (waiting, enqueued_at) in enumerate(self._waiting):
            if waiting is event:
                del self._waiting[index]
                return True
        return False

    def reclaim_all(self) -> int:
        """Send every outstanding unforgiven credit home; returns count."""
        count = self.capacity - self._available
        for __ in range(count):
            self.reclaimed_total += 1
            if self._waiting:
                event, enqueued_at = self._waiting.popleft()
                self._record_wait(self.env.now - enqueued_at)
                event.succeed()
            else:
                self._available += 1
        return count


class ReclaimingCreditScheduler(CreditScheduler):
    """A credit scheduler whose pools survive permanent link failures."""

    def pool(self, endpoint: str, flow: str) -> ReclaimableTokenPool:
        """The (endpoint, flow) pool, created reclaimable on first use."""
        key = (endpoint, flow)
        existing = self._pools.get(key)
        if existing is None:
            existing = ReclaimableTokenPool(
                self.env,
                self.share(endpoint, flow),
                name=f"credits/{endpoint}/{flow}",
            )
            self._pools[key] = existing
        return existing

    def reclaim_endpoint(self, endpoint: str) -> int:
        """Reclaim every flow's stranded credits at one endpoint."""
        reclaimed = 0
        for (pool_endpoint, __), pool in sorted(self._pools.items()):
            if pool_endpoint == endpoint:
                reclaimed += pool.reclaim_all()
        return reclaimed

    def queued_demand(self, endpoint: str) -> bool:
        """Is any flow waiting on or holding credits at ``endpoint``?"""
        for (pool_endpoint, __), pool in self._pools.items():
            if pool_endpoint != endpoint:
                continue
            if pool.queue_length > 0 or pool.leases > pool.forgiven_pending:
                return True
        return False

    def assert_credits_home(self) -> None:
        """Conservation through failures: home + in-flight + reclaimed.

        At quiescence every lease has been released (or forgiven against
        a reclamation), so ``available == capacity`` must hold *and* the
        forgiveness book must balance — a pending forgiveness at drain
        would mean a transaction vanished with its credit.
        """
        for (endpoint, flow), pool in self._pools.items():
            forgiven = getattr(pool, "forgiven_pending", 0)
            leases = getattr(pool, "leases", pool.capacity - pool.available)
            if pool.available != pool.capacity or leases != forgiven:
                raise ConfigurationError(
                    f"credit leak at {endpoint}/{flow}: "
                    f"{pool.capacity - pool.available} of {pool.capacity} "
                    f"credits never returned ({leases} leases open, "
                    f"{forgiven} reclaimed returns still pending)"
                )


class FailoverRouter:
    """Re-homes a worker's stranded endpoint onto a healthy candidate.

    Pure control-plane state (no events): workers register their
    candidate paths eagerly — the same fail-fast contract the injectors
    keep — and :meth:`reroute` moves a worker to the healthy registered
    endpoint with the most residual capacity (ties broken by unloaded
    latency, then id-order), updating the assigned-load book so
    successive reroutes spread instead of pile up.
    """

    def __init__(self, platform, health: HealthMonitor) -> None:
        self.platform = platform
        self.health = health
        #: (worker, endpoint) -> candidate path (None on the fluid backend,
        #: where routing is a set of endpoint homes, not compiled paths).
        self._paths: Dict[Tuple[int, str], Optional[CompiledPath]] = {}
        #: worker -> (current endpoint, that worker's offered GB/s).
        self._homes: Dict[int, Tuple[str, float]] = {}
        #: endpoint -> offered GB/s currently homed there.
        self._loads: Dict[str, float] = {}
        #: endpoint -> candidate order index (registration order).
        self._order: Dict[str, int] = {}

    def register(
        self,
        worker: int,
        endpoint: str,
        path: Optional[CompiledPath] = None,
        primary: bool = False,
        slice_gbps: float = 0.0,
    ) -> None:
        """Declare ``endpoint`` (via ``path``) a candidate route for ``worker``."""
        self._paths[(worker, endpoint)] = path
        self._order.setdefault(endpoint, len(self._order))
        if primary:
            self._homes[worker] = (endpoint, slice_gbps)
            self._loads[endpoint] = self._loads.get(endpoint, 0.0) + slice_gbps

    def home(self, worker: int) -> Optional[str]:
        """The endpoint ``worker`` is currently homed on, if registered."""
        homed = self._homes.get(worker)
        return homed[0] if homed else None

    def path_for(self, worker: int, endpoint: str) -> Optional[CompiledPath]:
        """The registered candidate path, or None (fluid / unregistered)."""
        return self._paths.get((worker, endpoint))

    def _residual(self, endpoint: str, is_write: bool) -> float:
        capacity = endpoint_rate_gbps(self.platform, endpoint, is_write=is_write)
        return capacity - self._loads.get(endpoint, 0.0)

    def reroute(
        self, worker: int, is_write: bool = False
    ) -> Optional[Tuple[str, Optional[CompiledPath]]]:
        """Move ``worker`` off a dead home; None when nothing better exists."""
        homed = self._homes.get(worker)
        if homed is None:
            return None
        current, slice_gbps = homed
        candidates = sorted(
            (
                endpoint
                for (candidate_worker, endpoint) in self._paths
                if candidate_worker == worker
                and endpoint != current
                and not self.health.is_dead(endpoint)
            ),
            key=lambda endpoint: (
                -self._residual(endpoint, is_write),
                self._order[endpoint],
                endpoint,
            ),
        )
        if not candidates:
            return None
        target = candidates[0]
        self._loads[current] = self._loads.get(current, 0.0) - slice_gbps
        self._loads[target] = self._loads.get(target, 0.0) + slice_gbps
        self._homes[worker] = (target, slice_gbps)
        return target, self._paths[(worker, target)]


class RecoveryGate:
    """A credit gate with deadlines, backoff retry, and failover.

    Duck-typed as a :class:`~repro.transport.transaction.
    TransactionExecutor` for issuers, like
    :class:`~repro.net.inject.CreditGate` — but both phases of a
    transaction carry deadlines:

    * the **credit wait** times out after ``retry_timeout_ns``: the gate
      reports a credit timeout to the health monitor (a detection input),
      backs off with capped exponential delay and deterministic jitter,
      and retries — rerouted once the monitor declares the endpoint dead;
    * the **in-service phase** (credits held, transaction in the fabric)
      times out after ``service_timeout_ns``: each expiry strikes the
      endpoint, and once it is declared dead the stuck attempt is
      *abandoned* — its credits stay with the wreck (they return home
      when the dead link's trickle finally drains it, or earlier via
      reclamation, the forgiveness book balancing the late return) and
      the transaction is retransmitted over a failover path.

    After ``max_retries`` deadlined attempts the final attempt waits
    unbounded: a transaction is delayed and reported, never dropped.
    """

    def __init__(
        self,
        executor: TransactionExecutor,
        scheduler: ReclaimingCreditScheduler,
        flow: str,
        health: HealthMonitor,
        router: FailoverRouter,
        config: RecoveryConfig,
        rng,
        stats: RecoveryStats,
        registry: CounterRegistry,
        worker: Optional[int] = None,
    ) -> None:
        self.executor = executor
        self.scheduler = scheduler
        self.flow = flow
        self.health = health
        self.router = router
        self.config = config
        self.rng = rng
        self.stats = stats
        self.registry = registry
        #: Failover-routing identity; ``None`` falls back to the
        #: transaction's ``src_core`` (fine when core ids are unique
        #: across the gate's issuers).
        self.worker = worker

    def _backoff_ns(self, attempt: int) -> float:
        base = min(
            self.config.backoff_cap_ns,
            self.config.backoff_base_ns * (2.0 ** attempt),
        )
        return base * (1.0 + self.config.jitter_fraction * float(self.rng.random()))

    def _acquire(
        self, pool: ReclaimableTokenPool, lines: int, deadline_ns: Optional[float]
    ) -> Generator[Event, None, Tuple[int, bool]]:
        """Hold ``lines`` credits, or give up at the deadline.

        Returns ``(credits held, timed out)``; on timeout the caller owns
        the partial holdings and must release them.
        """
        env = self.executor.env
        if deadline_ns is None:
            for __ in range(lines):
                yield pool.acquire()
            return lines, False
        deadline = env.timeout(deadline_ns)
        held = 0
        for __ in range(lines):
            grant = pool.acquire()
            if grant.triggered:
                held += 1
                continue
            yield env.any_of([grant, deadline])
            if grant.triggered:
                held += 1
                continue
            if not pool.cancel(grant):
                # Granted in the same instant the deadline fired.
                held += 1
                continue
            return held, True
        return held, False

    def _reroute(self, worker: int, is_write: bool):
        """A usable failover route (endpoint + compiled path), or None."""
        rerouted = self.router.reroute(worker, is_write)
        if rerouted is None or rerouted[1] is None:
            return None
        return rerouted

    def execute(
        self, txn: Transaction, path: CompiledPath
    ) -> Generator[Event, None, Transaction]:
        """DES process: recovery-gated end-to-end execution of one txn."""
        if not path.stages:
            raise ConfigurationError(
                f"path {path.name} has no queued stages to credit"
            )
        env = self.executor.env
        config = self.config
        worker = self.worker if self.worker is not None else txn.src_core
        endpoint = path.stages[-1].name
        lines = max(1, -(-txn.size_bytes // CACHELINE))
        attempt = 0
        while True:
            # Control-plane failover: never start an attempt toward an
            # endpoint the monitor has declared dead.
            if self.health.is_dead(endpoint):
                rerouted = self._reroute(worker, txn.op.is_write)
                if rerouted is not None:
                    self._trace_mark(
                        env, txn, f"recovery/failover/{endpoint}>{rerouted[0]}"
                    )
                    endpoint, path = rerouted
                    self.stats.failovers += 1
            pool = self.scheduler.pool(endpoint, self.flow)
            deadline = (
                config.retry_timeout_ns
                if attempt < config.max_retries
                else None
            )
            tracer = env.tracer
            span = None
            if tracer is not None:
                span = tracer.begin(
                    f"credits/{endpoint}", "wait",
                    f"{self.flow}/c{txn.src_core}",
                    flow=self.flow, size=txn.size_bytes, attempt=attempt,
                )
            held, timed_out = yield from self._acquire(pool, lines, deadline)
            if timed_out:
                if span is not None:
                    tracer.end(span, timeout=True)
                for __ in range(held):
                    pool.release()
                self.stats.credit_timeouts += 1
                self.health.credit_timeout(endpoint, env.now)
                self.stats.retries += 1
                attempt += 1
                if attempt == config.max_retries:
                    self.stats.gave_up_deadlines += 1
                yield from self._backoff(env, txn, endpoint, attempt)
                continue
            if span is not None:
                tracer.end(span)
            # The endpoint may have died while we queued for credits
            # (reclamation grants FIFO waiters); take the failover path
            # instead of feeding the dead link.
            if self.health.is_dead(endpoint):
                rerouted = self._reroute(worker, txn.op.is_write)
                if rerouted is not None:
                    for __ in range(held):
                        pool.release()
                    self._trace_mark(
                        env, txn, f"recovery/failover/{endpoint}>{rerouted[0]}"
                    )
                    endpoint, path = rerouted
                    self.stats.failovers += 1
                    continue
            # Service phase: each attempt executes a fresh clone so an
            # abandoned wreck draining through the dead link cannot race
            # the retransmission for the caller's transaction object.
            attempt_txn = Transaction(
                txn.op, txn.size_bytes, src_core=txn.src_core,
                target=txn.target, flow_id=txn.flow_id,
            )
            done = env.process(self.executor.execute(attempt_txn, path))
            abandoned = False
            if attempt >= config.max_retries:
                yield done
            else:
                while not done.triggered:
                    yield env.any_of(
                        [done, env.timeout(config.service_timeout_ns)]
                    )
                    if done.triggered:
                        break
                    # Credits held past the deadline: a credit-return
                    # timeout, the transport-level detection input.
                    self.stats.credit_timeouts += 1
                    self.health.credit_timeout(endpoint, env.now)
                    if not self.health.is_dead(endpoint):
                        continue
                    rerouted = self._reroute(worker, txn.op.is_write)
                    if rerouted is None:
                        continue
                    abandoned = True
                    break
            if abandoned:
                # The wreck keeps its credits; they return home when the
                # dead link's trickle finally drains it — or earlier via
                # reclamation, in which case this late release is
                # forgiven instead of double-counted.
                def _release_wreck(event, pool=pool, lines=lines):
                    for __ in range(lines):
                        pool.release()

                done.callbacks.append(_release_wreck)
                self._trace_mark(
                    env, txn, f"recovery/retransmit/{endpoint}>{rerouted[0]}"
                )
                self.stats.retries += 1
                self.stats.failovers += 1
                endpoint, path = rerouted
                attempt += 1
                continue
            for __ in range(lines):
                pool.release()
            txn.issued_ns = attempt_txn.issued_ns
            txn.completed_ns = attempt_txn.completed_ns
            self._account(endpoint, txn)
            return txn

    def _backoff(
        self, env, txn: Transaction, endpoint: str, attempt: int
    ) -> Generator[Event, None, None]:
        """Capped exponential backoff with deterministic jitter, traced."""
        tracer = env.tracer
        span = None
        if tracer is not None:
            span = tracer.begin(
                f"recovery/backoff/{endpoint}", "retry",
                f"{self.flow}/c{txn.src_core}",
                flow=self.flow, attempt=attempt,
            )
        yield env.timeout(self._backoff_ns(attempt - 1))
        if span is not None:
            tracer.end(span)

    def _account(self, endpoint: str, txn: Transaction) -> None:
        """Feed the telemetry registry one delivered transaction."""
        self.registry.record(
            self.router.platform.link(endpoint), txn.size_bytes,
            txn.op.is_write,
        )

    def _trace_mark(self, env, txn: Transaction, name: str) -> None:
        tracer = env.tracer
        if tracer is None:
            return
        span = tracer.begin(
            name, "retry", f"{self.flow}/c{txn.src_core}", flow=self.flow,
        )
        tracer.end(span)


@dataclass
class RecoveryInstallation:
    """What :func:`install` interposed: gates, monitors, reclamation."""

    resolver: PathResolver
    config: RecoveryConfig
    scheduler: ReclaimingCreditScheduler
    health: HealthMonitor
    router: FailoverRouter
    registry: CounterRegistry
    stats: RecoveryStats = field(default_factory=RecoveryStats)
    seed: int = 0
    _endpoints: List[str] = field(default_factory=list)
    _expected_gbps: Dict[str, float] = field(default_factory=dict)
    _probe_paths: Dict[str, CompiledPath] = field(default_factory=dict)
    _stopped: bool = False
    _reclaimed_deaths: set = field(default_factory=set)

    @property
    def active(self) -> bool:
        return True

    def gate(
        self,
        executor: TransactionExecutor,
        flow: str,
        worker: Optional[int] = None,
    ) -> RecoveryGate:
        """Wrap an issuer's executor for one flow (and failover identity)."""
        rng = SplitRng(self.seed).stream(
            f"recovery/backoff/{flow}/{worker if worker is not None else '-'}"
        )
        return RecoveryGate(
            executor, self.scheduler, flow, self.health, self.router,
            self.config, rng, self.stats, self.registry, worker=worker,
        )

    def assert_credits_home(self) -> None:
        """Post-drain conservation check (extended for reclamation)."""
        self.scheduler.assert_credits_home()

    # ------------------------------------------------------------- monitoring

    def watch(
        self,
        endpoint: str,
        expected_gbps: float,
        probe_path: CompiledPath,
    ) -> None:
        """Put one endpoint under health monitoring.

        ``expected_gbps`` is the demand homed at the endpoint (the
        utilization-collapse baseline); ``probe_path`` carries the active
        probes that decide revival.
        """
        if endpoint not in self._endpoints:
            self._endpoints.append(endpoint)
        self._expected_gbps[endpoint] = float(expected_gbps)
        self._probe_paths[endpoint] = probe_path

    def start(self) -> None:
        """Start the monitor and prober processes (DES interposers)."""
        env = self.resolver.env
        env.process(self._monitor_loop())
        env.process(self._probe_loop())

    def stop(self) -> None:
        """Ask the loops to exit at their next wake-up (lets a run drain)."""
        self._stopped = True

    def _delivered_bytes(self, endpoint: str) -> int:
        counters = self.registry.get(endpoint)
        if counters is None:
            return 0
        return counters.read_bytes + counters.write_bytes

    def _monitor_loop(self) -> Generator[Event, None, None]:
        """Sample per-endpoint delivered throughput; reclaim due credits."""
        env = self.resolver.env
        config = self.config
        last = {endpoint: 0 for endpoint in self._endpoints}
        while not self._stopped:
            yield env.timeout(config.probe_interval_ns)
            if self._stopped:
                return
            now = env.now
            for endpoint in self._endpoints:
                total = self._delivered_bytes(endpoint)
                delivered = total - last.get(endpoint, 0)
                last[endpoint] = total
                expected = self._expected_gbps[endpoint] * config.probe_interval_ns
                if expected <= 0.0:
                    continue
                self.health.observe_window(
                    endpoint, now,
                    delivered / expected,
                    queued=self.scheduler.queued_demand(endpoint),
                )
            # Credit reclamation: drain deadline after each DEAD verdict.
            for index, transition in enumerate(self.health.transitions):
                if transition.state is not LinkHealth.DEAD:
                    continue
                if index in self._reclaimed_deaths:
                    continue
                if now < transition.t_ns + config.drain_deadline_ns:
                    continue
                self._reclaimed_deaths.add(index)
                reclaimed = self.scheduler.reclaim_endpoint(transition.endpoint)
                self.stats.reclaimed_credits += reclaimed

    def _probe_loop(self) -> Generator[Event, None, None]:
        """Actively probe DEAD endpoints; probes alone decide revival."""
        env = self.resolver.env
        config = self.config
        prober = TransactionExecutor(env, flow="recovery-probe")
        self._probe_executor = prober
        while not self._stopped:
            yield env.timeout(config.probe_interval_ns)
            if self._stopped:
                return
            for endpoint in list(self._endpoints):
                if not self.health.is_dead(endpoint):
                    continue
                path = self._probe_paths[endpoint]
                rate = endpoint_rate_gbps(self.resolver.platform, endpoint)
                budget_ns = config.probe_latency_factor * (
                    path.unloaded_ns + config.probe_size_bytes / rate
                )
                txn = Transaction(
                    OpKind.READ, config.probe_size_bytes, src_core=0,
                )
                started = env.now
                yield env.process(prober.execute(txn, path))
                self.stats.probes_sent += 1
                self.health.observe_probe(
                    endpoint, env.now, env.now - started <= budget_ns
                )

    def forgiveness_settled(self) -> bool:
        """True when every reclaimed credit's late return has arrived."""
        return all(
            getattr(pool, "forgiven_pending", 0) == 0
            for pool in self.scheduler.pools.values()
        )


def install(
    resolver: PathResolver,
    config: NetStackConfig,
    recovery: RecoveryConfig,
    flows: Sequence[str] = (),
    endpoints: Sequence[str] = (),
    seed: int = 0,
):
    """Interpose the stack with recovery into the resolver's environment.

    With ``recovery.enabled`` False this *is*
    :func:`repro.net.inject.install` — the same object, the same
    (absence of) interposers, bit-identical behavior. With recovery on,
    the credit scheduler becomes a :class:`ReclaimingCreditScheduler`,
    gates become :class:`RecoveryGate`, and the caller wires monitoring
    via :meth:`RecoveryInstallation.watch` + ``start()``.
    """
    if not recovery.enabled:
        return install_stack(resolver, config, flows=flows, endpoints=endpoints)
    if not config.credits:
        raise ConfigurationError(
            "recovery rides on the credit machinery; enable credits too"
        )
    if not flows:
        raise ConfigurationError(
            "installing recovery needs the competing flow names"
        )
    scheduler = ReclaimingCreditScheduler(
        resolver.env,
        resolver.platform,
        flows,
        config=config.credit_config,
        credit_scales=config.credit_scales(),
    )
    for endpoint in endpoints:
        for flow in flows:
            scheduler.pool(endpoint, flow)
    health = HealthMonitor(recovery)
    registry = CounterRegistry()
    router = FailoverRouter(resolver.platform, health)
    return RecoveryInstallation(
        resolver=resolver,
        config=recovery,
        scheduler=scheduler,
        health=health,
        router=router,
        registry=registry,
        seed=seed,
    )


def fluid_health(
    platform,
    schedule,
    recovery: RecoveryConfig,
    endpoints: Sequence[str],
    until_ns: float,
    expected_share: float = 1.0,
) -> HealthMonitor:
    """Compile detection for the fluid backend.

    The fluid solver has no event loop to interpose on; its telemetry is
    the fault schedule's capacity-factor curve — exactly what a
    :class:`~repro.telemetry.counters.CounterRegistry` would integrate
    over each window. Sampling the factor at every probe interval and
    feeding the *same* :class:`HealthMonitor` the DES uses keeps the two
    backends' verdicts (state machine, thresholds, detection times)
    comparable by construction.
    """
    monitor = HealthMonitor(recovery)
    steps = int(until_ns / recovery.probe_interval_ns)
    for step in range(1, steps + 1):
        t_ns = step * recovery.probe_interval_ns
        derates = schedule.derates_at(t_ns)
        for endpoint in endpoints:
            factor = derates.get(f"{endpoint}:r", 1.0)
            monitor.observe_window(
                endpoint, t_ns, factor * expected_share, queued=True
            )
            if monitor.is_dead(endpoint):
                # What an active probe would see: a link back above the
                # degraded threshold serves a probe within its latency
                # budget. This keeps flapping-link re-admission
                # comparable across the backends.
                monitor.observe_probe(
                    endpoint, t_ns,
                    healthy=factor >= recovery.degraded_threshold,
                )
    return monitor
