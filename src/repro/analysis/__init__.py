"""Measurement analysis: latency statistics, time series, report rendering."""

from repro.analysis.histogram import LatencyHistogram
from repro.analysis.export import curves_to_csv, rows_to_csv, timeseries_to_csv
from repro.analysis.report import format_pair, render_table
from repro.analysis.stats import LatencyStats, SampleReservoir, percentile
from repro.analysis.timeseries import TimeSeries

__all__ = [
    "LatencyStats",
    "SampleReservoir",
    "percentile",
    "TimeSeries",
    "render_table",
    "format_pair",
    "rows_to_csv",
    "timeseries_to_csv",
    "curves_to_csv",
    "LatencyHistogram",
]
