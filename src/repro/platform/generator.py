"""Topology generator: presets become points in a generated design space.

The paper's §3 calibrates a *fixed* I/O-die mesh for two processors; its §5
argues the payoff of a chiplet-network simulator is exploring alternatives.
:class:`TopologyGen` is that generalization: a declarative spec — mesh
dimensions, CCD/UMC/IO-hub placement, optional 3D layers with sparse
vertical (TSV) pillars, per-link weight and width encodings — that
*materializes* into the exact same :class:`~repro.platform.topology.
PlatformSpec` / :class:`~repro.platform.topology.Platform` objects the
presets construct directly. A generator spec whose geometry matches a
preset's re-derives it bit-for-bit (asserted with graph/link equality in
``tests/test_platform_generator.py``), so the presets are two points in the
generated space rather than privileged code paths.

Calibration is *inherited*, not invented: every generated topology names a
``base`` preset spec that donates its latency/bandwidth calibration, and the
generator only reshapes geometry (and scales the NoC width via
``width_factor``). That keeps generated platforms anchored to measured
hardware the way RapidChiplet anchors its design sweeps to proxy models.

For routing-aware models, :meth:`TopologyGen.router_grid` exposes the
topology as a :class:`~repro.noc.routing.RouterGrid` and
:meth:`TopologyGen.noc_routing` bundles grid + policy + component
placements + per-link capacities into a :class:`NocRouting` — the object
the fluid fabric (:class:`repro.core.fabric.FabricModel`) and the DES
router (:class:`repro.noc.router.AdaptiveMeshNetwork`) both compile.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ConfigurationError, TopologyError
from repro.noc.routing import Coord3, RouterGrid, RoutingPolicy
from repro.platform.presets import EPYC_7302_SPEC, EPYC_9634_SPEC
from repro.platform.topology import Coord, Platform, PlatformSpec

__all__ = [
    "TopologyGen",
    "NocRouting",
    "EPYC_7302_GEN",
    "EPYC_9634_GEN",
    "CATALOG",
    "catalog_names",
    "from_catalog",
]


@dataclass(frozen=True)
class NocRouting:
    """A compiled routing view of one generated topology.

    Everything a backend needs to route CCD→UMC traffic through the mesh
    explicitly: the router grid, the policy, where each component's mesh
    stop sits (3D coordinates, indexed by component id), per-directed-link
    capacities, and per-axis hop latencies. Produced by
    :meth:`TopologyGen.noc_routing`; consumed by the fluid fabric's
    per-link channels and the DES :class:`~repro.noc.router.
    AdaptiveMeshNetwork`.
    """

    grid: RouterGrid
    policy: RoutingPolicy
    ccd_coords3: Tuple[Coord3, ...]
    umc_coords3: Tuple[Coord3, ...]
    link_read_gbps: float
    link_write_gbps: float
    x_hop_ns: float
    y_hop_ns: float
    z_hop_ns: float


@dataclass(frozen=True)
class TopologyGen:
    """A generated chiplet-server topology (one point of the design space).

    Geometry fields left at ``None`` inherit the ``base`` preset's values,
    so ``TopologyGen(name=..., base=SPEC)`` with no overrides re-derives
    the preset exactly. Component counts rescale the dependent Table-1
    quantities (cores, CCXs, total L3) by the base's per-CCD ratios.

    3D variants add ``layers`` stacked copies of the X×Y mesh joined by
    vertical links at the sparse ``pillars`` columns; ``ccd_layers`` /
    ``umc_layers`` lift component placements off the base layer. The
    materialized :class:`PlatformSpec` projects placements onto the base
    layer (its analytic latency model is 2D); the full 3D geometry lives
    in :meth:`router_grid` and drives the routed backends.
    """

    name: str
    base: PlatformSpec
    mesh_x: Optional[int] = None
    mesh_y: Optional[int] = None
    layers: int = 1
    pillars: Tuple[Coord, ...] = ()
    ccd_count: Optional[int] = None
    ccd_coords: Optional[Tuple[Coord, ...]] = None
    ccd_layers: Optional[Tuple[int, ...]] = None
    umc_count: Optional[int] = None
    umc_coords: Optional[Tuple[Coord, ...]] = None
    umc_layers: Optional[Tuple[int, ...]] = None
    io_hub_coord: Optional[Coord] = None
    x_weight: int = 1
    y_weight: int = 1
    z_weight: int = 3
    #: NoC capacity multiplier: generated meshes narrower (or wider) than
    #: the base I/O die scale its calibrated aggregate NoC bandwidth.
    width_factor: float = 1.0
    #: Vertical (TSV) hop latency as a multiple of the mean in-layer hop.
    vertical_hop_factor: float = 1.5

    def __post_init__(self) -> None:
        grid = self.router_grid()  # validates dims/layers/pillars/weights
        if self.width_factor <= 0:
            raise ConfigurationError(
                f"{self.name}: width_factor must be positive, "
                f"got {self.width_factor}"
            )
        if self.vertical_hop_factor <= 0:
            raise ConfigurationError(
                f"{self.name}: vertical_hop_factor must be positive, "
                f"got {self.vertical_hop_factor}"
            )
        for count, what in (
            (self._ccd_count, "ccd_count"),
            (self._umc_count, "umc_count"),
        ):
            if count < 1:
                raise ConfigurationError(
                    f"{self.name}: {what} must be >= 1, got {count}"
                )
        for coord3 in self.ccd_coords3 + self.umc_coords3 + (
            self._io_hub_coord + (0,),
        ):
            if not grid.contains(coord3):
                raise TopologyError(
                    f"{self.name}: component stop {coord3} outside "
                    f"{grid.width}x{grid.height}x{grid.layers} grid"
                )
        for layers, what in (
            (self.ccd_layers, "ccd_layers"),
            (self.umc_layers, "umc_layers"),
        ):
            if layers is not None and any(
                z < 0 or z >= self.layers for z in layers
            ):
                raise TopologyError(
                    f"{self.name}: {what} {layers} outside "
                    f"{self.layers} layers"
                )

    # ------------------------------------------------------ resolved geometry

    @property
    def _mesh_grid(self) -> Coord:
        return (
            self.mesh_x if self.mesh_x is not None else self.base.mesh_grid[0],
            self.mesh_y if self.mesh_y is not None else self.base.mesh_grid[1],
        )

    @property
    def _ccd_count(self) -> int:
        return (
            self.ccd_count if self.ccd_count is not None
            else self.base.ccd_count
        )

    @property
    def _umc_count(self) -> int:
        return (
            self.umc_count if self.umc_count is not None
            else self.base.umc_count
        )

    @property
    def _ccd_coords(self) -> Tuple[Coord, ...]:
        return (
            self.ccd_coords if self.ccd_coords is not None
            else self.base.ccd_coords
        )

    @property
    def _umc_coords(self) -> Tuple[Coord, ...]:
        return (
            self.umc_coords if self.umc_coords is not None
            else self.base.umc_coords
        )

    @property
    def _io_hub_coord(self) -> Coord:
        return (
            self.io_hub_coord if self.io_hub_coord is not None
            else self.base.io_hub_coord
        )

    def _coords3(
        self,
        count: int,
        coords: Tuple[Coord, ...],
        layers: Optional[Tuple[int, ...]],
    ) -> Tuple[Coord3, ...]:
        """Per-component 3D mesh stops, cycling placements like Platform."""
        out = []
        for index in range(count):
            x, y = coords[index % len(coords)]
            z = layers[index % len(layers)] if layers else 0
            out.append((x, y, z))
        return tuple(out)

    @property
    def ccd_coords3(self) -> Tuple[Coord3, ...]:
        """3D mesh stop of every CCD's GMI port, indexed by ccd id."""
        return self._coords3(self._ccd_count, self._ccd_coords, self.ccd_layers)

    @property
    def umc_coords3(self) -> Tuple[Coord3, ...]:
        """3D mesh stop of every UMC, indexed by umc id."""
        return self._coords3(self._umc_count, self._umc_coords, self.umc_layers)

    # ----------------------------------------------------------- compilation

    def router_grid(self) -> RouterGrid:
        """The topology's router grid (validates grid parameters)."""
        width, height = self._mesh_grid
        return RouterGrid(
            width=width,
            height=height,
            layers=self.layers,
            pillars=self.pillars,
            x_weight=self.x_weight,
            y_weight=self.y_weight,
            z_weight=self.z_weight,
        )

    def materialize(self) -> PlatformSpec:
        """The equivalent :class:`PlatformSpec` (preset-identical geometry).

        Scales cores/CCXs/L3 by the base's per-CCD ratios when the CCD
        count changes, and the calibrated NoC bandwidth by
        ``width_factor``. With every override left at its default this
        returns a spec *equal* to ``base`` — the preset re-derivation the
        tests assert.
        """
        base = self.base
        ccd_count = self._ccd_count
        ccx_count = base.ccx_per_ccd * ccd_count
        bandwidth = base.bandwidth
        if self.width_factor != 1.0:
            bandwidth = dataclasses.replace(
                bandwidth,
                noc_read_gbps=bandwidth.noc_read_gbps * self.width_factor,
                noc_write_gbps=bandwidth.noc_write_gbps * self.width_factor,
            )
        return dataclasses.replace(
            base,
            name=self.name,
            cores=base.cores_per_ccd * ccd_count,
            ccx_count=ccx_count,
            ccd_count=ccd_count,
            l3_total_bytes=base.l3_per_ccx_bytes * ccx_count,
            umc_count=self._umc_count,
            bandwidth=bandwidth,
            mesh_grid=self._mesh_grid,
            # Raw (uncycled) placement tuples, so a no-override generator
            # materializes a spec *equal* to its base preset; Platform
            # cycles them over component ids exactly as the 3D accessors do.
            ccd_coords=self._ccd_coords,
            umc_coords=self._umc_coords,
            io_hub_coord=self._io_hub_coord,
        )

    def platform(self) -> Platform:
        """Materialize all the way to a queryable :class:`Platform`."""
        return Platform(self.materialize())

    def hop_ns(self) -> Tuple[float, float, float]:
        """Per-axis hop latencies (x, y, z) inherited from the base."""
        lat = self.base.latency
        z_hop = (
            (lat.x_hop_ns + lat.y_hop_ns) / 2.0 * self.vertical_hop_factor
        )
        return (lat.x_hop_ns, lat.y_hop_ns, z_hop)

    def link_gbps(self) -> Tuple[float, float]:
        """Per-directed-mesh-link (read, write) capacity.

        The base calibration gives an *aggregate* NoC ceiling sized for
        ``base.ccd_count`` concurrent chiplets; one generated mesh link
        carries that aggregate's per-CCD slice, scaled by ``width_factor``.
        """
        bw = self.base.bandwidth
        share = self.width_factor / self.base.ccd_count
        return (bw.noc_read_gbps * share, bw.noc_write_gbps * share)

    def noc_routing(
        self, policy: RoutingPolicy = RoutingPolicy.ADAPTIVE
    ) -> NocRouting:
        """Compile the topology + a routing policy into a :class:`NocRouting`."""
        read_gbps, write_gbps = self.link_gbps()
        x_hop, y_hop, z_hop = self.hop_ns()
        return NocRouting(
            grid=self.router_grid(),
            policy=policy,
            ccd_coords3=self.ccd_coords3,
            umc_coords3=self.umc_coords3,
            link_read_gbps=read_gbps,
            link_write_gbps=write_gbps,
            x_hop_ns=x_hop,
            y_hop_ns=y_hop,
            z_hop_ns=z_hop,
        )

    def __repro_cache_key__(self) -> Tuple:
        # Every geometry knob plus the donor calibration, so sweep cells
        # keyed on a TopologyGen split whenever any of them changes.
        return (
            "topology-gen",
            self.name,
            self.base,
            self._mesh_grid,
            self.layers,
            self.pillars,
            self.ccd_coords3,
            self.umc_coords3,
            self._io_hub_coord,
            (self.x_weight, self.y_weight, self.z_weight),
            self.width_factor,
            self.vertical_hop_factor,
        )


#: The EPYC 7302 preset expressed as a generator point (no overrides).
EPYC_7302_GEN = TopologyGen(name="EPYC 7302", base=EPYC_7302_SPEC)

#: The EPYC 9634 preset expressed as a generator point (no overrides).
EPYC_9634_GEN = TopologyGen(name="EPYC 9634", base=EPYC_9634_SPEC)

#: Named topologies the ``repro explore`` sweep iterates. Ordered; keys are
#: CLI-facing names. ``squeeze-3x2`` narrows the mesh so victim and hog
#: share a row toward corner-stacked UMCs — the cell where adaptive routing
#: visibly beats XY. ``stacked-3d`` lifts memory onto a second layer over
#: two sparse TSV pillars.
CATALOG = {
    "epyc-7302": EPYC_7302_GEN,
    "epyc-9634": EPYC_9634_GEN,
    "squeeze-3x2": TopologyGen(
        name="squeeze-3x2",
        base=EPYC_7302_SPEC,
        ccd_count=2,
        ccd_coords=((0, 0), (1, 0)),
        umc_count=4,
        umc_coords=((2, 1),),
        io_hub_coord=(0, 1),
        width_factor=0.5,
    ),
    "stacked-3d": TopologyGen(
        name="stacked-3d",
        base=EPYC_9634_SPEC,
        ccd_count=4,
        ccd_coords=((0, 0), (2, 0), (0, 1), (2, 1)),
        umc_count=4,
        umc_coords=((0, 0), (2, 0)),
        umc_layers=(1, 1),
        layers=2,
        pillars=((0, 0), (2, 0)),
    ),
}


def catalog_names() -> Tuple[str, ...]:
    """The catalog's topology names, in sweep order."""
    return tuple(CATALOG)


def from_catalog(name: str) -> TopologyGen:
    """Look up a catalog topology by name (ConfigurationError if unknown)."""
    try:
        return CATALOG[name]
    except KeyError:
        raise ConfigurationError(
            f"unknown topology {name!r} (choose from {', '.join(CATALOG)})"
        ) from None
