"""§4 #2 exploration: OS structure scaling on the chiplet network.

Regenerates the shared-memory vs multikernel comparison and asserts its
shape: multikernel sustains several times the update throughput, shared
memory has the lower latency below the crossover, and adding replicas
(7302's 4 → 9634's 12 chiplets) taxes the multikernel's peak.
"""

from repro.experiments import os_scaling

from benchmarks.conftest import emit


def bench_os_scaling(benchmark, p7302, p9634):
    def sweep():
        return {p.name: os_scaling.run(p) for p in (p7302, p9634)}

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(os_scaling.render(results))
    for result in results.values():
        assert result.multikernel_scales_further
        assert result.multikernel_max_mops > 3 * result.shared_max_mops
        assert result.crossover_mops < result.shared_max_mops
    # More chiplets, more broadcast-apply tax: the 12-replica 9634 peaks
    # lower than the 4-replica 7302 despite newer silicon.
    assert (
        results["EPYC 9634"].multikernel_max_mops
        < results["EPYC 7302"].multikernel_max_mops
    )


def bench_multikernel_des_validation(benchmark, p7302):
    """The DES broadcast saturates exactly where the analytic model says."""
    from repro.osdesign.model import MultikernelDesign
    from repro.osdesign.simulate import simulate_multikernel

    design = MultikernelDesign(p7302)

    def saturate():
        return simulate_multikernel(p7302, 3 * design.max_mops(), updates=600)

    run = benchmark.pedantic(saturate, rounds=1, iterations=1)
    emit(
        f"multikernel DES saturation: {run.achieved_mops:.1f} Mops vs "
        f"analytic max {design.max_mops():.1f} Mops "
        f"(visibility mean {run.visibility.mean:.0f} ns when oversubscribed)"
    )
    import pytest

    assert run.achieved_mops == pytest.approx(design.max_mops(), rel=0.05)
