"""``repro chaos`` — graceful-degradation curves under dynamic fabric faults.

The paper's four idiosyncrasies all sharpen when the fabric degrades, and
real GMI/xGMI links flap and derate over time rather than failing once at
t=0. This experiment sweeps a representative dynamic fault schedule across
severities (0 = healthy, 1 = full depth) and reports, per severity, one
indicator per idiosyncrasy:

* **heterogeneous bandwidth domains** — whole-CPU streaming read bandwidth
  on the worst-case degraded fabric (fluid backend), plus which domain
  binds it;
* **sender-driven partitioning** — the fraction of its demand a paced
  victim on the faulted chiplet still receives against an unthrottled hog
  elsewhere (fluid backend);
* **extended paths / inconsistent BDPs** — average and P999 loaded latency
  of a chiplet streaming through its faulted GMI port while the schedule
  plays out mid-run (DES backend with interposed fault processes, strict
  invariant checking on).

Severity 0 compiles to the null schedule everywhere, so its row is
byte-identical to a run that never heard of faults — the property
``tests/test_failure_injection.py`` pins down.

Each severity is one independent runner cell, executed through the hardened
:func:`repro.runner.run_cells_detailed` (per-cell timeouts, retry, crash
recovery), so one pathological severity cannot take down the sweep.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.analysis.report import render_table
from repro.core.fabric import FabricModel
from repro.core.flows import Scope, StreamSpec
from repro.core.microbench import MicroBench
from repro.experiments.contention import (
    VICTIM_DEMAND_GBPS,
    contention_streams,
)
from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.platform.topology import Platform
from repro.runner import (
    Cell,
    CellResult,
    USE_DEFAULT_CACHE,
    run_cells_detailed,
)
from repro.transport.message import OpKind

__all__ = [
    "ChaosPoint", "SEVERITIES", "default_schedule", "run_point", "run",
    "render",
]

#: Default severity sweep: healthy first, then deepening degradation.
SEVERITIES: Tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0)

#: Demand of the paced victim stream in the partitioning probe (GB/s);
#: shared with the other contention-cell experiments.
_VICTIM_DEMAND_GBPS = VICTIM_DEMAND_GBPS

#: Snapshot time (ns) for the fluid probes: mid-derate, post-UMC-failure,
#: outside the stall window at every severity (severity only shortens the
#: stall, which starts at t=1400 in :func:`default_schedule`). The worst-case
#: fabric (``with_faults`` default) always contains the full-depth stall, so
#: it flatlines instead of degrading gracefully with severity.
_FLUID_PROBE_T_NS = 900.0


@dataclass(frozen=True)
class ChaosPoint:
    """One severity's graceful-degradation indicators."""

    severity: float
    cpu_read_gbps: float
    binding: str
    victim_share: float
    avg_ns: float
    p999_ns: float


def default_schedule(seed: int = 0) -> FaultSchedule:
    """A representative dynamic fault mix (times in ns, the DES clock).

    One slow-rolling GMI derate, a flapping NoC, a permanent UMC failure and
    a brief full GMI stall — every event targets channels that exist on all
    evaluated platforms, so the same schedule sweeps 7302 and 9634. The
    windows sit inside the first ~2 µs, where the DES probe's measurement
    interval lies.
    """
    return FaultSchedule(
        [
            FaultEvent.derate("gmi0:r", start=200.0, end=1200.0, factor=0.35),
            FaultEvent.flapping(
                "noc:r", start=0.0, end=2500.0, period=250.0, factor=0.5,
            ),
            FaultEvent.failure("umc0:r", start=700.0, factor=0.3),
            FaultEvent.stall("gmi0:r", start=1400.0, end=1700.0),
        ],
        seed=seed,
    )


def run_point(
    platform: Platform,
    severity: float,
    seed: int = 0,
    transactions_per_core: int = 200,
) -> ChaosPoint:
    """All four indicators at one severity (one independent runner cell)."""
    schedule = default_schedule(seed=seed).scaled(severity)

    # Fluid backend: the fabric as degraded mid-schedule.
    fabric = FabricModel.with_faults(platform, schedule, at_time=_FLUID_PROBE_T_NS)
    cpu_cores = StreamSpec.cores_for_scope(platform, Scope.CPU)
    scan = StreamSpec("scan", OpKind.READ, cpu_cores)
    cpu_read = fabric.achieved_gbps([scan])["scan"]
    binding = fabric.binding_channel([scan]) or "-"

    victim, hog = contention_streams(platform)
    victim_cores = victim.core_ids
    granted = fabric.achieved_gbps([victim, hog])["victim"]
    victim_share = granted / _VICTIM_DEMAND_GBPS

    # DES backend: the faulted chiplet streaming through its GMI port while
    # the schedule plays out mid-run. Strict mode guards the injected run.
    bench = MicroBench(platform, seed=seed)
    result = bench.loaded_latency(
        list(victim_cores),
        OpKind.READ,
        offered_gbps=None,
        transactions_per_core=transactions_per_core,
        fault_schedule=schedule,
        strict=True,
    )
    return ChaosPoint(
        severity=severity,
        cpu_read_gbps=cpu_read,
        binding=binding,
        victim_share=victim_share,
        avg_ns=result.stats.mean,
        p999_ns=result.stats.p999,
    )


def run(
    platform: Platform,
    severities: Sequence[float] = SEVERITIES,
    seed: int = 0,
    transactions_per_core: int = 200,
    jobs=None,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    fail_fast: bool = False,
    cache=USE_DEFAULT_CACHE,
) -> List[CellResult]:
    """Sweep severities; one hardened-runner cell per severity.

    Returns the structured :class:`~repro.runner.CellResult` list (submission
    order = severity order): with ``fail_fast=False`` a failed severity is
    reported in its row instead of aborting the sweep.
    """
    cells = [
        Cell(
            run_point,
            (platform, float(severity)),
            dict(seed=seed, transactions_per_core=transactions_per_core),
        )
        for severity in severities
    ]
    return run_cells_detailed(
        cells, jobs=jobs, timeout_s=timeout_s, retries=retries,
        fail_fast=fail_fast, cache=cache,
    )


def render(platform_name: str, results: Sequence[CellResult]) -> str:
    """The graceful-degradation table, one row per severity."""
    headers = [
        "severity", "CPU read GB/s", "binding", "victim share",
        "avg ns", "P999 ns",
    ]
    rows = []
    for result in results:
        if result.ok:
            point = result.value
            rows.append([
                f"{point.severity:.2f}",
                f"{point.cpu_read_gbps:.1f}",
                point.binding,
                f"{point.victim_share:.3f}",
                f"{point.avg_ns:.1f}",
                f"{point.p999_ns:.1f}",
            ])
        else:
            rows.append([
                f"cell {result.index}",
                f"FAILED ({result.failure.kind})",
                "-", "-", "-", "-",
            ])
    return render_table(
        headers, rows,
        title=f"Chaos sweep: graceful degradation ({platform_name})",
    )
