"""Tests for the fault-schedule model and its two backend compilations."""

import pytest

from repro.core.fabric import FabricModel
from repro.errors import FaultInjectionError
from repro.faults import FaultEvent, FaultKind, FaultSchedule, install
from repro.faults.inject import resolve_channel
from repro.faults.schedule import STALL_FACTOR
from repro.fluid.solver import Channel, FluidFlow, Policy
from repro.fluid.timeseries import DemandSchedule, FluidSimulator
from repro.sim.engine import Environment
from repro.transport.path import PathResolver


# --------------------------------------------------------------------------
# event and schedule validation


class TestValidation:
    def test_factor_bounds(self):
        with pytest.raises(FaultInjectionError):
            FaultEvent.derate("gmi0:r", start=0.0, end=1.0, factor=0.0)
        with pytest.raises(FaultInjectionError):
            FaultEvent.derate("gmi0:r", start=0.0, end=1.0, factor=1.5)

    def test_interval_must_be_nonempty(self):
        with pytest.raises(FaultInjectionError):
            FaultEvent.derate("gmi0:r", start=5.0, end=5.0, factor=0.5)
        with pytest.raises(FaultInjectionError):
            FaultEvent.stall("gmi0:r", start=5.0, end=2.0)

    def test_negative_start_rejected(self):
        with pytest.raises(FaultInjectionError):
            FaultEvent.failure("noc:r", start=-1.0)

    def test_permanent_failure_has_no_end(self):
        with pytest.raises(FaultInjectionError):
            FaultEvent(
                FaultKind.PERMANENT_FAILURE, "noc:r", start=0.0, end=10.0
            )

    def test_flapping_needs_period_and_duty(self):
        with pytest.raises(FaultInjectionError):
            FaultEvent(
                FaultKind.FLAPPING, "noc:r", start=0.0, end=10.0,
                flap_period=0.0,
            )
        with pytest.raises(FaultInjectionError):
            FaultEvent.flapping(
                "noc:r", start=0.0, end=10.0, period=2.0, duty=1.0
            )

    def test_severity_bounds(self):
        with pytest.raises(FaultInjectionError):
            FaultSchedule([], severity=1.5)
        with pytest.raises(FaultInjectionError):
            FaultSchedule([]).scaled(-0.1)


# --------------------------------------------------------------------------
# factor queries


class TestFactors:
    def test_factor_timeline(self):
        schedule = FaultSchedule(
            [FaultEvent.derate("gmi0:r", start=10.0, end=20.0, factor=0.4)]
        )
        assert schedule.factor_at("gmi0:r", 5.0) == 1.0
        assert schedule.factor_at("gmi0:r", 10.0) == pytest.approx(0.4)
        assert schedule.factor_at("gmi0:r", 19.9) == pytest.approx(0.4)
        assert schedule.factor_at("gmi0:r", 20.0) == 1.0
        assert schedule.factor_at("unrelated:r", 15.0) == 1.0

    def test_overlapping_faults_multiply(self):
        schedule = FaultSchedule([
            FaultEvent.derate("noc:r", start=0.0, end=10.0, factor=0.5),
            FaultEvent.derate("noc:r", start=5.0, end=15.0, factor=0.5),
        ])
        assert schedule.factor_at("noc:r", 2.0) == pytest.approx(0.5)
        assert schedule.factor_at("noc:r", 7.0) == pytest.approx(0.25)
        assert schedule.factor_at("noc:r", 12.0) == pytest.approx(0.5)

    def test_permanent_failure_never_ends(self):
        schedule = FaultSchedule([FaultEvent.failure("umc0:r", start=3.0)])
        assert schedule.factor_at("umc0:r", 1e12) == pytest.approx(0.05)

    def test_derates_at_and_worst(self):
        schedule = FaultSchedule([
            FaultEvent.derate("gmi0:r", start=0.0, end=10.0, factor=0.6),
            FaultEvent.derate("gmi1:r", start=20.0, end=30.0, factor=0.3),
        ])
        assert schedule.derates_at(5.0) == {"gmi0:r": pytest.approx(0.6)}
        worst = schedule.worst_derates()
        assert worst["gmi0:r"] == pytest.approx(0.6)
        assert worst["gmi1:r"] == pytest.approx(0.3)


# --------------------------------------------------------------------------
# severity scaling


class TestSeverity:
    def test_zero_severity_is_null(self):
        schedule = FaultSchedule([
            FaultEvent.derate("gmi0:r", start=0.0, end=10.0, factor=0.2),
            FaultEvent.stall("noc:r", start=5.0, end=8.0),
        ])
        null = schedule.scaled(0.0)
        assert null.is_null
        assert null.channels == []
        assert null.factor_at("gmi0:r", 5.0) == 1.0
        assert null.worst_derates() == {}
        assert not schedule.is_null

    def test_depth_interpolates(self):
        schedule = FaultSchedule(
            [FaultEvent.derate("gmi0:r", start=0.0, end=10.0, factor=0.2)]
        )
        assert schedule.scaled(0.5).factor_at("gmi0:r", 5.0) == pytest.approx(
            1.0 - 0.5 * 0.8
        )
        assert schedule.scaled(1.0).factor_at("gmi0:r", 5.0) == pytest.approx(
            0.2
        )

    def test_stall_scales_duration_not_depth(self):
        schedule = FaultSchedule(
            [FaultEvent.stall("gmi0:r", start=100.0, end=300.0)]
        )
        half = schedule.scaled(0.5)
        assert half.stall_windows("gmi0:r") == [(100.0, 200.0)]
        # Depth stays the full stall factor at any nonzero severity.
        assert half.factor_at("gmi0:r", 150.0) == pytest.approx(STALL_FACTOR)

    def test_scaled_is_rescalable(self):
        schedule = FaultSchedule(
            [FaultEvent.stall("gmi0:r", start=0.0, end=100.0)]
        )
        # scaled() derives from the original events, so re-scaling up after
        # scaling down restores the full window.
        assert schedule.scaled(0.25).scaled(1.0).stall_windows("gmi0:r") == [
            (0.0, 25.0)
        ]


# --------------------------------------------------------------------------
# flapping determinism


class TestFlapping:
    def test_same_seed_same_curve(self):
        def curve(seed):
            schedule = FaultSchedule(
                [FaultEvent.flapping(
                    "noc:r", start=0.0, end=100.0, period=7.0, factor=0.5
                )],
                seed=seed,
            )
            return [schedule.factor_at("noc:r", t * 0.5) for t in range(200)]

        assert curve(1) == curve(1)
        assert curve(1) != curve(2)

    def test_flap_curve_stable_under_unrelated_edits(self):
        flap = FaultEvent.flapping(
            "noc:r", start=0.0, end=50.0, period=5.0, factor=0.5
        )
        alone = FaultSchedule([flap])
        with_extra = FaultSchedule(
            [flap, FaultEvent.derate("gmi0:r", 0.0, 10.0, 0.5)]
        )
        for t in range(0, 100):
            assert alone.factor_at("noc:r", t * 0.5) == with_extra.factor_at(
                "noc:r", t * 0.5
            )

    def test_duty_cycle_respected(self):
        schedule = FaultSchedule(
            [FaultEvent.flapping(
                "noc:r", start=0.0, end=1000.0, period=10.0,
                factor=0.5, duty=0.3,
            )]
        )
        samples = [schedule.factor_at("noc:r", t * 0.25) for t in range(4000)]
        down = sum(1 for s in samples if s < 1.0) / len(samples)
        assert 0.2 < down < 0.4


# --------------------------------------------------------------------------
# fluid-backend compilation


class TestFluidBackend:
    def test_with_faults_matches_static_derates(self, p7302):
        schedule = FaultSchedule(
            [FaultEvent.derate("gmi0:r", start=0.0, end=10.0, factor=0.5)]
        )
        faulted = FabricModel.with_faults(p7302, schedule)
        static = FabricModel(p7302, derates={"gmi0:r": 0.5})
        assert (
            faulted.channel("gmi0:r").capacity_gbps
            == static.channel("gmi0:r").capacity_gbps
        )

    def test_with_faults_null_schedule_is_healthy(self, p7302):
        null = FaultSchedule([
            FaultEvent.derate("gmi0:r", 0.0, 10.0, 0.5)
        ]).scaled(0.0)
        assert (
            FabricModel.with_faults(p7302, null).channel("gmi0:r").capacity_gbps
            == FabricModel(p7302).channel("gmi0:r").capacity_gbps
        )

    def test_capacity_factors_drive_fluid_simulator(self):
        link = Channel("link", 10.0)
        flow = FluidFlow("f", 10.0, [(link, 1.0)])
        schedule = FaultSchedule(
            [FaultEvent.derate("link", start=0.5, end=1.0, factor=0.4)]
        )
        sim = FluidSimulator(
            [flow],
            {"f": DemandSchedule(10.0)},
            policy=Policy.MAX_MIN,
            dt_s=0.1,
            capacity_schedules=schedule.capacity_factors(),
            strict=True,
        )
        trace = sim.run(1.0)["f"]
        # Samples land at step*dt; index instead of keying on floats.
        assert trace.achieved_gbps[2] == pytest.approx(10.0)   # t=0.2
        assert trace.achieved_gbps[7] == pytest.approx(4.0)    # t=0.7


# --------------------------------------------------------------------------
# DES-backend compilation


def _gmi_read_server(p7302):
    env = Environment()
    resolver = PathResolver(env, p7302, seed=0)
    return env, resolver, resolve_channel(resolver, "gmi0:r")


class TestDesBackend:
    def test_rate_reshape_applies_at_change_points(self, p7302):
        env, resolver, server = _gmi_read_server(p7302)
        base = server.gbps
        schedule = FaultSchedule(
            [FaultEvent.derate("gmi0:r", start=100.0, end=300.0, factor=0.25)]
        )
        assert install(resolver, schedule)
        env.run(until=50.0)
        assert server.gbps == base
        env.run(until=200.0)
        assert server.gbps == pytest.approx(base * 0.25)
        env.run(until=400.0)
        assert server.gbps == pytest.approx(base)

    def test_stall_seizes_all_lanes(self, p7302):
        env, resolver, server = _gmi_read_server(p7302)
        schedule = FaultSchedule(
            [FaultEvent.stall("gmi0:r", start=100.0, end=200.0)]
        )
        install(resolver, schedule)
        env.run(until=150.0)
        assert server.resource.count == server.resource.capacity
        env.run(until=250.0)
        assert server.resource.count == 0

    def test_null_schedule_installs_nothing(self, p7302):
        env, resolver, __ = _gmi_read_server(p7302)
        schedule = FaultSchedule(
            [FaultEvent.stall("gmi0:r", start=0.0, end=100.0)]
        ).scaled(0.0)
        assert install(resolver, schedule) == []
        env.run()
        assert env.now == 0.0

    def test_unknown_channel_rejected_eagerly(self, p7302):
        env, resolver, __ = _gmi_read_server(p7302)
        for channel in ("gmi99:r", "umc99:w", "bogus", "ccx0:r"):
            with pytest.raises(FaultInjectionError):
                install(
                    resolver,
                    FaultSchedule([
                        FaultEvent.derate(channel, 0.0, 10.0, 0.5)
                    ]),
                )

    def test_xgmi_resolves_only_with_remote_socket(self, p7302, p9634):
        assert p7302.has_remote_socket
        env = Environment()
        resolver = PathResolver(env, p7302, seed=0)
        assert resolve_channel(resolver, "xgmi:r") is not None
        assert not p9634.has_remote_socket
        single = PathResolver(Environment(), p9634, seed=0)
        with pytest.raises(FaultInjectionError):
            resolve_channel(single, "xgmi:r")
