"""Content-addressed on-disk cache for experiment cells.

A cell is a pure function of its arguments (the runner's determinism
contract), so its result can be keyed by *content*: the cache key is a
SHA-256 over a canonical encoding of ``(code fingerprint, engine variant,
cell function, args, kwargs)``. The engine variant
(:func:`engine_variant`) captures the :data:`DES_SHARDS_ENV_VAR` switch,
so serial and sharded runs of the same cell — different documented
approximations — never share an entry.
The code fingerprint hashes every ``repro`` source file,
so any edit to the package invalidates the whole store — a hit can only
ever return what re-running the cell would have produced.

Keys must be stable across processes and machines: :func:`stable_bytes`
encodes values structurally (dataclasses by field order, dicts sorted by
encoded key, sets sorted, floats as IEEE bytes, arrays as dtype+shape+raw
bytes) instead of relying on ``pickle``'s representation or on hash
randomization. Values that cannot be encoded make the cell *uncacheable*
— never an error.

The store is a directory (default ``.repro-cache/``, override with
:data:`CACHE_DIR_ENV_VAR`) of pickle files named by key, fanned out over
256 subdirectories. Writes go through a temp file + :func:`os.replace`, so
concurrent ``--jobs`` workers and parallel sweeps can share one store
without locks: a torn read is impossible, and the worst race is two
processes computing the same value and one overwrite winning.

The CLI enables a process-wide default cache (see
:func:`set_default_cache`); plain library use stays uncached unless the
caller passes a cache to the runner or sets :data:`CACHE_ENV_VAR`.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pickle
import struct
import tempfile
import time
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple

__all__ = [
    "CACHE_DIR_ENV_VAR",
    "CACHE_ENV_VAR",
    "DES_SHARDS_ENV_VAR",
    "RECOVERY_ENV_VAR",
    "CacheStats",
    "ResultCache",
    "Uncacheable",
    "cache_enabled_by_env",
    "cell_key",
    "code_fingerprint",
    "default_cache",
    "engine_variant",
    "recovery_variant",
    "set_default_cache",
    "stable_bytes",
]

#: Truthy/falsy switch for the *default* cache ("0"/"off"/"false"/"no"
#: disable it; anything else, including unset, leaves it available).
CACHE_ENV_VAR = "REPRO_CACHE"

#: Overrides the on-disk store location (default ``.repro-cache/``).
CACHE_DIR_ENV_VAR = "REPRO_CACHE_DIR"

#: Sharded-engine switch (see :mod:`repro.sim.sharded`): when set, DES
#: experiment cells run on the sharded engine with this many shards. Part
#: of every cache key via :func:`engine_variant`.
DES_SHARDS_ENV_VAR = "REPRO_DES_SHARDS"

#: Recovery-layer switch (see :mod:`repro.net.recovery`): when truthy, fault
#: experiments run with the fault-reactive recovery layer enabled. Part of
#: every cache key via :func:`recovery_variant`, so recovery-on and
#: recovery-off cells can never collide in the content-addressed store.
RECOVERY_ENV_VAR = "REPRO_NET_RECOVERY"

_DEFAULT_ROOT = ".repro-cache"

_FALSY = {"0", "off", "false", "no"}


def engine_variant(raw: Optional[str] = None) -> Tuple[str, Any]:
    """The DES engine variant the environment selects, as a key component.

    ``("serial", 1)`` when :data:`DES_SHARDS_ENV_VAR` is unset or empty,
    ``("sharded", N)`` when it names a shard count. A cell computed on one
    engine variant must never satisfy a lookup for another — the sharded
    engine is a documented approximation of the serial one, and its shard
    count changes the partition — so this tuple is folded into every
    cache key. An unparsable value keys on the raw string (a deliberate
    miss, never an exception: the experiment layer owns validation).

    ``raw`` substitutes for the environment variable's value: the service
    computes keys for a job's *requested* variant without mutating the
    process environment a concurrently running batch depends on.
    """
    if raw is None:
        raw = os.environ.get(DES_SHARDS_ENV_VAR, "")
    raw = raw.strip()
    if not raw:
        return ("serial", 1)
    try:
        return ("sharded", int(raw))
    except ValueError:
        return ("sharded", raw)


def recovery_variant(raw: Optional[str] = None) -> Tuple[str, Any]:
    """The recovery-layer variant the environment selects, as a key component.

    ``("recovery", "off")`` when :data:`RECOVERY_ENV_VAR` is unset or
    falsy, ``("recovery", <raw value>)`` otherwise. Recovery changes what a
    fault experiment measures (detection, reclamation, failover), so its
    cells must never satisfy lookups from the fault-oblivious stack; the
    raw value keys any future tuning knobs encoded in the variable.
    ``raw`` substitutes for the environment value, exactly as in
    :func:`engine_variant`.
    """
    if raw is None:
        raw = os.environ.get(RECOVERY_ENV_VAR, "")
    raw = raw.strip()
    if not raw or raw.lower() in _FALSY:
        return ("recovery", "off")
    return ("recovery", raw)


def cell_key(
    fn: Any,
    args: Tuple[Any, ...],
    kwargs: Dict[str, Any],
    *,
    engine_raw: Optional[str] = None,
    recovery_raw: Optional[str] = None,
) -> Optional[str]:
    """Content-address one cell: SHA-256 over its canonical encoding.

    The key covers the code fingerprint, the engine and recovery variants
    (from the environment unless ``engine_raw``/``recovery_raw`` override
    them), and the cell itself. None when any input has no stable encoding
    — such a cell is uncacheable *and* un-dedupable, never an error.
    """
    try:
        payload = stable_bytes(
            (
                code_fingerprint(),
                engine_variant(engine_raw),
                recovery_variant(recovery_raw),
                fn, args, kwargs,
            )
        )
    except Uncacheable:
        return None
    return hashlib.sha256(payload).hexdigest()


class Uncacheable(Exception):
    """Raised by :func:`stable_bytes` for values with no stable encoding."""


# ------------------------------------------------------------- stable keys


def _encode(value: Any, out: list) -> None:
    """Append a canonical, type-tagged encoding of ``value`` to ``out``.

    Deliberately *not* pickle: pickling is sensitive to memoization layout
    and dict insertion order, and ``hash()`` is randomized per process.
    """
    if value is None:
        out.append(b"N")
    elif isinstance(value, bool):
        out.append(b"T" if value else b"F")
    elif isinstance(value, int):
        text = str(value).encode()
        out.append(b"i%d:" % len(text) + text)
    elif isinstance(value, float):
        out.append(b"f" + struct.pack("!d", value))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(b"s%d:" % len(raw) + raw)
    elif isinstance(value, bytes):
        out.append(b"b%d:" % len(value) + value)
    elif isinstance(value, enum.Enum):
        _encode((type(value).__qualname__, value.name), out)
    elif isinstance(value, (list, tuple)):
        out.append(b"l(")
        for item in value:
            _encode(item, out)
        out.append(b")")
    elif isinstance(value, (set, frozenset)):
        encoded = []
        for item in value:
            chunk: list = []
            _encode(item, chunk)
            encoded.append(b"".join(chunk))
        out.append(b"e(")
        out.extend(sorted(encoded))
        out.append(b")")
    elif isinstance(value, dict):
        entries = []
        for key, item in value.items():
            key_chunk: list = []
            _encode(key, key_chunk)
            item_chunk: list = []
            _encode(item, item_chunk)
            entries.append((b"".join(key_chunk), b"".join(item_chunk)))
        out.append(b"d(")
        for key_bytes, item_bytes in sorted(entries):
            out.append(key_bytes)
            out.append(item_bytes)
        out.append(b")")
    elif hasattr(value, "__repro_cache_key__"):
        # Non-dataclass domain objects (e.g. Platform) opt in by returning
        # a stable surrogate that rebuilds them deterministically.
        out.append(b"k")
        _encode(type(value).__qualname__, out)
        out.append(b"(")
        _encode(value.__repro_cache_key__(), out)
        out.append(b")")
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        out.append(b"c")
        _encode(type(value).__qualname__, out)
        out.append(b"(")
        for field in dataclasses.fields(value):
            _encode(getattr(value, field.name), out)
        out.append(b")")
    elif callable(value) and hasattr(value, "__qualname__"):
        # Callables are identified by *importable* name. Lambdas and nested
        # functions all share one qualname per definition site, so keying
        # them by name would make distinct closures collide (in the cache
        # and in batch dedup) — they are uncacheable instead. A bound
        # method's identity includes its receiver.
        module = getattr(value, "__module__", None)
        qualname = value.__qualname__
        if module is None:
            raise Uncacheable(f"callable without a module: {value!r}")
        if "<locals>" in qualname or "<lambda>" in qualname:
            raise Uncacheable(
                f"callable is not module-level (no stable identity): {value!r}"
            )
        receiver = getattr(value, "__self__", None)
        if receiver is not None:
            _encode((module, qualname, receiver), out)
        else:
            _encode((module, qualname), out)
    elif type(value).__module__ == "numpy" and hasattr(value, "tobytes"):
        # ndarrays and numpy scalars, without importing numpy here.
        dtype = getattr(value, "dtype", None)
        shape = getattr(value, "shape", ())
        out.append(b"a")
        _encode((str(dtype), tuple(shape)), out)
        out.append(value.tobytes())
    else:
        raise Uncacheable(
            f"no stable encoding for {type(value).__qualname__}: {value!r}"
        )


def stable_bytes(value: Any) -> bytes:
    """Canonical byte encoding of ``value`` (raises :class:`Uncacheable`)."""
    out: list = []
    _encode(value, out)
    return b"".join(out)


_fingerprint: Optional[str] = None


def code_fingerprint() -> str:
    """SHA-256 over every ``repro`` source file (path + contents).

    Computed once per process; editing any module under ``src/repro``
    therefore shifts every cache key, which is the invalidation story —
    there is no staleness protocol to get wrong.
    """
    global _fingerprint
    if _fingerprint is None:
        package_root = Path(__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _fingerprint = digest.hexdigest()
    return _fingerprint


# ------------------------------------------------------------------- store


#: Subdirectory of the store holding persisted per-run counter records.
_STATS_DIRNAME = "_stats"


@dataclasses.dataclass(frozen=True)
class CacheStats:
    """Snapshot of one store plus hit/miss/byte counters.

    ``entries``/``bytes`` are recomputed from disk on every call, so
    entries written by *other* processes mid-run are counted the moment
    they land. ``hits``/``misses``/``bytes_read``/``bytes_written`` are
    this process's live counters; the ``recorded_*`` fields aggregate the
    per-run records persisted by :meth:`ResultCache.record_run` — the
    store's lifetime accounting across every process that used it.
    """

    root: str
    entries: int
    bytes: int
    hits: int
    misses: int
    bytes_read: int = 0
    bytes_written: int = 0
    recorded_runs: int = 0
    recorded_hits: int = 0
    recorded_misses: int = 0
    recorded_bytes_read: int = 0
    recorded_bytes_written: int = 0


class ResultCache:
    """Content-addressed pickle store under ``root``.

    ``get``/``put`` never raise for storage problems (a cache must degrade
    to "miss", not break the sweep); corrupt or unreadable entries count as
    misses and are left for :meth:`clear`.
    """

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        if root is None:
            root = os.environ.get(CACHE_DIR_ENV_VAR) or _DEFAULT_ROOT
        self.root = Path(root)
        self.hits = 0
        self.misses = 0
        self.bytes_read = 0
        self.bytes_written = 0
        self._recorded = (0, 0, 0, 0)

    def key_for(
        self,
        fn: Any,
        args: Tuple[Any, ...],
        kwargs: Dict[str, Any],
        *,
        engine_raw: Optional[str] = None,
        recovery_raw: Optional[str] = None,
    ) -> Optional[str]:
        """Cache key for one cell, or None when any input is uncacheable."""
        return cell_key(
            fn, args, kwargs, engine_raw=engine_raw, recovery_raw=recovery_raw
        )

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def contains(self, key: str) -> bool:
        """Is there a stored entry for ``key``? Never touches counters.

        A probe, not a lookup: the service uses this at submit time to
        report how many of a job's cells the warm cache already covers,
        without charging a hit (the hit lands when execution reads it).
        """
        try:
            return self._path(key).is_file()
        except OSError:
            return False

    def get(self, key: str) -> Tuple[bool, Any]:
        """(hit, value) for ``key``; misses return ``(False, None)``."""
        try:
            with open(self._path(key), "rb") as handle:
                payload = handle.read()
            value = pickle.loads(payload)
        except Exception:
            self.misses += 1
            return False, None
        self.hits += 1
        self.bytes_read += len(payload)
        return True, value

    def put(self, key: str, value: Any) -> bool:
        """Store ``value`` under ``key`` atomically; False if not storable."""
        path = self._path(key)
        try:
            payload = pickle.dumps(value)
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".pkl"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(payload)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except Exception:
            return False
        self.bytes_written += len(payload)
        return True

    def _entries(self) -> Iterator[Path]:
        if not self.root.is_dir():
            return
        for path in self.root.glob("??/*.pkl"):
            if not path.name.startswith(".tmp-"):
                yield path

    def _stats_records(self) -> Iterator[Path]:
        stats_dir = self.root / _STATS_DIRNAME
        if not stats_dir.is_dir():
            return
        for path in stats_dir.glob("run-*.json"):
            yield path

    def record_run(self, label: str) -> bool:
        """Persist this process's counters-since-last-record as one run.

        Writes an atomic JSON record under ``<root>/_stats/`` with the
        hit/miss/byte deltas accumulated since the previous
        :meth:`record_run` (so a long-lived service can record once per
        job without double counting). All-zero deltas are skipped. Never
        raises — stats are accounting, not correctness.
        """
        previous = self._recorded
        current = (self.hits, self.misses, self.bytes_read, self.bytes_written)
        delta = tuple(now - then for now, then in zip(current, previous))
        if not any(delta):
            return False
        record = {
            "label": str(label),
            "hits": delta[0],
            "misses": delta[1],
            "bytes_read": delta[2],
            "bytes_written": delta[3],
            "pid": os.getpid(),
            "recorded_at_ns": time.time_ns(),
        }
        stats_dir = self.root / _STATS_DIRNAME
        try:
            stats_dir.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=stats_dir, prefix=".tmp-", suffix=".json"
            )
            with os.fdopen(fd, "w", encoding="utf-8") as handle:
                json.dump(record, handle, sort_keys=True)
            os.replace(
                tmp_name,
                stats_dir
                / f"run-{record['recorded_at_ns']}-{record['pid']}.json",
            )
        except Exception:
            try:
                os.unlink(tmp_name)
            except (OSError, UnboundLocalError):
                pass
            return False
        self._recorded = current
        return True

    def stats(self) -> CacheStats:
        """Entry count and on-disk size, plus live and persisted counters.

        Everything disk-derived is recomputed on each call, so entries and
        run records written by other processes mid-run are included.
        """
        entries = 0
        size = 0
        for path in self._entries():
            entries += 1
            try:
                size += path.stat().st_size
            except OSError:
                pass
        runs = recorded_hits = recorded_misses = 0
        recorded_read = recorded_written = 0
        for path in self._stats_records():
            try:
                record = json.loads(path.read_text(encoding="utf-8"))
                recorded_hits += int(record.get("hits", 0))
                recorded_misses += int(record.get("misses", 0))
                recorded_read += int(record.get("bytes_read", 0))
                recorded_written += int(record.get("bytes_written", 0))
            except (OSError, ValueError):
                continue
            runs += 1
        return CacheStats(
            root=str(self.root),
            entries=entries,
            bytes=size,
            hits=self.hits,
            misses=self.misses,
            bytes_read=self.bytes_read,
            bytes_written=self.bytes_written,
            recorded_runs=runs,
            recorded_hits=recorded_hits,
            recorded_misses=recorded_misses,
            recorded_bytes_read=recorded_read,
            recorded_bytes_written=recorded_written,
        )

    def clear(self) -> int:
        """Delete every entry (and run record); returns entries removed."""
        removed = 0
        for path in list(self._entries()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        for path in list(self._stats_records()):
            try:
                path.unlink()
            except OSError:
                pass
        return removed


# --------------------------------------------------------- process default

_UNSET = object()
_default: Any = _UNSET


def cache_enabled_by_env() -> bool:
    """Is the default cache allowed by :data:`CACHE_ENV_VAR`?"""
    return os.environ.get(CACHE_ENV_VAR, "").strip().lower() not in _FALSY


def set_default_cache(cache: Optional[ResultCache]) -> None:
    """Install (or, with None, disable) the process-wide default cache."""
    global _default
    _default = cache


def default_cache() -> Optional[ResultCache]:
    """The cache the runner uses when the caller does not pass one.

    Explicit :func:`set_default_cache` wins; otherwise a store is built
    iff :data:`CACHE_ENV_VAR` is set truthy (unset means no default —
    library users opt in, the CLI opts in for them).
    """
    if _default is not _UNSET:
        return _default
    enabled = os.environ.get(CACHE_ENV_VAR, "").strip().lower()
    if not enabled or enabled in _FALSY:
        return None
    return ResultCache()
