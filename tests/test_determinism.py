"""Determinism guarantees: same seed, same results, bit for bit."""

import pytest

from repro.core.microbench import MicroBench
from repro.experiments import fig5, table2, table3
from repro.transport.message import OpKind
from repro.units import MIB


class TestSeededReproducibility:
    def test_pointer_chase_identical_across_runs(self, p9634):
        a = MicroBench(p9634, seed=7).pointer_chase(64 * MIB, iterations=300)
        b = MicroBench(p9634, seed=7).pointer_chase(64 * MIB, iterations=300)
        assert a[1].mean == b[1].mean
        assert a[1].p999 == b[1].p999

    def test_different_seeds_differ(self, p9634):
        a = MicroBench(p9634, seed=7).pointer_chase(64 * MIB, iterations=300)
        b = MicroBench(p9634, seed=8).pointer_chase(64 * MIB, iterations=300)
        assert a[1].p999 != b[1].p999

    def test_table2_identical_across_runs(self, p7302):
        a = table2.run(p7302, iterations=300, seed=3)
        b = table2.run(p7302, iterations=300, seed=3)
        assert a.as_dict() == b.as_dict()

    def test_table3_is_deterministic(self, p9634):
        a = table3.run(p9634)
        b = table3.run(p9634)
        assert a.cells == b.cells

    def test_fig5_traces_identical(self, p9634):
        a = fig5.run(p9634, "if", duration_s=2.0, dt_s=0.02)
        b = fig5.run(p9634, "if", duration_s=2.0, dt_s=0.02)
        assert a.traces["flow1"].achieved_gbps == b.traces["flow1"].achieved_gbps

    def test_loaded_latency_identical(self, p7302):
        kwargs = dict(
            core_ids=[0, 1], op=OpKind.READ, offered_gbps=8.0,
            transactions_per_core=200,
        )
        a = MicroBench(p7302, seed=11).loaded_latency(**kwargs)
        b = MicroBench(p7302, seed=11).loaded_latency(**kwargs)
        assert a.stats.mean == b.stats.mean
        assert a.stats.p999 == b.stats.p999
        assert a.achieved_gbps == b.achieved_gbps

    def test_multikernel_des_identical(self, p7302):
        from repro.osdesign.simulate import simulate_multikernel

        a = simulate_multikernel(p7302, 5.0, updates=200, seed=2)
        b = simulate_multikernel(p7302, 5.0, updates=200, seed=2)
        assert a.visibility.mean == b.visibility.mean
        assert a.achieved_mops == b.achieved_mops
