"""The runner's determinism contract, plus DES engine edge cases.

The load-bearing guarantee: ``run_cells(cells, jobs=1)`` and
``run_cells(cells, jobs=4)`` produce identical results — every cell builds
its own Environment and seed streams, and results merge in submission
order. The Figure 3 / Table 2 tests below assert it on the real pipelines.
"""

import os
import time

import pytest

from repro.errors import CellExecutionError, ConfigurationError, SimulationError
from repro.experiments import fig3, table2
from repro.platform.presets import epyc_7302
from repro.runner import (
    Cell,
    CellFailure,
    CellResult,
    resolve_jobs,
    run_cells,
    run_cells_detailed,
    starmap,
)
from repro.sim.engine import Environment, Resource, Store
from repro.transport.message import OpKind


# --------------------------------------------------------------------------
# jobs=1 == jobs=4 on real experiment pipelines


def _panel_d_cells(platform):
    config = next(c for c in fig3.panel_configs(platform) if c.panel == "d")
    return [
        Cell(
            fig3.run_panel,
            (platform, config, op),
            dict(transactions_per_core=120, fractions=(0.3, 0.8), seed=0),
        )
        for op in (OpKind.READ, OpKind.NT_WRITE)
    ]


def test_fig3_panel_d_jobs_invariant():
    platform = epyc_7302()
    serial = run_cells(_panel_d_cells(platform), jobs=1)
    pooled = run_cells(_panel_d_cells(platform), jobs=4)
    assert fig3.render(serial) == fig3.render(pooled)
    for a, b in zip(serial, pooled):
        assert a.op is b.op
        assert a.offered_gbps == b.offered_gbps
        assert [r.stats.mean for r in a.results] == [
            r.stats.mean for r in b.results
        ]
        assert [r.stats.p999 for r in a.results] == [
            r.stats.p999 for r in b.results
        ]


def test_table2_jobs_invariant():
    platform = epyc_7302()
    serial = table2.run_many([platform], iterations=300, seed=0, jobs=1)
    pooled = table2.run_many([platform], iterations=300, seed=0, jobs=4)
    assert table2.render(serial) == table2.render(pooled)


# --------------------------------------------------------------------------
# jobs resolution and fan-out mechanics


def test_resolve_jobs_values(monkeypatch):
    monkeypatch.delenv("REPRO_JOBS", raising=False)
    assert resolve_jobs(3) == 3
    assert resolve_jobs("2") == 2
    assert resolve_jobs("auto") >= 1
    assert resolve_jobs(None) >= 1
    monkeypatch.setenv("REPRO_JOBS", "5")
    assert resolve_jobs(None) == 5
    # An explicit value beats the environment variable.
    assert resolve_jobs(2) == 2


def test_resolve_jobs_rejects_bad_values():
    with pytest.raises(ConfigurationError):
        resolve_jobs(0)
    with pytest.raises(ConfigurationError):
        resolve_jobs(-2)
    with pytest.raises(ConfigurationError):
        resolve_jobs("many")


def test_run_cells_unpicklable_degrades_to_serial():
    # Lambdas can't cross a process boundary; run_cells must still work.
    cells = [Cell(lambda i=i: i * i) for i in range(4)]
    assert run_cells(cells, jobs=4) == [0, 1, 4, 9]


def test_run_cells_empty():
    assert run_cells([], jobs=4) == []


def test_starmap_preserves_order():
    def offset(x, delta=0):
        return x + delta

    assert starmap(offset, [(1,), (2,), (3,)], jobs=1, delta=10) == [
        11, 12, 13,
    ]


# --------------------------------------------------------------------------
# hardened runner: failures, crashes, timeouts, retries


def _square(x):
    return x * x


def _raise_oserror(x):
    raise OSError(f"cell {x} touched a dead file")


def _in_worker():
    import multiprocessing

    return multiprocessing.current_process().name != "MainProcess"


def _crash_worker_if_odd(x):
    if x % 2 == 1 and _in_worker():
        os._exit(13)        # hard worker death, not an exception
    return x * x


def _crash_worker_raise_main(x):
    if _in_worker():
        os._exit(13)
    raise RuntimeError("dies everywhere")


def _sleep_then_return(x, duration_s=0.0):
    time.sleep(duration_s)
    return x


def _fail_until_marker(x, marker=None):
    # Fails once per marker file, then succeeds — a deterministic flake.
    if marker is not None and not os.path.exists(marker):
        with open(marker, "w") as fh:
            fh.write("attempted")
        raise RuntimeError("transient failure")
    return x


def test_oserror_inside_cell_propagates():
    # Regression: an OSError raised *inside* a cell used to be mistaken for
    # a sandboxed pool and silently re-ran every cell in-process. It must
    # surface like any other cell error.
    cells = [Cell(_square, (2,)), Cell(_raise_oserror, (1,))]
    with pytest.raises(OSError, match="dead file"):
        run_cells(cells, jobs=2, pool_threshold_s=0)
    with pytest.raises(OSError, match="dead file"):
        run_cells(cells, jobs=1)


def test_worker_crash_recovers_all_cells():
    # A worker dying mid-batch (BrokenProcessPool) must not lose anything:
    # affected cells re-run in-process and the results match a clean
    # jobs=1 run bit-for-bit.
    # pool_threshold_s=0 forces pooling — these cells are far too cheap for
    # the adaptive serial ramp to ever hand them to workers otherwise.
    cells = [Cell(_crash_worker_if_odd, (x,)) for x in range(6)]
    pooled = run_cells(cells, jobs=3, pool_threshold_s=0)
    serial = run_cells(cells, jobs=1)
    assert pooled == serial == [x * x for x in range(6)]


def test_worker_crash_with_failing_rerun_reports_crash():
    # When the in-process re-run after a worker death fails too, the
    # failure carries the crash context.
    cells = [Cell(_crash_worker_raise_main, (0,)), Cell(_square, (3,))]
    detailed = run_cells_detailed(cells, jobs=2, pool_threshold_s=0)
    assert detailed[1].ok and detailed[1].value == 9
    assert not detailed[0].ok
    assert detailed[0].failure.kind == "crash"
    assert isinstance(detailed[0].failure.error, RuntimeError)


class TestSerialRamp:
    """The adaptive serial ramp: cheap batches never pay pool startup."""

    def _forbid_pool(self, monkeypatch):
        import repro.runner as runner_module

        def explode(*args, **kwargs):
            raise AssertionError("process pool constructed for a cheap batch")

        monkeypatch.setattr(runner_module, "ProcessPoolExecutor", explode)

    def test_cheap_cells_never_touch_the_pool(self, monkeypatch):
        self._forbid_pool(monkeypatch)
        cells = [Cell(_square, (x,)) for x in range(8)]
        assert run_cells(cells, jobs=4) == [x * x for x in range(8)]

    def test_threshold_zero_forces_pool(self, monkeypatch):
        self._forbid_pool(monkeypatch)
        cells = [Cell(_square, (x,)) for x in range(2)]
        with pytest.raises(AssertionError, match="process pool constructed"):
            run_cells(cells, jobs=2, pool_threshold_s=0)

    def test_timeout_disables_the_ramp(self, monkeypatch):
        # Per-cell timeouts need worker preemption, so the pool is
        # mandatory even for cheap cells.
        self._forbid_pool(monkeypatch)
        cells = [Cell(_square, (x,)) for x in range(2)]
        with pytest.raises(AssertionError, match="process pool constructed"):
            run_cells(cells, jobs=2, timeout_s=5.0)

    def test_expensive_prefix_hands_rest_to_pool(self):
        # Once the measured serial time crosses the threshold, the
        # remaining cells go to workers — results still in order.
        cells = [Cell(_sleep_then_return, (x,), dict(duration_s=0.03)) for x in range(6)]
        out = run_cells(cells, jobs=3, pool_threshold_s=0.05)
        assert out == list(range(6))

    def test_negative_threshold_rejected(self):
        with pytest.raises(ConfigurationError):
            run_cells([Cell(_square, (1,))], pool_threshold_s=-0.1)


def test_per_cell_timeout_isolates_slow_cell():
    cells = [
        Cell(_sleep_then_return, (0,)),
        Cell(_sleep_then_return, (1,), dict(duration_s=30.0)),
        Cell(_sleep_then_return, (2,)),
    ]
    detailed = run_cells_detailed(cells, jobs=3, timeout_s=1.0)
    assert detailed[0].ok and detailed[0].value == 0
    assert detailed[2].ok and detailed[2].value == 2
    assert not detailed[1].ok
    assert detailed[1].failure.kind == "timeout"
    assert isinstance(detailed[1].failure.error, CellExecutionError)


def test_retry_recovers_transient_failure(tmp_path):
    marker = str(tmp_path / "flaked")
    cells = [Cell(_fail_until_marker, (7,), dict(marker=marker))]
    detailed = run_cells_detailed(cells, jobs=1, retries=1, backoff_s=0.01)
    assert detailed[0].ok and detailed[0].value == 7
    assert detailed[0].attempts == 2


def test_fail_fast_raises_cell_execution_error():
    cells = [Cell(_raise_oserror, (0,)), Cell(_square, (3,))]
    with pytest.raises(CellExecutionError) as excinfo:
        run_cells_detailed(cells, jobs=1, fail_fast=True)
    assert excinfo.value.cell_index == 0
    assert excinfo.value.attempts == 1
    assert isinstance(excinfo.value.cause, OSError)


def test_keep_going_reports_per_cell_results():
    cells = [
        Cell(_square, (2,)), Cell(_raise_oserror, (9,)), Cell(_square, (4,)),
    ]
    detailed = run_cells_detailed(cells, jobs=2)
    assert [r.ok for r in detailed] == [True, False, True]
    assert detailed[0].value == 4 and detailed[2].value == 16
    failure = detailed[1].failure
    assert failure.kind == "error"
    exc = failure.as_exception()
    assert isinstance(exc, CellExecutionError)
    assert exc.cell_index == 1


def test_detailed_results_in_submission_order():
    cells = [Cell(_square, (x,)) for x in range(8)]
    for jobs in (1, 4):
        detailed = run_cells_detailed(cells, jobs=jobs)
        assert [r.index for r in detailed] == list(range(8))
        assert [r.value for r in detailed] == [x * x for x in range(8)]
        assert all(isinstance(r, CellResult) for r in detailed)
        assert all(r.attempts == 1 for r in detailed)


def test_run_cells_validates_parameters():
    cells = [Cell(_square, (1,))]
    with pytest.raises(ConfigurationError):
        run_cells_detailed(cells, timeout_s=0.0)
    with pytest.raises(ConfigurationError):
        run_cells_detailed(cells, retries=-1)
    with pytest.raises(ConfigurationError):
        run_cells_detailed(cells, backoff_s=-1.0)


def test_cell_failure_kinds_are_closed_set():
    with pytest.raises(ConfigurationError):
        CellFailure(index=0, kind="mystery", error=RuntimeError("x"), attempts=1)


# --------------------------------------------------------------------------
# in-batch dedup: identical cells collapse to one execution


def _record_call(path, x):
    with open(path, "a") as handle:
        handle.write(f"{x}\n")
    return x * x


def _boom_recorded(path, x):
    _record_call(path, x)
    raise RuntimeError("duplicated failure")


def _call_count(path):
    if not os.path.exists(path):
        return 0
    with open(path) as handle:
        return sum(1 for line in handle if line.strip())


class TestInBatchDedup:
    """Content-identical cells within one batch run once and fan out."""

    def test_duplicates_collapse_with_caching_disabled(self, tmp_path):
        # Dedup keys on the same content address the cache uses, but must
        # hold with caching off — a sweep with repeated points does the
        # work once even when nothing persists.
        marker = str(tmp_path / "calls")
        cells = [Cell(_record_call, (marker, 4)) for _ in range(4)]
        cells.append(Cell(_record_call, (marker, 9)))
        detailed = run_cells_detailed(cells, jobs=1, cache=None)
        assert _call_count(marker) == 2
        assert [result.value for result in detailed] == [16, 16, 16, 16, 81]
        assert [result.deduped for result in detailed] == [
            False, True, True, True, False,
        ]
        # Fan-out copies report zero attempts: they never executed.
        assert all(result.attempts == 0 for result in detailed if result.deduped)

    def test_dedup_disabled_runs_every_cell(self, tmp_path):
        marker = str(tmp_path / "calls")
        cells = [Cell(_record_call, (marker, 4)) for _ in range(3)]
        detailed = run_cells_detailed(cells, jobs=1, cache=None, dedup=False)
        assert _call_count(marker) == 3
        assert not any(result.deduped for result in detailed)

    def test_failed_primary_fans_out_failure_per_index(self, tmp_path):
        # A duplicate of a failed cell reports the same failure at its own
        # index — failures fan out exactly like values.
        marker = str(tmp_path / "calls")
        cells = [Cell(_boom_recorded, (marker, 1)) for _ in range(3)]
        detailed = run_cells_detailed(cells, jobs=1, cache=None)
        assert _call_count(marker) == 1
        assert all(not result.ok for result in detailed)
        assert [result.failure.index for result in detailed] == [0, 1, 2]
        assert all(result.failure.kind == "error" for result in detailed)

    def test_unkeyable_cells_are_never_deduped(self, tmp_path):
        # Lambdas have no stable content address (cell_key -> None); two
        # identical-looking ones must both run rather than silently alias.
        marker = str(tmp_path / "calls")
        cells = [
            Cell(lambda: _record_call(marker, 1)),
            Cell(lambda: _record_call(marker, 1)),
        ]
        detailed = run_cells_detailed(cells, jobs=1, cache=None)
        assert _call_count(marker) == 2
        assert not any(result.deduped for result in detailed)

    def test_cache_hits_take_precedence_over_dedup(self, tmp_path):
        # Once the store is warm, duplicates resolve as hits, not fan-out:
        # nothing executes and nothing is marked deduped.
        from repro.cache import ResultCache

        marker = str(tmp_path / "calls")
        cache = ResultCache(tmp_path / "store")
        run_cells_detailed(
            [Cell(_record_call, (marker, 4))], jobs=1, cache=cache
        )
        detailed = run_cells_detailed(
            [Cell(_record_call, (marker, 4)) for _ in range(3)],
            jobs=1, cache=cache,
        )
        assert _call_count(marker) == 1
        assert all(result.cached for result in detailed)
        assert not any(result.deduped for result in detailed)

    def test_streaming_emits_fanout_copies_exactly_once(self, tmp_path):
        marker = str(tmp_path / "calls")
        arrived = []
        cells = [Cell(_record_call, (marker, 4)) for _ in range(3)]
        run_cells_detailed(
            cells, jobs=1, cache=None, on_result=arrived.append
        )
        assert sorted(result.index for result in arrived) == [0, 1, 2]
        assert sum(1 for result in arrived if result.deduped) == 2


# --------------------------------------------------------------------------
# DES engine edge cases


def test_any_of_failed_child_raises_in_waiter():
    env = Environment()
    bad = env.event()
    seen = []

    def waiter():
        try:
            yield env.any_of([env.timeout(10.0), bad])
        except RuntimeError as exc:
            seen.append((env.now, str(exc)))

    def trigger():
        yield env.timeout(1.0)
        bad.fail(RuntimeError("link down"))

    env.process(waiter())
    env.process(trigger())
    env.run()
    assert seen == [(1.0, "link down")]


def test_any_of_with_already_processed_child_fires_immediately():
    env = Environment()
    done = Store(env).put("ready")          # processed before any_of sees it
    winner = env.any_of([env.timeout(5.0), done])
    env.run(until=0.0)
    assert winner.triggered and winner.value == "ready"
    assert env.now == 0.0


def test_run_until_horizon_clock_semantics():
    env = Environment()
    fired = []

    def ticker():
        for __ in range(10):
            yield env.timeout(3.0)
            fired.append(env.now)

    env.process(ticker())
    env.run(until=10.0)
    # Events past the horizon stay queued; the clock parks exactly on it.
    assert env.now == 10.0
    assert fired == [3.0, 6.0, 9.0]
    env.run()
    assert env.now == 30.0
    assert fired[-1] == 30.0


def test_run_until_horizon_in_the_past_rejected():
    env = Environment()
    env.run(until=5.0)
    with pytest.raises(SimulationError):
        env.run(until=1.0)


def test_resource_over_release_rejected():
    env = Environment()
    resource = Resource(env, capacity=1)
    grant = resource.request()
    resource.release(grant)
    with pytest.raises(SimulationError):
        resource.release(grant)


def test_resource_release_foreign_request_rejected():
    env = Environment()
    first, second = Resource(env), Resource(env)
    grant = first.request()
    with pytest.raises(SimulationError):
        second.release(grant)


def test_store_put_returns_completed_event():
    env = Environment()
    store = Store(env)
    done = store.put("payload")
    assert done.triggered and done.processed and done.ok
    assert done.value == "payload"
    assert len(store) == 1

    def consumer():
        value = yield store.put("second")   # resumes immediately, same tick
        assert value == "second"
        item = yield store.get()
        return (env.now, item)

    assert env.run(env.process(consumer())) == (0.0, "payload")


def test_store_put_wakes_waiting_getter():
    env = Environment()
    store = Store(env)
    received = []

    def getter():
        item = yield store.get()
        received.append((env.now, item))

    def putter():
        yield env.timeout(2.0)
        store.put("late")

    env.process(getter())
    env.process(putter())
    env.run()
    assert received == [(2.0, "late")]
