"""Ablation: the §4 global traffic manager vs sender-driven partitioning.

Re-runs the Figure 4 cases under max-min fair allocation (the software
traffic manager the paper proposes) and contrasts Jain fairness with the
hardware's demand-proportional split. Also exercises the token-pool and
detailed-NoC ablations from DESIGN.md.
"""

import pytest

from repro.analysis.report import render_table
from repro.experiments import ablations

from benchmarks.conftest import emit


def bench_manager_vs_sender_driven(benchmark, p9634):
    out = benchmark.pedantic(
        ablations.manager_vs_sender_driven, args=(p9634,), rounds=1, iterations=1
    )
    rows = []
    for case, ablation in out.items():
        sender_fair, managed_fair = ablation.fairness()
        rows.append([
            case,
            f"{ablation.sender_driven['flow0']:.1f}/{ablation.sender_driven['flow1']:.1f}",
            f"{sender_fair:.3f}",
            f"{ablation.managed['flow0']:.1f}/{ablation.managed['flow1']:.1f}",
            f"{managed_fair:.3f}",
        ])
    emit(render_table(
        ["case", "sender-driven f0/f1", "Jain", "managed f0/f1", "Jain"],
        rows,
        title="Ablation: traffic manager (max-min) vs sender-driven (GMI, 9634)",
    ))
    case4 = out["case4-unequal-demands"]
    assert case4.fairness()[1] == pytest.approx(1.0)
    assert case4.fairness()[1] > case4.fairness()[0]
    case2 = out["case2-small-vs-aggressive"]
    assert case2.managed["flow0"] == pytest.approx(case2.requested["flow0"])


def bench_token_pool_ablation(benchmark, p7302):
    out = benchmark.pedantic(
        ablations.token_pool_ablation, args=(p7302,), rounds=1, iterations=1
    )
    emit(render_table(
        ["variant", "mean latency (ns)", "max GMI backlog"],
        [
            [label, f"{v['mean_latency_ns']:.1f}", f"{v['gmi_max_backlog']:.0f}"]
            for label, v in out.items()
        ],
        title="Ablation: Phantom-Queue-like token pools (GMI saturation, 7302)",
    ))
    assert (
        out["with_tokens"]["gmi_max_backlog"]
        < out["without_tokens"]["gmi_max_backlog"]
    )


def bench_detailed_noc_validation(benchmark, p7302):
    deltas = benchmark.pedantic(
        ablations.detailed_vs_collapsed_noc, args=(p7302,), rounds=1, iterations=1
    )
    emit(render_table(
        ["position", "hop-by-hop minus analytic (ns)"],
        [[k, f"{v:.2e}"] for k, v in deltas.items()],
        title="Ablation: detailed mesh DES vs collapsed path model (7302)",
    ))
    for position, delta in deltas.items():
        assert abs(delta) < 1e-9, position
