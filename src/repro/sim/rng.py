"""Deterministic random-number helpers.

Every stochastic component in the simulator draws from a
:class:`numpy.random.Generator` created here, so a single seed reproduces a
whole experiment bit-for-bit. :class:`SplitRng` derives independent
sub-streams by name, which keeps the draw sequence of one component stable
when another component is added or removed.
"""

from __future__ import annotations

import zlib

import numpy as np

__all__ = ["make_rng", "SplitRng"]


def make_rng(seed: int | None = 0) -> np.random.Generator:
    """Create a PCG64 generator from ``seed`` (``None`` → OS entropy)."""
    return np.random.default_rng(seed)


class SplitRng:
    """A seed tree: derive named, independent random streams from one root.

    >>> rng = SplitRng(42)
    >>> a = rng.stream("umc-0")
    >>> b = rng.stream("umc-1")

    ``a`` and ``b`` are independent generators whose sequences depend only on
    the root seed and their own names.
    """

    def __init__(self, seed: int = 0) -> None:
        self._seed = int(seed)

    @property
    def seed(self) -> int:
        return self._seed

    def stream(self, name: str) -> np.random.Generator:
        """Derive the generator for ``name`` (stable across runs)."""
        tag = zlib.crc32(name.encode("utf-8"))
        return np.random.default_rng(np.random.SeedSequence([self._seed, tag]))

    def child(self, name: str) -> "SplitRng":
        """Derive a nested seed tree (for hierarchies of components)."""
        tag = zlib.crc32(name.encode("utf-8"))
        return SplitRng((self._seed * 1_000_003 + tag) % (2**63))
