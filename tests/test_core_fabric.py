"""Tests for the fabric model (platform → fluid channels/flows)."""

import pytest

from repro.core.fabric import FabricModel
from repro.core.flows import Scope, StreamSpec
from repro.errors import ConfigurationError, TopologyError
from repro.transport.message import OpKind


@pytest.fixture(scope="module")
def fabric7(p7302):
    return FabricModel(p7302)


@pytest.fixture(scope="module")
def fabric9(p9634):
    return FabricModel(p9634)


class TestChannels:
    def test_ccx_channels_only_on_7302(self, fabric7, fabric9):
        assert "ccx0:r" in fabric7.channels
        assert "ccx0:w" in fabric7.channels
        assert "ccx0:r" not in fabric9.channels

    def test_gmi_and_umc_channels(self, fabric7):
        assert fabric7.channel("gmi0:r").capacity_gbps == pytest.approx(32.5)
        assert fabric7.channel("umc0:w").capacity_gbps == pytest.approx(19.0)

    def test_noc_channels(self, fabric9):
        assert fabric9.channel("noc:r").capacity_gbps == pytest.approx(366.2)
        assert fabric9.channel("noc:w").capacity_gbps == pytest.approx(270.6)

    def test_cxl_channels_only_on_9634(self, fabric7, fabric9):
        assert "cxldev0:r" in fabric9.channels
        assert "cxldev0:r" not in fabric7.channels

    def test_unknown_channel_raises(self, fabric7):
        with pytest.raises(TopologyError):
            fabric7.channel("nope:r")


class TestCeilings:
    def test_core_dram_read_ceiling(self, fabric7):
        assert fabric7.per_core_ceiling_gbps(
            OpKind.READ, "dram", 0
        ) == pytest.approx(14.97, abs=0.1)

    def test_core_dram_write_ceiling(self, fabric9):
        assert fabric9.per_core_ceiling_gbps(
            OpKind.NT_WRITE, "dram", 0
        ) == pytest.approx(3.18, abs=0.1)

    def test_core_cxl_ceilings(self, fabric9):
        assert fabric9.per_core_ceiling_gbps(
            OpKind.READ, "cxl", 0
        ) == pytest.approx(5.27, abs=0.1)
        assert fabric9.per_core_ceiling_gbps(
            OpKind.NT_WRITE, "cxl", 0
        ) == pytest.approx(2.90, abs=0.1)

    def test_cxl_ceiling_without_cxl_memory_raises(self, fabric7):
        # The 7302 box has no CXL modules: the latency lookup rejects it.
        with pytest.raises(TopologyError):
            fabric7.per_core_ceiling_gbps(OpKind.READ, "cxl", 0)

    def test_farther_umcs_lower_ceiling(self, fabric7, p7302):
        from repro.platform.numa import Position

        near = [u.umc_id for u in p7302.umcs_at(0, Position.NEAR)]
        diag = [u.umc_id for u in p7302.umcs_at(0, Position.DIAGONAL)]
        assert fabric7.per_core_ceiling_gbps(
            OpKind.READ, "dram", 0, umc_ids=near
        ) > fabric7.per_core_ceiling_gbps(OpKind.READ, "dram", 0, umc_ids=diag)

    def test_unknown_target(self, fabric7):
        with pytest.raises(ConfigurationError):
            fabric7.per_core_ceiling_gbps(OpKind.READ, "hbm", 0)


class TestFlowCompilation:
    def test_one_flow_per_ccx(self, fabric7, p7302):
        cores = StreamSpec.cores_for_scope(p7302, Scope.CCD)
        spec = StreamSpec("s", OpKind.READ, cores)
        flows = fabric7.flows_for(spec)
        assert len(flows) == 2  # two CCXs per CCD on the 7302

    def test_dram_path_channels(self, fabric7):
        spec = StreamSpec("s", OpKind.READ, (0,))
        flow = fabric7.flows_for(spec)[0]
        names = [channel.name for channel, __ in flow.path]
        assert names[0] == "ccx0:r"
        assert "gmi0:r" in names
        assert "noc:r" in names
        assert any(name.startswith("umc") for name in names)

    def test_cxl_path_channels(self, fabric9):
        spec = StreamSpec("s", OpKind.NT_WRITE, (0,), target="cxl")
        flow = fabric9.flows_for(spec)[0]
        names = [channel.name for channel, __ in flow.path]
        assert "hub0:w" in names
        assert any(name.startswith("plink") for name in names)
        assert any(name.startswith("cxldev") for name in names)

    def test_cxl_framing_weight(self, fabric9):
        spec = StreamSpec("s", OpKind.READ, (0,), target="cxl")
        flow = fabric9.flows_for(spec)[0]
        weights = {
            channel.name: weight for channel, weight in flow.path
        }
        # 4 devices × 68/64 framing: weight = 1.0625 / 4 on each device.
        assert weights["cxldev0:r"] == pytest.approx(68 / 64 / 4)

    def test_umc_interleave_weights_sum_to_one(self, fabric9):
        spec = StreamSpec("s", OpKind.READ, tuple(range(84)))
        flows = fabric9.flows_for(spec)
        weights = [
            weight
            for channel, weight in flows[0].path
            if channel.name.startswith("umc")
        ]
        assert sum(weights) == pytest.approx(1.0)
        assert len(weights) == 12  # multi-chiplet stream interleaves NPS1

    def test_single_ccd_stream_uses_near_group(self, fabric9):
        spec = StreamSpec("s", OpKind.READ, (0,))
        flow = fabric9.flows_for(spec)[0]
        umc_names = [
            channel.name for channel, __ in flow.path
            if channel.name.startswith("umc")
        ]
        assert len(umc_names) == 3  # 9634 near group

    def test_unthrottled_stream_is_elastic(self, fabric7):
        flow = fabric7.flows_for(StreamSpec("s", OpKind.READ, (0,)))[0]
        assert flow.elastic

    def test_rate_controlled_stream_is_paced(self, fabric7):
        flow = fabric7.flows_for(
            StreamSpec("s", OpKind.READ, (0,), demand_gbps=5.0)
        )[0]
        assert not flow.elastic
        assert flow.demand_gbps == pytest.approx(5.0)

    def test_demand_split_across_ccx(self, fabric7, p7302):
        cores = StreamSpec.cores_for_scope(p7302, Scope.CCD)
        flows = fabric7.flows_for(
            StreamSpec("s", OpKind.READ, cores, demand_gbps=20.0)
        )
        assert sum(flow.demand_gbps for flow in flows) == pytest.approx(20.0)

    def test_demand_clipped_to_ceiling(self, fabric7):
        flow = fabric7.flows_for(
            StreamSpec("s", OpKind.READ, (0,), demand_gbps=100.0)
        )[0]
        assert flow.demand_gbps == pytest.approx(14.97, abs=0.1)


class TestAchieved:
    def test_single_core_gets_ceiling(self, fabric7):
        spec = StreamSpec("s", OpKind.READ, (0,))
        achieved = fabric7.achieved_gbps([spec])
        assert achieved["s"] == pytest.approx(14.97, abs=0.1)

    def test_two_streams_contend(self, fabric7, p7302):
        cores = StreamSpec.cores_for_scope(p7302, Scope.CPU)
        half = len(cores) // 2
        a = StreamSpec("a", OpKind.READ, cores[:half])
        b = StreamSpec("b", OpKind.READ, cores[half:])
        achieved = fabric7.achieved_gbps([a, b])
        total = achieved["a"] + achieved["b"]
        assert total == pytest.approx(106.7, abs=1.0)  # NoC-bound
