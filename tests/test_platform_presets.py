"""Tests that the presets encode the paper's Table 1/2 calibration targets."""

import pytest

from repro.platform.numa import Position
from repro.units import CACHELINE, GIB, KIB, MIB


class TestTable1Encoding:
    def test_7302_table1(self, p7302):
        spec = p7302.spec
        assert spec.microarchitecture == "Zen 2"
        assert spec.l1_bytes == 32 * KIB
        assert spec.l2_bytes == 512 * KIB
        assert spec.l3_total_bytes == 128 * MIB
        assert (spec.cores, spec.ccx_count, spec.ccd_count) == (16, 8, 4)
        assert (spec.compute_process_nm, spec.io_process_nm) == (7, 12)
        assert (spec.pcie_gen, spec.pcie_lanes) == (4, 128)
        assert (spec.base_ghz, spec.turbo_ghz) == (3.0, 3.3)

    def test_9634_table1(self, p9634):
        spec = p9634.spec
        assert spec.microarchitecture == "Zen 4"
        assert spec.l1_bytes == 64 * KIB
        assert spec.l2_bytes == 1 * MIB
        assert spec.l3_total_bytes == 384 * MIB
        assert (spec.cores, spec.ccx_count, spec.ccd_count) == (84, 12, 12)
        assert (spec.compute_process_nm, spec.io_process_nm) == (5, 6)
        assert (spec.pcie_gen, spec.pcie_lanes) == (5, 128)
        assert (spec.base_ghz, spec.turbo_ghz) == (2.25, 3.7)

    def test_9634_has_four_cz120_modules(self, p9634):
        assert p9634.spec.cxl_device_count == 4
        assert p9634.spec.cxl_device_capacity_bytes == 256 * GIB


class TestLatencyCalibration:
    """Analytic path sums must land on Table 2 within a small tolerance."""

    @pytest.mark.parametrize(
        "fixture_name, targets",
        [
            ("p7302", {"near": 124.0, "vertical": 131.0,
                       "horizontal": 141.0, "diagonal": 145.0}),
            ("p9634", {"near": 141.0, "vertical": 145.0,
                       "horizontal": 150.0, "diagonal": 149.0}),
        ],
    )
    def test_dram_positions(self, request, fixture_name, targets):
        platform = request.getfixturevalue(fixture_name)
        for name, target in targets.items():
            measured = platform.dram_latency_at(0, Position(name))
            assert measured == pytest.approx(target, abs=1.0), name

    def test_cxl_243ns(self, p9634):
        assert p9634.cxl_latency_ns(0) == pytest.approx(243.0, abs=1.0)

    def test_switching_hop(self, p7302, p9634):
        # Paper: "roughly 8ns and 15ns on the EPYC 7302 (4ns and 15ns ...)".
        assert p7302.spec.latency.switching_hop_ns == pytest.approx(8.0, abs=0.5)
        assert p9634.spec.latency.switching_hop_ns == pytest.approx(4.0, abs=0.5)

    def test_io_hub_15ns(self, platform):
        assert platform.spec.latency.io_hub_ns == pytest.approx(15.0)

    def test_queue_bounds(self, p7302, p9634):
        assert p7302.spec.latency.ccx_queue_max_ns == 30.0
        assert p7302.spec.latency.ccd_queue_max_ns == 20.0
        assert p9634.spec.latency.ccx_queue_max_ns == 20.0
        assert p9634.spec.latency.ccd_queue_max_ns == 0.0  # N/A


class TestBandwidthCalibration:
    def test_per_core_read_derivation_7302(self, p7302):
        bw = p7302.spec.bandwidth
        near = p7302.dram_latency_at(0, Position.NEAR)
        ceiling = bw.mlp_read * CACHELINE / near
        assert ceiling == pytest.approx(14.9, abs=0.3)

    def test_per_core_write_derivation_7302(self, p7302):
        bw = p7302.spec.bandwidth
        near = p7302.dram_latency_at(0, Position.NEAR)
        ceiling = bw.wcb_write * CACHELINE / near
        assert ceiling == pytest.approx(3.6, abs=0.2)

    def test_per_core_read_derivation_9634(self, p9634):
        bw = p9634.spec.bandwidth
        near = p9634.dram_latency_at(0, Position.NEAR)
        assert bw.mlp_read * CACHELINE / near == pytest.approx(14.6, abs=0.3)

    def test_cxl_core_ceilings_9634(self, p9634):
        bw = p9634.spec.bandwidth
        cxl = p9634.cxl_latency_ns(0)
        assert bw.cxl_mlp_read * CACHELINE / cxl == pytest.approx(5.4, abs=0.3)
        assert bw.cxl_wcb_write * CACHELINE / cxl == pytest.approx(2.8, abs=0.3)

    def test_ccx_pool_only_on_7302(self, p7302, p9634):
        assert p7302.spec.bandwidth.ccx_read_gbps == pytest.approx(25.1)
        assert p9634.spec.bandwidth.ccx_read_gbps is None

    def test_noc_binds_below_gmi_sum(self, platform):
        bw = platform.spec.bandwidth
        gmi_sum = platform.spec.ccd_count * bw.gmi_read_gbps
        assert bw.noc_read_gbps < gmi_sum

    def test_umc_sum_exceeds_noc(self, platform):
        # Memory channels in aggregate are not the whole-CPU bottleneck.
        bw = platform.spec.bandwidth
        umc_sum = platform.spec.umc_count * bw.umc_read_gbps
        assert umc_sum > bw.noc_read_gbps

    def test_cxl_device_pool_payload_rate(self, p9634):
        bw = p9634.spec.bandwidth
        framing = 68.0 / 64.0
        payload_total = (
            bw.cxl_dev_read_gbps * len(p9634.cxl_devices) / framing
        )
        assert payload_total == pytest.approx(88.1, abs=1.0)

    def test_token_counts_below_issue_capability(self, p7302, p9634):
        bw7 = p7302.spec.bandwidth
        assert bw7.ccx_tokens < p7302.spec.cores_per_ccx * bw7.mlp_read
        bw9 = p9634.spec.bandwidth
        assert bw9.ccx_tokens < p9634.spec.cores_per_ccx * bw9.mlp_read
        assert bw9.ccd_tokens is None
