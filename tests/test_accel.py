"""Tests for the accelerator dispatch subsystem (§4 #4)."""

import pytest

from repro.accel.device import AcceleratorJob, AcceleratorModel, JobTrace
from repro.accel.dispatch import DispatchSimulator, bulk_transfer
from repro.accel.switch import IntraHostSwitch
from repro.core.fabric import FabricModel
from repro.core.flows import StreamSpec
from repro.errors import ConfigurationError
from repro.sim.engine import Environment
from repro.transport.message import OpKind
from repro.transport.path import PathResolver
from repro.transport.transaction import TransactionExecutor


class TestAcceleratorModel:
    def test_kernel_time(self):
        accel = AcceleratorModel(launch_overhead_ns=1000.0, compute_gbps=100.0)
        assert accel.kernel_time_ns(10_000) == pytest.approx(1100.0)

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            AcceleratorModel(launch_overhead_ns=-1.0)
        with pytest.raises(ConfigurationError):
            AcceleratorModel(compute_gbps=0.0)

    def test_job_validation(self):
        with pytest.raises(ConfigurationError):
            AcceleratorJob(0, 64)


class TestJobTrace:
    def test_signal_and_data_split(self):
        trace = JobTrace(
            phases={
                "doorbell": 80.0,
                "descriptor_fetch": 140.0,
                "input_dma": 5000.0,
                "compute": 2000.0,
                "output_dma": 3000.0,
                "completion": 280.0,
            },
            start_ns=0.0,
            end_ns=10500.0,
        )
        assert trace.signal_ns == pytest.approx(500.0)
        assert trace.data_ns == pytest.approx(8000.0)
        assert trace.total_ns == pytest.approx(10500.0)
        assert "doorbell=80" in trace.render()


class TestBulkTransfer:
    def test_moves_all_bytes_pipelined(self, p9634):
        env = Environment()
        resolver = PathResolver(env, p9634, with_dram_jitter=False)
        executor = TransactionExecutor(env)
        umcs = sorted(p9634.umcs)

        def path_of(i):
            return resolver.dma_path(
                0, umcs[i % len(umcs)], op=OpKind.READ, size_bytes=4096
            )

        def run():
            elapsed = yield from bulk_transfer(
                env, executor, path_of, OpKind.READ,
                total_bytes=64 * 4096, chunk_bytes=4096, window=16,
            )
            return elapsed

        elapsed = env.run(env.process(run()))
        achieved_gbps = 64 * 4096 / elapsed
        plink = p9634.spec.bandwidth.p_link_read_gbps
        # Pipelined DMA sustains a healthy fraction of the P Link and never
        # exceeds it.
        assert 0.6 * plink <= achieved_gbps <= plink * 1.01

    def test_deeper_window_is_faster(self, p9634):
        def elapsed_with(window):
            env = Environment()
            resolver = PathResolver(env, p9634, with_dram_jitter=False)
            executor = TransactionExecutor(env)
            umcs = sorted(p9634.umcs)

            def path_of(i):
                return resolver.dma_path(
                    0, umcs[i % len(umcs)], op=OpKind.READ, size_bytes=4096
                )

            def run():
                result = yield from bulk_transfer(
                    env, executor, path_of, OpKind.READ,
                    total_bytes=64 * 4096, chunk_bytes=4096, window=window,
                )
                return result

            return env.run(env.process(run()))

        assert elapsed_with(16) < elapsed_with(2)

    def test_validation(self, p9634):
        env = Environment()
        executor = TransactionExecutor(env)
        with pytest.raises(ConfigurationError):
            next(bulk_transfer(env, executor, lambda __: None, OpKind.READ, 0))


class TestDispatchSimulator:
    def _simulate(self, platform, jobs=2):
        env = Environment()
        simulator = DispatchSimulator(
            env, platform, AcceleratorModel(), seed=1
        )
        job = AcceleratorJob(64 * 1024, 32 * 1024)
        return simulator.run_jobs([job] * jobs)

    def test_all_phases_present(self, p9634):
        traces = self._simulate(p9634)
        for trace in traces:
            assert set(trace.phases) == set(JobTrace.PHASE_ORDER)

    def test_unloaded_doorbell_latency(self, p9634):
        trace = self._simulate(p9634)[0]
        assert trace.phases["doorbell"] == pytest.approx(
            p9634.doorbell_latency_ns(0), rel=0.05
        )

    def test_data_plane_dominates(self, p9634):
        trace = self._simulate(p9634)[0]
        assert trace.data_ns > trace.signal_ns

    def test_total_is_sum_of_phases(self, p9634):
        trace = self._simulate(p9634)[0]
        assert trace.total_ns == pytest.approx(sum(trace.phases.values()))

    def test_dma_throughput_bounded_by_plink(self, p9634):
        trace = self._simulate(p9634)[0]
        achieved = 64 * 1024 / trace.phases["input_dma"]
        assert achieved <= p9634.spec.bandwidth.p_link_read_gbps * 1.05

    def test_missing_device_rejected(self, p9634):
        env = Environment()
        with pytest.raises(ConfigurationError):
            DispatchSimulator(
                env, p9634, AcceleratorModel(pcie_dev_id=99)
            )

    def test_works_on_7302_too(self, p7302):
        traces = self._simulate(p7302, jobs=1)
        assert traces[0].total_ns > 0


class TestIntraHostSwitch:
    def test_provision_paces_background(self, p9634):
        switch = IntraHostSwitch(FabricModel(p9634))
        cores = tuple(c.core_id for c in p9634.cores_of_ccd(0)[1:])
        switch.register_background(
            StreamSpec("bg", OpKind.NT_WRITE, cores, target="cxl")
        )
        plan = switch.provision(accelerator_demand_gbps=8.0)
        hub_write = p9634.spec.bandwidth.hub_port_write_gbps
        assert plan.rate_for("bg") == pytest.approx(hub_write - 8.0, abs=0.5)

    def test_duplicate_background_rejected(self, p9634):
        switch = IntraHostSwitch(FabricModel(p9634))
        cores = (p9634.cores_of_ccd(0)[1].core_id,)
        switch.register_background(StreamSpec("bg", OpKind.READ, cores))
        with pytest.raises(ConfigurationError):
            switch.register_background(StreamSpec("bg", OpKind.READ, cores))

    def test_provision_requires_background(self, p9634):
        switch = IntraHostSwitch(FabricModel(p9634))
        with pytest.raises(ConfigurationError):
            switch.provision(8.0)

    def test_unknown_stream_in_plan(self, p9634):
        switch = IntraHostSwitch(FabricModel(p9634))
        cores = (p9634.cores_of_ccd(0)[1].core_id,)
        switch.register_background(StreamSpec("bg", OpKind.READ, cores))
        plan = switch.provision(4.0)
        with pytest.raises(ConfigurationError):
            plan.rate_for("ghost")

    def test_observed_matrix(self, p9634):
        switch = IntraHostSwitch(FabricModel(p9634))
        cores = tuple(c.core_id for c in p9634.cores_of_ccd(2))
        switch.register_background(
            StreamSpec("bg", OpKind.READ, cores, target="cxl")
        )
        matrix = switch.observed_matrix({"bg": 12.0})
        assert matrix.rate("ccd2", "cxl") == pytest.approx(12.0)
        assert matrix.total_gbps() == pytest.approx(12.0)


class TestDispatchExperiment:
    def test_manager_protects_signal_plane(self, p9634):
        from repro.experiments import accel_dispatch

        reports = accel_dispatch.compare(p9634, jobs=4)
        unmanaged = reports["unmanaged"]
        managed = reports["managed"]
        # The switch restores signal latency to near-unloaded.
        assert managed.mean_signal_ns < 0.6 * unmanaged.mean_signal_ns
        # Work conservation: the data plane is not hurt by management.
        assert managed.mean_data_us == pytest.approx(
            unmanaged.mean_data_us, rel=0.1
        )

    def test_requires_cxl_platform(self, p7302):
        from repro.experiments import accel_dispatch

        with pytest.raises(ConfigurationError):
            accel_dispatch.run(p7302, managed=False)
