"""Regenerate Figure 5 — bandwidth harvesting under fluctuating demand (§3.5).

Six-second runs with flow 0 throttled by 2 GB/s during [2,3)s and [4,5)s.
Shape criteria from the paper:

* the unthrottled flow reaps the freed bandwidth on the 9634 — in ≈100 ms
  on the IF and ≈500 ms on the P Link;
* the 7302's IF shows "drastic variation" (under-damped token reclaim);
* both flows return to the equal share once throttling ends.
"""

import pytest

from repro.experiments import fig5

from benchmarks.conftest import emit


def _emit_trace(result, samples=12):
    trace = result.traces["flow1"].achieved_series()
    stride = max(1, len(trace.times_s) // samples)
    points = ", ".join(
        f"{t:.1f}s:{v:.1f}"
        for t, v in zip(trace.times_s[::stride], trace.values[::stride])
    )
    emit(
        f"Figure 5 [{result.scenario.platform} {result.scenario.name}] "
        f"flow1 GB/s: {points}\n"
        f"  harvest delay: "
        f"{'n/a' if result.harvest_delay_s is None else f'{result.harvest_delay_s*1e3:.0f} ms'}"
        f", in-window variation: {result.variation_gbps:.2f} GB/s"
    )


def bench_fig5_if_9634(benchmark, p9634):
    result = benchmark.pedantic(
        fig5.run, args=(p9634, "if"), rounds=1, iterations=1
    )
    _emit_trace(result)
    assert result.harvest_delay_s == pytest.approx(0.1, abs=0.03)
    series = result.traces["flow1"].achieved_series()
    capacity = result.scenario.capacity_gbps
    assert series.mean_between(2.7, 3.0) == pytest.approx(
        capacity / 2 + 2.0, abs=0.2
    )
    assert series.mean_between(5.5, 6.0) == pytest.approx(capacity / 2, abs=0.3)


def bench_fig5_plink_9634(benchmark, p9634):
    result = benchmark.pedantic(
        fig5.run, args=(p9634, "plink"), rounds=1, iterations=1
    )
    _emit_trace(result)
    assert result.harvest_delay_s == pytest.approx(0.5, abs=0.1)


def bench_fig5_if_7302(benchmark, p7302, p9634):
    result = benchmark.pedantic(
        fig5.run, args=(p7302, "if"), rounds=1, iterations=1
    )
    _emit_trace(result)
    smooth = fig5.run(p9634, "if")
    # "the EPYC 7302 sees drastic variation at the IF link".
    assert result.variation_gbps > 3 * smooth.variation_gbps
