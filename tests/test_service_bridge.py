"""Async-bridge tests: crash recovery and cancellation under the loop.

The service runs every batch through
:func:`repro.service.bridge.run_cells_streamed` — the hardened runner on
a worker thread, each final :class:`CellResult` hopping back onto the
event loop via ``call_soon_threadsafe``. These tests drive that exact
seam with hostile cells: workers killed mid-batch (``BrokenProcessPool``
recovery), cancellation tripped between cells, and in-batch duplicates —
asserting the service-facing contract that *every* submitted cell yields
exactly one streamed result, whatever happens to the pool.
"""

from __future__ import annotations

import asyncio
import os
import threading

from repro.runner import Cell
from repro.service.bridge import run_cells_streamed


def _square(x):
    return x * x


def _in_worker():
    import multiprocessing

    return multiprocessing.current_process().name != "MainProcess"


def _crash_worker_if_odd(x):
    if x % 2 == 1 and _in_worker():
        os._exit(13)        # hard worker death, not an exception
    return x * x


def _crash_everywhere(x):
    if _in_worker():
        os._exit(13)
    raise RuntimeError("dies everywhere")


def _record_call(path, x):
    with open(path, "a") as handle:
        handle.write(f"{x}\n")
    return x * x


def _boom_and_record(path, x):
    _record_call(path, x)
    raise RuntimeError("boom")


def _trip_then_return(event, x):
    event.set()
    return x


def _calls(path):
    if not os.path.exists(path):
        return []
    with open(path) as handle:
        return [line.strip() for line in handle if line.strip()]


def _streamed(cells, **runner_kwargs):
    """(streamed results in arrival order, returned list) for one batch."""
    arrived = []
    loop_thread = []

    async def drive():
        loop_thread.append(threading.get_ident())
        return await run_cells_streamed(
            cells, on_result=arrived.append, **runner_kwargs
        )

    returned = asyncio.run(drive())
    return arrived, returned, loop_thread[0]


class TestCrashRecovery:
    def test_pool_killed_mid_batch_loses_nothing(self):
        # Workers die on every odd cell (BrokenProcessPool); the runner
        # re-runs the damage in-process. Through the bridge the service
        # must still see one final result per cell — all successful here,
        # because the re-run succeeds outside a worker.
        cells = [Cell(_crash_worker_if_odd, (x,)) for x in range(6)]
        arrived, returned, _ = _streamed(
            cells, jobs=2, pool_threshold_s=0, cache=None
        )
        assert [result.value for result in returned] == [
            x * x for x in range(6)
        ]
        assert sorted(result.index for result in arrived) == list(range(6))
        assert len(arrived) == 6        # exactly once per cell

    def test_unrecoverable_crash_surfaces_failure_not_loss(self):
        # When the in-process re-run after a worker death fails too, the
        # in-flight cell surfaces as a ``crash`` CellFailure — and the
        # other cell in the batch is still delivered, not lost.
        cells = [Cell(_crash_everywhere, (0,)), Cell(_square, (3,))]
        arrived, returned, _ = _streamed(
            cells, jobs=2, pool_threshold_s=0, cache=None
        )
        assert len(returned) == 2 and len(arrived) == 2
        assert not returned[0].ok
        assert returned[0].failure.kind == "crash"
        assert isinstance(returned[0].failure.error, RuntimeError)
        assert returned[1].ok and returned[1].value == 9


class TestCancellation:
    def test_cancel_before_start_reports_every_cell(self, tmp_path):
        # A cancel that lands before the batch starts: nothing executes,
        # yet every cell still streams exactly one ``cancelled`` failure.
        marker = str(tmp_path / "calls")
        cancel = threading.Event()
        cancel.set()
        cells = [Cell(_record_call, (marker, x)) for x in range(4)]
        arrived, returned, _ = _streamed(
            cells, jobs=1, cache=None, cancel=cancel
        )
        assert _calls(marker) == []
        assert len(arrived) == 4
        assert all(
            result.failure is not None
            and result.failure.kind == "cancelled"
            for result in returned
        )

    def test_cancel_mid_batch_cancels_queued_cells_only(self):
        # The first cell trips the cancel event *during its own run* (the
        # deterministic stand-in for a client cancelling mid-batch). It
        # already started, so it completes; the queued cells behind it are
        # resolved as cancelled — accounted for, never dropped.
        cancel = threading.Event()
        cells = [Cell(_trip_then_return, (cancel, 7))] + [
            Cell(_square, (x,)) for x in range(3)
        ]
        arrived, returned, _ = _streamed(
            cells, jobs=1, cache=None, cancel=cancel
        )
        assert returned[0].ok and returned[0].value == 7
        assert all(
            result.failure is not None
            and result.failure.kind == "cancelled"
            for result in returned[1:]
        )
        assert sorted(result.index for result in arrived) == [0, 1, 2, 3]

    def test_cancellation_suppresses_retries(self, tmp_path):
        # A failing cell normally gets ``retries`` extra attempts; once
        # the batch is cancelled it must not be re-run — it resolves as
        # cancelled after exactly its one pre-cancel execution.
        marker = str(tmp_path / "calls")
        cancel = threading.Event()
        cells = [
            Cell(_boom_and_record, (marker, 0)),
            Cell(_trip_then_return, (cancel, 1)),
        ]
        arrived, returned, _ = _streamed(
            cells, jobs=1, cache=None, retries=3, backoff_s=0.0, cancel=cancel
        )
        assert _calls(marker) == ["0"]      # one attempt, zero retries
        assert returned[0].failure is not None
        assert returned[0].failure.kind == "cancelled"
        assert returned[1].ok and returned[1].value == 1
        assert len(arrived) == 2


class TestStreamingContract:
    def test_callbacks_run_on_the_event_loop_thread(self):
        arrived_threads = []
        cells = [Cell(_square, (x,)) for x in range(3)]

        async def drive():
            loop_thread = threading.get_ident()

            def on_result(result):
                arrived_threads.append(threading.get_ident() == loop_thread)

            return await run_cells_streamed(
                cells, jobs=1, cache=None, on_result=on_result
            )

        returned = asyncio.run(drive())
        assert [result.value for result in returned] == [0, 1, 4]
        assert arrived_threads == [True, True, True]

    def test_duplicate_cells_stream_one_result_each(self, tmp_path):
        # In-batch dedup through the bridge: three identical cells, cache
        # disabled — one execution, but the service still receives three
        # streamed results (the fan-out copies marked ``deduped``).
        marker = str(tmp_path / "calls")
        cells = [Cell(_record_call, (marker, 5)) for _ in range(3)]
        arrived, returned, _ = _streamed(cells, jobs=1, cache=None)
        assert _calls(marker) == ["5"]
        assert len(arrived) == 3
        assert [result.value for result in returned] == [25, 25, 25]
        assert [result.deduped for result in returned] == [False, True, True]
