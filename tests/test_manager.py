"""Tests for the global traffic manager and rate limiter."""

import pytest

from repro.core.fabric import FabricModel
from repro.core.flows import Scope, StreamSpec
from repro.errors import ConfigurationError
from repro.fluid.solver import Channel, Policy
from repro.manager.manager import ManagedAllocation, TrafficManager
from repro.manager.ratelimit import TokenBucket
from repro.transport.message import OpKind


class TestTokenBucket:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            TokenBucket(0.0, 64.0)
        with pytest.raises(ConfigurationError):
            TokenBucket(1.0, 0.0)

    def test_burst_passes_without_wait(self):
        bucket = TokenBucket(rate_gbps=1.0, burst_bytes=128.0)
        assert bucket.consume(0.0, 64) == 0.0
        assert bucket.consume(0.0, 64) == 0.0

    def test_wait_after_burst(self):
        bucket = TokenBucket(rate_gbps=1.0, burst_bytes=64.0)
        bucket.consume(0.0, 64)
        wait = bucket.consume(0.0, 64)
        assert wait == pytest.approx(64.0)  # 64 bytes at 1 byte/ns

    def test_refill_over_time(self):
        bucket = TokenBucket(rate_gbps=2.0, burst_bytes=64.0)
        bucket.consume(0.0, 64)
        assert bucket.available_bytes(32.0) == pytest.approx(64.0)

    def test_refill_capped_at_burst(self):
        bucket = TokenBucket(rate_gbps=10.0, burst_bytes=64.0)
        assert bucket.available_bytes(1e9) == pytest.approx(64.0)

    def test_long_run_rate_enforced(self):
        bucket = TokenBucket(rate_gbps=4.0, burst_bytes=64.0)
        now = 0.0
        total = 0
        for __ in range(1000):
            wait = bucket.consume(now, 64)
            now += wait
            total += 64
        assert total / now == pytest.approx(4.0, rel=0.01)

    def test_time_going_backwards_rejected(self):
        bucket = TokenBucket(1.0, 64.0)
        bucket.consume(10.0, 8)
        with pytest.raises(ConfigurationError):
            bucket.consume(5.0, 8)

    def test_set_rate(self):
        bucket = TokenBucket(1.0, 64.0)
        bucket.set_rate(8.0)
        assert bucket.rate_gbps == 8.0
        with pytest.raises(ConfigurationError):
            bucket.set_rate(0.0)

    def test_invalid_consume_size(self):
        bucket = TokenBucket(1.0, 64.0)
        with pytest.raises(ConfigurationError):
            bucket.consume(0.0, 0)


class TestManagedAllocation:
    def test_jain_equal(self):
        alloc = ManagedAllocation({"a": 5.0, "b": 5.0}, Policy.MAX_MIN)
        assert alloc.jain_fairness() == pytest.approx(1.0)

    def test_jain_skewed(self):
        alloc = ManagedAllocation({"a": 1.0, "b": 9.0}, Policy.MAX_MIN)
        assert alloc.jain_fairness() < 0.7

    def test_jain_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            ManagedAllocation({}, Policy.MAX_MIN).jain_fairness()

    def test_jain_all_zero(self):
        alloc = ManagedAllocation({"a": 0.0, "b": 0.0}, Policy.MAX_MIN)
        assert alloc.jain_fairness() == 1.0

    def test_jain_single_flow_is_perfect(self):
        alloc = ManagedAllocation({"only": 7.0}, Policy.MAX_MIN)
        assert alloc.jain_fairness() == pytest.approx(1.0)


class TestChannelEdges:
    def test_zero_capacity_link_rejected(self):
        with pytest.raises(ConfigurationError):
            Channel("dead", 0.0)

    def test_negative_capacity_link_rejected(self):
        with pytest.raises(ConfigurationError):
            Channel("dead", -1.0)


class TestTrafficManager:
    def _manager(self, platform):
        return TrafficManager(FabricModel(platform))

    def test_register_and_deregister(self, p7302):
        manager = self._manager(p7302)
        spec = StreamSpec("s", OpKind.READ, (0,))
        manager.register(spec)
        assert manager.streams == [spec]
        manager.deregister("s")
        assert manager.streams == []

    def test_duplicate_registration_rejected(self, p7302):
        manager = self._manager(p7302)
        manager.register(StreamSpec("s", OpKind.READ, (0,)))
        with pytest.raises(ConfigurationError):
            manager.register(StreamSpec("s", OpKind.READ, (1,)))

    def test_deregister_unknown_rejected(self, p7302):
        with pytest.raises(ConfigurationError):
            self._manager(p7302).deregister("ghost")

    def test_allocate_without_streams_rejected(self, p7302):
        with pytest.raises(ConfigurationError):
            self._manager(p7302).allocate()

    def test_empty_registry_rejected_downstream_too(self, p7302):
        # shaped_streams/limiters allocate implicitly; an empty registry
        # must fail there just as loudly as in allocate() itself.
        manager = self._manager(p7302)
        with pytest.raises(ConfigurationError):
            manager.shaped_streams()
        with pytest.raises(ConfigurationError):
            manager.limiters()

    def test_fair_allocation_equalizes_contenders(self, p7302):
        manager = self._manager(p7302)
        cores = StreamSpec.cores_for_scope(p7302, Scope.CCX)
        # Two streams from the same CCX contending for the CCX pool.
        manager.register(StreamSpec("a", OpKind.READ, (cores[0],)))
        manager.register(StreamSpec("b", OpKind.READ, (cores[1],)))
        allocation = manager.allocate()
        grants = allocation.grants_gbps
        assert grants["a"] == pytest.approx(grants["b"], rel=0.01)

    def test_shaped_streams_are_paced(self, p7302):
        manager = self._manager(p7302)
        manager.register(StreamSpec("a", OpKind.READ, (0,)))
        shaped = manager.shaped_streams()
        assert all(spec.demand_gbps is not None for spec in shaped)

    def test_manager_protects_small_flow(self, p7302):
        # The headline ablation: under max-min, an aggressive sender cannot
        # push a small paced flow below its request.
        manager = self._manager(p7302)
        cores = StreamSpec.cores_for_scope(p7302, Scope.CCX)
        manager.register(
            StreamSpec("small", OpKind.READ, (cores[0],), demand_gbps=4.0)
        )
        manager.register(StreamSpec("big", OpKind.READ, (cores[1],)))
        grants = manager.allocate().grants_gbps
        assert grants["small"] == pytest.approx(4.0, abs=0.1)

    def test_limiters_match_grants(self, p7302):
        manager = self._manager(p7302)
        manager.register(StreamSpec("a", OpKind.READ, (0,)))
        allocation = manager.allocate()
        limiters = manager.limiters(allocation)
        assert limiters["a"].rate_gbps == pytest.approx(
            allocation.grants_gbps["a"]
        )
