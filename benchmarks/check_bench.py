"""Bench regression gate: compare the newest timing of each tracked bench
against its previous entry in ``BENCH_results.json``.

``make bench-check`` runs the bench suite (appending fresh samples to the
trajectory) and then this script. A bench *regresses* when its newest
sample is more than ``--tolerance`` (default 25%) slower than the previous
sample for the same name AND the slowdown exceeds ``--floor`` seconds —
the absolute floor keeps microsecond-scale benches from tripping the gate
on scheduler jitter.

Exit status: 0 (no regressions, or nothing to compare), 1 (regression).

Run with::

    python benchmarks/check_bench.py [--results PATH] [--tolerance 0.25]
"""

import argparse
import json
import sys
from pathlib import Path

DEFAULT_RESULTS = Path(__file__).resolve().parent.parent / "BENCH_results.json"


def load_history(path: Path):
    try:
        history = json.loads(path.read_text())
    except (FileNotFoundError, ValueError):
        return []
    return history if isinstance(history, list) else []


def compare(history, tolerance: float, floor_s: float):
    """(rows, regressions): newest vs previous sample per bench name."""
    by_name = {}
    for entry in history:
        name = entry.get("bench")
        seconds = entry.get("seconds")
        if not isinstance(name, str) or not isinstance(seconds, (int, float)):
            continue
        by_name.setdefault(name, []).append(float(seconds))
    rows = []
    regressions = []
    for name in sorted(by_name):
        samples = by_name[name]
        if len(samples) < 2:
            rows.append((name, None, samples[-1], None, "new"))
            continue
        previous, newest = samples[-2], samples[-1]
        ratio = newest / previous if previous > 0 else float("inf")
        regressed = (
            newest > previous * (1.0 + tolerance)
            and newest - previous > floor_s
        )
        status = "REGRESSED" if regressed else "ok"
        rows.append((name, previous, newest, ratio, status))
        if regressed:
            regressions.append(name)
    return rows, regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--results", type=Path, default=DEFAULT_RESULTS,
        help="trajectory file (default: BENCH_results.json at repo root)",
    )
    parser.add_argument(
        "--tolerance", type=float, default=0.25,
        help="allowed fractional slowdown before failing (default: 0.25)",
    )
    parser.add_argument(
        "--floor", type=float, default=2e-3,
        help="ignore slowdowns smaller than this many seconds (default: 2ms)",
    )
    args = parser.parse_args(argv)

    history = load_history(args.results)
    if not history:
        print(f"bench-check: no history at {args.results}, nothing to gate")
        return 0
    rows, regressions = compare(history, args.tolerance, args.floor)
    width = max(len(name) for name, *_ in rows)
    for name, previous, newest, ratio, status in rows:
        if previous is None:
            print(f"  {name:<{width}}  {'-':>10}  {newest:>10.6f}s  {status}")
        else:
            print(
                f"  {name:<{width}}  {previous:>10.6f}s  {newest:>10.6f}s  "
                f"x{ratio:.2f}  {status}"
            )
    if regressions:
        print(
            f"bench-check: {len(regressions)} regression(s) "
            f">{args.tolerance:.0%}: {', '.join(regressions)}"
        )
        return 1
    print(f"bench-check: OK ({len(rows)} tracked bench(es))")
    return 0


if __name__ == "__main__":
    sys.exit(main())
