#!/usr/bin/env python3
"""Noisy neighbor: a latency-sensitive service next to a bandwidth hog.

The scenario the paper's Implication #4 motivates: a small paced stream (a
key-value service doing 10 GB/s of reads) shares a compute chiplet with an
unthrottled analytics scan. Under the hardware's sender-driven partitioning
the hog squeezes the service; the proposed global traffic manager (max-min
fair, enforced with token-bucket limiters) protects it.

Run:  python examples/noisy_neighbor.py
"""

from repro import OpKind, StreamSpec, epyc_9634
from repro.core.fabric import FabricModel
from repro.manager.manager import TrafficManager


def main() -> None:
    platform = epyc_9634()
    fabric = FabricModel(platform)
    ccd0 = [core.core_id for core in platform.cores_of_ccd(0)]

    victim = StreamSpec(
        "kv-service", OpKind.READ, tuple(ccd0[:2]), demand_gbps=10.0
    )
    # The hog issues open-loop at 60 GB/s of requests (far beyond the GMI
    # port) — the "aggressive sender that pushes more requests in-flight"
    # of §3.5. Traffic-oblivious FIFO then splits the port by demand.
    hog = StreamSpec(
        "analytics-scan", OpKind.READ, tuple(ccd0[2:]), demand_gbps=60.0
    )

    print("-- hardware policy: sender-driven aggressive partitioning --")
    raw = fabric.achieved_gbps([victim, hog])
    for name, gbps in raw.items():
        print(f"  {name:15s} {gbps:6.2f} GB/s")

    print("\n-- with the global traffic manager (max-min fair) --")
    manager = TrafficManager(fabric)
    manager.register(victim)
    manager.register(hog)
    allocation = manager.allocate()
    for name, gbps in allocation.grants_gbps.items():
        print(f"  {name:15s} {gbps:6.2f} GB/s (grant)")
    print(f"  Jain fairness: {allocation.jain_fairness():.3f}")

    print("\n-- grants enforced as token buckets, replayed on the fabric --")
    shaped = manager.shaped_streams(allocation)
    enforced = fabric.achieved_gbps(shaped)
    for name, gbps in enforced.items():
        print(f"  {name:15s} {gbps:6.2f} GB/s (achieved under shaping)")

    limiters = manager.limiters(allocation)
    bucket = limiters["kv-service"]
    print(
        f"\n  kv-service limiter: {bucket.rate_gbps:.2f} GB/s, "
        f"burst {bucket.burst_bytes:.0f} B"
    )
    delta = raw["kv-service"] - enforced["kv-service"]
    print(f"\nvictim recovered {-delta:+.2f} GB/s under management")


if __name__ == "__main__":
    main()
