"""Tests for the hybrid batched/fluid kvstore serving engine.

Three contracts:

* **Physics** — the hybrid engine reproduces the DES model's story:
  CXL values pay their premium, a colocated hog moves the tail, the
  QoS grant recovers the victim.
* **Determinism** — ``repro kvstore`` is byte-identical for any
  ``--jobs`` and across cache miss/hit, and the ``kvstore`` service
  kind round-trips through ``normalize_spec``/``run_local`` with the
  same artifact the CLI prints.
* **Conformance** (tier-2, ``-m conformance``) — hybrid p50/p99 agree
  with the per-event DES reference on small cells within the
  documented tolerance: exact arrivals plus exact pool recurrences
  keep background-off and paced arms within 2%; the unthrottled-hog
  arm rides the fluid coupling's calibrated clamp and is held to 10%
  (measured worst ~6.5%; see docs/PERFORMANCE.md).
"""

import numpy as np
import pytest

from repro.apps import (
    ArrivalSpec,
    HybridKvServer,
    KvServerModel,
    KvWorkload,
    TenantSpec,
    serve_hybrid,
)
from repro.cli import main
from repro.errors import ConfigurationError, MeasurementError
from repro.experiments import kvserve
from repro.service.registry import normalize_spec, render_results, run_local
from repro.sim.rng import SplitRng


def _workload(qps=2_000_000.0, requests=2000, **kwargs):
    return KvWorkload(qps=qps, requests=requests, **kwargs)


class TestArrivalSpec:
    def test_bad_kind_rejected(self):
        with pytest.raises(ConfigurationError):
            ArrivalSpec(kind="adversarial")

    def test_onoff_burst_bounded_by_duty_cycle(self):
        # A 5x burst over a 25% duty cycle would need a negative off-rate.
        with pytest.raises(ConfigurationError):
            ArrivalSpec(kind="onoff", burst_factor=5.0, on_fraction=0.25)

    def test_diurnal_needs_levels(self):
        with pytest.raises(ConfigurationError):
            ArrivalSpec(kind="diurnal", levels=())

    @pytest.mark.parametrize("spec", [
        ArrivalSpec(),
        ArrivalSpec(kind="onoff", burst_factor=3.0, on_fraction=0.25),
        ArrivalSpec(kind="diurnal", levels=(1.0, 2.0, 0.5, 0.5)),
    ])
    def test_mean_rate_preserved(self, spec):
        # Every shape keeps the workload's nominal QPS as the mean rate.
        rng = SplitRng(7).stream("arrivals")
        qps, count = 2_000_000.0, 200_000
        arrivals = spec.generate(rng, qps, count)
        assert arrivals.size == count
        assert np.all(np.diff(arrivals) >= 0)
        achieved = count / (arrivals[-1] - arrivals[0]) * 1e9
        assert achieved == pytest.approx(qps, rel=0.02)


class TestHybridPhysics:
    @pytest.fixture(scope="class")
    def server(self, p9634):
        return HybridKvServer(p9634, seed=0)

    @pytest.fixture(scope="class")
    def background(self, p9634):
        return [core.core_id for core in p9634.cores_of_ccd(0)[4:]]

    def test_cxl_values_pay_premium(self, server):
        dram = server.serve(_workload())
        cxl = server.serve(_workload(value_tier="cxl"))
        assert cxl.latency.mean > dram.latency.mean + 80.0

    def test_deep_index_costs_round_trips(self, server):
        base = server.serve(_workload())
        deep = server.serve(_workload(index_depth=4))
        delta = deep.latency.mean - base.latency.mean
        assert delta == pytest.approx(2 * 141.0, rel=0.25)

    def test_hog_moves_tail_and_qos_recovers(self, server, background):
        quiet = server.serve(_workload())
        noisy = server.serve(_workload(), background_cores=background)
        paced = server.serve(
            _workload(), background_cores=background,
            background_rate_gbps=kvserve.QOS_RATE_GBPS,
        )
        assert noisy.latency.p99 > quiet.latency.p99
        assert paced.latency.p99 < noisy.latency.p99
        assert paced.latency.p99 <= quiet.latency.p99 * 1.25

    def test_slo_predicate(self, p9634):
        point = kvserve.run_point(p9634, "dram", "off", requests=2000)
        assert point.meets_slo(p99_us=2.0)
        assert not point.meets_slo(p99_us=0.1)

    def test_achieved_qps_tracks_offered(self, server):
        report = server.serve(_workload(requests=20_000))
        assert report.achieved_qps == pytest.approx(2_000_000.0, rel=0.05)

    def test_degenerate_span_rejected(self, p9634, monkeypatch):
        # All requests arriving and completing at one instant has no
        # defined achieved-QPS; the guard must refuse, not divide by 0.
        server = HybridKvServer(p9634, seed=0)
        monkeypatch.setattr(
            HybridKvServer, "service_times_ns",
            lambda self, *a, **k: np.zeros(1),
        )
        monkeypatch.setattr(
            ArrivalSpec, "generate",
            lambda self, rng, qps, count: np.zeros(count),
        )
        with pytest.raises(MeasurementError):
            server.serve(_workload(requests=10), workers=1)


class TestMultiTenant:
    def test_merged_summary_is_exact(self, p9634):
        server = HybridKvServer(p9634, seed=0)
        tenants = [
            TenantSpec(name="a", workload=_workload(), server_ccd=0),
            TenantSpec(
                name="b", workload=_workload(value_tier="cxl"), server_ccd=1,
                arrival=ArrivalSpec(kind="onoff"),
            ),
        ]
        reports, merged = server.serve_tenants(tenants)
        assert merged.count == sum(t.workload.requests for t in tenants)
        assert merged.minimum == min(
            r.report.latency.minimum for r in reports
        )
        assert merged.maximum == max(
            r.report.latency.maximum for r in reports
        )
        assert merged.p50 <= merged.p99 <= merged.p999 <= merged.maximum

    def test_empty_and_duplicate_tenants_rejected(self, p9634):
        server = HybridKvServer(p9634, seed=0)
        with pytest.raises(ConfigurationError):
            server.serve_tenants([])
        tenant = TenantSpec(name="a", workload=_workload())
        with pytest.raises(ConfigurationError):
            server.serve_tenants([tenant, tenant])


_CLI_ARGS = [
    "kvstore", "--platform", "9634", "--requests", "1500",
]


def _run_cli(capsys, *extra):
    assert main([*_CLI_ARGS, *extra]) == 0
    return capsys.readouterr().out


class TestCliDeterminism:
    @pytest.mark.parametrize("jobs", ["2", "4"])
    def test_stdout_identical_across_jobs(self, capsys, jobs):
        baseline = _run_cli(capsys, "--jobs", "1", "--no-cache")
        fanned = _run_cli(capsys, "--jobs", jobs, "--no-cache")
        assert fanned == baseline
        assert "Open-loop kvstore serving tails" in baseline

    def test_cache_miss_then_hit_byte_identical(
        self, capsys, tmp_path, monkeypatch
    ):
        monkeypatch.setenv("REPRO_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        cold = _run_cli(capsys)  # populates the cache
        warm = _run_cli(capsys, "--jobs", "3")
        assert warm == cold
        uncached = _run_cli(capsys, "--no-cache")
        assert uncached == cold


class TestServiceKind:
    def test_normalize_fills_defaults(self):
        spec = normalize_spec({"kind": "kvstore", "platform": "9634"})
        assert spec["params"] == {"qps": 2_000_000.0, "requests": 100_000}

    def test_normalize_rejects_bad_params(self):
        with pytest.raises(ConfigurationError):
            normalize_spec(
                {"kind": "kvstore", "params": {"qps": -1.0}}
            )
        with pytest.raises(ConfigurationError):
            normalize_spec(
                {"kind": "kvstore", "params": {"requests": 5}}
            )
        with pytest.raises(ConfigurationError):
            normalize_spec(
                {"kind": "kvstore", "params": {"qps": True}}
            )

    def test_local_run_matches_cli_artifact(self, capsys, p9634):
        spec = normalize_spec({
            "kind": "kvstore", "platform": "9634",
            "params": {"requests": 1500},
        })
        results = run_local(spec, cache=None)
        artifact = render_results(spec, results)
        cli_out = _run_cli(capsys, "--no-cache")
        assert artifact + "\n" == cli_out

    def test_submit_fallback_matches_kvstore_command(self, capsys):
        direct = _run_cli(capsys, "--no-cache")
        assert main([
            "submit", "kvstore", "--platform", "9634",
            "--requests", "1500", "--local", "--no-cache",
        ]) == 0
        assert capsys.readouterr().out == direct


def _des_report(platform, workers, background_cores, rate):
    model = KvServerModel(
        platform, workers=workers, seed=0, with_dram_jitter=False
    )
    return model.serve(
        _workload(),
        background_cores=background_cores,
        background_rate_gbps=rate,
    )


@pytest.mark.conformance
class TestHybridVsDes:
    """Hybrid-vs-DES agreement on small cells, both paper presets.

    Documented tolerance: background-off and QoS-paced arms within 2%
    on p50 and p99 (arrivals are bit-identical and the pool recurrence
    is exact; the residue is per-core service asymmetry under
    overload), the unthrottled-hog arm within 10% (the fluid coupling
    approximates queueing behind a window-limited issuer; measured
    worst ~6.5%).
    """

    CASES = [
        ("off", None, 0.02),
        ("qos", kvserve.QOS_RATE_GBPS, 0.02),
        ("hog", None, 0.10),
    ]

    @pytest.mark.parametrize("preset", ["p7302", "p9634"])
    @pytest.mark.parametrize("arm,rate,tolerance", CASES)
    def test_small_cell_agreement(self, preset, arm, rate, tolerance, request):
        platform = request.getfixturevalue(preset)
        workers = kvserve.default_workers(platform)
        cores = list(kvserve.hog_cores(platform, workers=workers))
        background = cores if arm != "off" else None
        des = _des_report(platform, workers, background, rate)
        hybrid = serve_hybrid(
            platform, _workload(), workers=workers,
            background_cores=background, background_rate_gbps=rate,
        )
        assert hybrid.latency.p50 == pytest.approx(
            des.latency.p50, rel=tolerance
        )
        assert hybrid.latency.p99 == pytest.approx(
            des.latency.p99, rel=tolerance
        )
