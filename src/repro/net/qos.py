"""QoS classes and admission control for the chiplet networking stack.

Two service classes cover the paper's workload split (§4): latency-sensitive
traffic (request/response, pointer-heavy) and bulk traffic (streaming,
checkpoint, migration). A class maps onto both backends at once:

* fluid — a share ``weight`` consumed by :attr:`~repro.fluid.solver.Policy.
  WEIGHTED` progressive filling (latency traffic fills twice as fast);
* DES — a ``credit_scale`` that skews the receiver-driven credit split
  (bulk senders hold fewer outstanding cachelines per endpoint, so they
  cannot build deep queues in front of latency traffic).

:class:`AdmissionController` is the control-plane half: a guaranteed-rate
flow is admitted only if every fabric channel on its path retains headroom
for the full guarantee, so the sum of guarantees can never exceed any
channel's capacity (the invariant :class:`~repro.errors.AdmissionError`
enforces). Admitted flows get :class:`~repro.manager.ratelimit.TokenBucket`
limiters programmed to their guarantee, reusing the manager's enforcement
machinery.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

from repro.core.fabric import FabricModel
from repro.core.flows import StreamSpec
from repro.errors import AdmissionError, ConfigurationError
from repro.manager.ratelimit import TokenBucket
from repro.units import CACHELINE

__all__ = ["QosClass", "ClassSpec", "CLASS_SPECS", "AdmissionController"]

_EPS = 1e-9


class QosClass(enum.Enum):
    """Service class of a flow."""

    LATENCY = "latency"
    BULK = "bulk"


@dataclass(frozen=True)
class ClassSpec:
    """How one service class maps onto the two backends."""

    #: Share weight under :attr:`Policy.WEIGHTED` progressive filling.
    weight: float
    #: Multiplier on the flow's receiver-driven credit share.
    credit_scale: float


#: The default class calibration: latency traffic fills twice as fast and
#: bulk senders hold half the credits a latency sender would.
CLASS_SPECS: Dict[QosClass, ClassSpec] = {
    QosClass.LATENCY: ClassSpec(weight=2.0, credit_scale=1.0),
    QosClass.BULK: ClassSpec(weight=1.0, credit_scale=0.5),
}


class AdmissionController:
    """Admits guaranteed-rate flows only while every channel keeps headroom.

    Usage::

        control = AdmissionController(FabricModel(platform))
        control.admit(victim_spec, rate_gbps=24.0)   # ok or AdmissionError
        limiters = control.limiters()                # enforcement buckets
    """

    def __init__(self, fabric: FabricModel, health=None) -> None:
        self.fabric = fabric
        #: Optional :class:`repro.net.recovery.HealthMonitor` (duck-typed:
        #: ``is_dead(endpoint)``). A DEAD channel offers zero admission
        #: headroom until its probes revive it.
        self.health = health
        #: Admitted guarantee per flow name.
        self._rates: Dict[str, float] = {}
        #: Channel load (GB/s) each admitted flow commits, by flow name.
        self._loads: Dict[str, Dict[str, float]] = {}

    def _channel_dead(self, channel: str) -> bool:
        if self.health is None:
            return False
        base, __, ___ = channel.partition(":")
        return self.health.is_dead(base)

    # ---------------------------------------------------------------- queries

    @property
    def admitted(self) -> Dict[str, float]:
        """Guaranteed rate (GB/s) per admitted flow."""
        return dict(self._rates)

    def committed_gbps(self, channel: str) -> float:
        """Total guaranteed load already committed on one channel."""
        return sum(loads.get(channel, 0.0) for loads in self._loads.values())

    def headroom_gbps(self, channel: str) -> float:
        """Capacity of ``channel`` not yet promised to admitted flows.

        A channel whose endpoint the health monitor has declared DEAD
        offers no headroom at all — new guarantees cannot be promised
        against capacity that is not being served.
        """
        if self._channel_dead(channel):
            return 0.0
        capacity = self.fabric.channel(channel).capacity_gbps
        return max(0.0, capacity - self.committed_gbps(channel))

    def revalidate(self) -> Dict[str, float]:
        """Flows whose guarantees now ride a DEAD channel, by flow name.

        The controller never silently revokes an admitted guarantee —
        control-plane policy belongs to the caller. This reports which
        admitted flows are committed on channels the health monitor has
        since declared dead, so the caller can :meth:`release` and
        re-:meth:`admit` them over the surviving paths (re-admission after
        a flapping link returns is the same call with health healthy).
        """
        stranded: Dict[str, float] = {}
        for name, loads in self._loads.items():
            if any(self._channel_dead(channel) for channel in loads):
                stranded[name] = self._rates[name]
        return stranded

    # ------------------------------------------------------------- admission

    def _channel_loads(
        self,
        spec: StreamSpec,
        rate_gbps: float,
        umc_ids: Optional[Sequence[int]],
    ) -> Dict[str, float]:
        """Per-channel load (GB/s) a guarantee of ``rate_gbps`` commits."""
        sized = StreamSpec(
            spec.name, spec.op, spec.core_ids,
            target=spec.target, demand_gbps=rate_gbps,
        )
        loads: Dict[str, float] = {}
        for flow in self.fabric.flows_for(sized, umc_ids=umc_ids):
            for channel, weight in flow.path:
                loads[channel.name] = (
                    loads.get(channel.name, 0.0)
                    + flow.demand_gbps * weight
                )
        return loads

    def admit(
        self,
        spec: StreamSpec,
        rate_gbps: float,
        umc_ids: Optional[Sequence[int]] = None,
    ) -> Dict[str, float]:
        """Admit ``spec`` with a guaranteed rate, or raise AdmissionError.

        Returns the per-channel loads the admission committed. The check and
        the commit are atomic: a refused flow commits nothing.
        """
        if rate_gbps <= 0:
            raise ConfigurationError(
                f"guaranteed rate must be positive, got {rate_gbps}"
            )
        if spec.name in self._rates:
            raise ConfigurationError(
                f"flow {spec.name!r} is already admitted"
            )
        loads = self._channel_loads(spec, rate_gbps, umc_ids)
        for channel, load in loads.items():
            headroom = self.headroom_gbps(channel)
            if load > headroom + _EPS:
                raise AdmissionError(
                    f"flow {spec.name!r} refused: {load:.2f} GB/s on "
                    f"{channel} exceeds the {headroom:.2f} GB/s headroom"
                )
        self._rates[spec.name] = rate_gbps
        self._loads[spec.name] = loads
        return dict(loads)

    def release(self, name: str) -> None:
        """Return an admitted flow's guarantee to the free pool."""
        if name not in self._rates:
            raise ConfigurationError(f"flow {name!r} is not admitted")
        del self._rates[name]
        del self._loads[name]

    def limiters(self, burst_lines: int = 16) -> Dict[str, TokenBucket]:
        """Token buckets programmed to the admitted guarantees."""
        return {
            name: TokenBucket(rate, burst_lines * CACHELINE)
            for name, rate in self._rates.items()
        }

    def assert_subscribed_within_capacity(self) -> None:
        """The controller's invariant, checkable at any time."""
        for channel in {
            name
            for loads in self._loads.values()
            for name in loads
        }:
            capacity = self.fabric.channel(channel).capacity_gbps
            committed = self.committed_gbps(channel)
            if committed > capacity + _EPS:
                raise AdmissionError(
                    f"channel {channel} over-subscribed: {committed:.2f} "
                    f"GB/s committed against {capacity:.2f} GB/s capacity"
                )


def class_weights(
    classes: Dict[str, QosClass],
    specs: Optional[Dict[QosClass, ClassSpec]] = None,
) -> Dict[str, float]:
    """Fluid WEIGHTED-policy share weights for a flow→class mapping."""
    table = specs or CLASS_SPECS
    return {name: table[cls].weight for name, cls in classes.items()}


def class_credit_scales(
    classes: Dict[str, QosClass],
    specs: Optional[Dict[QosClass, ClassSpec]] = None,
) -> Dict[str, float]:
    """Receiver credit-share scales for a flow→class mapping."""
    table = specs or CLASS_SPECS
    return {name: table[cls].credit_scale for name, cls in classes.items()}


__all__ += ["class_weights", "class_credit_scales"]
