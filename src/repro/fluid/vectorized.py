"""NumPy fast path for the fluid solver: incidence-matrix water-filling.

:class:`CompiledProblem` reformulates a flow set on a channel×flow incidence
matrix ``A`` (``A[c, f]`` = bytes flow ``f`` puts on channel ``c`` per
payload byte, summed over repeated path entries). Both policies then run as
batched array passes instead of per-member Python loops:

* **max-min / weighted** — progressive filling: the common fill level rises
  by ``min((demand-alloc)/share, residual/weight_sum)`` each pass, channels
  that saturate freeze every flow crossing them, all computed as vector
  reductions over ``A``;
* **demand-proportional** — the reference's scale-down (per channel, in the
  same upstream-first order) and raise passes, with per-channel loads and
  per-flow headrooms as matrix-vector products.

The arithmetic deliberately mirrors :mod:`repro.fluid.solver`'s reference
backend operation-for-operation; the only divergence is summation order
(pairwise NumPy dot versus sequential Python ``sum``), so the two backends
agree within 1e-9 on every allocation (``tests/test_fluid_vectorized.py``
pins this, including a hypothesis sweep over random topologies).

Warm starts
-----------

A compiled problem is built once per sweep and re-solved per point, and two
incremental paths make repeated solves cheap:

* **exact reuse** — identical ``(policy, demands, capacities)`` returns the
  previous allocation without touching the arrays (bit-identical, valid for
  every policy; this is what makes piecewise-constant sweeps like Figure 5
  nearly free);
* **bottleneck verification** (max-min/weighted only) — when only
  capacities changed, the previous allocation is accepted iff it is still
  feasible and every below-demand flow still has a *bottleneck*: a
  saturated path channel on which it holds the maximal weight-normalized
  rate. That condition characterizes the (unique) weighted max-min
  allocation, so acceptance cannot change the answer; anything unclear
  falls through to a cold vectorized solve.

Demand-proportional allocations depend on the iteration's starting point,
so they only ever take the exact-reuse path.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, ConvergenceError
from repro.fluid.solver import FluidFlow, Policy, _channels_of

__all__ = ["CompiledProblem", "solve_vectorized"]

_EPS = 1e-9

#: Saturation tolerance of the reference freeze pass (kept identical).
_SAT_EPS = 1e-6


def _subset_channel_order(
    flows: Sequence[FluidFlow],
    subset: Sequence[int],
    index_of: Dict[str, int],
) -> List[int]:
    """Channel indices touched by ``subset`` flows, upstream-first.

    Mirrors :func:`repro.fluid.solver._channels_of` ordering (mean position
    along the subset's paths, ties by name) so the sequential scale-down
    pass visits channels exactly like the reference backend does.
    """
    positions: Dict[str, List[int]] = {}
    for j in subset:
        for position, (channel, __) in enumerate(flows[j].path):
            positions.setdefault(channel.name, []).append(position)

    def sort_key(name: str):
        pos = positions[name]
        return (sum(pos) / len(pos), name)

    return [index_of[name] for name in sorted(positions, key=sort_key)]


class CompiledProblem:
    """One flow set compiled to channel×flow incidence form.

    Build once per sweep, then call :meth:`solve_array` per point with the
    demand/capacity vectors of that point. The instance caches the last
    solution for warm starts (see the module docstring); it never mutates
    the :class:`~repro.fluid.solver.FluidFlow` objects it was built from.
    """

    def __init__(self, flows: Sequence[FluidFlow]) -> None:
        flows = list(flows)
        names = [flow.name for flow in flows]
        if len(set(names)) != len(names):
            raise ConfigurationError(f"duplicate flow names in {names}")
        channels = _channels_of(flows)
        self.flow_names: List[str] = names
        self.channel_names: List[str] = [channel.name for channel in channels]
        index_of = {name: k for k, name in enumerate(self.channel_names)}
        n_channels, n_flows = len(channels), len(flows)
        matrix = np.zeros((n_channels, n_flows))
        counts = np.zeros((n_channels, n_flows))
        for j, flow in enumerate(flows):
            for channel, weight in flow.path:
                matrix[index_of[channel.name], j] += weight
                counts[index_of[channel.name], j] += 1.0
        self.matrix = matrix
        #: A[c, f] = number of times channel c appears in flow f's path. The
        #: reference scale-down pass multiplies a flow once per *membership
        #: entry*, so a duplicated channel scales its flow twice per pass —
        #: mirrored here to keep degenerate paths in agreement too.
        self._entry_counts = counts
        self.on_path = matrix > 0.0
        self.base_capacities = np.array(
            [channel.capacity_gbps for channel in channels]
        )
        self.base_demands = np.array([flow.demand_gbps for flow in flows])
        self.elastic = np.array([flow.elastic for flow in flows], dtype=bool)
        self.shares = np.array([flow.weight for flow in flows])
        self.has_path = np.array([bool(flow.path) for flow in flows], dtype=bool)
        #: Per-flow path entries as (channel index array, weight array),
        #: duplicates preserved — the raise pass iterates them like the
        #: reference iterates ``flow.path``.
        self._path_entries: List[Tuple[np.ndarray, np.ndarray]] = [
            (
                np.array(
                    [index_of[channel.name] for channel, __ in flow.path],
                    dtype=np.intp,
                ),
                np.array([weight for __, weight in flow.path]),
            )
            for flow in flows
        ]
        paced = [j for j in range(n_flows) if not flows[j].elastic]
        elastic = [j for j in range(n_flows) if flows[j].elastic]
        self._order_paced = _subset_channel_order(flows, paced, index_of)
        self._order_elastic = _subset_channel_order(flows, elastic, index_of)
        self._order_all = _subset_channel_order(
            flows, range(n_flows), index_of
        )
        self._flows = flows
        self._memo: Optional[Tuple[Policy, bytes, bytes, np.ndarray]] = None

    # ----------------------------------------------------------------- solve

    def solve_array(
        self,
        policy: Policy = Policy.DEMAND_PROPORTIONAL,
        demands: Optional[np.ndarray] = None,
        capacities: Optional[np.ndarray] = None,
        max_iterations: int = 10_000,
        warm: bool = True,
    ) -> np.ndarray:
        """Allocation vector (flow order) for one sweep point.

        ``demands``/``capacities`` default to the compiled flows' own values.
        With ``warm=True`` (the default) the previous solution is reused when
        provably unchanged; the returned array is read-only and shared, so
        copy before mutating.
        """
        d = (
            self.base_demands
            if demands is None
            else np.asarray(demands, dtype=float)
        )
        c = (
            self.base_capacities
            if capacities is None
            else np.asarray(capacities, dtype=float)
        )
        if d.shape != self.base_demands.shape:
            raise ConfigurationError(
                f"expected {self.base_demands.shape[0]} demands, got {d.shape}"
            )
        if c.shape != self.base_capacities.shape:
            raise ConfigurationError(
                f"expected {self.base_capacities.shape[0]} capacities, "
                f"got {c.shape}"
            )
        d_bytes, c_bytes = d.tobytes(), c.tobytes()
        if warm and self._memo is not None:
            m_policy, m_demands, m_caps, m_alloc = self._memo
            if m_policy is policy and m_demands == d_bytes:
                if m_caps == c_bytes:
                    return m_alloc
                if policy in (Policy.MAX_MIN, Policy.WEIGHTED) and (
                    self.verify_max_min(
                        m_alloc, d, c, use_weights=policy is Policy.WEIGHTED
                    )
                ):
                    self._memo = (policy, d_bytes, c_bytes, m_alloc)
                    return m_alloc
        if policy is Policy.DEMAND_PROPORTIONAL:
            alloc = self._solve_proportional(d, c, max_iterations)
        else:
            alloc = self._solve_max_min(
                d, c, max_iterations, use_weights=policy is Policy.WEIGHTED
            )
        alloc.setflags(write=False)
        self._memo = (policy, d_bytes, c_bytes, alloc)
        return alloc

    def solve_dict(
        self,
        policy: Policy = Policy.DEMAND_PROPORTIONAL,
        demands: Optional[np.ndarray] = None,
        capacities: Optional[np.ndarray] = None,
        max_iterations: int = 10_000,
        warm: bool = True,
    ) -> Dict[str, float]:
        """Like :meth:`solve_array`, as a {flow name: GB/s} dict."""
        alloc = self.solve_array(
            policy, demands, capacities, max_iterations, warm=warm
        )
        return {
            name: float(value) for name, value in zip(self.flow_names, alloc)
        }

    # --------------------------------------------------- max-min (weighted)

    def _solve_max_min(
        self,
        demands: np.ndarray,
        capacities: np.ndarray,
        max_iterations: int,
        use_weights: bool,
    ) -> np.ndarray:
        shares = self.shares if use_weights else np.ones(len(self.flow_names))
        if use_weights and (shares <= 0.0).any():
            offender = self.flow_names[int(np.argmax(shares <= 0.0))]
            raise ConfigurationError(
                f"flow {offender}: weight must be positive"
            )
        matrix, on_path = self.matrix, self.on_path
        alloc = np.zeros(len(self.flow_names))
        frozen = (~self.has_path) | (demands <= _EPS)
        alloc[frozen] = demands[frozen]
        for __ in range(max_iterations):
            active = ~frozen
            if not active.any():
                return alloc
            increment = ((demands - alloc)[active] / shares[active]).min()
            weight_sum = matrix @ np.where(active, shares, 0.0)
            residual = capacities - matrix @ alloc
            movable = weight_sum > _EPS
            if movable.any():
                increment = min(
                    increment, (residual[movable] / weight_sum[movable]).min()
                )
            increment = max(increment, 0.0)
            alloc = alloc + np.where(active, increment * shares, 0.0)
            met = active & (alloc >= demands - _EPS)
            saturated = (matrix @ alloc) >= capacities - _SAT_EPS
            on_saturated = (on_path & saturated[:, None]).any(axis=0)
            newly = active & (met | on_saturated)
            frozen = frozen | newly
            if not newly.any() and increment <= _EPS:
                # Numerical stall: freeze everything that remains.
                frozen = frozen | active
        return alloc

    def verify_max_min(
        self,
        alloc: np.ndarray,
        demands: np.ndarray,
        capacities: np.ndarray,
        use_weights: bool,
    ) -> bool:
        """Is ``alloc`` (still) the weighted max-min allocation?

        Sufficient-condition check used by the warm-start path: feasibility,
        demand bounds, and a *bottleneck channel* for every below-demand
        flow — a saturated path channel on which the flow's normalized rate
        ``alloc/share`` is maximal among the channel's flows. The tolerances
        are tight (1e-9 relative) so an accepted allocation differs from a
        cold solve by at most that; anything unclear returns False.
        """
        shares = self.shares if use_weights else np.ones(len(self.flow_names))
        if use_weights and (shares <= 0.0).any():
            return False
        load = self.matrix @ alloc
        cap_tol = _EPS * np.maximum(1.0, capacities)
        if (load > capacities + cap_tol).any():
            return False
        if (alloc > demands + _EPS * np.maximum(1.0, demands)).any():
            return False
        if (alloc < -_EPS).any():
            return False
        if ((~self.has_path) & (np.abs(alloc - demands) > _EPS)).any():
            return False
        below = self.has_path & (alloc < demands - _EPS)
        if not below.any():
            return True
        saturated = load >= capacities - cap_tol
        level = alloc / shares
        member_levels = np.where(self.on_path, level[None, :], -np.inf)
        top = member_levels.max(axis=1)
        top_tol = _EPS * np.maximum(1.0, np.abs(top))
        bottleneck = (
            self.on_path
            & saturated[:, None]
            & (level[None, :] >= (top - top_tol)[:, None])
        )
        return bool(bottleneck.any(axis=0)[below].all())

    # ------------------------------------------------- demand-proportional

    def _solve_proportional(
        self,
        demands: np.ndarray,
        capacities: np.ndarray,
        max_iterations: int,
    ) -> np.ndarray:
        paced = ~self.elastic
        alloc = np.zeros(len(self.flow_names))
        if paced.any():
            alloc = self._proportional_pass(
                paced, demands, capacities, None, self._order_paced,
                max_iterations,
            )
        if self.elastic.any():
            committed = self.matrix @ np.where(paced, alloc, 0.0)
            elastic_alloc = self._proportional_pass(
                self.elastic, demands, capacities, committed,
                self._order_elastic, max_iterations,
            )
            alloc = np.where(self.elastic, elastic_alloc, alloc)
        return alloc

    def _proportional_pass(
        self,
        subset: np.ndarray,
        demands: np.ndarray,
        capacities: np.ndarray,
        committed: Optional[np.ndarray],
        order: Sequence[int],
        max_iterations: int,
    ) -> np.ndarray:
        members = np.where(subset[None, :], self.matrix, 0.0)
        capacity = capacities if committed is None else np.maximum(
            0.0, capacities - committed
        )
        alloc = np.where(subset, demands, 0.0)
        flow_indices = np.flatnonzero(subset)
        for __ in range(max_iterations):
            changed = False
            # Scale-down pass: sequential in upstream-first order — a
            # channel's scaling feeds the reduced rate to the queues after
            # it, exactly like the reference (and like open-loop traffic).
            for c in order:
                row = members[c]
                load = row @ alloc
                if load > capacity[c] + _EPS:
                    scale = capacity[c] / load if load > 0 else 0.0
                    alloc = np.where(
                        row > 0.0, alloc * scale ** self._entry_counts[c], alloc
                    )
                    changed = True
            # Raise pass: a flow below demand with slack on its whole path
            # takes the slack; loads update sequentially in flow order.
            loads = members @ alloc
            for j in flow_indices:
                gap = demands[j] - alloc[j]
                if gap <= _EPS:
                    continue
                path_channels, path_weights = self._path_entries[j]
                if len(path_channels) == 0:
                    continue
                headroom = (
                    (capacity[path_channels] - loads[path_channels])
                    / path_weights
                ).min()
                grab = min(gap, headroom)
                if grab > _EPS:
                    alloc[j] += grab
                    loads = loads + grab * members[:, j]
                    changed = True
            if not changed:
                return alloc
        raise ConvergenceError(
            f"demand-proportional solve did not converge in "
            f"{max_iterations} iterations"
        )


def solve_vectorized(
    flows: Sequence[FluidFlow],
    policy: Policy = Policy.DEMAND_PROPORTIONAL,
    max_iterations: int = 10_000,
) -> Dict[str, float]:
    """One-shot vectorized solve: compile, solve, return {name: GB/s}."""
    problem = CompiledProblem(flows)
    return problem.solve_dict(
        policy=policy, max_iterations=max_iterations, warm=False
    )
