"""Runner-layer benchmarks: DES hot-path trajectory and fan-out overhead.

Every timing lands in ``BENCH_results.json`` at the repository root via
:func:`conftest.record_timing`, building the performance trajectory that
docs/PERFORMANCE.md quotes. The ceilings asserted here are generous —
they catch order-of-magnitude regressions, not scheduler jitter.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_runner.py -q
"""

from repro.sim.engine import Environment

#: Best-of-run of bench_des_timeout_throughput at the pre-optimization
#: seed commit (61778d4), measured in this container. The acceptance bar
#: is a >= 20% improvement over this.
SEED_TIMEOUT_S = 2.976e-3

#: Never-exceed wall-clock ceilings (seconds) — generous on purpose.
TIMEOUT_CEILING_S = 0.8 * SEED_TIMEOUT_S
RUNNER_CEILING_S = 60.0


def bench_des_timeout_trajectory(benchmark, record_timing):
    """The engine's schedule-and-fire rate, recorded against the seed.

    Same workload as :func:`bench_engine.bench_des_timeout_throughput`;
    this variant also appends the sample to BENCH_results.json.
    """

    def run():
        env = Environment()

        def ticker():
            for __ in range(2000):
                yield env.timeout(1.0)

        env.run(env.process(ticker()))
        return env.now

    assert benchmark(run) == 2000.0
    best = benchmark.stats.stats.min
    record_timing(
        "bench_des_timeout_throughput",
        best,
        seed_seconds=SEED_TIMEOUT_S,
        speedup=SEED_TIMEOUT_S / best,
    )
    assert best < TIMEOUT_CEILING_S


def bench_runner_cells_serial(benchmark, p7302, record_timing):
    """The in-process (jobs=1) path through run_cells."""
    from repro.experiments import fig4, table3
    from repro.runner import Cell, run_cells

    cells = [
        Cell(table3.run, (p7302,), {"seed": 0}),
        Cell(fig4.run, (p7302,)),
    ]

    def run():
        return run_cells(cells, jobs=1)

    results = benchmark.pedantic(run, rounds=3, iterations=1)
    assert len(results) == 2
    best = benchmark.stats.stats.min
    record_timing("runner_cells_serial", best, cells=len(cells), jobs=1)
    assert best < RUNNER_CEILING_S


def bench_runner_cells_pool(benchmark, p7302, record_timing):
    """The worker-pool (jobs=2) path, including pool spawn overhead.

    On a single-CPU container this is *slower* than serial — the point is
    to track the fixed fan-out cost, and to assert the pool path returns
    the same results as the in-process path. ``pool_threshold_s=0``
    disables the adaptive serial ramp so the pool really is measured.
    """
    from repro.experiments import fig4, table3
    from repro.runner import Cell, run_cells

    cells = [
        Cell(table3.run, (p7302,), {"seed": 0}),
        Cell(fig4.run, (p7302,)),
    ]
    serial = run_cells(cells, jobs=1)

    def run():
        return run_cells(cells, jobs=2, pool_threshold_s=0)

    pooled = benchmark.pedantic(run, rounds=1, iterations=1)
    assert (
        table3.render({p7302.name: pooled[0]})
        == table3.render({p7302.name: serial[0]})
    )
    assert fig4.render([pooled[1]]) == fig4.render([serial[1]])
    best = benchmark.stats.stats.min
    record_timing("runner_cells_pool", best, cells=len(cells), jobs=2)
    assert best < RUNNER_CEILING_S


def _tiny_cell(x):
    return x * x


def bench_runner_ramp_tiny_cells(benchmark, record_timing):
    """Cheap cells with jobs>1: the adaptive serial ramp skips the pool.

    This was a ~19x regression before the ramp — two sub-millisecond
    cells paid a full process-pool spawn. Now ``jobs=2`` on a cheap batch
    must cost about what ``jobs=1`` does.
    """
    from repro.runner import Cell, run_cells

    cells = [Cell(_tiny_cell, (x,)) for x in range(2)]

    def run():
        return run_cells(cells, jobs=2)

    results = benchmark.pedantic(run, rounds=5, iterations=1)
    assert results == [0, 1]
    best = benchmark.stats.stats.min
    record_timing("runner_cells_ramp_tiny", best, cells=len(cells), jobs=2)
    # Far under any pool spawn time: the ramp kept these in-process.
    assert best < 0.05


def bench_suite_synthetic(benchmark, record_timing):
    """End-to-end characterization suite on the synthetic platform."""
    from repro.core.suite import CharacterizationSuite
    from repro.platform.presets import synthetic_ucie

    def run():
        return CharacterizationSuite(seed=0, jobs=1).run(synthetic_ucie())

    report = benchmark.pedantic(run, rounds=2, iterations=1)
    assert report.guidelines
    best = benchmark.stats.stats.min
    record_timing("suite_synthetic_serial", best, jobs=1)
    assert best < RUNNER_CEILING_S
