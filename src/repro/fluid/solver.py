"""Steady-state bandwidth allocation over shared channels.

A :class:`Channel` is one directed capacity (GB/s): a link direction, a UMC
service rate, a token-pool drain rate. A :class:`FluidFlow` has an offered
demand and a path — the list of channels it loads, each with a weight (bytes
put on the channel per payload byte; e.g. CXL FLIT framing loads the wire at
68/64 ≈ 1.06, and non-temporal writes load a chiplet's shared transaction
slots at less than a read's weight because they hold no response).

Two policies:

* :attr:`Policy.DEMAND_PROPORTIONAL` — what the hardware does (§3.5):
  an over-subscribed channel divides its capacity in proportion to offered
  demand, because traffic-oblivious FIFO service drains whatever arrives.
  An aggressive sender therefore beats its equal share (Figure 4, cases 2/4);
  equal demands split equally (case 3); an under-subscribed channel gives
  everyone their demand (case 1).
* :attr:`Policy.MAX_MIN` — the classic fair allocation (progressive filling),
  used by the software traffic manager the paper's §4 proposes; the ablation
  benchmark contrasts the two.
"""

from __future__ import annotations

import enum
import os
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError, ConvergenceError

__all__ = [
    "BACKEND_ENV_VAR",
    "Channel",
    "FluidFlow",
    "Policy",
    "resolve_backend",
    "solve",
]

_EPS = 1e-9

#: Selects the solver backend: ``auto`` (default — vectorized for large
#: flow sets, reference for small ones), ``numpy`` (always vectorized), or
#: ``python`` (always the reference implementation in this module).
BACKEND_ENV_VAR = "REPRO_FLUID_BACKEND"

_BACKEND_ALIASES = {
    "": "auto",
    "auto": "auto",
    "numpy": "numpy",
    "vectorized": "numpy",
    "python": "python",
    "reference": "python",
}

#: ``auto`` switches to the vectorized backend at this many flows: below it
#: the per-call NumPy overhead (array building, ufunc dispatch) costs more
#: than the Python loops it replaces (measured crossover ~10 flows).
_AUTO_MIN_FLOWS = 12


def resolve_backend(backend: Optional[str] = None) -> str:
    """Normalize a backend name (or the env default) to auto/numpy/python."""
    raw = backend if backend is not None else os.environ.get(BACKEND_ENV_VAR, "")
    resolved = _BACKEND_ALIASES.get(raw.strip().lower())
    if resolved is None:
        raise ConfigurationError(
            f"unknown fluid backend {raw!r} "
            f"(expected one of {sorted(set(_BACKEND_ALIASES.values()))})"
        )
    return resolved


@dataclass(frozen=True)
class Channel:
    """One directed capacity shared by flows."""

    name: str
    capacity_gbps: float

    def __post_init__(self) -> None:
        if self.capacity_gbps <= 0:
            raise ConfigurationError(
                f"channel {self.name}: capacity must be positive"
            )


@dataclass
class FluidFlow:
    """A steady data stream with an offered demand and a weighted path.

    ``elastic`` distinguishes the two sender behaviours the paper's
    experiments mix (§3.4/§3.5):

    * ``False`` (paced) — an open-loop, NOP-rate-controlled stream. It keeps
      issuing at its demand regardless of backpressure, so when paced flows
      over-subscribe a channel their *backlogs* grow together and FIFO
      service divides capacity in proportion to their demands (Figure 4).
    * ``True`` (unthrottled) — a closed-loop stream limited only by its issue
      windows. It fills whatever service the paced traffic leaves behind,
      which is why flow 1 in Figure 5 "can reliably take the unused
      bandwidth" when flow 0 throttles.
    """

    name: str
    demand_gbps: float
    path: List[Tuple[Channel, float]] = field(default_factory=list)
    elastic: bool = False
    #: Share weight under :attr:`Policy.WEIGHTED` (ignored by the other
    #: policies): a flow with weight 2 receives twice the increment of a
    #: weight-1 flow during progressive filling.
    weight: float = 1.0

    def __post_init__(self) -> None:
        if self.demand_gbps < 0:
            raise ConfigurationError(f"flow {self.name}: negative demand")
        for channel, weight in self.path:
            if weight <= 0:
                raise ConfigurationError(
                    f"flow {self.name}: non-positive weight on {channel.name}"
                )

    def add(self, channel: Channel, weight: float = 1.0) -> "FluidFlow":
        """Append a channel to the flow's path (chainable)."""
        if weight <= 0:
            raise ConfigurationError(
                f"flow {self.name}: non-positive weight on {channel.name}"
            )
        self.path.append((channel, weight))
        return self


class Policy(enum.Enum):
    """Capacity-sharing discipline on over-subscribed channels."""

    DEMAND_PROPORTIONAL = "demand-proportional"
    MAX_MIN = "max-min"
    #: Weighted max-min (progressive filling with per-flow weights) — the
    #: multi-tenant variant a software traffic manager would expose.
    WEIGHTED = "weighted"


def _channels_of(flows: Sequence[FluidFlow]) -> List[Channel]:
    """Channels referenced by ``flows``, ordered upstream-first.

    Scale-down passes visit channels in this order; ordering by a channel's
    mean position along the flows' paths approximates "upstream before
    downstream", so a flow throttled early offers its *reduced* rate to
    later queues — matching how open-loop traffic actually arrives.
    """
    seen: Dict[str, Channel] = {}
    positions: Dict[str, List[int]] = {}
    for flow in flows:
        for index, (channel, __) in enumerate(flow.path):
            existing = seen.get(channel.name)
            if existing is not None and existing is not channel:
                raise ConfigurationError(
                    f"two distinct Channel objects share the name {channel.name!r}"
                )
            seen[channel.name] = channel
            positions.setdefault(channel.name, []).append(index)
    def sort_key(name: str):
        pos = positions[name]
        return (sum(pos) / len(pos), name)
    return [seen[name] for name in sorted(seen, key=sort_key)]


def _solve_proportional(
    flows: Sequence[FluidFlow], max_iterations: int
) -> Dict[str, float]:
    """Paced flows share proportionally; elastic flows fill the residual."""
    paced = [flow for flow in flows if not flow.elastic]
    elastic = [flow for flow in flows if flow.elastic]
    alloc = _proportional_pass(paced, {}, max_iterations)
    if elastic:
        # Capacity already committed to paced traffic is unavailable to the
        # window-limited (backpressured) elastic senders.
        committed: Dict[str, float] = {}
        for flow in paced:
            for channel, weight in flow.path:
                committed[channel.name] = (
                    committed.get(channel.name, 0.0) + alloc[flow.name] * weight
                )
        alloc.update(_proportional_pass(elastic, committed, max_iterations))
    return alloc


def _proportional_pass(
    flows: Sequence[FluidFlow],
    committed: Dict[str, float],
    max_iterations: int,
) -> Dict[str, float]:
    if not flows:
        return {}
    alloc = {flow.name: flow.demand_gbps for flow in flows}
    channels = _channels_of(flows)
    capacity = {
        channel.name: max(0.0, channel.capacity_gbps - committed.get(channel.name, 0.0))
        for channel in channels
    }
    members: Dict[str, List[Tuple[FluidFlow, float]]] = {
        channel.name: [] for channel in channels
    }
    for flow in flows:
        for channel, weight in flow.path:
            members[channel.name].append((flow, weight))

    for __ in range(max_iterations):
        changed = False
        # Scale-down pass: enforce every capacity, splitting over-subscribed
        # channels in proportion to what each flow currently pushes (FIFO).
        for channel in channels:
            cap = capacity[channel.name]
            load = sum(alloc[f.name] * w for f, w in members[channel.name])
            if load > cap + _EPS:
                scale = cap / load if load > 0 else 0.0
                for f, __w in members[channel.name]:
                    alloc[f.name] *= scale
                changed = True
        # Raise pass: a flow below demand with slack on every channel of its
        # path takes the slack (keeps capacity from being stranded when a
        # flow's real bottleneck is elsewhere).
        loads = {
            channel.name: sum(alloc[f.name] * w for f, w in members[channel.name])
            for channel in channels
        }
        for flow in flows:
            gap = flow.demand_gbps - alloc[flow.name]
            if gap <= _EPS or not flow.path:
                continue
            headroom = min(
                (capacity[channel.name] - loads[channel.name]) / weight
                for channel, weight in flow.path
            )
            grab = min(gap, headroom)
            if grab > _EPS:
                alloc[flow.name] += grab
                for channel, weight in flow.path:
                    loads[channel.name] += grab * weight
                changed = True
        if not changed:
            return alloc
    raise ConvergenceError(
        f"demand-proportional solve did not converge in {max_iterations} iterations"
    )


def _solve_max_min(
    flows: Sequence[FluidFlow],
    max_iterations: int,
    use_weights: bool = False,
) -> Dict[str, float]:
    """(Weighted) max-min fairness by progressive filling."""
    alloc = {flow.name: 0.0 for flow in flows}
    frozen = {flow.name: False for flow in flows}
    share = {
        flow.name: (flow.weight if use_weights else 1.0) for flow in flows
    }
    for flow in flows:
        if share[flow.name] <= 0:
            raise ConfigurationError(
                f"flow {flow.name}: weight must be positive"
            )
    channels = _channels_of(flows)
    members: Dict[str, List[Tuple[FluidFlow, float]]] = {
        channel.name: [] for channel in channels
    }
    for flow in flows:
        for channel, weight in flow.path:
            members[channel.name].append((flow, weight))
        if not flow.path or flow.demand_gbps <= _EPS:
            alloc[flow.name] = flow.demand_gbps
            frozen[flow.name] = True

    for __ in range(max_iterations):
        active = [flow for flow in flows if not frozen[flow.name]]
        if not active:
            return alloc
        # The common fill level rises until the tightest channel saturates
        # or the smallest (weight-normalized) remaining demand is met; each
        # flow gains increment × its share weight.
        increment = min(
            (flow.demand_gbps - alloc[flow.name]) / share[flow.name]
            for flow in active
        )
        for channel in channels:
            weight_sum = sum(
                w * share[f.name]
                for f, w in members[channel.name]
                if not frozen[f.name]
            )
            if weight_sum <= _EPS:
                continue
            load = sum(alloc[f.name] * w for f, w in members[channel.name])
            residual = channel.capacity_gbps - load
            increment = min(increment, residual / weight_sum)
        increment = max(increment, 0.0)
        for flow in active:
            alloc[flow.name] += increment * share[flow.name]
        # Freeze flows that met their demand or sit on a saturated channel.
        progressed = False
        for flow in active:
            if alloc[flow.name] >= flow.demand_gbps - _EPS:
                frozen[flow.name] = True
                progressed = True
                continue
            for channel, __w in flow.path:
                load = sum(
                    alloc[f.name] * w for f, w in members[channel.name]
                )
                if load >= channel.capacity_gbps - 1e-6:
                    frozen[flow.name] = True
                    progressed = True
                    break
        if not progressed and increment <= _EPS:
            # Numerical stall: freeze everything that remains.
            for flow in active:
                frozen[flow.name] = True
    return alloc


def solve(
    flows: Sequence[FluidFlow],
    policy: Policy = Policy.DEMAND_PROPORTIONAL,
    max_iterations: int = 10_000,
    backend: Optional[str] = None,
) -> Dict[str, float]:
    """Allocate bandwidth to ``flows``; returns {flow name: achieved GB/s}.

    Invariants (tested property-based): no flow exceeds its demand; no
    channel exceeds its capacity; with no over-subscribed channel, every flow
    receives exactly its demand.

    ``backend`` picks the implementation (``auto``/``numpy``/``python``,
    default from :data:`BACKEND_ENV_VAR`); both backends agree within 1e-9
    (see :mod:`repro.fluid.vectorized`).
    """
    names = [flow.name for flow in flows]
    if len(set(names)) != len(names):
        raise ConfigurationError(f"duplicate flow names in {names}")
    resolved = resolve_backend(backend)
    if resolved == "numpy" or (
        resolved == "auto" and len(names) >= _AUTO_MIN_FLOWS
    ):
        from repro.fluid.vectorized import solve_vectorized

        return solve_vectorized(flows, policy, max_iterations)
    if policy is Policy.DEMAND_PROPORTIONAL:
        return _solve_proportional(flows, max_iterations)
    return _solve_max_min(
        flows, max_iterations, use_weights=policy is Policy.WEIGHTED
    )
