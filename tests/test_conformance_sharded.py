"""Sharded-engine conformance suite (tier-2; run with ``-m conformance``).

The agreement contracts of :mod:`repro.sim.sharded` against the serial
reference, with the tolerances stated where they are asserted:

* **shards=1 identity** — the one-shard sharded run executes the serial
  cell inside the shard environment with an identical sequence
  progression, so its result fingerprint (md5 over all flow metrics)
  must be *byte-identical* to the serial engine's, on every preset;
* **multi-shard tolerance** — with 2 and 4 shards the in-flight-
  proportional replica partition is an approximation of emergent FIFO
  contention: victim share must agree within ``0.10`` absolute and Jain
  fairness within ``0.05`` (measured worst cases: 0.041 and 0.012,
  across all three presets and shard counts);
* **environment switch** — :func:`repro.experiments.sharded_cell.resolve_shards`
  honors ``REPRO_DES_SHARDS`` (the CI job runs this file with it set),
  and the resolved count lands in the outcome, not just the env.

CI runs this file in the dedicated ``sharded-conformance`` job with
``REPRO_DES_SHARDS=2`` exported, which also exercises the cache-key
engine-variant split under a realistic environment.
"""

import pytest

from repro.core.shardexec import run_cell
from repro.experiments.sharded_cell import resolve_shards
from repro.platform.presets import epyc_7302, epyc_9634, synthetic_ucie

pytestmark = pytest.mark.conformance

#: Documented serial-vs-sharded tolerance on the victim's share of its
#: demand (absolute). Measured worst case 0.041 (7302, 2 shards).
SHARDED_SHARE_TOL = 0.10

#: Documented serial-vs-sharded tolerance on Jain fairness (absolute).
#: Measured worst case 0.012 (7302, 4 shards).
SHARDED_JAIN_TOL = 0.05

_TRANSACTIONS = 150

_PRESETS = {
    "7302": epyc_7302,
    "9634": epyc_9634,
    "synthetic": synthetic_ucie,
}


@pytest.fixture(scope="module", params=sorted(_PRESETS))
def preset(request):
    """Every platform preset, including the synthetic UCIe design."""
    return _PRESETS[request.param]()


@pytest.fixture(scope="module")
def serial_outcome(preset):
    return run_cell(
        preset, engine="serial", transactions_per_core=_TRANSACTIONS
    )


def test_single_shard_is_byte_identical(preset, serial_outcome):
    one = run_cell(
        preset, engine="sharded", shards=1,
        transactions_per_core=_TRANSACTIONS,
    )
    assert one.fingerprint() == serial_outcome.fingerprint()


@pytest.mark.parametrize("shards", [2, 4])
def test_multi_shard_within_documented_tolerance(
    preset, serial_outcome, shards
):
    if shards > len(preset.ccds):
        pytest.skip(f"{preset.name} has only {len(preset.ccds)} CCDs")
    multi = run_cell(
        preset, engine="sharded", shards=shards,
        transactions_per_core=_TRANSACTIONS,
    )
    assert multi.transactions == serial_outcome.transactions
    share_delta = abs(multi.victim_share - serial_outcome.victim_share)
    assert share_delta <= SHARDED_SHARE_TOL, (
        f"{preset.name}/{shards} shards: victim share "
        f"{multi.victim_share:.3f} vs serial "
        f"{serial_outcome.victim_share:.3f}"
    )
    jain_delta = abs(multi.jain - serial_outcome.jain)
    assert jain_delta <= SHARDED_JAIN_TOL, (
        f"{preset.name}/{shards} shards: Jain {multi.jain:.4f} vs serial "
        f"{serial_outcome.jain:.4f}"
    )
    # The window protocol really ran: barriers and boundary traffic.
    assert multi.sync["windows"] > 0
    assert multi.sync["cross_messages"] > 0


def test_resolve_shards_honors_environment(preset, monkeypatch):
    assert resolve_shards(preset, 2) == 2
    monkeypatch.setenv("REPRO_DES_SHARDS", "2")
    assert resolve_shards(preset) == 2
    monkeypatch.delenv("REPRO_DES_SHARDS")
    assert resolve_shards(preset) == len(preset.ccds)
