"""Tests for mesh geometry and XY routing."""

import pytest

from repro.errors import TopologyError
from repro.noc.mesh import Mesh


@pytest.fixture
def mesh():
    return Mesh(width=3, height=2, x_hop_ns=8.5, y_hop_ns=7.0, turn_ns=5.0)


class TestValidation:
    def test_degenerate_rejected(self):
        with pytest.raises(TopologyError):
            Mesh(0, 2, 1.0, 1.0)

    def test_contains(self, mesh):
        assert mesh.contains((0, 0))
        assert mesh.contains((2, 1))
        assert not mesh.contains((3, 0))
        assert not mesh.contains((0, -1))

    def test_route_outside_raises(self, mesh):
        with pytest.raises(TopologyError):
            mesh.route((0, 0), (5, 5))


class TestRouting:
    def test_route_endpoints(self, mesh):
        path = mesh.route((0, 0), (2, 1))
        assert path[0] == (0, 0)
        assert path[-1] == (2, 1)

    def test_route_is_xy_order(self, mesh):
        # All x moves must precede all y moves.
        path = mesh.route((0, 0), (2, 1))
        assert path == [(0, 0), (1, 0), (2, 0), (2, 1)]

    def test_route_length_is_manhattan_plus_one(self, mesh):
        for src in [(0, 0), (1, 1), (2, 0)]:
            for dst in [(0, 0), (2, 1), (0, 1)]:
                path = mesh.route(src, dst)
                assert len(path) == mesh.hop_count(src, dst) + 1

    def test_route_to_self(self, mesh):
        assert mesh.route((1, 1), (1, 1)) == [(1, 1)]

    def test_reverse_direction(self, mesh):
        path = mesh.route((2, 1), (0, 0))
        assert path == [(2, 1), (1, 1), (0, 1), (0, 0)]

    def test_adjacent_steps_only(self, mesh):
        path = mesh.route((0, 1), (2, 0))
        for a, b in zip(path, path[1:]):
            assert abs(a[0] - b[0]) + abs(a[1] - b[1]) == 1


class TestCosts:
    def test_straight_x(self, mesh):
        assert mesh.cost_ns((0, 0), (2, 0)) == pytest.approx(17.0)
        assert mesh.turns((0, 0), (2, 0)) == 0

    def test_straight_y(self, mesh):
        assert mesh.cost_ns((0, 0), (0, 1)) == pytest.approx(7.0)

    def test_turn_penalty(self, mesh):
        assert mesh.turns((0, 0), (1, 1)) == 1
        assert mesh.cost_ns((0, 0), (1, 1)) == pytest.approx(8.5 + 7.0 + 5.0)

    def test_zero_cost_to_self(self, mesh):
        assert mesh.cost_ns((1, 0), (1, 0)) == 0.0

    def test_cost_symmetry(self, mesh):
        assert mesh.cost_ns((0, 0), (2, 1)) == mesh.cost_ns((2, 1), (0, 0))

    def test_express_turn_discount(self):
        express = Mesh(3, 2, 4.5, 4.0, turn_ns=-0.5)
        assert express.cost_ns((0, 0), (1, 1)) == pytest.approx(8.0)
