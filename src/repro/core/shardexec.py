"""Sharded execution of multi-CCD closed-loop contention cells.

This is the glue between the sharded engine (:mod:`repro.sim.sharded`) and
the transaction-level machinery: it takes a set of closed-loop flows — one
per CCD in the canonical contention cell — and runs them on either engine:

* ``engine="serial"`` — the reference: one
  :class:`~repro.sim.engine.Environment`, real
  :class:`~repro.transport.transaction.TransactionExecutor` generators,
  emergent FIFO contention. This is the exact cell the ``netstack``
  experiment runs (minus credit gates).
* ``engine="sharded"`` — one :class:`~repro.sim.sharded.ShardEnvironment`
  per shard (CCDs mapped by :func:`repro.core.partition.ccd_shard_map`).
  With ``shards == 1`` the *same serial cell* runs inside the single shard
  — zero scheduling difference, so the outcome is md5-byte-identical to
  ``engine="serial"``. With ``shards > 1`` each shard times its flows with
  the exact batched recurrences of :mod:`repro.sim.batch`; stages shared
  *across* shards (the NoC aggregate, contended UMCs) are partitioned into
  per-shard replicas sized in-flight-proportionally (FIFO arbitration
  shares by outstanding requests — §3.5's traffic obliviousness), and
  per-window byte accounting flows between shards as genuine lookahead-
  delayed boundary events through numpy event calendars.

Both engines disable DRAM timing jitter (the recurrences are exact only
for deterministic service), so they model the same system; the residual
multi-shard disagreement is the replica-partitioning approximation, whose
tolerance the conformance tier documents.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.core.fabric import FabricModel
from repro.core.flows import StreamSpec
from repro.core.loadgen import ClosedLoopIssuer
from repro.core.partition import ccd_shard_map
from repro.errors import ConfigurationError, SimulationError
from repro.memory.umc import UmcServer
from repro.noc.arbiter import LinkArbiter
from repro.platform.topology import Platform
from repro.sim.batch import (
    BatchFlow,
    BatchLane,
    BatchPool,
    BatchStage,
    FlowTiming,
    simulate_closed_loops,
)
from repro.sim.calendar import EventCalendar
from repro.sim.engine import Environment
from repro.sim.sharded import ShardedEnvironment, default_lookahead_ns
from repro.transport.message import OpKind
from repro.transport.path import PathResolver, QueuedStage
from repro.transport.transaction import TransactionExecutor
from repro.units import CACHELINE

__all__ = [
    "ShardFlowSpec",
    "FlowMetrics",
    "ShardCellOutcome",
    "contention_flows",
    "run_cell",
    "jain_index",
]

#: Completions per cross-shard accounting message (calendar bucket stride).
_CHUNK = 64

#: Warmup fraction, mirroring ClosedLoopIssuer's default.
_WARMUP_FRACTION = 0.1

#: Demand of the paced victim stream — the same value the contention/
#: netstack cells use (repro.experiments.contention.VICTIM_DEMAND_GBPS;
#: not imported so repro.core stays independent of repro.experiments).
VICTIM_DEMAND_GBPS = 24.0


@dataclass(frozen=True)
class ShardFlowSpec:
    """One closed-loop stream of the cell (single-CCD sender set)."""

    name: str
    core_ids: Tuple[int, ...]
    umc_ids: Tuple[int, ...]
    demand_gbps: Optional[float] = None
    op: OpKind = OpKind.READ

    def __post_init__(self) -> None:
        if not self.core_ids:
            raise ConfigurationError(f"flow {self.name}: no cores")
        if not self.umc_ids:
            raise ConfigurationError(f"flow {self.name}: no endpoints")


@dataclass(frozen=True)
class FlowMetrics:
    """Per-flow outcome: delivered bandwidth plus loaded-latency summary."""

    name: str
    achieved_gbps: float
    mean_ns: float
    p50_ns: float
    p99_ns: float
    count: int


@dataclass(frozen=True)
class ShardCellOutcome:
    """Outcome of one cell run on one engine."""

    engine: str
    shards: int
    flows: Tuple[FlowMetrics, ...]
    transactions: int
    jain: float
    #: Synchronization telemetry (sharded engine only).
    sync: Optional[Dict[str, float]] = None

    def fingerprint(self) -> str:
        """md5 over the simulation results alone.

        Engine identity and synchronization telemetry are deliberately
        excluded: the ``shards=1`` identity contract is about *results*,
        and this digest is what the conformance tier compares.
        """
        payload = {
            "transactions": self.transactions,
            "jain": self.jain,
            "flows": [
                [f.name, f.achieved_gbps, f.mean_ns, f.p50_ns, f.p99_ns, f.count]
                for f in self.flows
            ],
        }
        raw = json.dumps(payload, sort_keys=True).encode()
        return hashlib.md5(raw).hexdigest()

    @property
    def victim_share(self) -> float:
        """First flow's share of its demand (the cell's victim metric)."""
        return self.flows[0].achieved_gbps / VICTIM_DEMAND_GBPS


def jain_index(values: Sequence[float]) -> float:
    """Jain's fairness index of a rate vector."""
    total = sum(values)
    squares = sum(value * value for value in values)
    if squares == 0:
        return 1.0
    return total * total / (len(values) * squares)


def contention_flows(platform: Platform) -> List[ShardFlowSpec]:
    """The canonical multi-CCD contention cell.

    A paced single-CCX victim on chiplet 0 plus one unthrottled whole-CCD
    hog per remaining chiplet, all forced onto the victim's NPS4 memory
    endpoints — the Figure 4 "aggressive sender" cell scaled to every CCD
    the platform has.
    """
    from repro.platform.numa import NpsMode

    shared = tuple(
        FabricModel(platform).umc_ids_for_nps(0, NpsMode.NPS4)
    )
    victim_cores = tuple(
        core.core_id for core in platform.cores_of_ccx(0)
    )
    flows = [
        ShardFlowSpec(
            "victim", victim_cores, shared, demand_gbps=VICTIM_DEMAND_GBPS
        )
    ]
    for ccd_id in sorted(platform.ccds):
        if ccd_id == 0:
            continue
        cores = tuple(
            core.core_id for core in platform.cores_of_ccd(ccd_id)
        )
        flows.append(ShardFlowSpec(f"hog{ccd_id}", cores, shared))
    return flows


def _flow_ccd(platform: Platform, flow: ShardFlowSpec) -> int:
    ccds = {platform.core(core_id).ccd_id for core_id in flow.core_ids}
    if len(ccds) != 1:
        raise ConfigurationError(
            f"flow {flow.name}: sharded cells need single-CCD flows, "
            f"got CCDs {sorted(ccds)}"
        )
    return next(iter(ccds))


def _metrics_from_samples(
    name: str, samples: Sequence[float], achieved_gbps: float
) -> FlowMetrics:
    data = np.asarray(samples, dtype=float)
    p50, p99 = np.percentile(data, [50.0, 99.0])
    return FlowMetrics(
        name=name,
        achieved_gbps=float(achieved_gbps),
        mean_ns=float(data.mean()),
        p50_ns=float(p50),
        p99_ns=float(p99),
        count=int(data.size),
    )


# ---------------------------------------------------------------- serial cell


def _run_serial_cell(
    platform: Platform,
    flows: Sequence[ShardFlowSpec],
    transactions_per_core: int,
    seed: int,
    env: Optional[Environment] = None,
) -> Tuple[FlowMetrics, ...]:
    """The reference cell: real executors on one event loop."""
    if env is None:
        env = Environment()
    resolver = PathResolver(env, platform, seed=seed, with_dram_jitter=False)
    window = platform.spec.bandwidth.mlp_read
    issuers: Dict[str, ClosedLoopIssuer] = {}
    finished = []
    for spec in flows:
        executor = TransactionExecutor(env, flow=spec.name)
        paths = {
            index: resolver.dram_path(
                core_id, spec.umc_ids[index % len(spec.umc_ids)], spec.op
            )
            for index, core_id in enumerate(spec.core_ids)
        }
        issuer = ClosedLoopIssuer(
            env,
            executor,
            lambda worker, paths=paths: paths[worker],
            spec.op,
            workers=len(spec.core_ids),
            window=window,
            count_per_worker=transactions_per_core,
            rate_gbps=spec.demand_gbps,
        )
        issuers[spec.name] = issuer
        finished.append(issuer.start())
    env.run(env.all_of(finished))
    metrics = []
    for spec in flows:
        result = issuers[spec.name].result()
        metrics.append(
            FlowMetrics(
                name=spec.name,
                achieved_gbps=result.achieved_gbps,
                mean_ns=result.stats.mean,
                p50_ns=result.stats.p50,
                p99_ns=result.stats.p99,
                count=result.stats.count,
            )
        )
    return tuple(metrics)


# --------------------------------------------------------------- sharded cell


def _stage_servers(stage: QueuedStage, is_write: bool) -> int:
    server = stage.server
    if isinstance(server, UmcServer):
        arbiter = server.arbiter
    elif isinstance(server, LinkArbiter):
        arbiter = server
    else:
        raise ConfigurationError(
            f"stage {stage.name}: unsupported server for batched execution"
        )
    direction = arbiter.write_dir if is_write else arbiter.read_dir
    return direction.resource.capacity


def _stage_channel(stage_name: str, is_write: bool) -> Optional[str]:
    """The fluid channel a stage maps to (None: no bandwidth partition)."""
    direction = "w" if is_write else "r"
    if stage_name == "noc":
        return f"noc:{direction}"
    if stage_name.startswith("umc"):
        return f"{stage_name}:{direction}"
    return None


def _offered_loads(
    platform: Platform, flows: Sequence[ShardFlowSpec]
) -> Tuple[Dict[str, Dict[str, float]], Dict[str, float]]:
    """Per-channel *offered* load per cell flow (demands, not allocations).

    Offered demand — elastic flows at their window-limited ceiling — is
    what decides whether a channel is contended. A post-solve allocation
    cannot: the solver never allocates beyond capacity, so allocations
    always look uncontended.
    """
    fabric = FabricModel(platform)
    fluid_flows = []
    owners: List[str] = []
    for flow in flows:
        spec = StreamSpec(
            flow.name, flow.op, flow.core_ids, demand_gbps=flow.demand_gbps
        )
        for fluid_flow in fabric.flows_for(spec, umc_ids=list(flow.umc_ids)):
            fluid_flows.append(fluid_flow)
            owners.append(flow.name)
    loads: Dict[str, Dict[str, float]] = {}
    caps: Dict[str, float] = {}
    for fluid_flow, owner in zip(fluid_flows, owners):
        rate = fluid_flow.demand_gbps
        for channel, weight in fluid_flow.path:
            per_flow = loads.setdefault(channel.name, {})
            per_flow[owner] = per_flow.get(owner, 0.0) + rate * weight
            caps[channel.name] = channel.capacity_gbps
    return loads, caps


def _inflight_pressure(
    resolver: PathResolver,
    platform: Platform,
    flow: ShardFlowSpec,
    window: int,
) -> float:
    """How many requests a flow keeps outstanding under saturation.

    Per CCX the flow can fill ``cores × window`` lanes but holds at most
    the CCX token-pool capacity; a CCD-level pool (where present) caps the
    total again. This is the quantity FIFO arbitration actually shares by.
    """
    by_ccx: Dict[int, int] = {}
    ccd_ids = set()
    for core_id in flow.core_ids:
        core = platform.core(core_id)
        by_ccx[core.ccx_id] = by_ccx.get(core.ccx_id, 0) + 1
        ccd_ids.add(core.ccd_id)
    total = sum(
        min(cores * window, resolver.ccx_pool(ccx_id).capacity)
        for ccx_id, cores in by_ccx.items()
    )
    for ccd_id in ccd_ids:
        ccd_pool = resolver.ccd_pool(ccd_id)
        if ccd_pool is not None:
            total = min(total, ccd_pool.capacity)
    return float(total)


def _run_sharded_cell(
    platform: Platform,
    flows: Sequence[ShardFlowSpec],
    transactions_per_core: int,
    seed: int,
    shards: int,
    strict: bool,
) -> ShardCellOutcome:
    shard_map = ccd_shard_map(platform, shards)
    lookahead_ns = default_lookahead_ns(platform)
    sharded = ShardedEnvironment(shards, lookahead_ns, strict=strict)
    window = platform.spec.bandwidth.mlp_read
    warmup_skip = int(transactions_per_core * _WARMUP_FRACTION) // max(1, window)

    # Exact path constants (fixed latency, per-stage service, pool sizes)
    # come from the same compiler the serial engine uses, on a scratch
    # environment that never runs.
    scratch = Environment()
    resolver = PathResolver(
        scratch, platform, seed=seed, with_dram_jitter=False
    )

    flow_shard = {
        flow.name: shard_map[_flow_ccd(platform, flow)] for flow in flows
    }
    loads, caps = _offered_loads(platform, flows)
    pressures = {
        flow.name: _inflight_pressure(resolver, platform, flow, window)
        for flow in flows
    }

    def pressure_on(channel: str, flow: ShardFlowSpec) -> float:
        """A flow's outstanding-request pressure on one shared channel."""
        if channel.startswith("umc"):
            umc_id = int(channel[3:].split(":")[0])
            if umc_id not in flow.umc_ids:
                return 0.0
            return pressures[flow.name] / len(flow.umc_ids)
        return pressures[flow.name]

    def shard_fraction(channel: Optional[str], shard_id: int) -> float:
        """Capacity fraction a shard's replica of ``channel`` receives.

        Uncontended channels (fluid load below capacity) keep the residual
        rule — the partition is immaterial there. Contended channels split
        *in-flight proportionally*: FIFO arbitration is traffic-oblivious
        (§3.5), so a sender's service share tracks how many requests it
        keeps outstanding, not how much bandwidth it asks for. That is the
        serial engine's emergent behavior, reproduced statically.
        """
        if channel is None or channel not in loads:
            return 1.0
        by_shard: Dict[int, float] = {}
        for owner, load in loads[channel].items():
            owner_shard = flow_shard[owner]
            by_shard[owner_shard] = by_shard.get(owner_shard, 0.0) + load
        if len(by_shard) <= 1:
            return 1.0
        mine = by_shard.get(shard_id, 0.0)
        total = sum(by_shard.values())
        cap = caps[channel]
        if total <= cap:
            # Uncontended: the replica keeps the residual others leave.
            fraction = max(mine, cap - (total - mine)) / cap
        else:
            mine_pressure = 0.0
            total_pressure = 0.0
            for flow in flows:
                pressure = pressure_on(channel, flow)
                total_pressure += pressure
                if flow_shard[flow.name] == shard_id:
                    mine_pressure += pressure
            fraction = (
                mine_pressure / total_pressure if total_pressure > 0
                else mine / total
            )
        return max(fraction, 1e-6)

    stage_registry: List[Dict[str, BatchStage]] = [{} for _ in range(shards)]
    pool_registry: List[Dict[str, BatchPool]] = [{} for _ in range(shards)]
    batch_flows: List[List[BatchFlow]] = [[] for _ in range(shards)]

    for flow in flows:
        shard_id = flow_shard[flow.name]
        is_write = flow.op.is_write
        lanes: List[BatchLane] = []
        base, extra = divmod(transactions_per_core, window)
        for index, core_id in enumerate(flow.core_ids):
            path = resolver.dram_path(
                core_id, flow.umc_ids[index % len(flow.umc_ids)], flow.op
            )
            stage_plan = []
            for stage in path.stages:
                registry = stage_registry[shard_id]
                batch_stage = registry.get(stage.name)
                if batch_stage is None:
                    batch_stage = BatchStage(
                        stage.name, _stage_servers(stage, is_write)
                    )
                    registry[stage.name] = batch_stage
                service = stage.unloaded_service_ns(CACHELINE, is_write)
                fraction = shard_fraction(
                    _stage_channel(stage.name, is_write), shard_id
                )
                stage_plan.append((batch_stage, service / fraction))
            pool_plan = []
            for pool in path.tokens:
                registry = pool_registry[shard_id]
                batch_pool = registry.get(pool.name)
                if batch_pool is None:
                    batch_pool = BatchPool(pool.name, pool.capacity)
                    registry[pool.name] = batch_pool
                pool_plan.append(batch_pool)
            for lane in range(window):
                lanes.append(
                    BatchLane(
                        stages=tuple(stage_plan),
                        pools=tuple(pool_plan),
                        fixed_ns=path.fixed_ns,
                        quota=base + (1 if lane < extra else 0),
                    )
                )
        interval = (
            CACHELINE / flow.demand_gbps
            if flow.demand_gbps is not None
            else None
        )
        batch_flows[shard_id].append(
            BatchFlow(
                name=flow.name,
                lanes=lanes,
                size_bytes=CACHELINE,
                interval_ns=interval,
                warmup_skip=warmup_skip,
            )
        )

    # Per-shard batched execution: disjoint state, deterministic order.
    timings: Dict[str, FlowTiming] = {}
    for shard_id in range(shards):
        timings.update(simulate_closed_loops(batch_flows[shard_id]))

    # Home every endpoint on the shard of its lowest-latency CCD, then
    # replay the completion calendars as DES events: each chunk boundary
    # on a shard with remote endpoints sends a lookahead-delayed byte-
    # accounting message to the endpoint's home shard. This is the actual
    # null-message protocol running — windows, barriers, deterministic
    # merge — with the batched timings as its event source.
    def endpoint_home(umc_id: int) -> int:
        best_ccd = min(
            shard_map,
            key=lambda ccd_id: (
                platform.dram_latency_ns(ccd_id, umc_id), ccd_id
            ),
        )
        return shard_map[best_ccd]

    homes = {
        umc_id: endpoint_home(umc_id)
        for flow in flows
        for umc_id in flow.umc_ids
    }
    received: List[Dict[str, float]] = [{} for _ in range(shards)]
    sent_bytes = [0.0]

    for shard_id in range(shards):
        env = sharded.shard(shard_id)

        def on_message(message, tally=received[shard_id]):
            flow_name, umc_id, byte_count = message.payload
            key = f"{flow_name}->umc{umc_id}"
            tally[key] = tally.get(key, 0.0) + byte_count

        env.on_message(on_message)

    for flow in flows:
        shard_id = flow_shard[flow.name]
        env = sharded.shard(shard_id)
        timing = timings[flow.name]
        remote = [
            umc_id for umc_id in flow.umc_ids if homes[umc_id] != shard_id
        ]
        completions = np.sort(timing.completed_ns)
        boundaries = completions[_CHUNK - 1 :: _CHUNK]
        if completions.size and (
            boundaries.size == 0 or boundaries[-1] < completions[-1]
        ):
            boundaries = np.append(boundaries, completions[-1])
        counts = np.minimum(
            np.arange(1, boundaries.size + 1) * _CHUNK, completions.size
        )
        chunk_sizes = np.diff(np.concatenate(([0], counts))) * CACHELINE

        def on_fire(
            now_ns,
            indices,
            env=env,
            flow=flow,
            remote=remote,
            chunk_sizes=chunk_sizes,
            cursor=[0],
        ):
            for _ in range(indices.size):
                byte_count = float(chunk_sizes[cursor[0]])
                cursor[0] += 1
                if not remote:
                    continue
                share = byte_count / len(flow.umc_ids)
                for umc_id in remote:
                    sent_bytes[0] += share
                    env.send(
                        homes[umc_id], (flow.name, umc_id, share)
                    )

        EventCalendar(env).schedule(boundaries, on_fire)

    sharded.run()

    received_total = sum(
        byte_count for tally in received for byte_count in tally.values()
    )
    if abs(received_total - sent_bytes[0]) > 1e-6:
        raise SimulationError(
            f"cross-shard byte accounting leaked: sent {sent_bytes[0]}, "
            f"received {received_total}"
        )

    metrics = []
    total_txns = 0
    for flow in flows:
        timing = timings[flow.name]
        metrics.append(
            _metrics_from_samples(
                flow.name,
                timing.latencies_ns,
                timing.achieved_gbps(CACHELINE),
            )
        )
        total_txns += int(timing.completed_ns.size)
    sync = dict(sharded.sync_stats())
    sync["accounting_bytes"] = received_total
    return ShardCellOutcome(
        engine="sharded",
        shards=shards,
        flows=tuple(metrics),
        transactions=total_txns,
        jain=jain_index([m.achieved_gbps for m in metrics]),
        sync=sync,
    )


# ---------------------------------------------------------------- entry point


def run_cell(
    platform: Platform,
    flows: Optional[Sequence[ShardFlowSpec]] = None,
    engine: str = "serial",
    shards: Optional[int] = None,
    transactions_per_core: int = 150,
    seed: int = 0,
    strict: bool = False,
) -> ShardCellOutcome:
    """Run the multi-CCD contention cell on the chosen engine.

    ``shards=None`` defaults to one shard per CCD the flows touch. The
    ``shards=1`` sharded run executes the serial cell inside the single
    shard environment and is md5-byte-identical to ``engine="serial"``
    (compare :meth:`ShardCellOutcome.fingerprint`).
    """
    if flows is None:
        flows = contention_flows(platform)
    flows = list(flows)
    if engine == "serial":
        metrics = _run_serial_cell(
            platform, flows, transactions_per_core, seed,
            env=Environment(strict=strict),
        )
        return ShardCellOutcome(
            engine="serial",
            shards=1,
            flows=metrics,
            transactions=transactions_per_core
            * sum(len(flow.core_ids) for flow in flows),
            jain=jain_index([m.achieved_gbps for m in metrics]),
            sync=None,
        )
    if engine != "sharded":
        raise ConfigurationError(
            f"unknown engine {engine!r} (choose 'serial' or 'sharded')"
        )
    if shards is None:
        shards = len({_flow_ccd(platform, flow) for flow in flows})
    if shards == 1:
        # Degradation contract: one shard runs the *identical* serial
        # cell — same environment semantics, same sequence progression —
        # inside the sharded coordinator. Bit-identical by construction.
        sharded = ShardedEnvironment(
            1, default_lookahead_ns(platform), strict=strict
        )
        metrics = _run_serial_cell(
            platform, flows, transactions_per_core, seed,
            env=sharded.shard(0),
        )
        return ShardCellOutcome(
            engine="sharded",
            shards=1,
            flows=metrics,
            transactions=transactions_per_core
            * sum(len(flow.core_ids) for flow in flows),
            jain=jain_index([m.achieved_gbps for m in metrics]),
            sync=dict(sharded.sync_stats()),
        )
    return _run_sharded_cell(
        platform, flows, transactions_per_core, seed, shards, strict
    )
