"""Declarative fault timelines that compile to both simulation backends.

A :class:`FaultSchedule` is an ordered set of :class:`FaultEvent` objects,
each degrading one named fabric channel (the :class:`~repro.core.fabric.
FabricModel` vocabulary: ``"gmi0:r"``, ``"noc:w"``, ``"umc3:r"``, ...) over
an interval of simulated time. Times are plain floats in the *consumer's*
clock — seconds when the schedule drives the fluid simulator, nanoseconds
when it drives the DES — so one schedule type serves both backends.

Determinism: flapping events expand into concrete down-intervals through a
:class:`~repro.sim.rng.SplitRng` stream derived from the schedule seed and
the event's identity, so the same seed always produces the same flap curve
regardless of what other events the schedule contains.

Severity: :meth:`FaultSchedule.scaled` produces a schedule whose degradation
depth is interpolated between healthy (severity 0) and the event's full
depth (severity 1). ``scaled(0.0)`` is the *null schedule*: it contains no
active intervals at all, so installing it anywhere is a guaranteed no-op and
results stay bit-identical to a healthy run.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import FaultInjectionError
from repro.sim.rng import SplitRng

__all__ = ["FaultKind", "FaultEvent", "FaultSchedule"]

#: Capacity multiplier standing in for "down" — strictly positive so fluid
#: channels and DES service rates stay well-defined.
STALL_FACTOR = 1e-3

#: Hard floor on any combined per-channel factor (overlapping faults
#: multiply; the floor keeps service times finite).
_MIN_FACTOR = 1e-3

#: Open-ended (permanent) intervals end here.
_FOREVER = float("inf")

#: Safety cap on flap cycles expanded per event.
_MAX_FLAPS = 100_000


class FaultKind(enum.Enum):
    """What happens to the channel while the event is active."""

    TRANSIENT_DERATE = "transient-derate"
    PERMANENT_FAILURE = "permanent-failure"
    FLAPPING = "flapping"
    DEVICE_STALL = "device-stall"


@dataclass(frozen=True)
class FaultEvent:
    """One fault on one channel.

    ``factor`` is the capacity multiplier while the fault is active, in
    (0, 1]; ``start``/``end`` bound the active window (``end=None`` means
    forever — permanent failures). Flapping events alternate between healthy
    and ``factor`` with jittered period ``flap_period`` and duty cycle
    ``flap_duty`` (fraction of each period spent degraded).
    """

    kind: FaultKind
    channel: str
    start: float
    end: Optional[float] = None
    factor: float = 0.5
    flap_period: Optional[float] = None
    flap_duty: float = 0.5

    def __post_init__(self) -> None:
        if self.start < 0:
            raise FaultInjectionError(
                f"{self.channel}: fault start must be >= 0, got {self.start}"
            )
        if not 0.0 < self.factor <= 1.0:
            raise FaultInjectionError(
                f"{self.channel}: factor must be in (0, 1], got {self.factor}"
            )
        if self.kind is FaultKind.PERMANENT_FAILURE:
            if self.end is not None:
                raise FaultInjectionError(
                    f"{self.channel}: a permanent failure has no end time"
                )
        else:
            if self.end is None or self.end <= self.start:
                raise FaultInjectionError(
                    f"{self.channel}: {self.kind.value} needs end > start "
                    f"(got [{self.start}, {self.end}))"
                )
        if self.kind is FaultKind.FLAPPING:
            if self.flap_period is None or self.flap_period <= 0:
                raise FaultInjectionError(
                    f"{self.channel}: flapping needs a positive flap_period"
                )
            if not 0.0 < self.flap_duty < 1.0:
                raise FaultInjectionError(
                    f"{self.channel}: flap_duty must be in (0, 1), "
                    f"got {self.flap_duty}"
                )

    # ------------------------------------------------------------ constructors

    @classmethod
    def derate(
        cls, channel: str, start: float, end: float, factor: float
    ) -> "FaultEvent":
        """A transient derate: the channel runs at ``factor`` in [start, end)."""
        return cls(FaultKind.TRANSIENT_DERATE, channel, start, end, factor)

    @classmethod
    def failure(
        cls, channel: str, start: float, factor: float = 0.05
    ) -> "FaultEvent":
        """A permanent failure: from ``start`` on, only ``factor`` survives
        (a lane-failure residue, not a clean zero — capacities stay positive)."""
        return cls(FaultKind.PERMANENT_FAILURE, channel, start, None, factor)

    @classmethod
    def flapping(
        cls,
        channel: str,
        start: float,
        end: float,
        period: float,
        factor: float = 0.3,
        duty: float = 0.5,
    ) -> "FaultEvent":
        """A flapping link: alternates healthy/degraded with jittered period."""
        return cls(
            FaultKind.FLAPPING, channel, start, end, factor,
            flap_period=period, flap_duty=duty,
        )

    @classmethod
    def stall(cls, channel: str, start: float, end: float) -> "FaultEvent":
        """A device stall: the channel serves nothing during [start, end)."""
        return cls(FaultKind.DEVICE_STALL, channel, start, end, STALL_FACTOR)


class _ChannelFactor:
    """Duck-typed capacity schedule (``.at(t)``) for the fluid simulator."""

    __slots__ = ("_schedule", "_channel")

    def __init__(self, schedule: "FaultSchedule", channel: str) -> None:
        self._schedule = schedule
        self._channel = channel

    def at(self, t: float) -> float:
        return self._schedule.factor_at(self._channel, t)

    def at_many(self, times: Sequence[float]) -> np.ndarray:
        """Vectorized :meth:`at` — one factor per entry of ``times``."""
        return self._schedule.factor_curve(self._channel, times)


class FaultSchedule:
    """An immutable, severity-scalable timeline of fault events."""

    def __init__(
        self,
        events: Sequence[FaultEvent] = (),
        seed: int = 0,
        severity: float = 1.0,
    ) -> None:
        if not 0.0 <= severity <= 1.0:
            raise FaultInjectionError(
                f"severity must be in [0, 1], got {severity}"
            )
        self.events: Tuple[FaultEvent, ...] = tuple(events)
        self.seed = int(seed)
        self.severity = float(severity)
        #: Expanded (start, end, factor) intervals per channel, flaps
        #: unrolled; empty when the schedule is null.
        self._intervals: Dict[str, List[Tuple[float, float, float]]] = {}
        if self.severity > 0.0:
            for index, event in enumerate(self.events):
                self._intervals.setdefault(event.channel, []).extend(
                    self._expand(event, index)
                )
            for spans in self._intervals.values():
                spans.sort()

    # -------------------------------------------------------------- expansion

    def _effective_factor(self, factor: float) -> float:
        """Interpolate degradation depth by severity (1.0 = healthy)."""
        return 1.0 - self.severity * (1.0 - factor)

    def _expand(
        self, event: FaultEvent, index: int
    ) -> List[Tuple[float, float, float]]:
        if event.kind is FaultKind.DEVICE_STALL:
            # A stall is binary: severity scales its *duration* (see
            # :meth:`scaled`), never its depth.
            factor = event.factor
        else:
            factor = self._effective_factor(event.factor)
        if factor >= 1.0:
            return []
        end = _FOREVER if event.end is None else event.end
        if event.kind is not FaultKind.FLAPPING:
            return [(event.start, end, factor)]
        # Flapping: deterministic jittered down-phases. The stream depends
        # only on (seed, channel, event index), so the curve is stable under
        # severity scaling and under unrelated schedule edits.
        rng = SplitRng(self.seed).stream(f"flap/{event.channel}/{index}")
        spans: List[Tuple[float, float, float]] = []
        t = event.start
        for __ in range(_MAX_FLAPS):
            if t >= end:
                break
            period = event.flap_period * (0.5 + rng.random())
            down_until = min(t + period * event.flap_duty, end)
            spans.append((t, down_until, factor))
            t += period
        return spans

    # ---------------------------------------------------------------- queries

    @property
    def is_null(self) -> bool:
        """True when no event ever degrades anything (e.g. severity 0)."""
        return not self._intervals

    @property
    def channels(self) -> List[str]:
        """Channels with at least one active interval, sorted."""
        return sorted(self._intervals)

    def factor_at(self, channel: str, t: float) -> float:
        """Combined capacity multiplier on ``channel`` at time ``t``.

        Overlapping faults multiply (two half-speed events leave a quarter),
        floored at a strictly positive minimum.
        """
        factor = 1.0
        for start, end, f in self._intervals.get(channel, ()):
            if start <= t < end:
                factor *= f
        return max(factor, _MIN_FACTOR)

    def factor_curve(
        self, channel: str, times: Sequence[float]
    ) -> np.ndarray:
        """Vectorized :meth:`factor_at` over a whole time array.

        Applies the same sorted intervals in the same multiplication order
        per element, so ``factor_curve(c, ts)[i] == factor_at(c, ts[i])``
        bit-for-bit.
        """
        times = np.asarray(times, dtype=float)
        factor = np.ones(times.shape)
        for start, end, f in self._intervals.get(channel, ()):
            factor[(times >= start) & (times < end)] *= f
        return np.maximum(factor, _MIN_FACTOR)

    def derates_at(self, t: float) -> Dict[str, float]:
        """Per-channel factors at one instant, FabricModel-derate shaped.

        Channels at full health are omitted, so the result plugs straight
        into ``FabricModel(platform, derates=...)``.
        """
        derates: Dict[str, float] = {}
        for channel in self._intervals:
            factor = self.factor_at(channel, t)
            if factor < 1.0:
                derates[channel] = factor
        return derates

    def worst_derates(self) -> Dict[str, float]:
        """Deepest per-channel factor over all time — the steady-state view.

        Feed this to ``FabricModel(platform, derates=...)`` for a worst-case
        fluid solve; channels that never degrade are omitted.
        """
        derates: Dict[str, float] = {}
        for channel, spans in self._intervals.items():
            worst = 1.0
            boundaries = {start for start, __, ___ in spans}
            for t in boundaries:
                worst = min(worst, self.factor_at(channel, t))
            if worst < 1.0:
                derates[channel] = max(worst, _MIN_FACTOR)
        return derates

    def capacity_factors(self) -> Dict[str, _ChannelFactor]:
        """Per-channel ``.at(t)`` factor curves for ``FluidSimulator``.

        Pass the result as ``capacity_schedules=`` — the simulator only ever
        calls ``.at(t)``, so the multiplicative fault semantics are kept
        (a ``DemandSchedule`` would *add* overlapping deltas instead).
        """
        return {name: _ChannelFactor(self, name) for name in self.channels}

    def rate_points(self, channel: str) -> List[Tuple[float, float]]:
        """(time, combined factor) at every change point of ``channel``.

        This is the DES interposer's program: apply each factor at its time.
        Device stalls are excluded — on the DES they hold the channel's
        service lanes outright instead of scaling its rate.
        """
        stall_spans = self._stall_spans(channel)

        def in_stall(start: float, end: float) -> bool:
            return any(s == start and e == end for s, e, __ in stall_spans)

        times = sorted({
            t
            for start, end, __ in self._intervals.get(channel, ())
            if not in_stall(start, end)
            for t in (start, end)
            if t < _FOREVER
        })
        return [(t, self._rate_factor_at(channel, t)) for t in times]

    def _stall_spans(self, channel: str) -> List[Tuple[float, float, float]]:
        spans: List[Tuple[float, float, float]] = []
        for index, event in enumerate(self.events):
            if event.channel != channel:
                continue
            if event.kind is not FaultKind.DEVICE_STALL:
                continue
            if self.severity <= 0.0:
                continue
            spans.extend(self._expand(event, index))
        return spans

    def _rate_factor_at(self, channel: str, t: float) -> float:
        """Like :meth:`factor_at` but ignoring device-stall intervals."""
        stall_spans = set(self._stall_spans(channel))
        factor = 1.0
        for span in self._intervals.get(channel, ()):
            if span in stall_spans:
                continue
            start, end, f = span
            if start <= t < end:
                factor *= f
        return max(factor, _MIN_FACTOR)

    def stall_windows(self, channel: str) -> List[Tuple[float, float]]:
        """Concrete [start, end) stall windows on ``channel``."""
        return [(start, end) for start, end, __ in self._stall_spans(channel)]

    # ------------------------------------------------------------ derivations

    def scaled(self, severity: float) -> "FaultSchedule":
        """This schedule with degradation depth interpolated by ``severity``.

        Severity 0 yields the null schedule (bit-identical to healthy);
        severity 1 yields full depth. Stall events scale in *duration*: at
        severity s a [start, end) stall becomes [start, start + s·(end−start)).
        """
        if not 0.0 <= severity <= 1.0:
            raise FaultInjectionError(
                f"severity must be in [0, 1], got {severity}"
            )
        events = []
        for event in self.events:
            if event.kind is FaultKind.DEVICE_STALL and severity > 0.0:
                span = (event.end - event.start) * severity
                events.append(replace(event, end=event.start + span))
            else:
                events.append(event)
        return FaultSchedule(events, seed=self.seed, severity=severity)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"FaultSchedule({len(self.events)} events, seed={self.seed}, "
            f"severity={self.severity}, channels={self.channels})"
        )
