"""Table 3 — maximum achieved bandwidth per sender scope.

Streams of AVX-512-style reads and non-temporal writes at core / CCX / CCD /
CPU scope, toward DIMMs and (on the 9634) CXL memory. Which bandwidth domain
binds at each scope is emergent from the fluid solve over the platform's
channels — the per-core MLP, the CCX token pool, the GMI port, the NoC
routing capacity, and the P-Link/CXL chain respectively (§3.3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from repro.analysis.report import format_pair, render_table
from repro.core.flows import Scope
from repro.core.microbench import MicroBench
from repro.platform.topology import Platform
from repro.transport.message import OpKind

__all__ = ["Table3Result", "run", "run_many", "render", "PAPER_TABLE3"]

#: The paper's Table 3: {platform: {(scope, target): (read, write) GB/s}}.
PAPER_TABLE3: Dict[str, Dict[Tuple[str, str], Tuple[float, float]]] = {
    "EPYC 7302": {
        ("core", "dram"): (14.9, 3.6),
        ("ccx", "dram"): (25.1, 7.1),
        ("ccd", "dram"): (32.5, 14.3),
        ("cpu", "dram"): (106.7, 55.1),
    },
    "EPYC 9634": {
        ("core", "dram"): (14.6, 3.3),
        ("ccx", "dram"): (35.2, 23.8),
        ("ccd", "dram"): (33.2, 23.6),
        ("cpu", "dram"): (366.2, 270.6),
        ("core", "cxl"): (5.4, 2.8),
        ("ccx", "cxl"): (23.6, 15.8),
        ("ccd", "cxl"): (25.0, 15.0),
        ("cpu", "cxl"): (88.1, 87.7),
    },
}


@dataclass(frozen=True)
class Table3Result:
    """Measured bandwidth: {(scope, target): (read GB/s, write GB/s)}."""

    platform: str
    cells: Dict[Tuple[str, str], Tuple[float, float]]

    def read_gbps(self, scope: str, target: str = "dram") -> float:
        """Measured read bandwidth of one (scope, target) cell."""
        return self.cells[(scope, target)][0]

    def write_gbps(self, scope: str, target: str = "dram") -> float:
        """Measured write bandwidth of one (scope, target) cell."""
        return self.cells[(scope, target)][1]


def run(platform: Platform, seed: int = 0) -> Table3Result:
    """Measure every Table 3 cell available on ``platform``."""
    bench = MicroBench(platform, seed=seed)
    targets = ["dram"] + (["cxl"] if platform.cxl_devices else [])
    cells: Dict[Tuple[str, str], Tuple[float, float]] = {}
    for target in targets:
        for scope in Scope:
            read = bench.stream_bandwidth(scope, OpKind.READ, target=target)
            write = bench.stream_bandwidth(scope, OpKind.NT_WRITE, target=target)
            cells[(scope.value, target)] = (read, write)
    return Table3Result(platform.name, cells)


def run_many(platforms, seed: int = 0, jobs=None) -> Dict[str, Table3Result]:
    """Measure Table 3 per platform, fanned out over worker processes."""
    from repro.runner import platform_map

    return platform_map(run, platforms, jobs=jobs, seed=seed)


def umc_channel_bandwidth(platform: Platform, seed: int = 0) -> Tuple[float, float]:
    """Single-UMC ceiling (the §3.3 "a UMC can deliver at most…" aside).

    The whole CPU streams to exactly one memory channel, so the channel's
    service rate is the only binding constraint (a single chiplet cannot
    expose it — its own CCX/GMI ceilings bind first).
    """
    bench = MicroBench(platform, seed=seed)
    umc = min(platform.umcs)
    read = bench.stream_bandwidth(Scope.CPU, OpKind.READ, umc_ids=[umc])
    write = bench.stream_bandwidth(Scope.CPU, OpKind.NT_WRITE, umc_ids=[umc])
    return read, write


def render(results: Dict[str, Table3Result]) -> str:
    """Render the result as an aligned paper-style text table."""
    scopes = ["core", "ccx", "ccd", "cpu"]
    headers = ["From \\ To"]
    for name in results:
        for target in ("dram", "cxl"):
            if any((scope, target) in results[name].cells for scope in scopes):
                headers.append(f"{name} {target.upper()} sim")
                headers.append(f"{name} {target.upper()} paper")
    rows = []
    for scope in scopes:
        row = [f"From {scope.upper()}"]
        for name, result in results.items():
            for target in ("dram", "cxl"):
                if not any(
                    (s, target) in result.cells for s in scopes
                ):
                    continue
                cell = result.cells.get((scope, target))
                paper = PAPER_TABLE3.get(name, {}).get((scope, target))
                row.append("N/A" if cell is None else format_pair(*cell))
                row.append("N/A" if paper is None else format_pair(*paper))
        rows.append(row)
    return render_table(
        headers, rows,
        title="Table 3: max bandwidth (read/write GB/s) by sender scope",
    )
