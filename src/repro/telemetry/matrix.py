"""The intra-server traffic matrix.

Implication #2 calls for "developing an intra-server traffic matrix" to find
the throttling path segment at runtime; §4 #4 wants a switching module that
"proactively monitors the traffic matrix". :class:`TrafficMatrix` accumulates
(source chiplet → destination domain) rates and supports the classic
gravity-model estimation from row/column sums (the Medina et al. / Vardi
tomography lineage the paper cites).
"""

from __future__ import annotations

from typing import Dict, List, Sequence, Tuple

import numpy as np

from repro.errors import ConfigurationError, MeasurementError

__all__ = ["TrafficMatrix"]


class TrafficMatrix:
    """A dense (sources × destinations) rate matrix in GB/s."""

    def __init__(self, sources: Sequence[str], destinations: Sequence[str]) -> None:
        if not sources or not destinations:
            raise ConfigurationError("need at least one source and destination")
        if len(set(sources)) != len(sources):
            raise ConfigurationError("duplicate source names")
        if len(set(destinations)) != len(destinations):
            raise ConfigurationError("duplicate destination names")
        self.sources = list(sources)
        self.destinations = list(destinations)
        self._src_index = {name: i for i, name in enumerate(self.sources)}
        self._dst_index = {name: i for i, name in enumerate(self.destinations)}
        self._rates = np.zeros((len(sources), len(destinations)))

    def record(self, source: str, destination: str, gbps: float) -> None:
        """Add gbps to one (source, destination) cell."""
        if gbps < 0:
            raise MeasurementError(f"negative rate {gbps}")
        try:
            i = self._src_index[source]
            j = self._dst_index[destination]
        except KeyError as exc:
            raise MeasurementError(f"unknown endpoint {exc}") from None
        self._rates[i, j] += gbps

    def rate(self, source: str, destination: str) -> float:
        """The accumulated rate of one (source, destination) cell."""
        return float(
            self._rates[self._src_index[source], self._dst_index[destination]]
        )

    def row_sums(self) -> Dict[str, float]:
        """Per-source egress rate (what a sender-side counter would see)."""
        return dict(zip(self.sources, self._rates.sum(axis=1)))

    def col_sums(self) -> Dict[str, float]:
        """Per-destination ingress rate (what a memory-side counter sees)."""
        return dict(zip(self.destinations, self._rates.sum(axis=0)))

    def total_gbps(self) -> float:
        """Sum of every matrix cell."""
        return float(self._rates.sum())

    def hottest(self, k: int = 3) -> List[Tuple[str, str, float]]:
        """The ``k`` largest entries as (source, destination, GB/s)."""
        flat = self._rates.flatten()
        order = np.argsort(flat)[::-1][:k]
        n_dst = len(self.destinations)
        return [
            (self.sources[i // n_dst], self.destinations[i % n_dst], float(flat[i]))
            for i in order
            if flat[i] > 0
        ]

    @classmethod
    def gravity_estimate(
        cls,
        row_sums: Dict[str, float],
        col_sums: Dict[str, float],
    ) -> "TrafficMatrix":
        """Estimate the full matrix from link-level aggregates.

        The gravity model assumes independence: ``T[i,j] ≈ out_i · in_j / N``.
        It is exact when every source spreads proportionally (e.g. NPS1
        channel interleave) and is the standard baseline the traffic-matrix
        literature starts from.
        """
        sources = sorted(row_sums)
        destinations = sorted(col_sums)
        matrix = cls(sources, destinations)
        total = sum(row_sums.values())
        col_total = sum(col_sums.values())
        if abs(total - col_total) > max(1e-6, 1e-3 * max(total, col_total)):
            raise MeasurementError(
                f"row/column totals disagree: {total} vs {col_total}"
            )
        if total <= 0:
            return matrix
        for src in sources:
            for dst in destinations:
                matrix.record(src, dst, row_sums[src] * col_sums[dst] / total)
        return matrix

    def max_abs_error(self, other: "TrafficMatrix") -> float:
        """Largest entry-wise difference against another matrix."""
        if self.sources != other.sources or self.destinations != other.destinations:
            raise MeasurementError("matrices have different endpoint sets")
        return float(np.abs(self._rates - other._rates).max())
