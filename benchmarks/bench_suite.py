"""§4 #5: the cross-platform characterization framework.

Runs the full suite on the two calibrated parts *and* the uncalibrated
synthetic UCIe preset, and checks that the paper's idiosyncrasies are
detected everywhere — they are structural, not artifacts of one machine.
"""

from repro.core.suite import CharacterizationSuite
from repro.platform.presets import synthetic_ucie

from benchmarks.conftest import emit


def bench_characterization_suite(benchmark, p7302, p9634):
    suite = CharacterizationSuite(iterations=800)

    def sweep():
        return suite.compare([p7302, p9634, synthetic_ucie()])

    reports = benchmark.pedantic(sweep, rounds=1, iterations=1)
    for report in reports.values():
        emit(report.render())
        # Idiosyncrasy #1: extended data paths — positional NUMA spread.
        assert report.latency.near < report.latency.horizontal
        # Idiosyncrasy #2: heterogeneous bandwidth domains / the wall.
        linear = (
            report.bandwidth.read_gbps("core")
            * {"EPYC 7302": 16, "EPYC 9634": 84, "Synthetic UCIe": 64}[
                report.platform
            ]
        )
        assert report.bandwidth.read_gbps("cpu") < linear
        # Idiosyncrasy #4: sender-driven partitioning on every link.
        for cases in report.partitioning.outcomes.values():
            outcome = cases["case4-unequal-demands"]
            assert outcome.achieved["flow1"] > outcome.equal_share()
        assert len(report.guidelines) >= 5
