# Developer entry points.
#
# `make verify` is the pre-commit gate: the tier-1 test suite plus a fast
# smoke pass over the engine benches (benchmark timing disabled — each
# bench body runs once as a plain test). The `timeout` ceilings are
# deliberately generous: they catch hangs and order-of-magnitude
# regressions, not scheduler jitter.

PYTHON ?= python
PYTEST  = env PYTHONPATH=src $(PYTHON) -m pytest

.PHONY: test bench bench-check lint verify chaos-smoke chaos-recover-smoke shard-smoke serve-smoke kvserve-smoke explore-smoke conformance coverage

test:
	$(PYTEST) -x -q

bench:
	$(PYTEST) benchmarks/bench_engine.py benchmarks/bench_runner.py \
		benchmarks/bench_netstack.py benchmarks/bench_fluid_cache.py \
		benchmarks/bench_trace.py benchmarks/bench_sharded_des.py \
		benchmarks/bench_recovery.py benchmarks/bench_kvserve.py \
		benchmarks/bench_explore.py -q

# Append fresh samples to BENCH_results.json, then fail if any tracked
# bench got >25% slower than its previous sample (2ms jitter floor).
bench-check: bench
	$(PYTHON) benchmarks/check_bench.py

# Static checks. Guarded: the lint gate is CI's job (ruff is installed
# there); a container without ruff skips it instead of failing.
lint:
	@if $(PYTHON) -m ruff --version >/dev/null 2>&1; then \
		$(PYTHON) -m ruff check src tests benchmarks; \
	else \
		echo "lint: ruff not installed, skipping"; \
	fi

verify:
	timeout 600 $(PYTEST) -x -q
	timeout 120 $(PYTEST) benchmarks/bench_engine.py -q --benchmark-disable
	@echo "verify: OK"

# The cross-backend/cross-platform conformance sweeps (tier-2): excluded
# from the default suite by the pytest marker filter, run here explicitly.
conformance:
	timeout 900 $(PYTEST) -m conformance -q

# Informational line coverage. Guarded like `lint`: pytest-cov is a CI
# install; a container without it skips instead of failing.
coverage:
	@if $(PYTHON) -c "import pytest_cov" >/dev/null 2>&1; then \
		$(PYTEST) -q --cov=repro --cov-report=term; \
	else \
		echo "coverage: pytest-cov not installed, skipping"; \
	fi

# A quick end-to-end fault sweep on both platforms: exercises the fault
# subsystem, the hardened runner, and strict invariant checking in one go.
chaos-smoke:
	timeout 120 env PYTHONPATH=src $(PYTHON) -m repro chaos --platform all \
		--transactions 100 --timeout 60 --retries 1
	@echo "chaos-smoke: OK"

# The failover comparison end to end: a permanent cross-die link
# failure with recovery off vs on, on both backends — detection, credit
# reclamation, retransmission, and failover in one CLI run.
chaos-recover-smoke:
	timeout 180 env PYTHONPATH=src $(PYTHON) -m repro chaos --platform all \
		--severity 0 --transactions 50 --recover --no-cache
	@echo "chaos-recover-smoke: OK"

# A quick serial-vs-sharded engine comparison on the largest cell: runs
# both engines end to end (window protocol, boundary messages, batched
# recurrences) and prints the agreement table.
shard-smoke:
	timeout 120 env PYTHONPATH=src $(PYTHON) -m repro sharded \
		--platform 9634 --transactions 100 --no-cache
	@echo "shard-smoke: OK"

# The persistent simulation service end to end: `repro serve` as a real
# daemon, a netstack batch submitted twice (the resubmission must be
# >=90% warm-cache hits and byte-identical to the --local fallback),
# then a protocol-driven shutdown that must leave nothing behind.
serve-smoke:
	timeout 180 env PYTHONPATH=src $(PYTHON) scripts/serve_smoke.py
	@echo "serve-smoke: OK"

# The hybrid serving engine end to end: a tiny open-loop sweep over
# every (value tier, background) arm, asserting the tail ordering the
# paper's motivation leans on (DRAM < CXL; QoS recovers the hog's
# victim).
kvserve-smoke:
	timeout 120 env PYTHONPATH=src $(PYTHON) scripts/kvserve_smoke.py
	@echo "kvserve-smoke: OK"

# The design-space sweep end to end: every catalog topology x routing
# policy x workload through the hardened runner, scored and rendered —
# the generator, the routed fabric, and the adaptive DES mesh in one run.
explore-smoke:
	timeout 120 env PYTHONPATH=src $(PYTHON) -m repro explore --no-cache
	@echo "explore-smoke: OK"
