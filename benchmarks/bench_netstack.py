"""Netstack benchmarks: stack overhead on both backends, plus the payoff.

Two questions, answered against the Figure 4–6 contention cell on the 7302:

* what does the stack *cost* — the fluid solve with credit caps and the
  DES run with interposed credit gates, timed against their stack-off
  twins;
* what does it *buy* — the Jain fairness delta each timing sample carries
  as metadata, so the trajectory in ``BENCH_results.json`` records the
  fairness restored per second spent.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_netstack.py -q
"""

from repro.experiments import netstack

#: Generous hang-catching ceilings (seconds), not jitter-sensitive bars.
FLUID_CEILING_S = 5.0
DES_CEILING_S = 30.0

#: Small DES cell: enough transactions that credit gating is exercised
#: under contention, small enough for a sub-second bench body.
_TRANSACTIONS = 150


def bench_netstack_fluid_credits(benchmark, p7302, record_timing):
    """The credit-capped WEIGHTED fluid solve of the contention cell."""
    point = benchmark.pedantic(
        netstack.run_point, args=(p7302, "credits", "fluid"),
        rounds=3, iterations=1,
    )
    off = netstack.run_point(p7302, "off", "fluid")
    best = benchmark.stats.stats.min
    record_timing(
        "bench_netstack_fluid_credits",
        best,
        jain_off=off.jain,
        jain_credits=point.jain,
    )
    assert point.jain > off.jain
    assert best < FLUID_CEILING_S


def bench_netstack_des_credits(benchmark, p7302, record_timing):
    """The DES contention cell with credit gates interposed."""
    point = benchmark.pedantic(
        netstack.run_point, args=(p7302, "credits", "des"),
        kwargs=dict(transactions_per_core=_TRANSACTIONS),
        rounds=1, iterations=1,
    )
    off = netstack.run_point(
        p7302, "off", "des", transactions_per_core=_TRANSACTIONS
    )
    best = benchmark.stats.stats.min
    record_timing(
        "bench_netstack_des_credits",
        best,
        jain_off=off.jain,
        jain_credits=point.jain,
        transactions_per_core=_TRANSACTIONS,
    )
    assert point.jain > off.jain
    assert best < DES_CEILING_S
