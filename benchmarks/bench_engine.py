"""Engineering benchmarks: raw throughput of the simulation engines.

These are genuine performance measurements (pytest-benchmark statistics,
multiple rounds) for the hot paths everything else is built on: the DES
event loop, resource arbitration, the fluid solver, and transaction
execution. Regressions here slow every experiment in the repository.
"""

from repro.fluid.solver import Channel, FluidFlow, solve
from repro.platform.numa import Position
from repro.sim.engine import Environment, Resource
from repro.transport.message import OpKind, Transaction
from repro.transport.path import PathResolver
from repro.transport.transaction import TransactionExecutor


def bench_des_timeout_throughput(benchmark):
    """Schedule-and-fire rate of bare timeout events."""

    def run():
        env = Environment()

        def ticker():
            for __ in range(2000):
                yield env.timeout(1.0)

        env.run(env.process(ticker()))
        return env.now

    assert benchmark(run) == 2000.0


def bench_des_resource_contention(benchmark):
    """FIFO arbitration with heavy queueing."""

    def run():
        env = Environment()
        resource = Resource(env, capacity=2)

        def worker():
            for __ in range(50):
                with resource.request() as grant:
                    yield grant
                    yield env.timeout(1.0)

        for __ in range(16):
            env.process(worker())
        env.run()
        return env.now

    benchmark(run)


def bench_transaction_execution(benchmark, p9634):
    """Full compiled-path transactions through the shared fabric."""

    def run():
        env = Environment()
        resolver = PathResolver(env, p9634, with_dram_jitter=False)
        executor = TransactionExecutor(env)
        near = p9634.umcs_at(0, Position.NEAR)[0].umc_id
        path = resolver.dram_path(0, near)
        for __ in range(300):
            env.process(executor.execute(Transaction(OpKind.READ), path))
        env.run()
        return len(executor.completed)

    assert benchmark(run) == 300


def bench_fluid_solver_scaling(benchmark):
    """Demand-proportional solve over a CPU-sized flow set."""
    shared = Channel("noc", 366.2)
    channels = [Channel(f"gmi{i}", 35.2) for i in range(12)]

    def run():
        flows = []
        for i in range(48):
            flow = FluidFlow(f"f{i}", 30.0)
            flow.add(channels[i % 12])
            flow.add(shared)
            flows.append(flow)
        return solve(flows)

    allocation = benchmark(run)
    assert sum(allocation.values()) <= 366.2 * (1 + 1e-9)
