"""Closed-loop, rate-controlled load generation on the DES.

The paper controls offered load by padding the instruction stream with NOPs
(§3.4): each core keeps at most its MLP window outstanding and issues no
faster than the target rate. :class:`ClosedLoopIssuer` models exactly that —
``window`` outstanding transactions per worker plus a shared pacing gate —
and collects per-transaction latency samples.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Generator, List, Optional

from repro.analysis.stats import LatencyStats
from repro.errors import ConfigurationError
from repro.sim.engine import Environment, Event
from repro.transport.message import OpKind, Transaction
from repro.transport.path import CompiledPath
from repro.transport.transaction import TransactionExecutor
from repro.units import CACHELINE

__all__ = ["ClosedLoopIssuer", "LoadResult"]


@dataclass(frozen=True)
class LoadResult:
    """Outcome of one load run: latency stats plus delivered bandwidth."""

    stats: LatencyStats
    offered_gbps: Optional[float]
    achieved_gbps: float
    elapsed_ns: float


class ClosedLoopIssuer:
    """A group of workers issuing transactions over one or more paths."""

    def __init__(
        self,
        env: Environment,
        executor: TransactionExecutor,
        path_of_worker: Callable[[int], CompiledPath],
        op: OpKind,
        workers: int,
        window: int,
        count_per_worker: int,
        rate_gbps: Optional[float] = None,
        size_bytes: int = CACHELINE,
        warmup_fraction: float = 0.1,
    ) -> None:
        if workers < 1 or window < 1 or count_per_worker < 1:
            raise ConfigurationError("workers, window, and count must be >= 1")
        if rate_gbps is not None and rate_gbps <= 0:
            raise ConfigurationError(f"rate must be positive, got {rate_gbps}")
        if not 0.0 <= warmup_fraction < 1.0:
            raise ConfigurationError("warmup fraction must be in [0, 1)")
        self.env = env
        self.executor = executor
        self.path_of_worker = path_of_worker
        self.op = op
        self.workers = workers
        self.window = window
        self.count_per_worker = count_per_worker
        self.size_bytes = size_bytes
        self.warmup_fraction = warmup_fraction
        # Shared pacing gate: the aggregate never issues faster than the
        # offered rate (one slot every size/rate ns across all workers).
        # None → issue as fast as the windows allow.
        self._interval_ns = (
            size_bytes / rate_gbps if rate_gbps is not None else None
        )
        self.rate_gbps = rate_gbps
        self._next_issue_ns = 0.0
        self._samples: List[float] = []
        self._bytes_measured = 0
        self._measure_start_ns: Optional[float] = None
        self._measure_end_ns = 0.0

    def _worker(self, worker_id: int) -> Generator[Event, None, None]:
        path = self.path_of_worker(worker_id)
        warmup = int(self.count_per_worker * self.warmup_fraction)
        # Each worker runs `window` lanes; a lane is one outstanding slot.
        lanes = [
            self.env.process(self._lane(path, worker_id, lane, warmup))
            for lane in range(self.window)
        ]
        yield self.env.all_of(lanes)

    def _lane(
        self, path: CompiledPath, worker_id: int, lane: int, warmup: int
    ) -> Generator[Event, None, None]:
        # Split the per-worker count over its lanes (remainder to lane 0).
        base, extra = divmod(self.count_per_worker, self.window)
        quota = base + (1 if lane < extra else 0)
        for i in range(quota):
            if self._interval_ns is not None:
                # Claim the next pacing slot for the whole issuer group.
                # Pacing must never fall behind real time, or an idle period
                # would be followed by an artificial burst.
                slot = max(self._next_issue_ns, self.env.now)
                self._next_issue_ns = slot + self._interval_ns
                if slot > self.env.now:
                    yield self.env.timeout(slot - self.env.now)
            txn = Transaction(
                self.op, self.size_bytes, src_core=worker_id, flow_id=worker_id
            )
            done = self.env.process(self.executor.execute(txn, path))
            yield done
            if i >= warmup // max(1, self.window):
                if self._measure_start_ns is None:
                    self._measure_start_ns = txn.issued_ns
                self._samples.append(txn.latency_ns)
                self._bytes_measured += txn.size_bytes
                self._measure_end_ns = self.env.now

    def start(self):
        """Start all workers; returns the event that fires when all finish.

        Use this to compose several issuers (e.g. a read stream and a write
        stream) in one environment, then ``env.run(env.all_of([...]))``.
        """
        return self.env.all_of(
            [self.env.process(self._worker(w)) for w in range(self.workers)]
        )

    def result(self) -> LoadResult:
        """Summarize after the simulation has run (see :meth:`start`)."""
        if not self._samples:
            raise ConfigurationError(
                "no samples collected (count too small for the warmup fraction?)"
            )
        start = self._measure_start_ns or 0.0
        elapsed = max(self._measure_end_ns - start, 1e-9)
        return LoadResult(
            stats=LatencyStats.from_samples(self._samples),
            offered_gbps=self.rate_gbps,
            achieved_gbps=self._bytes_measured / elapsed,
            elapsed_ns=elapsed,
        )

    def run(self) -> LoadResult:
        """Start all workers, run the DES to completion, summarize."""
        self.env.run(self.start())
        return self.result()
