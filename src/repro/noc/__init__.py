"""Network-on-chip substrate of the I/O die.

The I/O chiplet's internal interconnect (paper §2.2, Figure 2): a mesh of
switching stops traversed by XY dimension-order routing, token-based traffic
control modules at the compute chiplets (the "queueless structure like
Phantom Queue" of §3.2), and FIFO traffic-oblivious link arbitration (the
mechanism behind §3.5's sender-driven bandwidth partitioning).

Beyond the preset hardware's XY mesh, :mod:`repro.noc.routing` generalizes
the substrate to generated router grids (arbitrary dims, 3D sparse-pillar
layers, link-weight encodings) with credit-aware adaptive minimal routing
(:class:`AdaptiveMeshNetwork`) and escape-VC deadlock safety.
"""

from repro.noc.arbiter import LinkArbiter
from repro.noc.bufferless import BufferlessMeshNetwork
from repro.noc.flowcontrol import TokenPool, ccx_token_pool, ccd_token_pool
from repro.noc.mesh import Mesh
from repro.noc.router import AdaptiveMeshNetwork, MeshNetwork
from repro.noc.routing import (
    RouterGrid,
    RoutingPolicy,
    channel_dependency_graph,
    is_deadlock_free,
    route_split,
)

__all__ = [
    "LinkArbiter",
    "BufferlessMeshNetwork",
    "TokenPool",
    "ccx_token_pool",
    "ccd_token_pool",
    "Mesh",
    "MeshNetwork",
    "AdaptiveMeshNetwork",
    "RouterGrid",
    "RoutingPolicy",
    "channel_dependency_graph",
    "is_deadlock_free",
    "route_split",
]
