"""Hop-by-hop mesh network simulation.

The transaction-level experiments collapse a route's switching hops into a
single latency term for speed (see :mod:`repro.transport.path`). This module
keeps the *detailed* alternative: a full mesh of routers with per-hop output
serializers, used to validate the collapsed model (they agree on unloaded
latency by construction) and to study in-mesh contention directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Tuple

from repro.errors import TopologyError
from repro.noc.flowcontrol import TokenPool
from repro.noc.mesh import Mesh
from repro.noc.routing import Coord3, RouterGrid, RoutingPolicy
from repro.sim.engine import Environment, Event, Resource

Coord = Tuple[int, int]

__all__ = ["MeshNetwork", "AdaptiveMeshNetwork"]


@dataclass
class _Port:
    """One router output port: a serializer plus the wire to the next stop."""

    resource: Resource
    hop_ns: float
    gbps: float
    bytes_forwarded: int = 0


class MeshNetwork:
    """A mesh of routers with XY routing and per-port FIFO serialization."""

    def __init__(
        self,
        env: Environment,
        mesh: Mesh,
        port_gbps: float,
        lanes_per_port: int = 1,
    ) -> None:
        self.env = env
        self.mesh = mesh
        self.port_gbps = port_gbps
        self._ports: Dict[Tuple[Coord, Coord], _Port] = {}
        for x in range(mesh.width):
            for y in range(mesh.height):
                here = (x, y)
                for neighbor in ((x + 1, y), (x - 1, y), (x, y + 1), (x, y - 1)):
                    if mesh.contains(neighbor):
                        hop_ns = (
                            mesh.x_hop_ns
                            if neighbor[0] != x
                            else mesh.y_hop_ns
                        )
                        self._ports[(here, neighbor)] = _Port(
                            Resource(env, capacity=lanes_per_port),
                            hop_ns,
                            port_gbps,
                        )

    def port(self, src: Coord, dst: Coord) -> _Port:
        """The output port from one stop to an adjacent stop."""
        try:
            return self._ports[(src, dst)]
        except KeyError:
            raise TopologyError(f"no port from {src} to {dst}") from None

    def send(
        self, src: Coord, dst: Coord, size_bytes: int
    ) -> Generator[Event, None, float]:
        """DES process: forward one packet along the XY route.

        Returns the network traversal latency (ns) experienced by the packet.
        """
        start = self.env.now
        path = self.mesh.route(src, dst)
        hops = list(zip(path, path[1:]))
        previous_axis = None
        for here, nxt in hops:
            axis = "x" if nxt[0] != here[0] else "y"
            if previous_axis is not None and axis != previous_axis:
                # XY routing turns at most once (x-moves precede y-moves).
                # Express channels (negative turn_ns) cannot make the DES go
                # backwards; they are handled analytically in Mesh.cost_ns.
                yield self.env.timeout(max(0.0, self.mesh.turn_ns))
            previous_axis = axis
            port = self.port(here, nxt)
            with port.resource.request() as grant:
                yield grant
                service = size_bytes / port.gbps
                port.bytes_forwarded += size_bytes
                yield self.env.timeout(service + port.hop_ns)
        return self.env.now - start

    def total_bytes_forwarded(self) -> int:
        """Total bytes forwarded across every port."""
        return sum(port.bytes_forwarded for port in self._ports.values())


@dataclass
class _AdaptivePort:
    """One output port of the adaptive router.

    On top of the serializer + wire of :class:`_Port`, each port carries a
    BDP-sized downstream-credit pool (:func:`repro.net.link_credit_budget`)
    — the telemetry the adaptive outport selection reads — plus counters
    splitting traffic into adaptively-routed and escape-routed packets.
    """

    resource: Resource
    credits: TokenPool
    hop_ns: float
    gbps: float
    bytes_forwarded: int = 0
    adaptive_packets: int = 0
    escape_packets: int = 0


class AdaptiveMeshNetwork:
    """Credit-aware adaptive minimal routing over a :class:`RouterGrid`.

    The routing discipline the ISSUE's tentpole asks for: at each router,
    among the minimal-quadrant outports take those of minimum link weight
    (:meth:`RouterGrid.adaptive_ports`), pick the one with the most
    downstream credits, break ties round-robin. When no candidate has a
    free credit — or under ``RoutingPolicy.XY`` always — the packet takes
    the escape-VC dimension-ordered hop instead
    (:meth:`RouterGrid.escape_next`), whose channel-dependency graph is
    acyclic by construction, so the network cannot deadlock (Duato).

    Works over 2D meshes and 3D sparse-pillar grids alike; hop latencies
    are per-axis, with vertical (TSV) hops typically slower.
    """

    def __init__(
        self,
        env: Environment,
        grid: RouterGrid,
        port_gbps: float,
        x_hop_ns: float,
        y_hop_ns: float,
        z_hop_ns: Optional[float] = None,
        policy: RoutingPolicy = RoutingPolicy.ADAPTIVE,
        credit_config: Optional["CreditConfig"] = None,
        lanes_per_port: int = 1,
    ) -> None:
        from repro.net.credits import CreditConfig, link_credit_budget

        if port_gbps <= 0:
            raise TopologyError(f"port_gbps must be positive, got {port_gbps}")
        self.env = env
        self.grid = grid
        self.policy = policy
        self.port_gbps = port_gbps
        config = credit_config or CreditConfig()
        hop_ns = {
            "x": x_hop_ns,
            "y": y_hop_ns,
            "z": z_hop_ns if z_hop_ns is not None else (x_hop_ns + y_hop_ns),
        }
        self._ports: Dict[Tuple[Coord3, Coord3], _AdaptivePort] = {}
        for here, neighbor in grid.links():
            axis = (
                "z" if neighbor[2] != here[2]
                else "x" if neighbor[0] != here[0]
                else "y"
            )
            # Credit loop RTT = hop out + credit return over the same wire.
            depth = link_credit_budget(
                port_gbps, 2.0 * hop_ns[axis], config
            )
            self._ports[(here, neighbor)] = _AdaptivePort(
                Resource(env, capacity=lanes_per_port),
                TokenPool(env, depth, name=f"crd:{here}>{neighbor}"),
                hop_ns[axis],
                port_gbps,
            )
        self._rr: Dict[Coord3, int] = {}

    def port(self, src: Coord3, dst: Coord3) -> _AdaptivePort:
        """The output port from one router to an adjacent router."""
        try:
            return self._ports[(src, dst)]
        except KeyError:
            raise TopologyError(f"no port from {src} to {dst}") from None

    def _pick_adaptive(self, here: Coord3, dst: Coord3) -> Optional[Coord3]:
        """The credit-aware outport choice, or None to fall back to escape."""
        if self.policy is not RoutingPolicy.ADAPTIVE:
            return None
        candidates: List[Coord3] = [
            port
            for port in self.grid.adaptive_ports(here, dst)
            if self._ports[(here, port)].credits.available > 0
        ]
        if not candidates:
            return None
        best = max(
            self._ports[(here, port)].credits.available
            for port in candidates
        )
        tied = [
            port
            for port in candidates
            if self._ports[(here, port)].credits.available == best
        ]
        slot = self._rr.get(here, 0)
        self._rr[here] = slot + 1
        return tied[slot % len(tied)]

    def send(
        self, src: Coord3, dst: Coord3, size_bytes: int
    ) -> Generator[Event, None, float]:
        """DES process: forward one packet from ``src`` to ``dst``.

        Every hop re-runs the outport selection, so a packet's path reacts
        to congestion encountered mid-flight. Returns the network traversal
        latency (ns) experienced by the packet.
        """
        start = self.env.now
        here, vc = src, 0
        while here != dst:
            nxt = self._pick_adaptive(here, dst)
            adaptive = nxt is not None
            if not adaptive:
                nxt, vc = self.grid.escape_next(here, dst, vc)
            port = self.port(here, nxt)
            if adaptive:
                yield port.credits.acquire()
                port.adaptive_packets += 1
            else:
                port.escape_packets += 1
            with port.resource.request() as grant:
                yield grant
                service = size_bytes / port.gbps
                port.bytes_forwarded += size_bytes
                yield self.env.timeout(service + port.hop_ns)
            if adaptive:
                # The credit returns once the flit has cleared the wire.
                port.credits.release()
            here = nxt
        return self.env.now - start

    def total_bytes_forwarded(self) -> int:
        """Total bytes forwarded across every port."""
        return sum(port.bytes_forwarded for port in self._ports.values())

    def escape_fraction(self) -> float:
        """Share of forwarded packets that took the escape channel."""
        adaptive = sum(p.adaptive_packets for p in self._ports.values())
        escape = sum(p.escape_packets for p in self._ports.values())
        total = adaptive + escape
        return 0.0 if total == 0 else escape / total
