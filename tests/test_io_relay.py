"""Tests for the NIC→DRAM→NVMe relay study (§4 #3)."""

import pytest

from repro.errors import ConfigurationError
from repro.io.relay import (
    NicSpec,
    RelayDesign,
    SsdArraySpec,
    relay_throughput,
    render,
    sweep_designs,
)


class TestSpecs:
    def test_nic_validation(self):
        with pytest.raises(ConfigurationError):
            NicSpec(gbps=0.0)

    def test_ssd_validation(self):
        with pytest.raises(ConfigurationError):
            SsdArraySpec(count=0)

    def test_ssd_aggregate(self):
        assert SsdArraySpec(count=8, write_gbps_each=7.0).write_gbps == 56.0


class TestRelay:
    @pytest.fixture(scope="class")
    def results_7302(self, p7302):
        return sweep_designs(p7302)

    @pytest.fixture(scope="class")
    def results_9634(self, p9634):
        return sweep_designs(p9634)

    def test_design_ordering(self, results_7302):
        cpu = results_7302[RelayDesign.CPU_COPY].throughput_gbps
        dma = results_7302[RelayDesign.SINGLE_DOMAIN_DMA].throughput_gbps
        aware = results_7302[RelayDesign.CHANNEL_AWARE].throughput_gbps
        assert cpu < dma < aware

    def test_cpu_copy_binds_on_the_chiplet(self, results_7302, p7302):
        # The paper's claim: the external fabric outpaces a compute chiplet.
        result = results_7302[RelayDesign.CPU_COPY]
        assert result.bottleneck == "compute-chiplet"
        assert result.throughput_gbps == pytest.approx(
            p7302.spec.bandwidth.gmi_write_gbps, rel=0.02
        )
        assert result.throughput_gbps < result.nic.gbps / 3

    def test_single_domain_binds_on_staging(self, results_7302, p7302):
        result = results_7302[RelayDesign.SINGLE_DOMAIN_DMA]
        assert result.bottleneck == "staging-domain"
        # Two DDR4 channels' write rate: 2 x 19.0.
        assert result.throughput_gbps == pytest.approx(38.0, rel=0.02)

    def test_channel_aware_is_device_bound(self, results_7302):
        result = results_7302[RelayDesign.CHANNEL_AWARE]
        assert result.external_bound
        assert result.throughput_gbps == pytest.approx(50.0, rel=0.01)

    def test_9634_ddr5_domain_suffices(self, results_9634):
        # Cross-platform nuance: three DDR5 channels out-run the NIC, so
        # even naive single-domain DMA is device-bound on the 9634.
        result = results_9634[RelayDesign.SINGLE_DOMAIN_DMA]
        assert result.external_bound

    def test_ssd_array_can_bind_instead(self, p7302):
        small_array = SsdArraySpec(count=3, write_gbps_each=7.0)  # 21 GB/s
        result = relay_throughput(
            p7302, RelayDesign.CHANNEL_AWARE, ssds=small_array
        )
        assert result.bottleneck == "ssd-array"
        assert result.throughput_gbps == pytest.approx(21.0, rel=0.01)

    def test_slow_nic_restores_cpu_copy(self, p7302):
        # With a 10GbE-class NIC (1.25 GB/s) even the copy path keeps up —
        # the pre-terabit world the conventional stack was designed for.
        result = relay_throughput(
            p7302, RelayDesign.CPU_COPY, nic=NicSpec("10GbE", 1.25)
        )
        assert result.bottleneck == "nic"

    def test_render(self, results_7302):
        text = render(results_7302)
        assert "cpu-copy" in text
        assert "device-bound?" in text
