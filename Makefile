# Developer entry points.
#
# `make verify` is the pre-commit gate: the tier-1 test suite plus a fast
# smoke pass over the engine benches (benchmark timing disabled — each
# bench body runs once as a plain test). The `timeout` ceilings are
# deliberately generous: they catch hangs and order-of-magnitude
# regressions, not scheduler jitter.

PYTHON ?= python
PYTEST  = env PYTHONPATH=src $(PYTHON) -m pytest

.PHONY: test bench verify

test:
	$(PYTEST) -x -q

bench:
	$(PYTEST) benchmarks/bench_engine.py benchmarks/bench_runner.py -q

verify:
	timeout 600 $(PYTEST) -x -q
	timeout 120 $(PYTEST) benchmarks/bench_engine.py -q --benchmark-disable
	@echo "verify: OK"
