#!/usr/bin/env python3
"""Storage-server relay: when the network outpaces a compute chiplet.

The paper's §4 #3 observation, quantified: a 400 GbE port (50 GB/s) and an
8-SSD NVMe array (56 GB/s) against the intra-host fabric, under three I/O
stack designs — plus a sweep of NIC speeds showing exactly when the
conventional CPU-copy stack stopped being good enough.

Run:  python examples/storage_relay.py
"""

from repro.io.relay import (
    NicSpec,
    RelayDesign,
    relay_throughput,
    render,
    sweep_designs,
)
from repro.platform.presets import epyc_7302, epyc_9634


def main() -> None:
    for platform in (epyc_7302(), epyc_9634()):
        print(render(sweep_designs(platform)))
        print()

    print("When did CPU-copy stop keeping up? (EPYC 7302, relay GB/s)")
    platform = epyc_7302()
    print(f"{'NIC':>10} {'line GB/s':>10} {'cpu-copy':>9} {'bound on':>18}")
    for name, gbps in (
        ("10GbE", 1.25),
        ("25GbE", 3.1),
        ("100GbE", 12.5),
        ("200GbE", 25.0),
        ("400GbE", 50.0),
        ("800GbE", 100.0),
    ):
        result = relay_throughput(
            platform, RelayDesign.CPU_COPY, nic=NicSpec(name, gbps)
        )
        print(
            f"{name:>10} {gbps:>10.2f} {result.throughput_gbps:>9.1f} "
            f"{result.bottleneck:>18}"
        )
    print(
        "\nbeyond ~100GbE the chiplet, not the wire, is the storage server's"
        "\nceiling — the fused stack the paper calls for orchestrates around it."
    )


if __name__ == "__main__":
    main()
