"""Regenerate Figure 4 — sender-driven bandwidth partitioning (§3.5).

Four demand cases on every link (IF/GMI on both CPUs, P Link on the 9634).
Shape criteria, emergent from traffic-oblivious FIFO arbitration:

* case 1 (under-subscribed): both flows receive exactly their requests;
* cases 2 and 4: the flow with the higher demand exceeds its equal share;
* case 3 (equal demands): equilibrium split.
"""

import pytest

from repro.experiments import fig4

from benchmarks.conftest import emit


def _check(result):
    for cases in result.outcomes.values():
        case1 = cases["case1-undersubscribed"]
        for flow, requested in case1.requested.items():
            assert case1.achieved[flow] == pytest.approx(requested)
        for case_name in ("case2-small-vs-aggressive", "case4-unequal-demands"):
            outcome = cases[case_name]
            assert outcome.achieved["flow1"] > outcome.equal_share()
            assert outcome.achieved["flow1"] > outcome.achieved["flow0"]
        case3 = cases["case3-equal-demands"]
        assert case3.achieved["flow0"] == pytest.approx(case3.achieved["flow1"])
        for outcome in cases.values():
            assert sum(outcome.achieved.values()) <= outcome.capacity_gbps + 1e-9


def bench_fig4_epyc_7302(benchmark, p7302):
    result = benchmark.pedantic(fig4.run, args=(p7302,), rounds=1, iterations=1)
    emit(fig4.render([result]))
    assert set(result.outcomes) == {"if", "gmi"}
    _check(result)


def bench_fig4_epyc_9634(benchmark, p9634):
    result = benchmark.pedantic(fig4.run, args=(p9634,), rounds=1, iterations=1)
    emit(fig4.render([result]))
    assert set(result.outcomes) == {"if", "gmi", "plink"}
    _check(result)
