"""DES validation of the multikernel cost model.

The analytic :class:`~repro.osdesign.model.MultikernelDesign` predicts
visibility latency with an M/D/1 receive queue and the worst-case message
path. This module actually *runs* the broadcast on the simulator: Poisson
update arrivals per replica, 64 B messages through the real IF arbiters and
mesh costs, and a single apply server per receiving kernel. The test suite
checks the analytic model against these measurements.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Generator, List

import numpy as np

from repro.analysis.stats import LatencyStats
from repro.errors import ConfigurationError
from repro.osdesign.model import MultikernelDesign
from repro.platform.topology import Platform
from repro.sim.engine import Environment, Event, Resource
from repro.sim.rng import SplitRng
from repro.transport.path import PathResolver
from repro.units import CACHELINE

__all__ = ["MultikernelRun", "simulate_multikernel"]


@dataclass(frozen=True)
class MultikernelRun:
    """Measured behaviour of the simulated multikernel broadcast."""

    offered_mops: float
    achieved_mops: float
    visibility: LatencyStats

    @property
    def sustainable(self) -> bool:
        # The measurement window includes the arrival ramp and the drain of
        # in-flight updates, so even an unloaded run reports ~0.85× offered;
        # below 0.8× the system is genuinely shedding throughput.
        return self.achieved_mops >= 0.8 * self.offered_mops


def simulate_multikernel(
    platform: Platform,
    offered_mops: float,
    updates: int = 400,
    replica_ccds: int | None = None,
    per_message_cpu_ns: float = 25.0,
    seed: int = 0,
) -> MultikernelRun:
    """Run the replicated-update broadcast on the DES."""
    if offered_mops <= 0:
        raise ConfigurationError("offered rate must be positive")
    design = MultikernelDesign(
        platform, replica_ccds, per_message_cpu_ns=per_message_cpu_ns
    )
    replicas = design.replicas
    env = Environment()
    resolver = PathResolver(env, platform, seed=seed, with_dram_jitter=False)
    rng = SplitRng(seed).stream("mk-arrivals")
    lat = platform.spec.latency

    apply_servers = [Resource(env, capacity=1) for __ in range(replicas)]
    visibility_samples: List[float] = []
    first_issue: List[float] = []
    last_done: List[float] = [0.0]

    def pair_path_ns(src: int, dst: int) -> float:
        dx, dy = platform.mesh_offset(
            platform.ccds[src].coord, platform.ccds[dst].coord
        )
        return (
            lat.if_link_ns + lat.ccm_ns
            + lat.mesh_cost_ns(dx, dy)
            + lat.ccm_ns + lat.if_link_ns
        )

    def deliver(src: int, dst: int) -> Generator[Event, None, None]:
        # Serialize the 64 B message on the sender's IF, cross the mesh,
        # then queue for the receiving kernel's apply loop.
        yield from resolver.if_arbiter(src).transfer(CACHELINE, is_write=True)
        yield env.timeout(pair_path_ns(src, dst))
        with apply_servers[dst].request() as grant:
            yield grant
            yield env.timeout(per_message_cpu_ns)

    def update(src: int) -> Generator[Event, None, None]:
        start = env.now
        yield env.timeout(lat.l3_ns)  # local apply
        deliveries = [
            env.process(deliver(src, dst))
            for dst in range(replicas)
            if dst != src
        ]
        yield env.all_of(deliveries)
        visibility_samples.append(env.now - start)
        last_done[0] = max(last_done[0], env.now)

    def arrival_source(replica: int) -> Generator[Event, None, None]:
        per_replica_rate = offered_mops / replicas / 1e3  # updates per ns
        count = updates // replicas
        for __ in range(count):
            yield env.timeout(float(rng.exponential(1.0 / per_replica_rate)))
            if not first_issue:
                first_issue.append(env.now)
            env.process(update(replica))

    sources = [env.process(arrival_source(r)) for r in range(replicas)]
    env.run(env.all_of(sources))
    env.run()  # drain in-flight updates
    if not visibility_samples:
        raise ConfigurationError("no updates completed (too few updates?)")
    elapsed = max(last_done[0] - (first_issue[0] if first_issue else 0.0), 1e-9)
    achieved = len(visibility_samples) / elapsed * 1e3  # Mops
    return MultikernelRun(
        offered_mops=offered_mops,
        achieved_mops=float(achieved),
        visibility=LatencyStats.from_samples(np.asarray(visibility_samples)),
    )
