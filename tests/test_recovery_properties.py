"""Property test: credit conservation through arbitrary fault schedules.

The recovery layer's core claim (``docs/ROBUSTNESS.md``): for *any* fault
schedule — derates, permanent failures, stalls, flapping, in any
combination — a recovery-gated run drains to a state where every credit
is accounted for (home + in-flight + reclaimed-with-forgiveness balances
to exactly the configured capacity) and every issued transaction
completed. Hypothesis drives the schedule space; the invariant is checked
by :meth:`repro.net.recovery.ReclaimingCreditScheduler.assert_credits_home`
plus the issuers' own completion counts.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.loadgen import ClosedLoopIssuer
from repro.faults.inject import install as install_faults
from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.net.recovery import RecoveryConfig, install as install_recovery
from repro.net.stack import NetStackConfig
from repro.platform.presets import epyc_7302
from repro.sim.engine import Environment
from repro.transport.message import OpKind
from repro.transport.path import PathResolver
from repro.transport.transaction import TransactionExecutor

#: Channels that exist on the 7302 and sit on the victim's data path.
_CHANNELS = ("umc0:r", "umc1:r", "gmi0:r", "noc:r")

_times = st.floats(min_value=0.0, max_value=2500.0)
_spans = st.tuples(_times, st.floats(min_value=50.0, max_value=1500.0))
_factors = st.floats(min_value=0.05, max_value=0.9)


@st.composite
def _events(draw):
    channel = draw(st.sampled_from(_CHANNELS))
    kind = draw(st.sampled_from(("derate", "failure", "stall", "flapping")))
    if kind == "failure":
        return FaultEvent.failure(
            channel, start=draw(_times), factor=draw(_factors)
        )
    start, length = draw(_spans)
    if kind == "derate":
        return FaultEvent.derate(
            channel, start=start, end=start + length, factor=draw(_factors)
        )
    if kind == "stall":
        return FaultEvent.stall(channel, start=start, end=start + length)
    return FaultEvent.flapping(
        channel,
        start=start,
        end=start + length,
        period=draw(st.floats(min_value=50.0, max_value=400.0)),
        factor=draw(_factors),
    )


_schedules = st.lists(_events(), min_size=0, max_size=4).map(FaultSchedule)


@pytest.fixture(scope="module")
def platform():
    return epyc_7302()


@given(schedule=_schedules, seed=st.integers(min_value=0, max_value=7))
@settings(max_examples=20, deadline=None)
def test_credits_conserved_and_no_txn_dropped(platform, schedule, seed):
    env = Environment()
    resolver = PathResolver(env, platform, seed=seed)
    install_faults(resolver, schedule)
    installation = install_recovery(
        resolver,
        NetStackConfig.with_credits(),
        RecoveryConfig.on(),
        flows=["victim"],
        endpoints=["umc0", "umc1"],
        seed=seed,
    )
    cores = [c.core_id for c in platform.cores_of_ccd(0)[:2]]
    count_per_worker = 30
    issuers = []
    finished = []
    for index, core in enumerate(cores):
        umc = index % 2
        executor = TransactionExecutor(env, flow="victim")
        gate = installation.gate(executor, "victim", worker=index)
        for candidate in (0, 1):
            installation.router.register(
                index,
                f"umc{candidate}",
                path=resolver.dram_path(core, candidate),
                primary=(candidate == umc),
                slice_gbps=6.0,
            )
        path = resolver.dram_path(core, umc)
        issuer = ClosedLoopIssuer(
            env,
            gate,
            lambda worker, path=path: path,
            OpKind.READ,
            workers=1,
            window=8,
            count_per_worker=count_per_worker,
            rate_gbps=6.0,
        )
        issuers.append(issuer)
        finished.append(issuer.start())
    for umc in (0, 1):
        installation.watch(
            f"umc{umc}",
            6.0,
            probe_path=resolver.dram_path(cores[0], umc),
        )
    installation.start()
    env.run(env.all_of(finished))
    installation.stop()
    env.run()  # drain wrecks, probes, and the monitors' exit

    # No transaction silently dropped: every issuer delivered its count.
    for issuer in issuers:
        assert issuer.result().stats.count == count_per_worker

    # Conservation: home + in-flight + reclaimed balances exactly.
    installation.assert_credits_home()
    assert installation.forgiveness_settled()
    for pool in installation.scheduler.pools.values():
        assert pool.available == pool.capacity
        assert pool.leases == 0
