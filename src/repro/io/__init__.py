"""Fused intra-/inter-host networking and I/O stack (§4 direction #3).

"Recent trends indicate that inter-fabric bandwidth has gradually approached
or even outpaced intra-host bandwidth … a 400+GbE terabit Ethernet port and
8+ NVMe SSDs can sometimes drive more bandwidth than a compute chiplet. …
the network and I/O stack should consider both the internal and external
link characteristics and judiciously orchestrate data flows."

:mod:`repro.io.relay` quantifies that claim: a storage-server relay (NIC
ingress → host staging buffers → NVMe writes) evaluated under three stack
designs, from a conventional CPU-copy path that funnels everything through
one compute chiplet to a channel-aware orchestration that spreads staging
across memory domains.
"""

from repro.io.relay import (
    NicSpec,
    RelayDesign,
    RelayResult,
    SsdArraySpec,
    relay_throughput,
    sweep_designs,
)

__all__ = [
    "NicSpec",
    "SsdArraySpec",
    "RelayDesign",
    "RelayResult",
    "relay_throughput",
    "sweep_designs",
]
