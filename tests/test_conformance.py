"""Cross-backend conformance suite (tier-2; run with ``-m conformance``).

Three agreement contracts, with their tolerances stated where they are
asserted:

* **fluid python vs numpy** — the reference and vectorized solvers must
  agree within ``1e-9`` GB/s on identical flow sets, across every policy,
  including capacity sets derated by a fault schedule;
* **DES vs fluid** — the netstack contention cell run on both backends
  must tell the same story on every platform preset: victim shares within
  ``0.35`` absolute (the DES sees queueing transients the steady-state
  fluid model abstracts away — on the 7302 the observed gap is ~0.33),
  with the stack arms improving the victim monotonically on both;
* **traced vs untraced** — tracing must be bit-identical (exact float
  equality) on every preset and under a fault schedule, including the
  null-schedule case.

Excluded from tier-1 by the ``conformance`` marker (see pyproject.toml);
CI runs it as a separate job via ``make conformance``.
"""

import pytest

from repro.experiments import netstack
from repro.fluid.solver import Channel, FluidFlow, Policy, solve
from repro.platform.presets import epyc_7302, epyc_9634, synthetic_ucie

pytestmark = pytest.mark.conformance

#: Documented DES-vs-fluid tolerance on the victim's share of its demand.
DES_FLUID_SHARE_TOL = 0.35

#: Backend-agreement tolerance (GB/s) between the fluid solvers.
FLUID_BACKEND_TOL = 1e-9

_PRESETS = {
    "7302": epyc_7302,
    "9634": epyc_9634,
    "synthetic": synthetic_ucie,
}


@pytest.fixture(scope="module", params=sorted(_PRESETS))
def preset(request):
    """Every platform preset, including the synthetic UCIe design."""
    return _PRESETS[request.param]()


# --------------------------------------------------- fluid backend agreement


def _scenario_shared_bottleneck():
    """Many flows over one bottleneck plus private feeders."""
    shared = Channel("shared", 40.0)
    flows = []
    for index in range(16):
        feeder = Channel(f"feeder{index}", 10.0)
        flows.append(
            FluidFlow(f"f{index}", 4.0 + index * 0.5, weight=1 + index % 3)
            .add(feeder)
            .add(shared, weight=1.0 + (index % 2) * 0.0625)
        )
    return flows


def _scenario_chain():
    """A chain of channels with flows entering and leaving along it."""
    chain = [Channel(f"hop{i}", 25.0 - i) for i in range(6)]
    flows = []
    for index in range(14):
        flow = FluidFlow(f"c{index}", 3.0 + (index % 5))
        for channel in chain[index % 3 : 3 + index % 4]:
            flow.add(channel)
        if not flow.path:
            flow.add(chain[0])
        flows.append(flow)
    return flows


def _scenario_elastic_mix():
    """Paced and elastic flows sharing endpoints (the Figure 5 shape)."""
    endpoints = [Channel(f"umc{i}", 21.3) for i in range(4)]
    flows = []
    for index in range(12):
        flows.append(
            FluidFlow(
                f"m{index}",
                30.0 if index % 3 == 0 else 8.0,
                elastic=index % 3 == 0,
            ).add(endpoints[index % 4])
        )
    return flows


def _scenario_fault_derated():
    """The shared-bottleneck set with fault-derated capacities.

    Capacities are scaled by a :class:`FaultSchedule`'s worst-case derate
    factors — the same reduction the fluid chaos experiments apply — so
    backend agreement is checked on the capacity sets faults produce.
    """
    from repro.faults.schedule import FaultEvent, FaultSchedule

    schedule = FaultSchedule([
        FaultEvent.derate("shared", 0.0, 1000.0, 0.4),
        FaultEvent.derate("feeder3", 0.0, 1000.0, 0.75),
        FaultEvent.flapping("feeder7", 0.0, 1000.0, period=100.0, factor=0.5),
    ])
    factors = schedule.worst_derates()
    flows = _scenario_shared_bottleneck()
    derated = {}
    for flow in flows:
        for index, (channel, weight) in enumerate(flow.path):
            factor = factors.get(channel.name, 1.0)
            if channel.name not in derated:
                derated[channel.name] = Channel(
                    channel.name, channel.capacity_gbps * factor
                )
            flow.path[index] = (derated[channel.name], weight)
    return flows


_SCENARIOS = {
    "shared-bottleneck": _scenario_shared_bottleneck,
    "chain": _scenario_chain,
    "elastic-mix": _scenario_elastic_mix,
    "fault-derated": _scenario_fault_derated,
}


class TestFluidBackendAgreement:
    @pytest.mark.parametrize("scenario", sorted(_SCENARIOS))
    @pytest.mark.parametrize("policy", list(Policy))
    def test_python_and_numpy_agree(self, scenario, policy):
        reference = solve(
            _SCENARIOS[scenario](), policy=policy, backend="python"
        )
        vectorized = solve(
            _SCENARIOS[scenario](), policy=policy, backend="numpy"
        )
        assert reference.keys() == vectorized.keys()
        for name, value in reference.items():
            assert vectorized[name] == pytest.approx(
                value, abs=FLUID_BACKEND_TOL
            ), f"{scenario}/{policy.value}: flow {name}"

    @pytest.mark.parametrize("backend", ["python", "numpy"])
    def test_invariants_hold_on_both_backends(self, backend):
        flows = _scenario_fault_derated()
        alloc = solve(flows, backend=backend)
        loads: dict = {}
        for flow in flows:
            assert alloc[flow.name] <= flow.demand_gbps + 1e-9
            for channel, weight in flow.path:
                loads.setdefault(channel, 0.0)
                loads[channel] += alloc[flow.name] * weight
        for channel, load in loads.items():
            assert load <= channel.capacity_gbps + 1e-6

    def test_netstack_fluid_arms_backend_independent(self, preset, monkeypatch):
        from repro.fluid.solver import BACKEND_ENV_VAR

        points = {}
        for backend in ("python", "numpy"):
            monkeypatch.setenv(BACKEND_ENV_VAR, backend)
            points[backend] = {
                arm: netstack.run_point(preset, arm, "fluid")
                for arm in netstack.ARMS
            }
        for arm in netstack.ARMS:
            py, np_ = points["python"][arm], points["numpy"][arm]
            assert np_.victim_gbps == pytest.approx(
                py.victim_gbps, abs=FLUID_BACKEND_TOL
            )
            assert np_.hog_gbps == pytest.approx(
                py.hog_gbps, abs=FLUID_BACKEND_TOL
            )


class TestFluidFaultMonotonicity:
    def test_victim_share_never_rises_with_severity(self):
        """Scaling a derate's severity up never helps the derated flow."""
        from repro.faults.schedule import FaultEvent, FaultSchedule

        base = FaultSchedule([
            FaultEvent.derate("shared", 0.0, 1000.0, 0.8),
        ])
        previous = None
        for severity in (0.0, 0.25, 0.5, 0.75, 1.0):
            factors = base.scaled(severity).worst_derates()
            factor = factors.get("shared", 1.0)
            shared = Channel("shared", 40.0 * factor)
            flows = [
                FluidFlow("victim", 24.0).add(shared),
                FluidFlow("hog", 64.0).add(shared),
            ]
            share = solve(flows)["victim"] / 24.0
            if previous is not None:
                assert share <= previous + 1e-12
            previous = share


# --------------------------------------------------------- DES vs fluid


class TestDesVsFluid:
    @pytest.fixture(scope="class")
    def points(self, request):
        cache = {}

        def compute(platform):
            key = platform.name
            if key not in cache:
                cache[key] = {
                    (arm, backend): netstack.run_point(
                        platform, arm, backend, transactions_per_core=150
                    )
                    for arm in netstack.ARMS
                    for backend in netstack.BACKENDS
                }
            return cache[key]

        return compute

    @pytest.mark.parametrize("arm", netstack.ARMS)
    def test_victim_share_within_tolerance(self, preset, points, arm):
        cell = points(preset)
        fluid = cell[(arm, "fluid")]
        des = cell[(arm, "des")]
        assert abs(fluid.victim_share - des.victim_share) <= DES_FLUID_SHARE_TOL
        assert 0.0 < des.victim_share <= 1.0 + 1e-9
        assert 0.0 < fluid.victim_share <= 1.0 + 1e-9

    @pytest.mark.parametrize("backend", netstack.BACKENDS)
    def test_arms_improve_victim_monotonically(self, preset, points, backend):
        cell = points(preset)
        shares = [cell[(arm, backend)].victim_share for arm in netstack.ARMS]
        assert shares == sorted(shares)  # off <= credits <= credits+qos

    def test_des_credits_improve_jain_everywhere(self, preset, points):
        cell = points(preset)
        assert (
            cell[("credits", "des")].jain >= cell[("off", "des")].jain
        )


# ------------------------------------------------- traced == untraced


class TestTracedBitIdentity:
    def test_netstack_point_identical_on_every_preset(self, preset):
        traced, __, __p = netstack.run_point_traced(
            preset, "credits", transactions_per_core=40
        )
        untraced = netstack.run_point(
            preset, "credits", "des", transactions_per_core=40
        )
        assert traced == untraced

    def test_pointer_chase_identical_on_every_preset(self, preset):
        from repro.core.microbench import MicroBench
        from repro.trace import Tracer

        base = MicroBench(preset, seed=2).pointer_chase(
            64 << 20, iterations=120
        )
        traced = MicroBench(preset, seed=2).pointer_chase(
            64 << 20, iterations=120, tracer=Tracer()
        )
        assert base == traced

    def test_null_fault_schedule_stays_identical(self, p7302):
        """The fault-schedule dimension: a null schedule changes nothing."""
        from repro.core.microbench import MicroBench
        from repro.faults.schedule import FaultSchedule
        from repro.transport.message import OpKind

        healthy = MicroBench(p7302, seed=0).loaded_latency(
            core_ids=[0, 1], op=OpKind.READ,
            offered_gbps=8.0, transactions_per_core=120,
        )
        null = MicroBench(p7302, seed=0).loaded_latency(
            core_ids=[0, 1], op=OpKind.READ,
            offered_gbps=8.0, transactions_per_core=120,
            fault_schedule=FaultSchedule([]),
        )
        assert healthy.stats == null.stats


# --------------------------------------------------------- recovery agreement

#: Acceptance criterion of the recovery loop: after a permanent cross-die
#: link failure, the victim's post-failure steady-state throughput must
#: return to at least this fraction of pre-failure — on both backends, on
#: every preset.
RECOVERED_FLOOR = 0.8

#: Cross-backend agreement window (ns) on the DEAD detection time: the
#: fluid monitor samples the schedule's capacity factors, the DES waits
#: out real in-service deadlines first, so the DES trails by up to a
#: couple of service timeouts.
DETECT_AGREEMENT_NS = 700.0


class TestRecoveryConformance:
    """Both backends must tell the same collapse-then-recovery story."""

    def test_recovery_restores_the_victim_on_every_preset(self, preset):
        from repro.experiments import chaos

        for backend in ("fluid", "des"):
            collapsed = chaos.run_recovery_point(preset, backend, False)
            recovered = chaos.run_recovery_point(preset, backend, True)
            # Same scenario, same pre-failure throughput.
            assert recovered.pre_gbps == pytest.approx(
                collapsed.pre_gbps, rel=1e-9
            )
            # Without recovery the failure sticks; with it, the victim
            # returns to >= 80% of pre-failure steady state.
            assert collapsed.recovered < RECOVERED_FLOOR, (
                preset.name, backend, collapsed.recovered
            )
            assert recovered.recovered >= RECOVERED_FLOOR, (
                preset.name, backend, recovered.recovered
            )

    def test_detection_times_agree_across_backends(self, preset):
        from repro.experiments import chaos

        fluid = chaos.run_recovery_point(preset, "fluid", True)
        des = chaos.run_recovery_point(preset, "des", True)
        assert fluid.detect_ns == fluid.detect_ns  # not NaN
        assert des.detect_ns == des.detect_ns
        # The fluid verdict (schedule telemetry) leads; the DES (real
        # in-service deadlines) follows within the documented window.
        assert fluid.detect_ns <= des.detect_ns
        assert des.detect_ns - fluid.detect_ns <= DETECT_AGREEMENT_NS

    def test_only_the_des_reclaims_real_credits(self, preset):
        from repro.experiments import chaos

        fluid = chaos.run_recovery_point(preset, "fluid", True)
        des = chaos.run_recovery_point(preset, "des", True)
        assert fluid.reclaimed == 0  # no event loop, no stranded leases
        assert des.reclaimed > 0  # real stranded credits went home
        assert des.retries > 0 and des.failovers > 0
