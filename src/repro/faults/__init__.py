"""Dynamic fault injection for the chiplet fabric.

The paper's four idiosyncrasies (extended paths, heterogeneous bandwidth
domains, inconsistent BDPs, sender-driven partitioning) all sharpen when the
fabric degrades — and real GMI/xGMI links flap and derate over time rather
than failing once at t=0. This package models that regime:

* :mod:`repro.faults.schedule` — :class:`FaultSchedule`, a declarative,
  severity-scalable timeline of fault events (transient derates, permanent
  link failures, deterministic flapping, device stalls);
* :mod:`repro.faults.inject` — the DES backend: interposer processes that
  re-scale link service rates (and hold device lanes) mid-run inside a live
  :class:`~repro.sim.engine.Environment`.

The fluid backend needs no interposer: a schedule compiles directly to
:class:`~repro.core.fabric.FabricModel` derates (steady state) or to
per-channel capacity factors for
:class:`~repro.fluid.timeseries.FluidSimulator` (time-varying).
"""

from repro.faults.schedule import FaultEvent, FaultKind, FaultSchedule
from repro.faults.inject import install

__all__ = ["FaultEvent", "FaultKind", "FaultSchedule", "install"]
