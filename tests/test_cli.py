"""Tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_platform_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["table3", "--platform", "xeon"])

    def test_known_commands_parse(self):
        parser = build_parser()
        for command in (
            "table1", "table2", "table3", "fig3", "fig4", "fig5", "fig6",
            "suite", "os-scaling", "accel", "chaos", "devtree", "io-relay",
            "collective", "noc-routing", "core-to-core", "patterns",
            "netstack",
        ):
            args = parser.parse_args([command])
            assert args.command == command


class TestCommands:
    def test_table1(self, capsys):
        assert main(["table1"]) == 0
        out = capsys.readouterr().out
        assert "Zen 2" in out and "Zen 4" in out

    def test_table3_single_platform(self, capsys):
        assert main(["table3", "--platform", "7302"]) == 0
        out = capsys.readouterr().out
        assert "From CPU" in out
        assert "EPYC 9634" not in out

    def test_table2_reduced(self, capsys):
        assert main([
            "table2", "--platform", "7302", "--iterations", "300"
        ]) == 0
        out = capsys.readouterr().out
        assert "DRAM near" in out

    def test_fig4(self, capsys):
        assert main(["fig4", "--platform", "9634"]) == 0
        out = capsys.readouterr().out
        assert "case3-equal-demands" in out

    def test_fig5_default_platform(self, capsys):
        assert main(["fig5"]) == 0
        out = capsys.readouterr().out
        assert "harvest delay" in out

    def test_fig6(self, capsys):
        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "if-intra-cc" in out

    def test_os_scaling(self, capsys):
        assert main(["os-scaling", "--platform", "7302"]) == 0
        out = capsys.readouterr().out
        assert "multikernel" in out

    def test_devtree(self, capsys):
        assert main(["devtree", "--platform", "synthetic"]) == 0
        out = capsys.readouterr().out
        assert "chiplet-net {" in out

    def test_accel(self, capsys):
        assert main(["accel", "--jobs", "2"]) == 0
        out = capsys.readouterr().out
        assert "unmanaged" in out and "managed" in out

    def test_io_relay(self, capsys):
        assert main(["io-relay", "--platform", "7302"]) == 0
        out = capsys.readouterr().out
        assert "cpu-copy" in out

    def test_collective(self, capsys):
        assert main(["collective", "--platform", "9634"]) == 0
        out = capsys.readouterr().out
        assert "ring beats tree" in out

    def test_noc_routing(self, capsys):
        assert main(["noc-routing", "--platform", "7302"]) == 0
        out = capsys.readouterr().out
        assert "deflections/pkt" in out

    def test_core_to_core(self, capsys):
        assert main(["core-to-core", "--platform", "7302"]) == 0
        out = capsys.readouterr().out
        assert "handoff latency" in out

    def test_suite_synthetic(self, capsys):
        assert main(["suite", "--platform", "synthetic"]) == 0
        out = capsys.readouterr().out
        assert "practical guidelines" in out


class TestChaos:
    def test_sweep_renders_degradation_table(self, capsys):
        assert main(["chaos", "--platform", "7302"]) == 0
        out = capsys.readouterr().out
        assert "graceful degradation" in out
        assert "0.00" in out and "1.00" in out

    def test_platform_alias_accepted(self, capsys):
        assert main(["chaos", "--platform", "epyc7302", "--severity", "0"]) == 0
        out = capsys.readouterr().out
        assert "EPYC 7302" in out

    def test_severity_zero_byte_identical_to_healthy_baseline(self, capsys):
        # The acceptance criterion: a severity-0 chaos run produces exactly
        # the indicators a run with no fault machinery would.
        from repro.core.fabric import FabricModel
        from repro.core.flows import Scope, StreamSpec
        from repro.core.microbench import MicroBench
        from repro.experiments.chaos import _VICTIM_DEMAND_GBPS
        from repro.platform.presets import epyc_7302
        from repro.transport.message import OpKind

        assert main(["chaos", "--platform", "epyc7302", "--severity", "0"]) == 0
        row = [
            line for line in capsys.readouterr().out.splitlines()
            if line.startswith("0.00")
        ][0]
        cells = [cell.strip() for cell in row.split("|")]

        platform = epyc_7302()
        fabric = FabricModel(platform)
        cpu_cores = StreamSpec.cores_for_scope(platform, Scope.CPU)
        scan = StreamSpec("scan", OpKind.READ, cpu_cores)
        victim_cores = tuple(c.core_id for c in platform.cores_of_ccd(0))
        victim = StreamSpec(
            "victim", OpKind.READ, victim_cores,
            demand_gbps=_VICTIM_DEMAND_GBPS,
        )
        hog_cores = tuple(c.core_id for c in platform.cores_of_ccd(1))
        hog = StreamSpec("hog", OpKind.READ, hog_cores)
        result = MicroBench(platform, seed=0).loaded_latency(
            list(victim_cores), OpKind.READ, offered_gbps=None,
            transactions_per_core=200,
        )
        expected = [
            "0.00",
            f"{fabric.achieved_gbps([scan])['scan']:.1f}",
            fabric.binding_channel([scan]) or "-",
            f"{fabric.achieved_gbps([victim, hog])['victim'] / _VICTIM_DEMAND_GBPS:.3f}",
            f"{result.stats.mean:.1f}",
            f"{result.stats.p999:.1f}",
        ]
        assert cells == expected


class TestNetstack:
    def test_single_arm_renders_both_backends(self, capsys):
        assert main([
            "netstack", "--platform", "7302", "--arm", "off",
            "--transactions", "60",
        ]) == 0
        out = capsys.readouterr().out
        assert "Netstack" in out
        assert "fluid" in out and "des" in out

    def test_unknown_arm_rejected(self):
        with pytest.raises(SystemExit):
            main(["netstack", "--arm", "turbo"])


class TestCsvExport:
    def test_fig3_csv(self, capsys, tmp_path):
        out_dir = tmp_path / "artifacts"
        assert main([
            "fig3", "--platform", "7302", "--transactions", "150",
            "--csv", str(out_dir),
        ]) == 0
        files = sorted(p.name for p in out_dir.glob("*.csv"))
        assert "fig3_a_read.csv" in files
        assert "fig3_d_nt-write.csv" in files
        header = (out_dir / "fig3_a_read.csv").read_text().splitlines()[0]
        assert header == "offered_gbps,achieved_gbps,avg_ns,p999_ns"

    def test_patterns(self, capsys):
        assert main(["patterns", "--platform", "7302"]) == 0
        out = capsys.readouterr().out
        assert "pointer-chase" in out


class TestCacheCLI:
    @pytest.fixture(autouse=True)
    def _isolated_cache(self, tmp_path, monkeypatch):
        # Point the default store into the sandbox and restore the
        # unset process default afterwards.
        import repro.cache as cache_module

        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "store"))
        yield tmp_path / "store"
        cache_module._default = cache_module._UNSET

    def test_stats_on_empty_store(self, capsys):
        assert main(["cache", "stats"]) == 0
        out = capsys.readouterr().out
        assert "entries: 0" in out
        assert "store" in out

    def test_clear_reports_count(self, capsys, tmp_path):
        from repro.cache import ResultCache

        store = tmp_path / "explicit"
        cache = ResultCache(store)
        cache.put("ab" + "0" * 62, {"answer": 42})
        assert main(["cache", "clear", "--dir", str(store)]) == 0
        out = capsys.readouterr().out
        assert "cleared 1 cached result(s)" in out
        assert cache.stats().entries == 0

    def test_no_cache_flag_accepted_everywhere(self):
        parser = build_parser()
        for command in ("fig5", "fig6", "netstack", "chaos", "table2"):
            args = parser.parse_args([command, "--no-cache"])
            assert args.no_cache

    def test_cached_rerun_is_byte_identical(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "1")
        argv = [
            "netstack", "--platform", "7302", "--arm", "off",
            "--transactions", "40",
        ]
        assert main(argv) == 0
        cold = capsys.readouterr().out
        assert main(argv) == 0
        warm = capsys.readouterr().out
        assert warm == cold
        assert main(argv + ["--no-cache"]) == 0
        uncached = capsys.readouterr().out
        assert uncached == cold

    def test_cached_rerun_populates_store(self, capsys, monkeypatch, _isolated_cache):
        from repro.cache import ResultCache

        monkeypatch.setenv("REPRO_CACHE", "1")
        argv = [
            "chaos", "--platform", "7302", "--severity", "0",
            "--transactions", "30",
        ]
        assert main(argv) == 0
        capsys.readouterr()
        store = ResultCache(_isolated_cache)
        populated = store.stats().entries
        assert populated > 0
        assert main(argv) == 0
        capsys.readouterr()
        assert store.stats().entries == populated  # pure hits, no new work


class TestBackendValidation:
    def test_unknown_fluid_backend_rejected_even_with_warm_cache(self, monkeypatch):
        # A warm cache can satisfy a whole run without touching the
        # solver; the typo'd env var must still fail fast.
        monkeypatch.setenv("REPRO_FLUID_BACKEND", "cuda")
        with pytest.raises(SystemExit) as excinfo:
            main(["table3"])
        assert excinfo.value.code == 2

    def test_backend_aliases_accepted(self, capsys, monkeypatch):
        for raw in ("numpy", "vectorized", "python", "reference", "auto"):
            monkeypatch.setenv("REPRO_FLUID_BACKEND", raw)
            assert main(["table3"]) == 0
            assert "Table 3" in capsys.readouterr().out


class TestServiceCLI:
    @pytest.fixture(autouse=True)
    def _reset_default_cache(self, monkeypatch):
        # submit/serve paths install a process default; restore the
        # "never explicitly set" state afterwards.
        import repro.cache as cache_module

        monkeypatch.setenv("REPRO_CACHE", "0")
        yield
        cache_module._default = cache_module._UNSET

    def test_service_commands_parse(self):
        parser = build_parser()
        assert parser.parse_args(["serve", "--max-depth", "4"]).command == "serve"
        args = parser.parse_args([
            "submit", "netstack", "--arm", "off", "--priority", "2",
            "--local", "--transactions", "40",
        ])
        assert args.command == "submit"
        assert args.kind == "netstack" and args.priority == 2 and args.local
        assert parser.parse_args(["jobs"]).command == "jobs"

    def test_uniform_flags_on_service_and_cache_commands(self):
        # --no-cache and --jobs are accepted uniformly, including on the
        # maintenance commands that run no cells.
        parser = build_parser()
        for argv in (
            ["cache", "stats"],
            ["serve"],
            ["submit", "netstack"],
            ["jobs"],
        ):
            args = parser.parse_args(argv + ["--no-cache", "--jobs", "2"])
            assert args.no_cache and args.jobs == 2

    def test_submit_unknown_kind_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["submit", "fig3"])

    def test_submit_local_matches_direct_command(self, capsys):
        # `repro submit --local` runs the identical normalized spec through
        # the identical experiment code: stdout is byte-identical to the
        # first-class subcommand.
        direct = [
            "netstack", "--platform", "7302", "--arm", "off",
            "--transactions", "40",
        ]
        assert main(direct) == 0
        direct_out = capsys.readouterr().out
        assert main([
            "submit", "netstack", "--platform", "7302", "--arm", "off",
            "--transactions", "40", "--local",
        ]) == 0
        captured = capsys.readouterr()
        assert captured.out == direct_out
        assert "local" in captured.err

    def test_jobs_without_server_fails_cleanly(self, capsys, tmp_path):
        missing = str(tmp_path / "no-service.sock")
        assert main(["jobs", "--socket", missing]) == 1
        err = capsys.readouterr().err
        assert "no service listening" in err


class TestEnvValidation:
    def test_bad_jobs_env_is_a_usage_error(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_JOBS", "banana")
        with pytest.raises(SystemExit) as excinfo:
            main(["table1"])
        assert excinfo.value.code == 2
        assert "$REPRO_JOBS" in capsys.readouterr().err

    def test_bad_shards_env_is_a_usage_error(self, monkeypatch, capsys):
        for raw in ("soup", "0", "-3"):
            monkeypatch.setenv("REPRO_DES_SHARDS", raw)
            with pytest.raises(SystemExit) as excinfo:
                main(["table1"])
            assert excinfo.value.code == 2
            assert "$REPRO_DES_SHARDS" in capsys.readouterr().err

    def test_valid_env_values_accepted(self, monkeypatch, capsys):
        monkeypatch.setenv("REPRO_JOBS", "auto")
        monkeypatch.setenv("REPRO_DES_SHARDS", "2")
        assert main(["table1"]) == 0
        assert "Zen 2" in capsys.readouterr().out
