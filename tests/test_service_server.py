"""End-to-end service tests: a real daemon on a real Unix socket.

Every test runs a :class:`repro.service.server.ServiceThread` against a
short socket path under ``/tmp`` (AF_UNIX paths are limited to ~107
bytes; pytest's tmp_path is routinely longer than that).
"""

from __future__ import annotations

import os
import shutil
import tempfile
import time

import pytest

from repro.cache import ResultCache
from repro.errors import ConfigurationError, ServiceError
from repro.service import ServiceClient, ServiceThread, server_available, submit_or_local
from repro.service.registry import normalize_spec, run_local, render_results


@pytest.fixture()
def service_dir():
    path = tempfile.mkdtemp(prefix="reprosvc-", dir="/tmp")
    yield path
    shutil.rmtree(path, ignore_errors=True)


def _sock(service_dir):
    return os.path.join(service_dir, "s.sock")


def _spec(arms=("off",), transactions=40, **overrides):
    spec = {
        "kind": "netstack",
        "platform": "synthetic",
        "params": {
            "arms": list(arms),
            "transactions_per_core": transactions,
        },
    }
    spec.update(overrides)
    return spec


def _cancel_quietly(client, job_id):
    """Best-effort cleanup cancel: the job may already have finished."""
    try:
        client.cancel(job_id)
    except ServiceError:
        pass


def _next_event(client):
    """Next frame for this connection, draining the client's buffer first."""
    if client._pending:
        return client._pending.pop(0)
    return client._raise_on_error(client._recv())


def _service(service_dir, **kwargs):
    kwargs.setdefault("cache", ResultCache(os.path.join(service_dir, "cache")))
    kwargs.setdefault(
        "artifacts_dir", os.path.join(service_dir, "artifacts")
    )
    return ServiceThread(_sock(service_dir), **kwargs)


class TestEndToEnd:
    def test_served_run_is_byte_identical_to_local(self, service_dir):
        spec = _spec()
        local = submit_or_local(spec, prefer_local=True, cache=None)
        assert not local.served
        with _service(service_dir):
            with ServiceClient(_sock(service_dir)) as client:
                served = client.submit(spec)
        assert served.served
        assert served.status == "done"
        assert served.render() == local.render()
        # Values decode to the real dataclasses, not lossy copies.
        assert [r.value.victim_gbps for r in served.results] == [
            r.value.victim_gbps for r in local.results
        ]

    def test_resubmission_is_fully_cache_hit(self, service_dir):
        spec = _spec()
        with _service(service_dir):
            with ServiceClient(_sock(service_dir)) as client:
                cold = client.submit(spec)
                warm = client.submit(spec)
        assert cold.hits == 0
        assert cold.precached == 0
        assert warm.precached == len(warm.results)
        assert all(result.cached for result in warm.results)
        assert warm.render() == cold.render()

    def test_warm_cache_survives_server_restart(self, service_dir):
        spec = _spec()
        with _service(service_dir):
            with ServiceClient(_sock(service_dir)) as client:
                first = client.submit(spec)
        with _service(service_dir):
            with ServiceClient(_sock(service_dir)) as client:
                second = client.submit(spec)
        assert all(result.cached for result in second.results)
        assert second.render() == first.render()

    def test_determinism_across_priorities(self, service_dir):
        spec = _spec()
        with _service(service_dir, cache=None):
            with ServiceClient(_sock(service_dir)) as client:
                low = client.submit(spec, priority=0)
                high = client.submit(spec, priority=9)
        assert high.render() == low.render()

    def test_submission_order_restored_from_arrival_order(self, service_dir):
        # Two arms × two backends: events arrive in completion order, but
        # the outcome is reassembled by index — matching run_local exactly.
        spec = _spec(arms=("off", "credits"))
        with _service(service_dir):
            with ServiceClient(_sock(service_dir)) as client:
                served = client.submit(spec)
        assert [result.index for result in served.results] == [0, 1, 2, 3]
        local = run_local(normalize_spec(spec), cache=None)
        assert render_results(normalize_spec(spec), served.results) == \
            render_results(normalize_spec(spec), local)


class TestOps:
    def test_ping_and_availability(self, service_dir):
        assert not server_available(_sock(service_dir))
        with _service(service_dir):
            assert server_available(_sock(service_dir))
            with ServiceClient(_sock(service_dir)) as client:
                assert client.ping()
                assert client.server_info["kinds"] == [
                    "netstack", "chaos", "trace", "kvstore", "explore"
                ]
        assert not server_available(_sock(service_dir))

    def test_jobs_listing_records_finished_jobs(self, service_dir):
        with _service(service_dir):
            with ServiceClient(_sock(service_dir), client="me") as client:
                client.submit(_spec())
                listing = client.jobs()
        records = listing["records"]
        assert len(records) == 1
        assert records[0]["client"] == "me"
        assert records[0]["status"] == "done"
        assert records[0]["cells"] == 2
        assert listing["running"] is None
        assert listing["queued"] == []

    def test_bad_spec_rejected_server_side(self, service_dir):
        with _service(service_dir):
            with ServiceClient(_sock(service_dir)) as client:
                client._send({"op": "submit", "spec": {"kind": "nope"}})
                with pytest.raises(ServiceError) as excinfo:
                    client._raise_on_error(client._recv())
        assert excinfo.value.code == "bad-request"

    def test_bad_spec_rejected_client_side_too(self, service_dir):
        with _service(service_dir):
            with ServiceClient(_sock(service_dir)) as client:
                with pytest.raises(ConfigurationError):
                    client.submit({"kind": "nope"})

    def test_unknown_op_is_protocol_error(self, service_dir):
        with _service(service_dir):
            with ServiceClient(_sock(service_dir)) as client:
                client._send({"op": "frobnicate"})
                frame = client._recv()
        assert frame["event"] == "error"
        assert frame["code"] == "protocol"

    def test_cancel_unknown_job_is_structured(self, service_dir):
        with _service(service_dir):
            with ServiceClient(_sock(service_dir)) as client:
                with pytest.raises(ServiceError) as excinfo:
                    client.cancel("job-999")
        assert excinfo.value.code == "unknown-job"

    def test_stale_socket_is_reclaimed(self, service_dir):
        with open(_sock(service_dir), "w", encoding="utf-8") as handle:
            handle.write("stale")
        with _service(service_dir):
            assert server_available(_sock(service_dir))

    def test_second_server_refuses_live_socket(self, service_dir):
        with _service(service_dir):
            with pytest.raises(ServiceError) as excinfo:
                _service(service_dir).start()
        assert excinfo.value.code == "already-running"


class TestBackpressure:
    def test_queue_full_rejects_with_retry_after(self, service_dir):
        # Depth 1: one slow job runs, one waits, the third is rejected at
        # the door with a structured retry-after — and every *admitted*
        # job still completes (nothing is silently dropped).
        slow = _spec(arms=("off", "credits", "credits+qos"), transactions=800)
        quick = _spec()
        with _service(service_dir, max_depth=1, cache=None):
            running = ServiceClient(_sock(service_dir), client="hog").connect()
            try:
                running._send({"op": "submit", "spec": normalize_spec(slow),
                               "priority": 0})
                accepted = running._raise_on_error(running._recv())
                assert accepted["event"] == "accepted"
                # Give the dispatcher a moment to take the slow job off
                # the queue; the next submission then occupies the depth.
                deadline = time.monotonic() + 10
                with ServiceClient(_sock(service_dir), client="b") as other:
                    while time.monotonic() < deadline:
                        if other.jobs()["running"] == accepted["job"]:
                            break
                        time.sleep(0.05)
                    else:
                        pytest.fail("slow job never started running")
                    other._send({
                        "op": "submit", "spec": normalize_spec(quick),
                        "priority": 0,
                    })
                    queued = other._raise_on_error(other._recv())
                    assert queued["event"] == "accepted"
                    with pytest.raises(ServiceError) as excinfo:
                        with ServiceClient(
                            _sock(service_dir), client="c"
                        ) as third:
                            third.submit(quick)
                    assert excinfo.value.code == "queue-full"
                    assert excinfo.value.retry_after_s > 0
                    # The admitted queued job still completes in full.
                    while True:
                        frame = _next_event(other)
                        if frame.get("event") == "done" and \
                                frame.get("job") == queued["job"]:
                            assert frame["status"] == "done"
                            assert frame["completed"] == 2
                            break
            finally:
                _cancel_quietly(running, accepted["job"])
                running.close()

    def test_rejected_job_recorded(self, service_dir):
        slow = _spec(arms=("off", "credits", "credits+qos"), transactions=800)
        with _service(service_dir, max_depth=1, cache=None):
            client = ServiceClient(_sock(service_dir)).connect()
            try:
                client._send({"op": "submit", "spec": normalize_spec(slow),
                              "priority": 0})
                accepted = client._raise_on_error(client._recv())
                deadline = time.monotonic() + 10
                with ServiceClient(_sock(service_dir)) as other:
                    while time.monotonic() < deadline:
                        if other.jobs()["running"] == accepted["job"]:
                            break
                        time.sleep(0.05)
                    other._send({"op": "submit",
                                 "spec": normalize_spec(_spec()),
                                 "priority": 0})
                    other._raise_on_error(other._recv())  # fills depth 1
                    with pytest.raises(ServiceError):
                        with ServiceClient(_sock(service_dir)) as third:
                            third.submit(_spec(transactions=41))
                    statuses = {
                        row["job"]: row["status"]
                        for row in other.jobs()["records"]
                    }
                assert "rejected" in statuses.values()
            finally:
                _cancel_quietly(client, accepted["job"])
                client.close()


class TestCancellation:
    def test_cancel_queued_job(self, service_dir):
        slow = _spec(arms=("off", "credits", "credits+qos"), transactions=800)
        with _service(service_dir, max_depth=4, cache=None):
            client = ServiceClient(_sock(service_dir)).connect()
            try:
                # Same client, same priority: FIFO guarantees the slow
                # job dispatches first, so cancelling the second job
                # within milliseconds always catches it still queued.
                client._send({"op": "submit", "spec": normalize_spec(slow),
                              "priority": 0})
                slow_accepted = client._raise_on_error(client._recv())
                client._send({"op": "submit", "spec": normalize_spec(_spec()),
                              "priority": 0})
                queued = client._await_event("accepted")
                cancelled = client.cancel(queued["job"])
                assert cancelled["where"] == "queue"
                # The subscriber gets a terminal done event for the
                # cancelled job; nothing of it ever ran.
                while True:
                    frame = _next_event(client)
                    if frame.get("event") == "done" and \
                            frame.get("job") == queued["job"]:
                        assert frame["status"] == "cancelled"
                        assert frame["completed"] == 0
                        break
            finally:
                _cancel_quietly(client, slow_accepted["job"])
                client.close()

    def test_cancel_running_job_reports_cancelled_cells(self, service_dir):
        slow = _spec(arms=("off", "credits", "credits+qos"), transactions=800)
        with _service(service_dir, max_depth=4, cache=None):
            client = ServiceClient(_sock(service_dir)).connect()
            try:
                client._send({"op": "submit", "spec": normalize_spec(slow),
                              "priority": 0})
                accepted = client._raise_on_error(client._recv())
                deadline = time.monotonic() + 10
                with ServiceClient(_sock(service_dir)) as observer:
                    while time.monotonic() < deadline:
                        if observer.jobs()["running"] == accepted["job"]:
                            break
                        time.sleep(0.05)
                cancelled = client.cancel(accepted["job"])
                assert cancelled["where"] == "running"
                statuses = {}
                while True:
                    frame = _next_event(client)
                    if frame.get("job") != accepted["job"]:
                        continue
                    if frame.get("event") == "cell":
                        statuses[frame["index"]] = frame["status"]
                    elif frame.get("event") == "done":
                        done = frame
                        break
                # Every cell is accounted for: finished or cancelled,
                # never lost.
                assert set(statuses) == set(range(6))
                assert done["status"] == "cancelled"
                assert "cancelled" in statuses.values()
            finally:
                client.close()


class TestTraceArtifacts:
    def test_trace_job_exports_content_keyed_artifacts(self, service_dir):
        spec = {
            "kind": "trace",
            "platform": "synthetic",
            "params": {"cell": "netstack", "samples": 10},
        }
        with _service(service_dir):
            with ServiceClient(_sock(service_dir)) as client:
                first = client.submit(spec)
                second = client.submit(spec)
        assert first.status == "done"
        assert len(first.trace_paths) == len(first.results) == 3
        for path in first.trace_paths.values():
            assert os.path.isfile(path)
            assert path.endswith(".json")
        # Same content key, same artifact: the resubmission reuses the
        # exact same files.
        assert second.trace_paths == first.trace_paths
        # The streamed values round-trip well enough to re-render the
        # full breakdown locally, identically to an in-process run.
        local = submit_or_local(spec, prefer_local=True, cache=None)
        assert first.render() == local.render()
