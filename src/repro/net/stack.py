"""The networking-stack configuration and its fluid-backend realization.

:class:`NetStackConfig` is the one switchboard both backends read:

* ``credits`` — receiver-driven credit control replaces the hardware's
  sender-driven token grab. Fluid mode: the demand-proportional FIFO split
  becomes max-min progressive filling (the fluid limit of per-flow receiver
  crediting) plus a per-flow window/RTT rate cap. DES mode:
  :func:`repro.net.inject.install` interposes per-(endpoint, flow) credit
  pools on the execute path.
* ``qos`` — service classes skew both realizations: class weights drive
  :attr:`~repro.fluid.solver.Policy.WEIGHTED` filling, class credit scales
  skew the receiver's credit split.
* ``multipath`` — endpoint sets come from live telemetry
  (:class:`repro.net.multipath.MultipathSelector`) instead of the static
  BIOS interleave.

Everything defaults to off, and a disabled stack routes through the exact
code paths the reproduction already uses — Figures 4–6 stay bit-identical.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.core.fabric import FabricModel
from repro.core.flows import StreamSpec
from repro.errors import ConfigurationError
from repro.fluid.solver import Policy, solve
from repro.net.credits import CreditConfig, credit_rate_gbps, credit_share
from repro.net.qos import (
    CLASS_SPECS,
    QosClass,
    class_credit_scales,
    class_weights,
)

__all__ = ["NetStackConfig", "fluid_allocation"]


@dataclass(frozen=True)
class NetStackConfig:
    """Which stack features are on, and their tunables."""

    credits: bool = False
    qos: bool = False
    multipath: bool = False
    credit_config: CreditConfig = field(default_factory=CreditConfig)
    #: Flow name → service class (consulted only when ``qos`` is on).
    classes: Dict[str, QosClass] = field(default_factory=dict)

    def __post_init__(self) -> None:
        if self.qos and not self.credits:
            raise ConfigurationError(
                "QoS classes ride on the credit machinery; enable credits too"
            )

    @property
    def enabled(self) -> bool:
        return self.credits or self.qos or self.multipath

    @property
    def label(self) -> str:
        """Short human-readable arm name ("off", "credits", "credits+qos")."""
        if not self.enabled:
            return "off"
        parts = []
        if self.credits:
            parts.append("credits")
        if self.qos:
            parts.append("qos")
        if self.multipath:
            parts.append("multipath")
        return "+".join(parts)

    # --------------------------------------------------------------- presets

    @classmethod
    def off(cls) -> "NetStackConfig":
        """The hardware as-is (sender-driven partitioning)."""
        return cls()

    @classmethod
    def with_credits(
        cls, credit_config: Optional[CreditConfig] = None
    ) -> "NetStackConfig":
        """Receiver-driven credits, one class for everyone."""
        return cls(
            credits=True,
            credit_config=credit_config or CreditConfig(),
        )

    @classmethod
    def with_qos(
        cls,
        classes: Dict[str, QosClass],
        credit_config: Optional[CreditConfig] = None,
    ) -> "NetStackConfig":
        """Credits plus service classes."""
        return cls(
            credits=True,
            qos=True,
            credit_config=credit_config or CreditConfig(),
            classes=dict(classes),
        )

    # ------------------------------------------------------------ derivations

    def fluid_policy(self) -> Policy:
        """The allocation discipline this configuration induces.

        Credits always compile to WEIGHTED progressive filling: receiver
        crediting is fair *per stream*, so a stream's share weight is spread
        over its per-CCX fluid flows (a stream spanning two chiplets must
        not count double). With equal class weights this degenerates to
        per-stream max-min.
        """
        if self.credits:
            return Policy.WEIGHTED
        return Policy.DEMAND_PROPORTIONAL

    def weight_of(self, flow: str) -> float:
        """WEIGHTED-policy share weight of one flow."""
        if not self.qos:
            return 1.0
        cls = self.classes.get(flow)
        return CLASS_SPECS[cls].weight if cls is not None else 1.0

    def credit_scales(self) -> Dict[str, float]:
        """Receiver credit-split scales per flow (empty without QoS)."""
        if not self.qos:
            return {}
        return class_credit_scales(self.classes)

    def class_weights(self) -> Dict[str, float]:
        """WEIGHTED-policy weights per flow (empty without QoS)."""
        if not self.qos:
            return {}
        return class_weights(self.classes)


def _endpoint_names(spec: StreamSpec, targets: Sequence[int]) -> List[str]:
    prefix = "umc" if spec.target == "dram" else "cxldev"
    return [f"{prefix}{target}" for target in targets]


def fluid_allocation(
    fabric: FabricModel,
    specs: Sequence[StreamSpec],
    config: NetStackConfig,
    umc_ids: Optional[Sequence[int]] = None,
    backend: Optional[str] = None,
) -> Dict[str, float]:
    """Steady-state grants under the stack; {stream name: achieved GB/s}.

    Disabled stack → exactly :meth:`FabricModel.achieved_gbps` under the
    hardware's demand-proportional policy (same call, same numbers). With
    credits on, each stream is additionally capped at the aggregate
    window/RTT rate its credit shares sustain across its endpoints, and the
    channels are shared by (weighted) progressive filling — the fluid limit
    of receiver-driven crediting. ``backend`` forwards to
    :func:`repro.fluid.solver.solve` (default: the ``REPRO_FLUID_BACKEND``
    environment switch).
    """
    if not config.enabled:
        return fabric.achieved_gbps(
            specs, policy=Policy.DEMAND_PROPORTIONAL, umc_ids=umc_ids,
            backend=backend,
        )
    platform = fabric.platform
    names = [spec.name for spec in specs]
    scales = config.credit_scales()
    flows = []
    owners: List[Tuple[str, str]] = []
    for spec in specs:
        cap: Optional[float] = None
        if config.credits:
            targets = (
                list(umc_ids) if umc_ids and spec.target == "dram"
                else (
                    fabric.default_umc_ids(spec)
                    if spec.target == "dram"
                    else sorted(fabric.platform.cxl_devices)
                )
            )
            cap = 0.0
            for endpoint in _endpoint_names(spec, targets):
                share = credit_share(
                    platform, endpoint, names, spec.name,
                    config=config.credit_config, credit_scales=scales,
                    is_write=spec.op.is_write,
                )
                cap += credit_rate_gbps(
                    platform, endpoint, share, config=config.credit_config
                )
        spec_flows = fabric.flows_for(spec, umc_ids=umc_ids)
        demand_sum = sum(flow.demand_gbps for flow in spec_flows)
        for flow in spec_flows:
            if cap is not None and demand_sum > 0:
                # The stream's credit-rate cap, apportioned over its
                # per-CCX flows in proportion to their offered demands.
                flow.demand_gbps = min(
                    flow.demand_gbps, cap * flow.demand_gbps / demand_sum
                )
            # Per-stream fairness: the stream's class weight is spread over
            # its per-CCX flows so a many-chiplet stream cannot out-fill a
            # small one just by decomposing into more flows.
            flow.weight = config.weight_of(spec.name) / len(spec_flows)
            flows.append(flow)
            owners.append((flow.name, spec.name))
    allocation = solve(flows, config.fluid_policy(), backend=backend)
    result = {spec.name: 0.0 for spec in specs}
    for flow_name, spec_name in owners:
        result[spec_name] += allocation[flow_name]
    return result
