"""Per-hop latency attribution from a trace recording.

This is the report the paper's Table 2 hints at but end-to-end numbers
cannot give: where each nanosecond of a transaction's latency is spent.
Every transaction span's children are contiguous hop spans (token-pool
waits, queued channel stages, the fixed propagation remainder), so

* summing a transaction's hop durations reproduces its end-to-end latency
  *exactly* (:func:`assert_tiles` checks the boundary floats, which are
  copied, not re-derived);
* aggregating hops by name decomposes a Table 2 row (or a Figure 4–6
  contention run) into its constituent IOD/CCD/xGMI hops, each split into
  calibrated unloaded *service* time and *queueing* excess.

The queueing column is ``duration − calibrated unloaded service``; for
media stages (UMC/CXL) the DRAM timing jitter lands in that excess
alongside genuine queueing, which is the honest attribution — the
calibration only pins the mean service time.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.analysis.report import render_table
from repro.errors import MeasurementError, TopologyError
from repro.trace.tracer import TraceRecording

__all__ = [
    "HopStat",
    "hop_stats",
    "txn_latency_stats",
    "assert_tiles",
    "render_breakdown",
    "fill_counters",
]

#: Span categories that count as hops of a transaction.
_HOP_CATS = ("wait", "hop")


@dataclass(frozen=True)
class HopStat:
    """Aggregated attribution for one hop name across a recording."""

    hop: str
    count: int
    bytes_moved: int
    total_ns: float
    service_ns: float

    @property
    def mean_ns(self) -> float:
        return self.total_ns / self.count if self.count else 0.0

    @property
    def queue_ns(self) -> float:
        """Total excess over calibrated unloaded service (queueing+jitter)."""
        return self.total_ns - self.service_ns

    @property
    def mean_queue_ns(self) -> float:
        return self.queue_ns / self.count if self.count else 0.0


def hop_stats(recording: TraceRecording) -> List[HopStat]:
    """Aggregate hop spans by name, in path (first-appearance) order."""
    order: List[str] = []
    count: Dict[str, int] = {}
    moved: Dict[str, int] = {}
    total: Dict[str, float] = {}
    service: Dict[str, float] = {}
    for span in recording.spans:
        if span["cat"] not in _HOP_CATS:
            continue
        name = span["name"]
        if name not in count:
            order.append(name)
            count[name] = 0
            moved[name] = 0
            total[name] = 0.0
            service[name] = 0.0
        args = span.get("args") or {}
        count[name] += 1
        moved[name] += int(args.get("size", 0))
        total[name] += span["dur"]
        service[name] += float(args.get("service_ns", 0.0))
    return [
        HopStat(name, count[name], moved[name], total[name], service[name])
        for name in order
    ]


def txn_latency_stats(
    recording: TraceRecording, skip_per_track: int = 0
) -> Tuple[int, float]:
    """(count, mean end-to-end ns) over transaction spans.

    ``skip_per_track`` drops each track's first N transactions — the
    warmup convention :class:`~repro.core.loadgen.ClosedLoopIssuer` uses,
    so a trace-derived mean can be compared against the issuer's measured
    statistics sample-for-sample.
    """
    seen: Dict[str, int] = {}
    count = 0
    total = 0.0
    for span in recording.spans:
        if span["cat"] != "txn":
            continue
        index = seen.get(span["track"], 0)
        seen[span["track"]] = index + 1
        if index < skip_per_track:
            continue
        count += 1
        total += span["dur"]
    if count == 0:
        return 0, 0.0
    return count, total / count


def assert_tiles(recording: TraceRecording) -> int:
    """Check that every transaction's hops tile it exactly; returns count.

    For each transaction span the child hop spans (linked by ``parent``)
    must be contiguous — each begins exactly where the previous ended —
    and must start at the transaction's begin and finish at its end. All
    comparisons are exact float equality: the boundaries are copies of
    the same simulated-clock reads, so any inequality is a genuine
    instrumentation gap, not rounding.
    """
    parents: Dict[int, Dict] = {}
    children: Dict[int, List[Dict]] = {}
    for span in recording.spans:
        if span["cat"] == "txn":
            parents[span["seq"]] = span
            children.setdefault(span["seq"], [])
        elif span.get("parent") is not None:
            children.setdefault(span["parent"], []).append(span)
    for seq, parent in parents.items():
        hops = sorted(children.get(seq, []), key=lambda span: span["seq"])
        if not hops:
            raise MeasurementError(
                f"transaction span {seq} ({parent['name']}) has no hop spans"
            )
        cursor = parent["ts"]
        for hop in hops:
            if hop["ts"] != cursor:
                raise MeasurementError(
                    f"hop {hop['name']} of txn {seq} begins at t={hop['ts']}"
                    f" but the previous hop ended at t={cursor}"
                )
            cursor = hop["end"]
        if cursor != parent["end"]:
            raise MeasurementError(
                f"txn {seq} ends at t={parent['end']} but its "
                f"last hop ends at t={cursor}"
            )
    return len(parents)


def _fmt_ns(value: float) -> str:
    """Two-decimal nanoseconds; ULP-level negatives print as plain zero."""
    text = f"{value:.2f}"
    return "0.00" if text == "-0.00" else text


def render_breakdown(title: str, recording: TraceRecording) -> str:
    """The per-hop latency-attribution table for one recording."""
    txns = assert_tiles(recording)
    count, mean_ns = txn_latency_stats(recording)
    stats = hop_stats(recording)
    rows = []
    for stat in stats:
        per_txn = stat.total_ns / txns if txns else 0.0
        rows.append([
            stat.hop,
            stat.count,
            _fmt_ns(stat.mean_ns),
            _fmt_ns(stat.service_ns / stat.count if stat.count else 0.0),
            _fmt_ns(stat.mean_queue_ns),
            _fmt_ns(per_txn),
        ])
    table = render_table(
        ["hop", "spans", "mean ns", "service ns", "queue ns", "ns/txn"],
        rows,
        title=title,
    )
    # Hops that are children of transactions tile them exactly, so the
    # per-txn column (minus non-child hops such as credit-gate waits,
    # which happen before a transaction's issue) sums to the end-to-end
    # mean by construction; print both so the report is self-checking.
    attributed = sum(
        stat.total_ns for stat in stats if not stat.hop.startswith("credits/")
    )
    lines = [
        table,
        (
            f"transactions: {count} traced ({txns} spans), end-to-end mean "
            f"{mean_ns:.2f} ns; attributed hop sum {attributed / txns if txns else 0.0:.2f} "
            "ns/txn (tiles exactly)"
        ),
    ]
    if recording.dropped_open:
        lines.append(
            f"warning: {recording.dropped_open} span(s) still open at "
            "snapshot (excluded)"
        )
    return "\n".join(lines)


def fill_counters(registry, platform, recording: TraceRecording) -> int:
    """Replay hop spans into a CounterRegistry; returns transfers recorded.

    Hop span names reuse the platform's link names (``if/ccd0``,
    ``gmi/ccd0``, ``noc``, ``xgmi``, ...), so the same identities flow
    through spans and counters. Hops that are not links (UMC/CXL servers,
    token pools, the fixed remainder) are skipped.
    """
    recorded = 0
    links = {}
    for span in recording.spans:
        if span["cat"] != "hop":
            continue
        args = span.get("args") or {}
        size = args.get("size")
        if not size:
            continue
        name = span["name"]
        if name not in links:
            try:
                links[name] = platform.link(name)
            except (TopologyError, KeyError):
                links[name] = None
        link = links[name]
        if link is None:
            continue
        registry.record(link, int(size), bool(args.get("write", False)))
        recorded += 1
    return recorded
