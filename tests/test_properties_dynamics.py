"""Property-based tests on dynamics: adaptation, schedules, fluid runs."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.fluid.adaptation import FirstOrderAdaptation, SecondOrderAdaptation
from repro.fluid.solver import Channel, FluidFlow
from repro.fluid.timeseries import DemandSchedule, FluidSimulator

positive_rates = st.floats(min_value=0.5, max_value=100.0, allow_nan=False)


class TestFirstOrderProperties:
    @given(
        tau=st.floats(min_value=0.01, max_value=1.0),
        target=positive_rates,
        start=positive_rates,
    )
    @settings(max_examples=100, deadline=None)
    def test_monotone_approach(self, tau, target, start):
        model = FirstOrderAdaptation(tau)
        model.reset(start)
        previous_gap = abs(start - target)
        for __ in range(50):
            value = model.step(target, 0.01)
            gap = abs(value - target)
            assert gap <= previous_gap + 1e-9
            previous_gap = gap

    @given(
        tau_fast=st.floats(min_value=0.01, max_value=0.1),
        tau_slow=st.floats(min_value=0.2, max_value=1.0),
    )
    @settings(max_examples=60, deadline=None)
    def test_smaller_tau_converges_faster(self, tau_fast, tau_slow):
        fast = FirstOrderAdaptation(tau_fast)
        slow = FirstOrderAdaptation(tau_slow)
        fast.reset(0.0)
        slow.reset(0.0)
        for __ in range(20):
            fast_value = fast.step(10.0, 0.01)
            slow_value = slow.step(10.0, 0.01)
        assert fast_value >= slow_value - 1e-9

    @given(tau=st.floats(min_value=0.01, max_value=0.5), target=positive_rates)
    @settings(max_examples=60, deadline=None)
    def test_fixed_point_is_target(self, tau, target):
        model = FirstOrderAdaptation(tau)
        model.reset(target)
        assert model.step(target, 0.05) == pytest.approx(target)


class TestSecondOrderProperties:
    @given(
        omega=st.floats(min_value=5.0, max_value=40.0),
        zeta=st.floats(min_value=0.05, max_value=2.0),
        target=positive_rates,
    )
    @settings(max_examples=60, deadline=None)
    def test_eventually_settles(self, omega, zeta, target):
        model = SecondOrderAdaptation(omega, zeta)
        model.reset(0.0)
        value = 0.0
        for __ in range(20000):
            value = model.step(target, 0.001)
        assert value == pytest.approx(target, rel=0.05, abs=0.1)

    @given(omega=st.floats(min_value=5.0, max_value=40.0))
    @settings(max_examples=40, deadline=None)
    def test_never_negative(self, omega):
        model = SecondOrderAdaptation(omega, zeta=0.05)
        model.reset(50.0)
        values = [model.step(0.5, 0.001) for __ in range(5000)]
        assert min(values) >= 0.0


class TestScheduleProperties:
    deltas = st.lists(
        st.tuples(
            st.floats(min_value=0.0, max_value=5.0),
            st.floats(min_value=0.1, max_value=3.0),
            st.floats(min_value=-5.0, max_value=5.0),
        ).map(lambda t: (t[0], t[0] + t[1], t[2])),
        max_size=4,
    )

    @given(base=positive_rates, deltas=deltas)
    @settings(max_examples=100, deadline=None)
    def test_never_negative(self, base, deltas):
        schedule = DemandSchedule(base, tuple(deltas))
        for t in np.linspace(0, 10, 101):
            assert schedule.at(float(t)) >= 0.0

    @given(base=positive_rates, deltas=deltas)
    @settings(max_examples=100, deadline=None)
    def test_outside_windows_equals_base(self, base, deltas):
        schedule = DemandSchedule(base, tuple(deltas))
        horizon = max((end for __, end, __d in deltas), default=0.0)
        assert schedule.at(horizon + 1.0) == pytest.approx(base)


class TestFluidRunProperties:
    @given(
        capacity=st.floats(min_value=5.0, max_value=50.0),
        demand0=positive_rates,
        demand1=positive_rates,
    )
    @settings(max_examples=40, deadline=None)
    def test_instant_runs_conserve_capacity(self, capacity, demand0, demand1):
        channel = Channel("link", capacity)
        flows = [
            FluidFlow("f0", demand0).add(channel),
            FluidFlow("f1", demand1, elastic=True).add(channel),
        ]
        schedules = {
            "f0": DemandSchedule(demand0),
            "f1": DemandSchedule(demand1),
        }
        sim = FluidSimulator(flows, schedules, dt_s=0.05)
        traces = sim.run(0.5)
        total = (
            traces["f0"].achieved_series().values
            + traces["f1"].achieved_series().values
        )
        assert total.max() <= capacity * (1 + 1e-6)
        for name, demand in (("f0", demand0), ("f1", demand1)):
            assert max(traces[name].achieved_gbps) <= demand * (1 + 1e-9)
