"""Content-addressed on-disk cache for experiment cells.

A cell is a pure function of its arguments (the runner's determinism
contract), so its result can be keyed by *content*: the cache key is a
SHA-256 over a canonical encoding of ``(code fingerprint, engine variant,
cell function, args, kwargs)``. The engine variant
(:func:`engine_variant`) captures the :data:`DES_SHARDS_ENV_VAR` switch,
so serial and sharded runs of the same cell — different documented
approximations — never share an entry.
The code fingerprint hashes every ``repro`` source file,
so any edit to the package invalidates the whole store — a hit can only
ever return what re-running the cell would have produced.

Keys must be stable across processes and machines: :func:`stable_bytes`
encodes values structurally (dataclasses by field order, dicts sorted by
encoded key, sets sorted, floats as IEEE bytes, arrays as dtype+shape+raw
bytes) instead of relying on ``pickle``'s representation or on hash
randomization. Values that cannot be encoded make the cell *uncacheable*
— never an error.

The store is a directory (default ``.repro-cache/``, override with
:data:`CACHE_DIR_ENV_VAR`) of pickle files named by key, fanned out over
256 subdirectories. Writes go through a temp file + :func:`os.replace`, so
concurrent ``--jobs`` workers and parallel sweeps can share one store
without locks: a torn read is impossible, and the worst race is two
processes computing the same value and one overwrite winning.

The CLI enables a process-wide default cache (see
:func:`set_default_cache`); plain library use stays uncached unless the
caller passes a cache to the runner or sets :data:`CACHE_ENV_VAR`.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import os
import pickle
import struct
import tempfile
from pathlib import Path
from typing import Any, Dict, Iterator, Optional, Tuple

__all__ = [
    "CACHE_DIR_ENV_VAR",
    "CACHE_ENV_VAR",
    "DES_SHARDS_ENV_VAR",
    "RECOVERY_ENV_VAR",
    "CacheStats",
    "ResultCache",
    "Uncacheable",
    "cache_enabled_by_env",
    "code_fingerprint",
    "default_cache",
    "engine_variant",
    "recovery_variant",
    "set_default_cache",
    "stable_bytes",
]

#: Truthy/falsy switch for the *default* cache ("0"/"off"/"false"/"no"
#: disable it; anything else, including unset, leaves it available).
CACHE_ENV_VAR = "REPRO_CACHE"

#: Overrides the on-disk store location (default ``.repro-cache/``).
CACHE_DIR_ENV_VAR = "REPRO_CACHE_DIR"

#: Sharded-engine switch (see :mod:`repro.sim.sharded`): when set, DES
#: experiment cells run on the sharded engine with this many shards. Part
#: of every cache key via :func:`engine_variant`.
DES_SHARDS_ENV_VAR = "REPRO_DES_SHARDS"

#: Recovery-layer switch (see :mod:`repro.net.recovery`): when truthy, fault
#: experiments run with the fault-reactive recovery layer enabled. Part of
#: every cache key via :func:`recovery_variant`, so recovery-on and
#: recovery-off cells can never collide in the content-addressed store.
RECOVERY_ENV_VAR = "REPRO_NET_RECOVERY"

_DEFAULT_ROOT = ".repro-cache"

_FALSY = {"0", "off", "false", "no"}


def engine_variant() -> Tuple[str, Any]:
    """The DES engine variant the environment selects, as a key component.

    ``("serial", 1)`` when :data:`DES_SHARDS_ENV_VAR` is unset or empty,
    ``("sharded", N)`` when it names a shard count. A cell computed on one
    engine variant must never satisfy a lookup for another — the sharded
    engine is a documented approximation of the serial one, and its shard
    count changes the partition — so this tuple is folded into every
    cache key. An unparsable value keys on the raw string (a deliberate
    miss, never an exception: the experiment layer owns validation).
    """
    raw = os.environ.get(DES_SHARDS_ENV_VAR, "").strip()
    if not raw:
        return ("serial", 1)
    try:
        return ("sharded", int(raw))
    except ValueError:
        return ("sharded", raw)


def recovery_variant() -> Tuple[str, Any]:
    """The recovery-layer variant the environment selects, as a key component.

    ``("recovery", "off")`` when :data:`RECOVERY_ENV_VAR` is unset or
    falsy, ``("recovery", <raw value>)`` otherwise. Recovery changes what a
    fault experiment measures (detection, reclamation, failover), so its
    cells must never satisfy lookups from the fault-oblivious stack; the
    raw value keys any future tuning knobs encoded in the variable.
    """
    raw = os.environ.get(RECOVERY_ENV_VAR, "").strip()
    if not raw or raw.lower() in _FALSY:
        return ("recovery", "off")
    return ("recovery", raw)


class Uncacheable(Exception):
    """Raised by :func:`stable_bytes` for values with no stable encoding."""


# ------------------------------------------------------------- stable keys


def _encode(value: Any, out: list) -> None:
    """Append a canonical, type-tagged encoding of ``value`` to ``out``.

    Deliberately *not* pickle: pickling is sensitive to memoization layout
    and dict insertion order, and ``hash()`` is randomized per process.
    """
    if value is None:
        out.append(b"N")
    elif isinstance(value, bool):
        out.append(b"T" if value else b"F")
    elif isinstance(value, int):
        text = str(value).encode()
        out.append(b"i%d:" % len(text) + text)
    elif isinstance(value, float):
        out.append(b"f" + struct.pack("!d", value))
    elif isinstance(value, str):
        raw = value.encode("utf-8")
        out.append(b"s%d:" % len(raw) + raw)
    elif isinstance(value, bytes):
        out.append(b"b%d:" % len(value) + value)
    elif isinstance(value, enum.Enum):
        _encode((type(value).__qualname__, value.name), out)
    elif isinstance(value, (list, tuple)):
        out.append(b"l(")
        for item in value:
            _encode(item, out)
        out.append(b")")
    elif isinstance(value, (set, frozenset)):
        encoded = []
        for item in value:
            chunk: list = []
            _encode(item, chunk)
            encoded.append(b"".join(chunk))
        out.append(b"e(")
        out.extend(sorted(encoded))
        out.append(b")")
    elif isinstance(value, dict):
        entries = []
        for key, item in value.items():
            key_chunk: list = []
            _encode(key, key_chunk)
            item_chunk: list = []
            _encode(item, item_chunk)
            entries.append((b"".join(key_chunk), b"".join(item_chunk)))
        out.append(b"d(")
        for key_bytes, item_bytes in sorted(entries):
            out.append(key_bytes)
            out.append(item_bytes)
        out.append(b")")
    elif hasattr(value, "__repro_cache_key__"):
        # Non-dataclass domain objects (e.g. Platform) opt in by returning
        # a stable surrogate that rebuilds them deterministically.
        out.append(b"k")
        _encode(type(value).__qualname__, out)
        out.append(b"(")
        _encode(value.__repro_cache_key__(), out)
        out.append(b")")
    elif dataclasses.is_dataclass(value) and not isinstance(value, type):
        out.append(b"c")
        _encode(type(value).__qualname__, out)
        out.append(b"(")
        for field in dataclasses.fields(value):
            _encode(getattr(value, field.name), out)
        out.append(b")")
    elif callable(value) and hasattr(value, "__qualname__"):
        module = getattr(value, "__module__", None)
        if module is None:
            raise Uncacheable(f"callable without a module: {value!r}")
        _encode((module, value.__qualname__), out)
    elif type(value).__module__ == "numpy" and hasattr(value, "tobytes"):
        # ndarrays and numpy scalars, without importing numpy here.
        dtype = getattr(value, "dtype", None)
        shape = getattr(value, "shape", ())
        out.append(b"a")
        _encode((str(dtype), tuple(shape)), out)
        out.append(value.tobytes())
    else:
        raise Uncacheable(
            f"no stable encoding for {type(value).__qualname__}: {value!r}"
        )


def stable_bytes(value: Any) -> bytes:
    """Canonical byte encoding of ``value`` (raises :class:`Uncacheable`)."""
    out: list = []
    _encode(value, out)
    return b"".join(out)


_fingerprint: Optional[str] = None


def code_fingerprint() -> str:
    """SHA-256 over every ``repro`` source file (path + contents).

    Computed once per process; editing any module under ``src/repro``
    therefore shifts every cache key, which is the invalidation story —
    there is no staleness protocol to get wrong.
    """
    global _fingerprint
    if _fingerprint is None:
        package_root = Path(__file__).resolve().parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode())
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _fingerprint = digest.hexdigest()
    return _fingerprint


# ------------------------------------------------------------------- store


@dataclasses.dataclass(frozen=True)
class CacheStats:
    """Snapshot of one store plus this process's hit/miss counters."""

    root: str
    entries: int
    bytes: int
    hits: int
    misses: int


class ResultCache:
    """Content-addressed pickle store under ``root``.

    ``get``/``put`` never raise for storage problems (a cache must degrade
    to "miss", not break the sweep); corrupt or unreadable entries count as
    misses and are left for :meth:`clear`.
    """

    def __init__(self, root: Optional[os.PathLike] = None) -> None:
        if root is None:
            root = os.environ.get(CACHE_DIR_ENV_VAR) or _DEFAULT_ROOT
        self.root = Path(root)
        self.hits = 0
        self.misses = 0

    def key_for(
        self, fn: Any, args: Tuple[Any, ...], kwargs: Dict[str, Any]
    ) -> Optional[str]:
        """Cache key for one cell, or None when any input is uncacheable."""
        try:
            payload = stable_bytes(
                (
                    code_fingerprint(), engine_variant(), recovery_variant(),
                    fn, args, kwargs,
                )
            )
        except Uncacheable:
            return None
        return hashlib.sha256(payload).hexdigest()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Tuple[bool, Any]:
        """(hit, value) for ``key``; misses return ``(False, None)``."""
        try:
            with open(self._path(key), "rb") as handle:
                value = pickle.load(handle)
        except Exception:
            self.misses += 1
            return False, None
        self.hits += 1
        return True, value

    def put(self, key: str, value: Any) -> bool:
        """Store ``value`` under ``key`` atomically; False if not storable."""
        path = self._path(key)
        try:
            payload = pickle.dumps(value)
            path.parent.mkdir(parents=True, exist_ok=True)
            fd, tmp_name = tempfile.mkstemp(
                dir=path.parent, prefix=".tmp-", suffix=".pkl"
            )
            try:
                with os.fdopen(fd, "wb") as handle:
                    handle.write(payload)
                os.replace(tmp_name, path)
            except BaseException:
                try:
                    os.unlink(tmp_name)
                except OSError:
                    pass
                raise
        except Exception:
            return False
        return True

    def _entries(self) -> Iterator[Path]:
        if not self.root.is_dir():
            return
        for path in self.root.glob("??/*.pkl"):
            if not path.name.startswith(".tmp-"):
                yield path

    def stats(self) -> CacheStats:
        """Entry count and on-disk size, plus this process's hit/miss."""
        entries = 0
        size = 0
        for path in self._entries():
            entries += 1
            try:
                size += path.stat().st_size
            except OSError:
                pass
        return CacheStats(
            root=str(self.root),
            entries=entries,
            bytes=size,
            hits=self.hits,
            misses=self.misses,
        )

    def clear(self) -> int:
        """Delete every entry; returns how many were removed."""
        removed = 0
        for path in list(self._entries()):
            try:
                path.unlink()
                removed += 1
            except OSError:
                pass
        return removed


# --------------------------------------------------------- process default

_UNSET = object()
_default: Any = _UNSET


def cache_enabled_by_env() -> bool:
    """Is the default cache allowed by :data:`CACHE_ENV_VAR`?"""
    return os.environ.get(CACHE_ENV_VAR, "").strip().lower() not in _FALSY


def set_default_cache(cache: Optional[ResultCache]) -> None:
    """Install (or, with None, disable) the process-wide default cache."""
    global _default
    _default = cache


def default_cache() -> Optional[ResultCache]:
    """The cache the runner uses when the caller does not pass one.

    Explicit :func:`set_default_cache` wins; otherwise a store is built
    iff :data:`CACHE_ENV_VAR` is set truthy (unset means no default —
    library users opt in, the CLI opts in for them).
    """
    if _default is not _UNSET:
        return _default
    enabled = os.environ.get(CACHE_ENV_VAR, "").strip().lower()
    if not enabled or enabled in _FALSY:
        return None
    return ResultCache()
