"""Tests for the platform model: components, links, latencies, geometry."""

import pytest

from repro.errors import ConfigurationError, TopologyError
from repro.platform.interconnect import LinkKind
from repro.platform.numa import Position
from repro.platform.presets import EPYC_7302_SPEC, EPYC_9634_SPEC
from repro.platform.topology import Platform


class TestComponentCounts:
    def test_7302_hierarchy(self, p7302):
        assert len(p7302.cores) == 16
        assert len(p7302.ccxs) == 8
        assert len(p7302.ccds) == 4
        assert len(p7302.umcs) == 8
        assert len(p7302.dimms) == 8
        assert len(p7302.cxl_devices) == 0

    def test_9634_hierarchy(self, p9634):
        assert len(p9634.cores) == 84
        assert len(p9634.ccxs) == 12
        assert len(p9634.ccds) == 12
        assert len(p9634.umcs) == 12
        assert len(p9634.cxl_devices) == 4

    def test_cores_per_ccx(self, p7302, p9634):
        assert p7302.spec.cores_per_ccx == 2
        assert p9634.spec.cores_per_ccx == 7

    def test_ccx_per_ccd(self, p7302, p9634):
        assert p7302.spec.ccx_per_ccd == 2
        assert p9634.spec.ccx_per_ccd == 1

    def test_every_core_belongs_to_its_ccx(self, platform):
        for core in platform.cores.values():
            ccx = platform.ccxs[core.ccx_id]
            assert core.core_id in ccx.core_ids
            assert ccx.ccd_id == core.ccd_id

    def test_every_ccx_belongs_to_its_ccd(self, platform):
        for ccx in platform.ccxs.values():
            assert ccx.ccx_id in platform.ccds[ccx.ccd_id].ccx_ids

    def test_core_ids_are_dense(self, platform):
        assert sorted(platform.cores) == list(range(platform.spec.cores))

    def test_l3_slices_sum_to_total(self, platform):
        total = sum(ccx.l3_slice_bytes for ccx in platform.ccxs.values())
        assert total == platform.spec.l3_total_bytes

    def test_root_complexes_cover_all_devices(self, p7302, p9634):
        # One RC per CXL module plus one per generic PCIe endpoint.
        assert len(p7302.root_complexes) == 0 + p7302.spec.pcie_device_count
        assert len(p9634.root_complexes) == 4 + p9634.spec.pcie_device_count

    def test_pcie_device_present(self, platform):
        assert len(platform.pcie_devices) == platform.spec.pcie_device_count
        dev = platform.pcie_devices[0]
        assert dev.rc_id in platform.root_complexes


class TestLookups:
    def test_core_lookup(self, platform):
        assert platform.core(0).core_id == 0

    def test_unknown_core_raises(self, platform):
        with pytest.raises(TopologyError):
            platform.core(10_000)

    def test_cores_of_ccx(self, p7302):
        cores = p7302.cores_of_ccx(0)
        assert len(cores) == 2
        assert all(core.ccx_id == 0 for core in cores)

    def test_cores_of_ccd(self, p9634):
        cores = p9634.cores_of_ccd(0)
        assert len(cores) == 7
        assert all(core.ccd_id == 0 for core in cores)

    def test_unknown_ccx_raises(self, platform):
        with pytest.raises(TopologyError):
            platform.cores_of_ccx(999)

    def test_unknown_ccd_raises(self, platform):
        with pytest.raises(TopologyError):
            platform.cores_of_ccd(999)

    def test_repr_mentions_name(self, p7302):
        assert "EPYC 7302" in repr(p7302)


class TestLinks:
    def test_per_ccd_links_exist(self, platform):
        for ccd_id in platform.ccds:
            assert platform.link(f"if/ccd{ccd_id}").kind is LinkKind.IF
            assert platform.link(f"gmi/ccd{ccd_id}").kind is LinkKind.GMI
            assert platform.link(f"hubport/ccd{ccd_id}").kind is LinkKind.IO_HUB

    def test_noc_link(self, platform):
        noc = platform.link("noc")
        assert noc.read_gbps == platform.spec.bandwidth.noc_read_gbps

    def test_unknown_link_raises(self, platform):
        with pytest.raises(TopologyError):
            platform.link("no-such-link")

    def test_links_of_kind(self, p9634):
        cxl_links = p9634.links_of_kind(LinkKind.CXL)
        assert len(cxl_links) == 4

    def test_links_returns_copy(self, platform):
        links = platform.links
        links.clear()
        assert platform.links  # internal registry unaffected

    def test_if_headroom_above_gmi(self, platform):
        # The IF die-to-die link is provisioned above the GMI memory path.
        for ccd_id in platform.ccds:
            if_link = platform.link(f"if/ccd{ccd_id}")
            gmi = platform.link(f"gmi/ccd{ccd_id}")
            assert if_link.read_gbps > gmi.read_gbps

    def test_7302_if_headroom_larger_than_9634(self, p7302, p9634):
        # Figure 3 a/b: the 7302 IF is generously provisioned, the 9634's
        # is tight.
        ratio_7302 = (
            p7302.link("if/ccd0").read_gbps / p7302.link("gmi/ccd0").read_gbps
        )
        ratio_9634 = (
            p9634.link("if/ccd0").read_gbps / p9634.link("gmi/ccd0").read_gbps
        )
        assert ratio_7302 > ratio_9634


class TestGraph:
    def test_graph_has_all_components(self, platform):
        graph = platform.graph()
        assert "iod" in graph
        for core in platform.cores.values():
            assert core.name in graph
        for umc in platform.umcs.values():
            assert umc.name in graph

    def test_graph_is_connected(self, platform):
        import networkx as nx

        assert nx.is_connected(platform.graph())

    def test_core_to_dimm_path_passes_through_iod(self, platform):
        import networkx as nx

        path = nx.shortest_path(platform.graph(), "core0", "dimm0")
        assert "iod" in path

    def test_cxl_path_passes_through_hub_and_rc(self, p9634):
        import networkx as nx

        path = nx.shortest_path(p9634.graph(), "core0", "cxl0")
        assert "iohub0" in path
        assert "rc0" in path

    def test_graph_copy_is_safe(self, platform):
        graph = platform.graph()
        graph.add_node("scribble")
        assert "scribble" not in platform.graph()


class TestLatencies:
    def test_cache_latencies(self, p7302):
        assert p7302.cache_latency_ns(1) == pytest.approx(1.24)
        assert p7302.cache_latency_ns(2) == pytest.approx(5.66)
        assert p7302.cache_latency_ns(3) == pytest.approx(34.3)

    def test_unknown_cache_level(self, platform):
        with pytest.raises(ConfigurationError):
            platform.cache_latency_ns(4)

    def test_dram_position_ordering(self, platform):
        near = platform.dram_latency_at(0, Position.NEAR)
        vertical = platform.dram_latency_at(0, Position.VERTICAL)
        horizontal = platform.dram_latency_at(0, Position.HORIZONTAL)
        diagonal = platform.dram_latency_at(0, Position.DIAGONAL)
        assert near < vertical < horizontal
        assert near < diagonal

    def test_9634_diagonal_faster_than_horizontal(self, p9634):
        # Table 2's surprise: the 9634 routes diagonals without a turn
        # penalty, so diagonal (149) beats horizontal (150).
        diagonal = p9634.dram_latency_at(0, Position.DIAGONAL)
        horizontal = p9634.dram_latency_at(0, Position.HORIZONTAL)
        assert diagonal < horizontal

    def test_7302_diagonal_slower_than_horizontal(self, p7302):
        diagonal = p7302.dram_latency_at(0, Position.DIAGONAL)
        horizontal = p7302.dram_latency_at(0, Position.HORIZONTAL)
        assert diagonal > horizontal

    def test_cxl_slower_than_any_dram(self, p9634):
        cxl = p9634.cxl_latency_ns(0)
        worst_dram = max(
            p9634.dram_latency_at(0, pos) for pos in Position
        )
        assert cxl > worst_dram

    def test_cxl_on_7302_raises(self, p7302):
        with pytest.raises(TopologyError):
            p7302.cxl_latency_ns(0)

    def test_dram_latency_specific_umc(self, platform):
        near_umcs = platform.umcs_at(0, Position.NEAR)
        latency = platform.dram_latency_ns(0, near_umcs[0].umc_id)
        assert latency == platform.dram_latency_at(0, Position.NEAR)


class TestNumaGeometry:
    def test_ccd0_sees_all_positions(self, platform):
        for position in Position:
            assert platform.umcs_at(0, position), position

    def test_umc_position_classification(self, platform):
        ccd = platform.ccds[0]
        for umc in platform.umcs.values():
            position = platform.position_of_umc(0, umc.umc_id)
            dx = abs(umc.coord[0] - ccd.coord[0])
            dy = abs(umc.coord[1] - ccd.coord[1])
            if dx == 0 and dy == 0:
                assert position is Position.NEAR
            elif dx == 0:
                assert position is Position.VERTICAL
            elif dy == 0:
                assert position is Position.HORIZONTAL
            else:
                assert position is Position.DIAGONAL

    def test_unknown_ccd_position_raises(self, platform):
        with pytest.raises(TopologyError):
            platform.position_of_umc(999, 0)

    def test_unknown_umc_position_raises(self, platform):
        with pytest.raises(TopologyError):
            platform.position_of_umc(0, 999)

    def test_mesh_offset(self, platform):
        assert platform.mesh_offset((0, 0), (2, 1)) == (2, 1)
        assert platform.mesh_offset((2, 1), (0, 0)) == (-2, -1)


class TestSpecValidation:
    def test_indivisible_cores_rejected(self):
        from dataclasses import replace

        with pytest.raises(ConfigurationError):
            Platform(replace(EPYC_7302_SPEC, cores=15))

    def test_indivisible_ccx_rejected(self):
        from dataclasses import replace

        with pytest.raises(ConfigurationError):
            Platform(replace(EPYC_7302_SPEC, ccx_count=6))

    def test_cxl_without_latency_rejected(self):
        from dataclasses import replace

        with pytest.raises(ConfigurationError):
            replace(EPYC_7302_SPEC, cxl_device_count=2)

    def test_spec_convenience_properties(self):
        assert EPYC_9634_SPEC.cores_per_ccd == 7
        assert EPYC_7302_SPEC.l3_per_ccx_bytes == 16 * 2**20
