"""Collective communication across compute chiplets (§4 direction #6).

The paper expects accelerator-era systems to "rethink traffic control,
kernel scheduling, and communication collective" on chiplet networks. This
package provides alpha-beta cost models for the three classic collective
algorithms — flat (root-gathered), binomial tree, and ring — parameterized
entirely by the platform's measured chiplet-network characteristics: the
cross-chiplet message latency (alpha) and the per-chiplet IF bandwidth
(beta). The crossover structure (latency-bound small messages prefer
trees, bandwidth-bound large ones prefer rings) falls out of the platform
numbers.
"""

from repro.collective.model import (
    Algorithm,
    CollectiveCost,
    allreduce_time_ns,
    best_algorithm,
    crossover_bytes,
)

__all__ = [
    "Algorithm",
    "CollectiveCost",
    "allreduce_time_ns",
    "best_algorithm",
    "crossover_bytes",
]
