"""Accelerator dispatch over the chiplet network (§4 direction #4).

"Dense GPU and domain-specific accelerator servers have become prevalent…
the accelerator execution is activated via submission commands and completed
through acknowledgment responses, which are latency-sensitive.
Bandwidth-intensive input/output data is copied to/from the accelerator
memory explicitly through DMA… In chiplet networking, all such
communications traverse the device bus, I/O hub, and I/O chiplet, which
embody performance idiosyncrasies."

This package models exactly that signal plane and data plane:

* :class:`~repro.accel.device.AcceleratorModel` — a PCIe accelerator with a
  launch-overhead + streaming-throughput kernel model;
* :class:`~repro.accel.dispatch.DispatchSimulator` — the DES driver for one
  job: doorbell → descriptor fetch → input DMA → compute → output DMA →
  completion write, each traversing the real hub/P-Link/NoC path;
* :class:`~repro.accel.switch.IntraHostSwitch` — the proposed switching
  module: it reads the traffic matrix and provisions background flows so
  the latency-sensitive dispatch path keeps headroom.
"""

from repro.accel.device import AcceleratorJob, AcceleratorModel, JobTrace
from repro.accel.dispatch import DispatchSimulator
from repro.accel.switch import IntraHostSwitch

__all__ = [
    "AcceleratorJob",
    "AcceleratorModel",
    "JobTrace",
    "DispatchSimulator",
    "IntraHostSwitch",
]
