"""Tests for NUMA position classification and NPS modes."""

from repro.platform.numa import NpsMode, Position, classify_position


class TestClassifyPosition:
    def test_near(self):
        assert classify_position((1, 1), (1, 1)) is Position.NEAR

    def test_vertical(self):
        assert classify_position((0, 0), (0, 1)) is Position.VERTICAL
        assert classify_position((0, 1), (0, 0)) is Position.VERTICAL

    def test_horizontal(self):
        assert classify_position((0, 0), (2, 0)) is Position.HORIZONTAL
        assert classify_position((2, 0), (0, 0)) is Position.HORIZONTAL

    def test_diagonal(self):
        assert classify_position((0, 0), (1, 1)) is Position.DIAGONAL
        assert classify_position((2, 1), (0, 0)) is Position.DIAGONAL

    def test_symmetry(self):
        coords = [(0, 0), (1, 0), (0, 1), (2, 1), (1, 1)]
        for a in coords:
            for b in coords:
                assert classify_position(a, b) is classify_position(b, a)


class TestNpsMode:
    def test_values(self):
        assert NpsMode.NPS1 == 1
        assert NpsMode.NPS2 == 2
        assert NpsMode.NPS4 == 4

    def test_ordering(self):
        assert NpsMode.NPS1 < NpsMode.NPS4
