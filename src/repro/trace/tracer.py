"""Span recording on the simulated clock.

A :class:`Tracer` collects *spans* — named intervals ``[ts, ts + dur)`` of
simulated time, each attributed to a *track* (a flow/worker lane) and
optionally linked to a parent span. The instrumented components
(:class:`~repro.transport.transaction.TransactionExecutor`,
:class:`~repro.net.inject.CreditGate`) open one span per transaction plus
one child span per *hop*: every token-pool wait, every queued stage
(IF link, GMI port, NoC, UMC/CXL device, xGMI), and the fixed
propagation remainder. Children are contiguous by construction — each
begins exactly where the previous one ended, on the same simulated clock —
so a transaction's hop spans tile its end-to-end latency *exactly*
(boundary floats are copied, not re-derived; see
:func:`repro.trace.breakdown.assert_tiles`).

Tracing is opt-in per :class:`~repro.sim.engine.Environment`: the engine
carries a ``tracer`` attribute that defaults to ``None``, and every
instrumented hot loop branches once per transaction on ``tracer is None``.
With tracing off the simulation therefore executes the exact same
bytecode path as before the tracer existed — results are bit-identical
and the overhead is one attribute load per transaction (measured in
``benchmarks/bench_trace.py``). With tracing *on*, the tracer only reads
``env.now`` and appends to a list: it schedules no events, so traced and
untraced runs produce identical simulation results.

Determinism: span ``seq`` numbers come from a per-tracer counter and
``ts``/``dur`` from the deterministic simulated clock, so a recording is a
pure function of the cell's arguments — recordings can be cached,
pickled across worker processes, and merged byte-identically for any
``--jobs`` value.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, List, Optional, Tuple

from repro.errors import ConfigurationError

__all__ = [
    "Span",
    "Tracer",
    "NullTracer",
    "NULL_TRACER",
    "TraceRecording",
    "merge_recordings",
]


class Span:
    """One open span; closed by :meth:`Tracer.end` (do not mutate directly)."""

    __slots__ = ("name", "cat", "track", "ts", "seq", "parent", "extra")

    def __init__(
        self,
        name: str,
        cat: str,
        track: str,
        ts: float,
        seq: int,
        parent: Optional[int],
        extra: Optional[Dict[str, Any]],
    ) -> None:
        self.name = name
        self.cat = cat
        self.track = track
        self.ts = ts
        self.seq = seq
        self.parent = parent
        self.extra = extra


@dataclass(frozen=True)
class TraceRecording:
    """A closed, picklable set of spans from one simulation cell.

    ``spans`` are plain dicts (keys: ``name``, ``cat``, ``track``, ``ts``,
    ``end``, ``dur``, ``seq``, ``parent``, optional ``args``) sorted by
    ``(ts, seq)`` — begin order, which the deterministic DES makes a pure
    function of the cell's arguments. ``dropped_open`` counts spans that
    were still open when the recording was taken (a crashed transaction);
    they are excluded rather than given fabricated durations.
    """

    spans: Tuple[Dict[str, Any], ...]
    dropped_open: int = 0
    meta: Dict[str, Any] = field(default_factory=dict)

    @property
    def tracks(self) -> List[str]:
        """Track labels in first-appearance (begin) order."""
        seen: Dict[str, None] = {}
        for span in self.spans:
            seen.setdefault(span["track"], None)
        return list(seen)

    def elapsed_ns(self) -> float:
        """Simulated time covered by the recording (0.0 when empty)."""
        if not self.spans:
            return 0.0
        begin = min(span["ts"] for span in self.spans)
        end = max(span["end"] for span in self.spans)
        return end - begin


class Tracer:
    """Records spans against one environment's simulated clock.

    Attach with :meth:`attach` (or pass ``env`` to the constructor); the
    instrumented components discover the tracer through ``env.tracer``.
    An optional :class:`~repro.telemetry.profiler.FlowProfiler` receives
    one :class:`~repro.telemetry.profiler.FlowSample` per completed
    transaction span, keyed by the span's track label — spans and profiler
    telemetry therefore share flow identities.
    """

    #: Instrumentation points may check this instead of ``is None`` when
    #: they hold a tracer-typed object (NullTracer reports False).
    enabled = True

    def __init__(self, env=None, profiler=None) -> None:
        self._env = env
        self.profiler = profiler
        self._closed: List[Dict[str, Any]] = []
        self._seq = 0
        self._open = 0
        if env is not None:
            self.attach(env)

    def attach(self, env) -> "Tracer":
        """Bind to ``env``'s clock and register as ``env.tracer``."""
        if getattr(env, "tracer", None) not in (None, self):
            raise ConfigurationError(
                "environment already has a tracer attached"
            )
        self._env = env
        env.tracer = self
        return self

    @property
    def clock_ns(self) -> float:
        if self._env is None:
            raise ConfigurationError("tracer is not attached to an environment")
        return self._env.now

    def begin(
        self,
        name: str,
        cat: str,
        track: str,
        parent: Optional[Span] = None,
        **extra: Any,
    ) -> Span:
        """Open a span at the current simulated time."""
        self._seq += 1
        self._open += 1
        return Span(
            name, cat, track, self._env.now, self._seq,
            parent.seq if parent is not None else None,
            extra or None,
        )

    def end(self, span: Span, **extra: Any) -> None:
        """Close ``span`` at the current simulated time and record it."""
        now = self._env.now
        record: Dict[str, Any] = {
            "name": span.name,
            "cat": span.cat,
            "track": span.track,
            "ts": span.ts,
            # Both boundaries are *copies* of clock reads; ``dur`` is
            # derived once for exporters. Exactness checks must compare
            # ``end`` (``ts + dur`` can differ from ``end`` by an ULP).
            "end": now,
            "dur": now - span.ts,
            "seq": span.seq,
            "parent": span.parent,
        }
        args = span.extra
        if extra:
            args = {**(args or {}), **extra}
        if args:
            record["args"] = args
        self._open -= 1
        self._closed.append(record)

    def sample_flow(self, flow: str, size_bytes: int) -> None:
        """Feed the attached profiler one flow sample (no-op without one)."""
        if self.profiler is not None:
            from repro.telemetry.profiler import FlowSample

            self.profiler.record(FlowSample(flow, size_bytes, self._env.now))

    def recording(self, **meta: Any) -> TraceRecording:
        """Snapshot the closed spans, sorted by begin time.

        Sorting by ``(ts, seq)`` puts parents before their children (a
        parent begins no later and was opened first) and makes the order a
        deterministic function of the simulation alone.
        """
        spans = tuple(
            sorted(self._closed, key=lambda span: (span["ts"], span["seq"]))
        )
        return TraceRecording(spans=spans, dropped_open=self._open, meta=meta)


def merge_recordings(recordings) -> TraceRecording:
    """Merge per-shard recordings into one deterministic recording.

    Each shard of a sharded run (:mod:`repro.sim.sharded`) traces into its
    own :class:`Tracer`, so every recording carries its own dense ``seq``
    progression ``1, 2, 3, …``. The merge remaps recording ``i`` of ``n``
    onto the shard-stable progression ``seq * n + i`` — the same disjoint
    arithmetic-progression trick the engine's ordering contract uses — so
    remapped sequence numbers never collide across shards, parent links
    stay internally consistent, and the merged ``(ts, seq)`` sort is a
    pure function of the input recordings (in order), independent of how
    shard windows interleaved in wall time.

    ``dropped_open`` counts add; per-recording ``meta`` dicts are kept
    under ``meta["shards"]`` alongside ``meta["merged"]``.
    """
    recordings = list(recordings)
    if not recordings:
        return TraceRecording(spans=(), meta={"merged": 0, "shards": []})
    count = len(recordings)
    merged: List[Dict[str, Any]] = []
    for index, recording in enumerate(recordings):
        for span in recording.spans:
            remapped = dict(span)
            remapped["seq"] = span["seq"] * count + index
            if span.get("parent") is not None:
                remapped["parent"] = span["parent"] * count + index
            merged.append(remapped)
    merged.sort(key=lambda span: (span["ts"], span["seq"]))
    return TraceRecording(
        spans=tuple(merged),
        dropped_open=sum(r.dropped_open for r in recordings),
        meta={
            "merged": count,
            "shards": [dict(r.meta) for r in recordings],
        },
    )


class NullTracer:
    """A do-nothing tracer with the full :class:`Tracer` surface.

    For callers that want to pass a tracer-typed object unconditionally;
    the engine-level convention (``env.tracer is None``) is faster still
    and is what the hot loops use.
    """

    enabled = False
    profiler = None

    def attach(self, env) -> "NullTracer":
        """Leave ``env.tracer`` untouched; the null tracer stays detached."""
        return self

    def begin(self, name, cat, track, parent=None, **extra) -> None:
        """Open no span; always returns ``None``."""
        return None

    def end(self, span, **extra) -> None:
        """Accept (and discard) the ``None`` handle :meth:`begin` returned."""
        return None

    def sample_flow(self, flow, size_bytes) -> None:
        """Drop the sample; no profiler is attached."""
        return None

    def recording(self, **meta) -> TraceRecording:
        """Return an empty :class:`TraceRecording` carrying only ``meta``."""
        return TraceRecording(spans=(), meta=meta)


#: Shared instance of the no-op tracer.
NULL_TRACER = NullTracer()
