"""Tests for telemetry-driven multipath selection (repro.net.multipath)."""

import pytest

from repro.core.fabric import FabricModel
from repro.core.flows import StreamSpec
from repro.errors import ConfigurationError, TopologyError
from repro.net.multipath import MultipathSelector, link_for_channel
from repro.transport.message import OpKind


class TestLinkForChannel:
    def test_umc_channel_maps_to_umc_link(self, p7302):
        assert link_for_channel(p7302, "umc0:r") is p7302.link("umc0")

    def test_gmi_channel_maps_to_ccd_port(self, p7302):
        assert link_for_channel(p7302, "gmi0:r") is p7302.link("gmi/ccd0")

    def test_hub_channel_maps_to_hub_port(self, p9634):
        assert (
            link_for_channel(p9634, "hub0:w") is p9634.link("hubport/ccd0")
        )

    def test_plink_channel_maps_to_root_complex(self, p7302):
        assert (
            link_for_channel(p7302, "plink0:r") is p7302.link("plink/rc0")
        )

    def test_noc_channel_maps_to_noc(self, p7302):
        assert link_for_channel(p7302, "noc:r") is p7302.link("noc")

    def test_ccx_channel_has_no_link(self, p7302):
        assert link_for_channel(p7302, "ccx0:r") is None

    def test_malformed_channel_rejected(self, p7302):
        with pytest.raises(TopologyError):
            link_for_channel(p7302, "umc0")
        with pytest.raises(TopologyError):
            link_for_channel(p7302, "umc0:x")


class TestMultipathSelector:
    def test_window_must_be_positive(self, p7302):
        with pytest.raises(ConfigurationError):
            MultipathSelector(p7302, window_ns=0.0)

    def test_no_telemetry_means_idle(self, p7302):
        selector = MultipathSelector(p7302)
        assert selector.utilization("umc0") == 0.0

    def test_rank_prefers_low_latency_when_idle(self, p7302):
        # With no telemetry contrast the ranking is by unloaded latency:
        # a chiplet's NEAR UMCs come before its FAR ones.
        selector = MultipathSelector(p7302)
        ranked = selector.rank_umcs(0)
        near = FabricModel(p7302).default_umc_ids(
            StreamSpec("s", OpKind.READ, (0,))
        )
        assert set(ranked) == set(p7302.umcs)
        assert ranked[0] in near

    def test_hot_endpoint_drops_in_ranking(self, p7302):
        selector = MultipathSelector(p7302, window_ns=1.0e3)
        best = selector.rank_umcs(0)[0]
        link = p7302.link(f"umc{best}")
        # Saturate the previously best endpoint over the sampling window.
        selector.observe(f"umc{best}", int(link.read_gbps * 1.0e3))
        assert selector.rank_umcs(0)[0] != best
        assert selector.rank_umcs(0)[-1] == best

    def test_pick_returns_best_count_in_id_order(self, p7302):
        selector = MultipathSelector(p7302)
        picked = selector.pick_umcs(0, 2)
        assert picked == sorted(picked)
        assert len(picked) == 2
        with pytest.raises(ConfigurationError):
            selector.pick_umcs(0, 0)

    def test_split_weights_sum_to_one(self, p7302):
        selector = MultipathSelector(p7302)
        weights = selector.split_weights([0, 4])
        assert sum(weights.values()) == pytest.approx(1.0)
        # Identical idle endpoints stripe evenly.
        assert weights[0] == pytest.approx(weights[4])

    def test_split_shifts_toward_residual_capacity(self, p7302):
        selector = MultipathSelector(p7302, window_ns=1.0e3)
        link = p7302.link("umc0")
        selector.observe("umc0", int(link.read_gbps * 1.0e3 * 0.5))
        weights = selector.split_weights([0, 4])
        assert weights[4] > weights[0]

    def test_all_saturated_falls_back_to_equal_split(self, p7302):
        selector = MultipathSelector(p7302, window_ns=1.0e3)
        for umc_id in (0, 4):
            link = p7302.link(f"umc{umc_id}")
            selector.observe(f"umc{umc_id}", int(link.read_gbps * 2.0e3))
        weights = selector.split_weights([0, 4])
        assert weights == {0: 0.5, 4: 0.5}

    def test_unknown_umc_rejected(self, p7302):
        selector = MultipathSelector(p7302)
        with pytest.raises(TopologyError):
            selector.split_weights([999])
        with pytest.raises(ConfigurationError):
            selector.split_weights([])

    def test_observe_fluid_feeds_registry(self, p7302):
        selector = MultipathSelector(p7302)
        fabric = FabricModel(p7302)
        spec = StreamSpec("s", OpKind.READ, (0,), demand_gbps=16.0)
        selector.observe_fluid(fabric, [spec])
        loaded = [
            umc_id
            for umc_id in p7302.umcs
            if selector.utilization(f"umc{umc_id}") > 0.0
        ]
        assert loaded
