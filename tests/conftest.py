"""Shared fixtures: the two paper platforms, built once per session."""

import pytest

from repro.platform.presets import epyc_7302, epyc_9634


@pytest.fixture(scope="session")
def p7302():
    return epyc_7302()


@pytest.fixture(scope="session")
def p9634():
    return epyc_9634()


@pytest.fixture(scope="session", params=["7302", "9634"])
def platform(request, p7302, p9634):
    """Parametrized over both evaluated platforms."""
    return p7302 if request.param == "7302" else p9634
