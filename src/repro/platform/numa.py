"""NUMA / NPS configuration and DIMM position classification.

The paper measures DRAM latency "by … changing the NPS (Node per Socket)
configurations and issuing memory requests to DIMMs at different positions"
(Table 2). A DIMM's *position* is relative to the issuing compute chiplet's
GMI port on the I/O-die mesh:

* ``NEAR`` — same mesh stop (no switching hops),
* ``VERTICAL`` — one hop along the y dimension,
* ``HORIZONTAL`` — hops along the x dimension only,
* ``DIAGONAL`` — hops in both dimensions (plus a turn on platforms whose mesh
  charges for changing dimension).
"""

from __future__ import annotations

import enum
from typing import Tuple

__all__ = ["Position", "NpsMode", "classify_position"]

Coord = Tuple[int, int]


class Position(enum.Enum):
    """Relative position of a memory target on the I/O-die mesh."""

    NEAR = "near"
    VERTICAL = "vertical"
    HORIZONTAL = "horizontal"
    DIAGONAL = "diagonal"


class NpsMode(enum.IntEnum):
    """Nodes-per-socket BIOS setting: how DRAM is interleaved across UMCs.

    * ``NPS1`` — all channels interleaved; accesses spread over every UMC.
    * ``NPS2`` — two NUMA domains per socket (half the channels each).
    * ``NPS4`` — four domains; a CCD's local domain is its nearest UMC group,
      which is what exposes the per-position latencies of Table 2.
    """

    NPS1 = 1
    NPS2 = 2
    NPS4 = 4


def classify_position(src: Coord, dst: Coord) -> Position:
    """Classify ``dst`` relative to ``src`` by mesh coordinate deltas."""
    dx = abs(dst[0] - src[0])
    dy = abs(dst[1] - src[1])
    if dx == 0 and dy == 0:
        return Position.NEAR
    if dx == 0:
        return Position.VERTICAL
    if dy == 0:
        return Position.HORIZONTAL
    return Position.DIAGONAL
