"""Cross-model validation: the DES and fluid engines must agree.

DESIGN.md's modelling decision is to use two engines — transaction-level
DES for latency, fluid flows for sustained bandwidth. Where their domains
overlap (steady-state throughput of saturating streams), they must agree,
or the Figure 3 panels and Table 3 would describe different machines. This
experiment measures that agreement, plus an in-mesh hotspot study on the
detailed hop-by-hop network.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.report import render_table
from repro.core.microbench import MicroBench
from repro.core.flows import Scope
from repro.noc.mesh import Mesh
from repro.noc.router import MeshNetwork
from repro.platform.topology import Platform
from repro.sim.engine import Environment
from repro.transport.message import OpKind

__all__ = ["AgreementPoint", "des_vs_fluid", "mesh_hotspot", "render"]


@dataclass(frozen=True)
class AgreementPoint:
    """One scenario measured by both engines."""

    scenario: str
    des_gbps: float
    fluid_gbps: float

    @property
    def ratio(self) -> float:
        return self.des_gbps / self.fluid_gbps


#: The overlap scenarios both engines must agree on.
_AGREEMENT_SCENARIOS: List[Tuple[str, Scope, OpKind]] = [
    ("core-read", Scope.CORE, OpKind.READ),
    ("core-nt-write", Scope.CORE, OpKind.NT_WRITE),
    ("ccx-read", Scope.CCX, OpKind.READ),
    ("ccd-read", Scope.CCD, OpKind.READ),
    ("ccd-nt-write", Scope.CCD, OpKind.NT_WRITE),
]


def _agreement_cell(
    platform: Platform,
    name: str,
    scope: Scope,
    op: OpKind,
    transactions_per_core: int,
    seed: int,
) -> AgreementPoint:
    """One overlap scenario measured by both engines (a runner cell)."""
    from repro.core.flows import StreamSpec

    bench = MicroBench(platform, seed=seed)
    fluid = bench.stream_bandwidth(scope, op)
    cores = list(StreamSpec.cores_for_scope(platform, scope))
    des = bench.loaded_latency(
        cores, op, offered_gbps=None,
        transactions_per_core=transactions_per_core,
    )
    return AgreementPoint(name, des.achieved_gbps, fluid)


def des_vs_fluid(
    platform: Platform,
    transactions_per_core: int = 1500,
    seed: int = 0,
    jobs=None,
) -> List[AgreementPoint]:
    """Saturating-stream throughput from both engines, several scopes.

    Each scenario builds its own MicroBench (own Environment, own seed
    streams), so the scenarios fan out over worker processes and return in
    canonical order regardless of ``jobs``.
    """
    from repro.runner import starmap

    return starmap(
        _agreement_cell,
        [
            (platform, name, scope, op, transactions_per_core, seed)
            for name, scope, op in _AGREEMENT_SCENARIOS
        ],
        jobs=jobs,
    )


@dataclass(frozen=True)
class HotspotResult:
    """In-mesh traversal latency: all-to-one vs all-to-all traffic."""

    hotspot_mean_ns: float
    spread_mean_ns: float

    @property
    def slowdown(self) -> float:
        return self.hotspot_mean_ns / self.spread_mean_ns


def mesh_hotspot(
    platform: Platform, packets_per_sender: int = 200
) -> HotspotResult:
    """Drive the hop-by-hop mesh with hotspot vs spread patterns.

    All CCD ports inject packets either at one UMC stop (hotspot — the
    head-of-line blocking §2.3's buffered routers suffer) or round-robin
    over all UMC stops (spread). The detailed router model makes the
    difference visible where the collapsed path model cannot.
    """
    lat = platform.spec.latency
    mesh = Mesh(
        platform.spec.mesh_grid[0], platform.spec.mesh_grid[1],
        lat.x_hop_ns, lat.y_hop_ns, max(0.0, lat.turn_ns),
    )
    umc_coords = sorted({umc.coord for umc in platform.umcs.values()})
    ccd_coords = sorted({ccd.coord for ccd in platform.ccds.values()})
    port_gbps = platform.spec.bandwidth.noc_read_gbps / (
        2.0 * len(ccd_coords)
    )

    def run(pattern: str, lanes_per_sender: int = 4) -> float:
        env = Environment()
        network = MeshNetwork(env, mesh, port_gbps=port_gbps)
        latencies: List[float] = []

        def lane(src, index):
            for i in range(packets_per_sender // lanes_per_sender):
                if pattern == "hotspot":
                    dst = umc_coords[0]
                else:
                    dst = umc_coords[(index + i) % len(umc_coords)]
                if dst == src:
                    dst = umc_coords[(index + i + 1) % len(umc_coords)]
                measured = yield env.process(network.send(src, dst, 64))
                latencies.append(measured)

        for index, src in enumerate(ccd_coords):
            for lane_id in range(lanes_per_sender):
                env.process(lane(src, index + lane_id))
        env.run()
        return sum(latencies) / len(latencies)

    return HotspotResult(run("hotspot"), run("spread"))


def render(
    agreement: Dict[str, List[AgreementPoint]],
    hotspots: Dict[str, HotspotResult],
) -> str:
    """Render the result as an aligned paper-style text table."""
    rows = []
    for platform_name, points in agreement.items():
        for point in points:
            rows.append([
                platform_name, point.scenario,
                f"{point.des_gbps:.1f}", f"{point.fluid_gbps:.1f}",
                f"{point.ratio:.3f}",
            ])
    lines = [render_table(
        ["platform", "scenario", "DES GB/s", "fluid GB/s", "ratio"],
        rows, title="Cross-model validation: DES vs fluid throughput",
    )]
    lines.append("")
    for platform_name, result in hotspots.items():
        lines.append(
            f"mesh hotspot ({platform_name}): all-to-one "
            f"{result.hotspot_mean_ns:.1f} ns vs spread "
            f"{result.spread_mean_ns:.1f} ns "
            f"({result.slowdown:.2f}x slower under the hotspot)"
        )
    return "\n".join(lines)
