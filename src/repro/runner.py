"""Deterministic, fault-tolerant fan-out of independent experiment cells.

Every paper artifact decomposes into *cells* — independent
(platform × panel × op × load-point) work items that each build their own
:class:`~repro.sim.engine.Environment` and draw from their own
:class:`~repro.sim.rng.SplitRng` streams. Nothing is shared between cells,
so they can run in separate worker processes and still produce bit-identical
results; this module is the fan-out layer that does exactly that.

Determinism contract
--------------------

:func:`run_cells` returns results **in submission order**, regardless of
which worker finished first, and each cell's result depends only on its own
arguments (the seed tree, not wall-clock or scheduling). Consequently::

    run_cells(cells, jobs=1) == run_cells(cells, jobs=4)

holds bit-for-bit — ``--jobs`` trades wall-clock for CPU without touching a
single rendered byte. ``tests/test_runner.py`` asserts this for the Figure 3
and Table 2 pipelines. Hardening never bends the contract: retries re-run
the same pure cell, and crash recovery re-runs cells in-process with the
same arguments, so every *successful* cell's value is identical to what a
clean ``jobs=1`` run would have produced.

Hardening
---------

:func:`run_cells_detailed` is the structured core: it returns one
:class:`CellResult` per cell (value or :class:`CellFailure`, with attempt
count and duration) instead of raising mid-flight, and layers on

* **per-cell timeouts** (``timeout_s``) — a cell whose result does not
  arrive in time is recorded as a timeout failure instead of hanging the
  whole sweep (pool mode only: in-process execution cannot be preempted);
* **bounded retry with backoff** (``retries``, ``backoff_s``) — failed
  cells are re-submitted to a fresh pool, with exponentially growing
  sleeps between attempts;
* **crash recovery** — a worker death (``BrokenProcessPool``) poisons every
  uncollected future, so the still-unresolved cells are re-run *in-process*,
  exactly as ``jobs=1`` would have run them;
* **fail-fast / keep-going** — ``fail_fast=True`` raises
  :class:`~repro.errors.CellExecutionError` at the first unrecoverable
  failure; the default collects every failure and lets the caller decide.

:func:`run_cells` keeps the original simple surface: values only, first
cell failure re-raised as-is.

Job-count resolution
--------------------

``jobs`` may be an ``int``, the string ``"auto"`` (one worker per CPU), or
``None`` (read the ``REPRO_JOBS`` environment variable, falling back to
``auto``). ``jobs=1`` bypasses multiprocessing entirely and runs in-process;
so do cell lists whose functions or arguments cannot be pickled (e.g. ad-hoc
platforms built from closures), which keeps the API safe to call from
anywhere.
"""

from __future__ import annotations

import os
import pickle
import threading
import time
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures import TimeoutError as _FuturesTimeout
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field, replace
from typing import Any, Callable, Dict, Iterable, List, Optional, Sequence, Tuple, Union

from repro.cache import ResultCache, cell_key, default_cache
from repro.errors import CellExecutionError, ConfigurationError

__all__ = [
    "Cell",
    "CellFailure",
    "CellResult",
    "resolve_jobs",
    "run_cells",
    "run_cells_detailed",
    "starmap",
    "platform_map",
]

#: Environment variable consulted when ``jobs`` is None.
JOBS_ENV_VAR = "REPRO_JOBS"

JobsSpec = Union[int, str, None]

#: Sentinel: "use :func:`repro.cache.default_cache`" (distinct from None,
#: which means "definitely no caching").
USE_DEFAULT_CACHE = object()

#: Spinning up a process pool costs tens of milliseconds (fork + import +
#: pickling); sweeps cheaper than this run serially instead (see
#: ``pool_threshold_s``).
POOL_THRESHOLD_S = 0.05


@dataclass(frozen=True)
class Cell:
    """One independent unit of experiment work.

    ``fn`` must be a module-level callable (picklable) for the cell to be
    eligible for process fan-out; anything else silently degrades to the
    in-process path.
    """

    fn: Callable[..., Any]
    args: Tuple[Any, ...] = ()
    kwargs: Dict[str, Any] = field(default_factory=dict)

    def run(self) -> Any:
        """Execute the cell in the current process."""
        return self.fn(*self.args, **self.kwargs)


@dataclass(frozen=True)
class CellFailure:
    """Why one cell ultimately failed.

    ``kind`` is ``"error"`` (the cell raised), ``"timeout"`` (its result
    missed the per-cell deadline), ``"crash"`` (its worker process died),
    or ``"cancelled"`` (the caller's cancel event was set before the cell
    started — cancellation never interrupts a cell mid-flight, and every
    cancelled cell is reported, never silently dropped).
    ``error`` is the final underlying exception.
    """

    index: int
    kind: str
    error: BaseException
    attempts: int

    _KINDS = ("error", "timeout", "crash", "cancelled")

    def __post_init__(self) -> None:
        if self.kind not in self._KINDS:
            raise ConfigurationError(
                f"failure kind must be one of {self._KINDS}, got {self.kind!r}"
            )

    def as_exception(self) -> CellExecutionError:
        """Wrap as a raisable error carrying the cell context."""
        return CellExecutionError(
            f"cell {self.index} failed ({self.kind}) after "
            f"{self.attempts} attempt(s): {self.error!r}",
            cell_index=self.index,
            attempts=self.attempts,
            cause=self.error,
        )


@dataclass(frozen=True)
class CellResult:
    """Structured outcome of one cell: a value or a failure, never both.

    ``cached=True`` marks a value served from the result cache without
    executing the cell (``attempts`` is 0 in that case). ``deduped=True``
    marks a cell that was content-identical to an earlier cell in the same
    batch and received a fan-out copy of that cell's outcome instead of
    executing (``attempts`` is 0 there too).
    """

    index: int
    value: Any = None
    failure: Optional[CellFailure] = None
    attempts: int = 1
    duration_s: float = 0.0
    cached: bool = False
    deduped: bool = False

    @property
    def ok(self) -> bool:
        return self.failure is None


def resolve_jobs(jobs: JobsSpec = None) -> int:
    """Resolve a ``--jobs`` value to a concrete worker count (>= 1)."""
    if jobs is None:
        jobs = os.environ.get(JOBS_ENV_VAR, "auto")
    if isinstance(jobs, str):
        text = jobs.strip().lower()
        if text == "auto":
            return max(1, os.cpu_count() or 1)
        try:
            jobs = int(text)
        except ValueError:
            raise ConfigurationError(
                f"jobs must be a positive integer or 'auto', got {jobs!r}"
            ) from None
    if jobs < 1:
        raise ConfigurationError(f"jobs must be >= 1, got {jobs}")
    return int(jobs)


def _picklable(cells: Sequence[Cell]) -> bool:
    try:
        pickle.dumps([(cell.fn, cell.args, cell.kwargs) for cell in cells])
        return True
    except Exception:
        return False


# ---------------------------------------------------------------- execution


def _cancelled_result(index: int, attempt: int) -> CellResult:
    """A structured "cancelled before execution" outcome for one cell."""
    error = CellExecutionError(
        f"cell {index} cancelled before execution",
        cell_index=index,
        attempts=attempt,
    )
    return CellResult(
        index,
        failure=CellFailure(index, "cancelled", error, attempt),
        attempts=attempt,
    )


def _run_in_process(cell: Cell, index: int, attempt: int) -> CellResult:
    """Run one cell here; exceptions become structured failures."""
    started = time.perf_counter()
    try:
        value = cell.run()
    except Exception as exc:
        return CellResult(
            index,
            failure=CellFailure(index, "error", exc, attempt),
            attempts=attempt,
            duration_s=time.perf_counter() - started,
        )
    return CellResult(
        index, value=value, attempts=attempt,
        duration_s=time.perf_counter() - started,
    )


def _run_batch_pooled(
    cells: Sequence[Cell],
    indices: Sequence[int],
    workers: int,
    timeout_s: Optional[float],
    attempt: int,
    cancel: Optional[threading.Event] = None,
) -> Optional[Dict[int, CellResult]]:
    """Run ``indices`` in one worker pool; None if no pool can be created.

    The pool is created fresh per attempt, so a retry after a crash or a
    poisoned interpreter state starts clean. Results are collected in
    submission order; a ``BrokenProcessPool`` on any future switches the
    remaining cells to in-process execution (the ISSUE's "re-run only the
    failed cells, in-process"), which preserves every surviving cell's
    value exactly as ``jobs=1`` would compute it.
    """
    try:
        pool = ProcessPoolExecutor(max_workers=min(workers, len(indices)))
    except (OSError, PermissionError):
        # Sandboxed or fork-restricted environments: no pool at all. This —
        # and only this — is the graceful-degradation case; errors raised
        # *inside* a cell must never trigger it.
        return None
    outcomes: Dict[int, CellResult] = {}
    broken = False
    try:
        futures = {
            index: pool.submit(
                cells[index].fn, *cells[index].args, **cells[index].kwargs
            )
            for index in indices
        }
        for index in indices:
            cancelled = cancel is not None and cancel.is_set()
            if cancelled and futures[index].cancel():
                # Not yet started in a worker: report it cancelled instead
                # of waiting for a result that will never be wanted.
                outcomes[index] = _cancelled_result(index, attempt)
                continue
            if broken:
                if cancelled:
                    outcomes[index] = _cancelled_result(index, attempt)
                else:
                    outcomes[index] = _run_in_process(
                        cells[index], index, attempt
                    )
                continue
            started = time.perf_counter()
            try:
                value = futures[index].result(timeout=timeout_s)
            except BrokenProcessPool:
                # The worker died (OOM kill, segfault, os._exit). Everything
                # not yet collected is poisoned; fall back to in-process for
                # this cell and the rest of the batch. If the re-run fails
                # too, report it as a crash — the worker death is the context
                # that matters for this cell.
                broken = True
                rerun = _run_in_process(cells[index], index, attempt)
                if not rerun.ok:
                    rerun = CellResult(
                        index,
                        failure=CellFailure(
                            index, "crash", rerun.failure.error, attempt
                        ),
                        attempts=attempt,
                        duration_s=rerun.duration_s,
                    )
                outcomes[index] = rerun
            except _FuturesTimeout:
                futures[index].cancel()
                error = CellExecutionError(
                    f"cell {index} produced no result within {timeout_s}s",
                    cell_index=index,
                    attempts=attempt,
                )
                outcomes[index] = CellResult(
                    index,
                    failure=CellFailure(index, "timeout", error, attempt),
                    attempts=attempt,
                    duration_s=time.perf_counter() - started,
                )
            except Exception as exc:
                # The cell itself raised inside the worker.
                outcomes[index] = CellResult(
                    index,
                    failure=CellFailure(index, "error", exc, attempt),
                    attempts=attempt,
                    duration_s=time.perf_counter() - started,
                )
            else:
                outcomes[index] = CellResult(
                    index, value=value, attempts=attempt,
                    duration_s=time.perf_counter() - started,
                )
    finally:
        pool.shutdown(wait=not broken, cancel_futures=True)
    return outcomes


def run_cells_detailed(
    cells: Iterable[Cell],
    jobs: JobsSpec = None,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    backoff_s: float = 0.25,
    fail_fast: bool = False,
    cache: Any = USE_DEFAULT_CACHE,
    pool_threshold_s: float = POOL_THRESHOLD_S,
    on_result: Optional[Callable[[CellResult], None]] = None,
    cancel: Optional[threading.Event] = None,
    dedup: bool = True,
) -> List[CellResult]:
    """Run every cell; one :class:`CellResult` per cell, submission order.

    ``timeout_s`` bounds the wait for each cell's result (pool mode only);
    ``retries`` re-runs failed cells up to that many extra attempts, sleeping
    ``backoff_s * 2**(attempt-1)`` seconds before each retry; ``fail_fast``
    raises :class:`~repro.errors.CellExecutionError` for the first cell whose
    attempts are exhausted instead of collecting the failure.

    ``cache`` is a :class:`~repro.cache.ResultCache` (or None to disable);
    by default the process-wide :func:`~repro.cache.default_cache` is used,
    which is itself None unless the CLI (or ``REPRO_CACHE``) enabled it.
    Hits skip execution entirely; every successfully executed cacheable
    cell is stored afterwards. Because cells are pure functions of their
    arguments, hits are values a clean run would have computed — cached,
    uncached, and any ``--jobs`` runs stay bit-identical.

    ``dedup`` (default on) collapses content-identical cells *within* the
    batch to a single execution: duplicates receive a fan-out copy of the
    primary's outcome (``deduped=True``, 0 attempts). Identity is the same
    content address the cache uses, so it holds with caching off and for
    duplicates submitted before the first one lands; cells are pure, so
    values are unchanged — only the redundant work disappears.

    ``on_result`` streams outcomes: it is invoked once per cell with that
    cell's *final* :class:`CellResult` as soon as it is known (cache hits
    first, then executed cells as they resolve, then fan-out duplicates) —
    the seam the simulation service's async bridge consumes. Callbacks run
    on the calling thread and arrive in completion order, not submission
    order; the returned list is always submission-ordered regardless.

    ``cancel`` is a :class:`threading.Event`: once set, cells that have not
    started are resolved as ``"cancelled"`` failures (in-flight cells finish
    normally, and nothing is retried after cancellation). Every cell still
    gets exactly one result — cancellation reports, it never drops.

    ``pool_threshold_s`` guards against pool spin-up dwarfing the work
    (tens of ms of fork + import for a sweep of sub-millisecond cells):
    cells run in-process until their *accumulated measured* runtime crosses
    the threshold, and only the remainder is fanned out to a pool. Tiny
    sweeps therefore never pay for a pool; the worst case versus eager
    pooling is bounded by the threshold plus one cell. Set it to 0 to pool
    unconditionally; per-cell timeouts (which need a pool to preempt) also
    disable the ramp.
    """
    if timeout_s is not None and timeout_s <= 0:
        raise ConfigurationError(f"timeout_s must be positive, got {timeout_s}")
    if retries < 0:
        raise ConfigurationError(f"retries must be >= 0, got {retries}")
    if backoff_s < 0:
        raise ConfigurationError(f"backoff_s must be >= 0, got {backoff_s}")
    if pool_threshold_s < 0:
        raise ConfigurationError(
            f"pool_threshold_s must be >= 0, got {pool_threshold_s}"
        )
    cells = list(cells)
    if not cells:
        return []
    cache_obj: Optional[ResultCache] = (
        default_cache() if cache is USE_DEFAULT_CACHE else cache
    )
    results: Dict[int, CellResult] = {}
    emitted: set = set()

    def emit(index: int) -> None:
        if on_result is not None and index not in emitted:
            emitted.add(index)
            on_result(results[index])

    keys: List[Optional[str]] = [None] * len(cells)
    if cache_obj is not None:
        for index, cell in enumerate(cells):
            key = cache_obj.key_for(cell.fn, cell.args, cell.kwargs)
            keys[index] = key
            if key is None:
                continue
            hit, value = cache_obj.get(key)
            if hit:
                results[index] = CellResult(
                    index, value=value, attempts=0, cached=True
                )
                emit(index)
    pending = [index for index in range(len(cells)) if index not in results]
    # In-batch dedup: identical pending cells collapse to one execution.
    duplicates: Dict[int, List[int]] = {}
    if dedup and len(pending) > 1:
        primary_by_key: Dict[str, int] = {}
        unique: List[int] = []
        for index in pending:
            key = keys[index] if cache_obj is not None else cell_key(
                cells[index].fn, cells[index].args, cells[index].kwargs
            )
            if key is None:
                unique.append(index)
                continue
            primary = primary_by_key.setdefault(key, index)
            if primary == index:
                unique.append(index)
            else:
                duplicates.setdefault(primary, []).append(index)
        pending = unique
    workers = min(resolve_jobs(jobs), len(cells))
    pooled = workers > 1 and pending and _picklable(
        [cells[index] for index in pending]
    )
    for attempt in range(1, retries + 2):
        if not pending:
            break
        if cancel is not None and cancel.is_set():
            for index in pending:
                results[index] = _cancelled_result(index, attempt)
                emit(index)
            pending = []
            break
        if attempt > 1 and backoff_s > 0:
            time.sleep(backoff_s * 2 ** (attempt - 2))

        def settle(index: int, result: CellResult) -> None:
            # Record one attempt's outcome and stream it if it is final:
            # successes and cancellations are always final; failures only
            # once no retries remain.
            results[index] = result
            if result.ok or result.failure.kind == "cancelled":
                emit(index)
            elif attempt == retries + 1:
                emit(index)

        remaining = list(pending)
        if (
            pooled
            and attempt == 1
            and timeout_s is None
            and pool_threshold_s > 0
        ):
            # Serial ramp: see the docstring. Measured, not guessed — the
            # first cells' actual cost decides whether a pool is worth it.
            ramp_started = time.perf_counter()
            while remaining and (
                time.perf_counter() - ramp_started < pool_threshold_s
            ):
                if cancel is not None and cancel.is_set():
                    break
                index = remaining.pop(0)
                settle(index, _run_in_process(cells[index], index, attempt))
            if not remaining:
                pooled = False
        if remaining and pooled:
            pool_batch = _run_batch_pooled(
                cells, remaining, workers, timeout_s, attempt, cancel
            )
            if pool_batch is None:
                pooled = False
            else:
                for index in remaining:
                    settle(index, pool_batch[index])
                remaining = []
        for index in remaining:
            if cancel is not None and cancel.is_set():
                settle(index, _cancelled_result(index, attempt))
            else:
                settle(index, _run_in_process(cells[index], index, attempt))
        final = attempt == retries + 1
        still_failed = [
            i for i in pending
            if not results[i].ok and results[i].failure.kind != "cancelled"
        ]
        if fail_fast and final and still_failed:
            raise results[still_failed[0]].failure.as_exception()
        pending = still_failed
    # Fan duplicate outcomes out from their primaries (value *or* failure:
    # a duplicate of a failed cell reports the same failure at its index).
    for primary, dup_indices in duplicates.items():
        source = results[primary]
        for index in dup_indices:
            failure = source.failure
            if failure is not None:
                failure = replace(failure, index=index)
            results[index] = CellResult(
                index,
                value=source.value,
                failure=failure,
                attempts=0,
                cached=source.cached,
                deduped=True,
            )
            emit(index)
    if cache_obj is not None:
        for index, key in enumerate(keys):
            if key is None:
                continue
            result = results[index]
            if result.ok and not result.cached and not result.deduped:
                cache_obj.put(key, result.value)
    return [results[index] for index in range(len(cells))]


def run_cells(
    cells: Iterable[Cell],
    jobs: JobsSpec = None,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    backoff_s: float = 0.25,
    cache: Any = USE_DEFAULT_CACHE,
    pool_threshold_s: float = POOL_THRESHOLD_S,
) -> List[Any]:
    """Run every cell; results come back in submission order.

    With ``jobs > 1`` the cells execute in worker processes
    (``ProcessPoolExecutor``); exceptions raised inside a cell propagate to
    the caller either way (after ``retries`` extra attempts, if configured).
    Worker crashes are recovered transparently by re-running the affected
    cells in-process; timeouts surface as
    :class:`~repro.errors.CellExecutionError`.
    """
    detailed = run_cells_detailed(
        cells, jobs=jobs, timeout_s=timeout_s, retries=retries,
        backoff_s=backoff_s, fail_fast=False, cache=cache,
        pool_threshold_s=pool_threshold_s,
    )
    for result in detailed:
        if not result.ok:
            raise result.failure.error
    return [result.value for result in detailed]


def starmap(
    fn: Callable[..., Any],
    argument_tuples: Iterable[Tuple[Any, ...]],
    jobs: JobsSpec = None,
    **kwargs: Any,
) -> List[Any]:
    """``[fn(*args, **kwargs) for args in argument_tuples]``, fanned out."""
    return run_cells(
        [Cell(fn, tuple(args), dict(kwargs)) for args in argument_tuples],
        jobs=jobs,
    )


def platform_map(
    fn: Callable[..., Any],
    platforms: Sequence[Any],
    jobs: JobsSpec = None,
    **kwargs: Any,
) -> Dict[str, Any]:
    """Run ``fn(platform, **kwargs)`` per platform; {platform.name: result}.

    The canonical shape of most CLI subcommands (`table2`, `table3`,
    `os-scaling`, `patterns`, ...): one independent measurement per platform,
    merged into a name-keyed dict in platform order.
    """
    results = starmap(fn, [(platform,) for platform in platforms], jobs=jobs, **kwargs)
    return {platform.name: result for platform, result in zip(platforms, results)}
