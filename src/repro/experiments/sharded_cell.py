"""``repro sharded`` — serial vs sharded engine on the contention cell.

Runs the canonical multi-CCD contention cell (a paced single-CCX victim
against one whole-CCD hog per remaining chiplet, all forced onto the
victim's NPS4 endpoints — :func:`repro.core.shardexec.contention_flows`)
on the serial reference engine and on the sharded engine
(:mod:`repro.sim.sharded`), and renders the agreement: delivered
bandwidth, victim share, Jain fairness, loaded-latency percentiles, and
the sharded engine's synchronization telemetry (windows, cross-shard
messages, lookahead).

The shard count resolves — explicit argument, else the
``REPRO_DES_SHARDS`` environment switch, else one shard per CCD — *before*
cells are submitted to the runner, so the resolved count is part of the
cell's arguments. Together with :func:`repro.cache.engine_variant` (which
folds the raw environment switch into every key) this keeps cache entries
honest: a sharded result can never satisfy a serial lookup or one for a
different shard count.
"""

from __future__ import annotations

import os
from typing import List, Optional, Sequence, Tuple

from repro.analysis.report import render_table
from repro.cache import DES_SHARDS_ENV_VAR
from repro.core.shardexec import ShardCellOutcome, run_cell
from repro.errors import ConfigurationError
from repro.platform.topology import Platform
from repro.runner import Cell, CellResult, USE_DEFAULT_CACHE, run_cells_detailed

__all__ = ["ENGINES", "resolve_shards", "run_engine_cell", "run", "render"]

#: The engines, in presentation order.
ENGINES: Tuple[str, ...] = ("serial", "sharded")


def resolve_shards(platform: Platform, shards: Optional[int] = None) -> int:
    """The shard count a sharded run of ``platform`` will use.

    Precedence: explicit argument, then :data:`~repro.cache.DES_SHARDS_ENV_VAR`,
    then one shard per CCD. Resolution happens here — before any cell is
    built — so the count rides in the cell arguments and therefore in the
    cache key, never as hidden state a cached result could ignore.
    """
    if shards is None:
        raw = os.environ.get(DES_SHARDS_ENV_VAR, "").strip()
        if raw:
            try:
                shards = int(raw)
            except ValueError:
                raise ConfigurationError(
                    f"{DES_SHARDS_ENV_VAR}={raw!r} is not a shard count"
                ) from None
        else:
            shards = len(platform.ccds)
    if not 1 <= shards <= len(platform.ccds):
        raise ConfigurationError(
            f"shard count must be in [1, {len(platform.ccds)}] for "
            f"{platform.name}, got {shards}"
        )
    return shards


def run_engine_cell(
    platform: Platform,
    engine: str,
    shards: int,
    transactions_per_core: int = 150,
    seed: int = 0,
) -> ShardCellOutcome:
    """One (engine, shards) cell (independent, hardened-runner friendly)."""
    return run_cell(
        platform,
        engine=engine,
        shards=shards if engine == "sharded" else None,
        transactions_per_core=transactions_per_core,
        seed=seed,
    )


def run(
    platform: Platform,
    engines: Sequence[str] = ENGINES,
    shards: Optional[int] = None,
    seed: int = 0,
    transactions_per_core: int = 150,
    jobs=None,
    cache=USE_DEFAULT_CACHE,
) -> List[CellResult]:
    """Every requested engine as one hardened-runner cell each."""
    resolved = resolve_shards(platform, shards)
    cells = [
        Cell(
            run_engine_cell,
            (platform, engine, resolved),
            dict(transactions_per_core=transactions_per_core, seed=seed),
        )
        for engine in engines
    ]
    return run_cells_detailed(cells, jobs=jobs, cache=cache)


def render(platform_name: str, results: Sequence[CellResult]) -> str:
    """The engine-comparison table plus a sync-telemetry line per engine."""
    headers = [
        "engine", "shards", "victim GB/s", "total GB/s", "victim share",
        "Jain", "victim p50 ns", "victim p99 ns", "txns",
    ]
    rows = []
    notes = []
    for result in results:
        if not result.ok:
            rows.append([
                f"cell {result.index}", f"FAILED ({result.failure.kind})",
                "-", "-", "-", "-", "-", "-", "-",
            ])
            continue
        outcome: ShardCellOutcome = result.value
        victim = outcome.flows[0]
        rows.append([
            outcome.engine,
            str(outcome.shards),
            f"{victim.achieved_gbps:.2f}",
            f"{sum(f.achieved_gbps for f in outcome.flows):.2f}",
            f"{outcome.victim_share:.3f}",
            f"{outcome.jain:.4f}",
            f"{victim.p50_ns:.1f}",
            f"{victim.p99_ns:.1f}",
            str(outcome.transactions),
        ])
        if outcome.sync is not None:
            sync = outcome.sync
            notes.append(
                f"{outcome.engine}({outcome.shards}): "
                f"lookahead {sync['lookahead_ns']:.1f} ns, "
                f"{sync['windows']} windows, "
                f"{sync['cross_messages']} cross-shard messages"
            )
    table = render_table(
        headers, rows,
        title=f"Sharded vs serial DES on the contention cell ({platform_name})",
    )
    if notes:
        table += "\n" + "\n".join(notes)
    return table
