"""CSV export of measurement artifacts.

The offline environment has no plotting stack, so every experiment result
can be exported as CSV for external tooling: time series (Figure 5 traces),
sweep curves (Figures 3/6), and generic tables.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Dict, Iterable, Optional, Sequence, Union

from repro.analysis.timeseries import TimeSeries
from repro.errors import MeasurementError

__all__ = ["rows_to_csv", "timeseries_to_csv", "curves_to_csv"]

PathLike = Union[str, Path]


def _write(text: str, path: Optional[PathLike]) -> str:
    if path is not None:
        Path(path).write_text(text, encoding="utf-8")
    return text


def rows_to_csv(
    headers: Sequence[str],
    rows: Iterable[Sequence[object]],
    path: Optional[PathLike] = None,
) -> str:
    """Serialize a header + rows table; optionally write it to ``path``."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(headers)
    for row in rows:
        if len(row) != len(headers):
            raise MeasurementError(
                f"row has {len(row)} cells for {len(headers)} headers"
            )
        writer.writerow(row)
    return _write(buffer.getvalue(), path)


def timeseries_to_csv(
    series: Dict[str, TimeSeries],
    path: Optional[PathLike] = None,
    time_header: str = "time_s",
) -> str:
    """Serialize aligned time series (e.g. the two Figure 5 flows).

    All series must share the same time base.
    """
    if not series:
        raise MeasurementError("no series to export")
    names = sorted(series)
    base = series[names[0]].times_s
    for name in names[1:]:
        other = series[name].times_s
        if len(other) != len(base) or any(
            abs(a - b) > 1e-12 for a, b in zip(base, other)
        ):
            raise MeasurementError(
                f"series {name!r} has a different time base"
            )
    rows = [
        [f"{t:.6f}"] + [f"{series[name].values[i]:.6f}" for name in names]
        for i, t in enumerate(base)
    ]
    return rows_to_csv([time_header] + names, rows, path)


def curves_to_csv(
    x_header: str,
    x_values: Sequence[float],
    curves: Dict[str, Sequence[float]],
    path: Optional[PathLike] = None,
) -> str:
    """Serialize one or more y-series against a shared x axis."""
    if not curves:
        raise MeasurementError("no curves to export")
    names = sorted(curves)
    for name in names:
        if len(curves[name]) != len(x_values):
            raise MeasurementError(
                f"curve {name!r} has {len(curves[name])} points for "
                f"{len(x_values)} x values"
            )
    rows = [
        [f"{x:.6f}"] + [f"{curves[name][i]:.6f}" for name in names]
        for i, x in enumerate(x_values)
    ]
    return rows_to_csv([x_header] + names, rows, path)
