"""Rate adaptation dynamics: how fast a flow reaches its new allocation.

Figure 5 shows that "bandwidth harvesting does not happen instantly": when a
competing flow throttles, the unthrottled flow takes ≈100 ms to absorb the
freed Infinity Fabric bandwidth and ≈500 ms on the P Link (EPYC 9634). The
7302's IF instead shows "drastic variation", which the paper attributes to
the intra-CC queueing module — an over-aggressive token-reclaim loop, i.e.
an under-damped controller.

The window growth of a closed-loop sender behaves like a low-order control
loop around its steady-state allocation, so we model exactly that:

* :class:`InstantAdaptation` — idealized (no dynamics);
* :class:`FirstOrderAdaptation` — exponential approach with time constant τ
  (the 9634's links);
* :class:`SecondOrderAdaptation` — damped oscillator; small damping ratios
  produce the 7302's persistent IF variation.
"""

from __future__ import annotations

import math
from typing import List, Protocol, Sequence

from repro.errors import ConfigurationError

__all__ = [
    "AdaptationModel",
    "InstantAdaptation",
    "FirstOrderAdaptation",
    "SecondOrderAdaptation",
]

#: Settling is conventionally measured to 90% of the step; exp(-2.3) ≈ 0.1.
_SETTLE_FACTOR = math.log(10.0)


class AdaptationModel(Protocol):
    """State-ful tracker of one flow's achieved rate toward a moving target.

    Models *may* additionally provide ``run_series(targets, dt_s)`` —
    equivalent to calling :meth:`step` once per target and collecting the
    results, but in one call. The simulator's fast path uses it when
    present (the built-in models implement it with the identical update
    arithmetic, so the two call styles are bit-for-bit interchangeable) and
    falls back to per-step calls otherwise.
    """

    def reset(self, value: float) -> None:
        """Initialize the tracked rate."""

    def step(self, target: float, dt_s: float) -> float:
        """Advance by ``dt_s`` seconds toward ``target``; returns the rate."""


class InstantAdaptation:
    """No dynamics: the achieved rate equals the allocation immediately."""

    def __init__(self) -> None:
        self._value = 0.0

    def reset(self, value: float) -> None:
        """Initialize the tracked rate."""
        self._value = value

    def step(self, target: float, dt_s: float) -> float:
        """Advance dt seconds toward target; returns the rate."""
        self._value = target
        return self._value

    def run_series(self, targets: Sequence[float], dt_s: float) -> List[float]:
        """Batched :meth:`step`: the rate tracks every target exactly."""
        targets = list(targets)
        if targets:
            self._value = targets[-1]
        return targets


class FirstOrderAdaptation:
    """Exponential approach: ``dx/dt = (target - x) / tau``."""

    def __init__(self, tau_s: float) -> None:
        if tau_s <= 0:
            raise ConfigurationError(f"tau must be positive, got {tau_s}")
        self.tau_s = tau_s
        self._value = 0.0

    @classmethod
    def from_settling_time(cls, settle_s: float) -> "FirstOrderAdaptation":
        """Build from a 90%-settling time (Figure 5's "takes roughly X ms")."""
        return cls(settle_s / _SETTLE_FACTOR)

    def reset(self, value: float) -> None:
        """Initialize the tracked rate."""
        self._value = value

    def step(self, target: float, dt_s: float) -> float:
        """Exact exponential update toward target over dt seconds."""
        blend = 1.0 - math.exp(-dt_s / self.tau_s)
        self._value += (target - self._value) * blend
        return self._value

    def run_series(self, targets: Sequence[float], dt_s: float) -> List[float]:
        """Batched :meth:`step`, bit-identical to the per-step sequence."""
        blend = 1.0 - math.exp(-dt_s / self.tau_s)
        value = self._value
        out: List[float] = []
        for target in targets:
            value += (target - value) * blend
            out.append(value)
        self._value = value
        return out


class SecondOrderAdaptation:
    """Damped oscillator: ``x'' + 2ζω x' + ω²(x − target) = 0``.

    ζ < 1 rings around the target; ζ ≈ 0.1-0.2 with a period of a few hundred
    ms reproduces the 7302 IF's "drastic variation" under demand changes.
    Semi-implicit Euler keeps the discretization stable at the simulator's
    millisecond steps.
    """

    def __init__(self, omega_rad_s: float, zeta: float) -> None:
        if omega_rad_s <= 0:
            raise ConfigurationError(f"omega must be positive, got {omega_rad_s}")
        if zeta <= 0:
            raise ConfigurationError(f"zeta must be positive, got {zeta}")
        self.omega = omega_rad_s
        self.zeta = zeta
        self._value = 0.0
        self._velocity = 0.0

    def reset(self, value: float) -> None:
        """Initialize the tracked rate (zero velocity)."""
        self._value = value
        self._velocity = 0.0

    def step(self, target: float, dt_s: float) -> float:
        """Semi-implicit Euler update toward target over dt seconds."""
        accel = (
            -2.0 * self.zeta * self.omega * self._velocity
            - self.omega**2 * (self._value - target)
        )
        self._velocity += accel * dt_s
        self._value += self._velocity * dt_s
        return max(0.0, self._value)

    def run_series(self, targets: Sequence[float], dt_s: float) -> List[float]:
        """Batched :meth:`step`, bit-identical to the per-step sequence."""
        damping = 2.0 * self.zeta * self.omega
        stiffness = self.omega**2
        value, velocity = self._value, self._velocity
        out: List[float] = []
        for target in targets:
            velocity += (-damping * velocity - stiffness * (value - target)) * dt_s
            value += velocity * dt_s
            out.append(max(0.0, value))
        self._value, self._velocity = value, velocity
        return out
