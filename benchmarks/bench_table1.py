"""Regenerate Table 1 — hardware specifications (paper §2.2).

Static by construction; the benchmark verifies the presets reproduce the
paper's table exactly and times the platform construction itself.
"""

from repro.experiments import table1
from repro.platform.presets import epyc_7302, epyc_9634

from benchmarks.conftest import emit


def bench_build_platforms(benchmark):
    """Time building both platform models."""

    def build():
        return epyc_7302(), epyc_9634()

    p7, p9 = benchmark(build)
    assert len(p7.cores) == 16
    assert len(p9.cores) == 84


def bench_table1(benchmark):
    """Regenerate and validate Table 1."""
    result = benchmark.pedantic(table1.run, rounds=3, iterations=1)
    emit(table1.render(result))
    for name, expected in table1.PAPER_TABLE1.items():
        for key, value in expected.items():
            assert result.row(name)[key] == value, (name, key)
