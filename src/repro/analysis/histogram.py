"""Log-binned latency histograms.

:class:`~repro.analysis.stats.LatencyStats` keeps full sample arrays — fine
for experiments, wasteful for long-running telemetry. The paper's §4 #5
profiler needs "time-series-based probabilistic and compact data
structures"; :class:`LatencyHistogram` is the latency-side counterpart to
the count-min sketch: fixed memory, bounded relative error (the bin growth
factor), streaming insertion, mergeable across workers, and percentile
estimation by interpolation within bins.
"""

from __future__ import annotations

import math
from typing import List, Sequence

from repro.errors import ConfigurationError, MeasurementError

__all__ = ["LatencyHistogram"]


class LatencyHistogram:
    """A histogram with geometrically growing bins over [min_ns, max_ns]."""

    def __init__(
        self,
        min_ns: float = 1.0,
        max_ns: float = 1e7,
        growth: float = 1.05,
    ) -> None:
        if min_ns <= 0 or max_ns <= min_ns:
            raise ConfigurationError("need 0 < min_ns < max_ns")
        if growth <= 1.0:
            raise ConfigurationError("growth factor must exceed 1")
        self.min_ns = min_ns
        self.max_ns = max_ns
        self.growth = growth
        self._log_growth = math.log(growth)
        bin_count = (
            int(math.ceil(math.log(max_ns / min_ns) / self._log_growth)) + 2
        )
        # Bin 0 is the underflow bucket; the last bin is overflow.
        self.counts: List[int] = [0] * bin_count
        self.total = 0

    def _bin_index(self, value_ns: float) -> int:
        if value_ns < self.min_ns:
            return 0
        if value_ns >= self.max_ns:
            return len(self.counts) - 1
        return 1 + int(math.log(value_ns / self.min_ns) / self._log_growth)

    def _bin_bounds(self, index: int) -> tuple[float, float]:
        if index == 0:
            return (0.0, self.min_ns)
        if index == len(self.counts) - 1:
            return (self.max_ns, self.max_ns)
        lo = self.min_ns * self.growth ** (index - 1)
        return (lo, min(lo * self.growth, self.max_ns))

    def add(self, value_ns: float) -> None:
        """Insert one sample."""
        if value_ns < 0:
            raise MeasurementError(f"negative latency {value_ns}")
        self.counts[self._bin_index(value_ns)] += 1
        self.total += 1

    def add_many(self, values_ns: Sequence[float]) -> None:
        """Insert a batch of samples."""
        for value in values_ns:
            self.add(value)

    def merge(self, other: "LatencyHistogram") -> None:
        """Fold another histogram (same binning) into this one."""
        if (
            other.min_ns != self.min_ns
            or other.max_ns != self.max_ns
            or other.growth != self.growth
        ):
            raise MeasurementError("histograms have different binnings")
        for index, count in enumerate(other.counts):
            self.counts[index] += count
        self.total += other.total

    def percentile(self, q: float) -> float:
        """Estimated ``q``-th percentile (linear within the hit bin)."""
        if not 0.0 <= q <= 100.0:
            raise MeasurementError(f"percentile must be in [0, 100], got {q}")
        if self.total == 0:
            raise MeasurementError("empty histogram")
        target = q / 100.0 * self.total
        running = 0
        for index, count in enumerate(self.counts):
            if count == 0:
                continue
            if running + count >= target:
                lo, hi = self._bin_bounds(index)
                inside = max(0.0, min(1.0, (target - running) / count))
                return lo + (hi - lo) * inside
            running += count
        lo, hi = self._bin_bounds(len(self.counts) - 1)
        return hi

    @property
    def relative_error(self) -> float:
        """Worst-case relative quantile error from binning (growth − 1)."""
        return self.growth - 1.0

    @property
    def memory_bins(self) -> int:
        """Number of bins held (fixed at construction)."""
        return len(self.counts)

    def render(self, width: int = 50, max_rows: int = 16) -> str:
        """ASCII bar chart of the occupied region of the histogram."""
        occupied = [
            (index, count)
            for index, count in enumerate(self.counts)
            if count > 0
        ]
        if not occupied:
            return "(empty histogram)"
        stride = max(1, len(occupied) // max_rows)
        peak = max(count for __, count in occupied)
        lines = []
        for row_start in range(0, len(occupied), stride):
            chunk = occupied[row_start:row_start + stride]
            count = sum(c for __, c in chunk)
            lo = self._bin_bounds(chunk[0][0])[0]
            hi = self._bin_bounds(chunk[-1][0])[1]
            bar = "#" * max(1, int(count / peak / stride * width))
            lines.append(f"{lo:>9.0f}-{hi:<9.0f} {count:>8} {bar}")
        return "\n".join(lines)
