"""Transaction layer: typed messages, path compilation, DES execution.

The paper's L3 transaction layer "describes data flows from source to
destination entities at the cacheline or FLIT granularity" (§2.3). Here a
:class:`~repro.transport.message.Transaction` is routed by the
:class:`~repro.transport.path.PathResolver` into a compiled path — the fixed
propagation latency plus the ordered queued stages it must clear — and driven
through the DES by :class:`~repro.transport.transaction.TransactionExecutor`.
"""

from repro.transport.message import OpKind, Transaction
from repro.transport.path import CompiledPath, PathResolver, QueuedStage
from repro.transport.transaction import TransactionExecutor

__all__ = [
    "OpKind",
    "Transaction",
    "CompiledPath",
    "PathResolver",
    "QueuedStage",
    "TransactionExecutor",
]
