#!/usr/bin/env python3
"""Bandwidth harvesting timelines — Figure 5, as an ASCII strip chart.

Two flows share a link for six seconds; flow 0 throttles by 2 GB/s during
[2,3)s and [4,5)s. On the 9634 the unthrottled flow absorbs the freed
bandwidth with a ~100 ms (IF) or ~500 ms (P Link) delay; on the 7302's IF
the under-damped token-reclaim loop rings visibly.

Run:  python examples/bandwidth_harvesting.py
"""

from repro import epyc_7302, epyc_9634
from repro.experiments import fig5


def strip_chart(trace, capacity, width=78, height=9):
    """Render a flow's achieved bandwidth as an ASCII timeline."""
    series = trace.achieved_series()
    lo = capacity / 2 - 3.0
    hi = capacity / 2 + 3.0
    stride = max(1, len(series.times_s) // width)
    columns = series.values[::stride][:width]
    rows = []
    for level in range(height, -1, -1):
        threshold = lo + (hi - lo) * level / height
        line = "".join("#" if v >= threshold else " " for v in columns)
        rows.append(f"{threshold:6.1f} |{line}")
    rows.append("       +" + "-" * width)
    seconds = "".join(
        str(int(t)) if abs(t - round(t)) < 0.05 else " "
        for t in series.times_s[::stride][:width]
    )
    rows.append("        " + seconds + "  (s)")
    return "\n".join(rows)


def main() -> None:
    for platform, link in (
        (epyc_9634(), "if"),
        (epyc_9634(), "plink"),
        (epyc_7302(), "if"),
    ):
        result = fig5.run(platform, link, dt_s=0.01)
        scenario = result.scenario
        delay = (
            "n/a (oscillates)"
            if result.harvest_delay_s is None
            else f"{result.harvest_delay_s * 1e3:.0f} ms"
        )
        print(
            f"\n== {scenario.platform} / {scenario.name} "
            f"(capacity {scenario.capacity_gbps:.1f} GB/s) — "
            f"flow 1 (unthrottled), harvest delay {delay} =="
        )
        print(strip_chart(result.traces["flow1"], scenario.capacity_gbps))


if __name__ == "__main__":
    main()
