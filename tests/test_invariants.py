"""Tests for opt-in strict invariant checking across both backends."""

import pytest

from repro.errors import SimulationError
from repro.fluid.solver import Channel, FluidFlow, Policy
from repro.fluid.timeseries import DemandSchedule, FluidSimulator
from repro.sim.engine import Environment
from repro.transport.message import OpKind
from repro.transport.path import PathResolver
from repro.transport.transaction import TransactionExecutor


# --------------------------------------------------------------------------
# engine strict mode


class TestEngineStrict:
    def test_strict_run_matches_default_run(self):
        def trace(strict):
            env = Environment(strict=strict)
            fired = []

            def ticker():
                for __ in range(5):
                    yield env.timeout(3.0)
                    fired.append(env.now)

            env.process(ticker())
            env.run()
            return fired, env.now

        assert trace(True) == trace(False)

    def test_strict_horizon_semantics(self):
        env = Environment(strict=True)
        fired = []

        def ticker():
            for __ in range(10):
                yield env.timeout(3.0)
                fired.append(env.now)

        env.process(ticker())
        env.run(until=10.0)
        assert env.now == 10.0
        assert fired == [3.0, 6.0, 9.0]
        env.run()
        assert env.now == 30.0

    def test_strict_until_event(self):
        env = Environment(strict=True)

        def task():
            yield env.timeout(4.0)
            return "done"

        assert env.run(env.process(task())) == "done"
        assert env.now == 4.0

    def test_negative_timeout_rejected_either_way(self):
        for strict in (False, True):
            env = Environment(strict=strict)
            with pytest.raises(SimulationError):
                env.timeout(-1.0)


# --------------------------------------------------------------------------
# byte conservation


class TestConservation:
    def _run_load(self, platform, strict):
        env = Environment(strict=strict)
        resolver = PathResolver(env, platform, seed=0)
        executor = TransactionExecutor(env, strict=strict)
        path = resolver.dram_path(0, 0)
        from repro.core.loadgen import ClosedLoopIssuer

        issuer = ClosedLoopIssuer(
            env, executor, path_of_worker=lambda __: path,
            op=OpKind.READ, workers=2, window=4, count_per_worker=50,
        )
        issuer.run()
        return executor

    def test_books_balance_after_clean_run(self, p7302):
        executor = self._run_load(p7302, strict=True)
        assert executor.bytes_injected > 0
        assert executor.bytes_injected == executor.bytes_delivered
        assert executor.bytes_in_flight == 0
        executor.assert_conserved(drained=True)

    def test_books_kept_even_when_not_strict(self, p7302):
        executor = self._run_load(p7302, strict=False)
        assert executor.bytes_injected == executor.bytes_delivered
        executor.assert_conserved(drained=True)

    def test_lost_bytes_detected(self, p7302):
        executor = self._run_load(p7302, strict=False)
        executor.bytes_in_flight += 64        # simulate an abandoned txn
        executor.bytes_injected += 64
        executor.assert_conserved(drained=False)
        with pytest.raises(SimulationError, match="in flight"):
            executor.assert_conserved(drained=True)

    def test_double_completion_detected(self, p7302):
        executor = self._run_load(p7302, strict=False)
        executor.bytes_in_flight -= 64
        with pytest.raises(SimulationError, match="twice"):
            executor.assert_conserved(drained=False)

    def test_imbalance_detected(self, p7302):
        executor = self._run_load(p7302, strict=False)
        executor.bytes_delivered += 64
        with pytest.raises(SimulationError, match="conservation"):
            executor.assert_conserved(drained=False)

    def test_reset_rebaselines_books(self, p7302):
        executor = self._run_load(p7302, strict=False)
        executor.reset()
        assert executor.bytes_injected == executor.bytes_in_flight == 0
        assert executor.bytes_delivered == 0
        executor.assert_conserved(drained=True)

    def test_strict_rejects_non_positive_size(self, p7302):
        env = Environment()
        resolver = PathResolver(env, p7302, seed=0)
        executor = TransactionExecutor(env, strict=True)
        path = resolver.dram_path(0, 0)
        from repro.transport.message import Transaction

        # The constructor validates size itself, so corrupt one after the
        # fact — strict mode is the backstop for exactly this kind of state.
        txn = Transaction(op=OpKind.READ, size_bytes=64)
        txn.size_bytes = 0
        with pytest.raises(SimulationError, match="size"):
            env.run(env.process(executor.execute(txn, path)))


# --------------------------------------------------------------------------
# fluid strict mode


class TestFluidStrict:
    def _sim(self, strict):
        link = Channel("link", 10.0)
        flows = [
            FluidFlow("a", 8.0, [(link, 1.0)]),
            FluidFlow("b", 8.0, [(link, 1.0)]),
        ]
        return FluidSimulator(
            flows,
            {"a": DemandSchedule(8.0), "b": DemandSchedule(8.0)},
            policy=Policy.MAX_MIN,
            dt_s=0.1,
            strict=strict,
        )

    def test_strict_run_matches_default(self):
        healthy = self._sim(strict=False).run(1.0)
        checked = self._sim(strict=True).run(1.0)
        for name in ("a", "b"):
            assert healthy[name].achieved_gbps == checked[name].achieved_gbps

    def test_strict_catches_oversubscription(self, monkeypatch):
        sim = self._sim(strict=True)

        def bad_solve(flows, policy):
            # A broken allocator granting everyone their full demand.
            return {flow.name: flow.demand_gbps for flow in flows}

        monkeypatch.setattr("repro.fluid.timeseries.solve", bad_solve)
        with pytest.raises(SimulationError, match="oversubscribed"):
            sim.run(1.0)

    def test_strict_catches_over_allocation(self, monkeypatch):
        sim = self._sim(strict=True)

        def bad_solve(flows, policy):
            return {flow.name: flow.demand_gbps + 5.0 for flow in flows}

        monkeypatch.setattr("repro.fluid.timeseries.solve", bad_solve)
        with pytest.raises(SimulationError, match="above its demand"):
            sim.run(1.0)

    def test_strict_catches_negative_allocation(self, monkeypatch):
        sim = self._sim(strict=True)

        def bad_solve(flows, policy):
            return {flow.name: -1.0 for flow in flows}

        monkeypatch.setattr("repro.fluid.timeseries.solve", bad_solve)
        with pytest.raises(SimulationError, match="negative"):
            sim.run(1.0)
