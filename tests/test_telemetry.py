"""Tests for telemetry: counters, sketch, matrix, devtree, profiler."""

import pytest

from repro.errors import ConfigurationError, MeasurementError
from repro.platform.interconnect import LinkKind, LinkSpec
from repro.telemetry.counters import CounterRegistry, LinkCounters
from repro.telemetry.devtree import build_devtree, proc_chiplet_net, render_dts
from repro.telemetry.matrix import TrafficMatrix
from repro.telemetry.profiler import FlowProfiler, FlowSample
from repro.telemetry.sketch import CountMinSketch


def make_link(name="l0", read=32.0, write=16.0):
    return LinkSpec(name, LinkKind.GMI, 1.0, read, write)


class TestCounters:
    def test_record_and_totals(self):
        counters = LinkCounters(make_link())
        counters.record(64, is_write=False)
        counters.record(64, is_write=False)
        counters.record(128, is_write=True)
        assert counters.read_bytes == 128
        assert counters.write_bytes == 128
        assert counters.read_txns == 2
        assert counters.write_txns == 1

    def test_negative_size_rejected(self):
        with pytest.raises(MeasurementError):
            LinkCounters(make_link()).record(-1, False)

    def test_utilization(self):
        counters = LinkCounters(make_link(read=32.0))
        counters.record(320, is_write=False)
        # 320 bytes over 20 ns = 16 GB/s on a 32 GB/s direction.
        assert counters.utilization(False, 20.0) == pytest.approx(0.5)

    def test_utilization_clamped(self):
        counters = LinkCounters(make_link(read=1.0))
        counters.record(1000, is_write=False)
        assert counters.utilization(False, 1.0) == 1.0

    def test_utilization_invalid_window(self):
        with pytest.raises(MeasurementError):
            LinkCounters(make_link()).utilization(False, 0.0)

    def test_registry(self):
        registry = CounterRegistry()
        link = make_link()
        registry.record(link, 64, False)
        registry.record(link, 64, True)
        assert registry.get("l0").read_bytes == 64
        assert registry.total_bytes() == 128
        assert registry.get("missing") is None
        assert "l0" in registry.snapshot()


class TestSketch:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            CountMinSketch(0, 4)
        with pytest.raises(ConfigurationError):
            CountMinSketch(16, 0)

    def test_never_underestimates(self):
        sketch = CountMinSketch(width=64, depth=4)
        truth = {}
        for i in range(500):
            key = f"flow-{i % 37}"
            sketch.add(key, i % 7 + 1)
            truth[key] = truth.get(key, 0) + i % 7 + 1
        for key, count in truth.items():
            assert sketch.estimate(key) >= count

    def test_exact_when_uncrowded(self):
        sketch = CountMinSketch(width=4096, depth=4)
        sketch.add("a", 10)
        sketch.add("b", 20)
        assert sketch.estimate("a") == 10
        assert sketch.estimate("b") == 20

    def test_unknown_key_is_bounded(self):
        sketch = CountMinSketch(width=4096, depth=4)
        sketch.add("a", 100)
        assert sketch.estimate("zzz") <= sketch.error_bound() + 100

    def test_error_bound_formula(self):
        sketch = CountMinSketch(width=1024, depth=4)
        sketch.add("a", 1000)
        import math

        assert sketch.error_bound() == pytest.approx(math.e / 1024 * 1000)

    def test_from_error_bounds(self):
        sketch = CountMinSketch.from_error_bounds(epsilon=0.01, delta=0.01)
        assert sketch.width >= 272
        assert sketch.depth >= 4  # ceil(ln 100) = 5

    def test_from_error_bounds_validation(self):
        with pytest.raises(ConfigurationError):
            CountMinSketch.from_error_bounds(0.0, 0.5)

    def test_negative_count_rejected(self):
        with pytest.raises(ConfigurationError):
            CountMinSketch().add("a", -1)

    def test_total_tracks_sum(self):
        sketch = CountMinSketch()
        sketch.add("a", 5)
        sketch.add("b", 7)
        assert sketch.total == 12

    def test_memory_cells(self):
        assert CountMinSketch(128, 3).memory_cells == 384


class TestTrafficMatrix:
    def test_record_and_sums(self):
        matrix = TrafficMatrix(["ccd0", "ccd1"], ["dram", "cxl"])
        matrix.record("ccd0", "dram", 10.0)
        matrix.record("ccd0", "cxl", 5.0)
        matrix.record("ccd1", "dram", 20.0)
        assert matrix.row_sums() == pytest.approx({"ccd0": 15.0, "ccd1": 20.0})
        assert matrix.col_sums() == pytest.approx({"dram": 30.0, "cxl": 5.0})
        assert matrix.total_gbps() == pytest.approx(35.0)

    def test_unknown_endpoint_rejected(self):
        matrix = TrafficMatrix(["a"], ["b"])
        with pytest.raises(MeasurementError):
            matrix.record("x", "b", 1.0)

    def test_duplicate_names_rejected(self):
        with pytest.raises(ConfigurationError):
            TrafficMatrix(["a", "a"], ["b"])

    def test_hottest(self):
        matrix = TrafficMatrix(["s0", "s1"], ["d0", "d1"])
        matrix.record("s0", "d1", 9.0)
        matrix.record("s1", "d0", 3.0)
        hottest = matrix.hottest(1)
        assert hottest == [("s0", "d1", 9.0)]

    def test_gravity_exact_for_product_form(self):
        # NPS1 interleave spreads every source proportionally: the gravity
        # estimate is then exact.
        truth = TrafficMatrix(["s0", "s1"], ["d0", "d1"])
        for src, out in (("s0", 10.0), ("s1", 30.0)):
            for dst, frac in (("d0", 0.25), ("d1", 0.75)):
                truth.record(src, dst, out * frac)
        estimate = TrafficMatrix.gravity_estimate(
            truth.row_sums(), truth.col_sums()
        )
        assert truth.max_abs_error(estimate) == pytest.approx(0.0, abs=1e-9)

    def test_gravity_mismatched_totals_rejected(self):
        with pytest.raises(MeasurementError):
            TrafficMatrix.gravity_estimate({"s": 10.0}, {"d": 20.0})

    def test_max_abs_error_requires_same_shape(self):
        a = TrafficMatrix(["s"], ["d"])
        b = TrafficMatrix(["x"], ["d"])
        with pytest.raises(MeasurementError):
            a.max_abs_error(b)


class TestDevtree:
    def test_tree_structure(self, p9634):
        tree = build_devtree(p9634)
        assert tree["compatible"] == "amd,epyc 9634".replace(" ", "-")
        assert len(tree["compute-chiplets"]) == 12
        assert len(tree["io-chiplet"]["memory-controllers"]) == 12
        hubs = tree["io-chiplet"]["io-hubs"]
        assert "iohub0" in hubs
        devices = hubs["iohub0"]["root-complexes"]["rc0"]["devices"]
        assert "cxl0" in devices
        assert devices["cxl0"]["flit-bytes"] == 68

    def test_tree_without_cxl(self, p7302):
        tree = build_devtree(p7302)
        rc = tree["io-chiplet"]["io-hubs"]["iohub0"]["root-complexes"]["rc0"]
        # No CXL memory on the 7302 — only its generic PCIe endpoint.
        assert list(rc["devices"]) == ["pcie0"]
        assert rc["devices"]["pcie0"]["class"] == "pcie-nic"

    def test_render_dts(self, p7302):
        text = render_dts(build_devtree(p7302))
        assert text.startswith("chiplet-net {")
        assert text.rstrip().endswith("};")
        assert "ccd0 {" in text
        assert 'microarchitecture = "Zen 2";' in text
        assert text.count("{") == text.count("}")

    def test_proc_report(self, p7302):
        registry = CounterRegistry()
        registry.record(p7302.link("gmi/ccd0"), 6400, False)
        report = proc_chiplet_net(p7302, registry, elapsed_ns=1000.0)
        assert "chiplet-net: EPYC 7302" in report
        assert "gmi/ccd0" in report
        lines = [l for l in report.splitlines() if l.startswith("gmi/ccd0")]
        assert "6400" in lines[0]


class TestProfiler:
    def test_top_flows(self):
        profiler = FlowProfiler(top_k=2)
        for i, (flow, size) in enumerate(
            [("big", 1000)] * 10 + [("mid", 100)] * 10 + [("small", 1)] * 10
        ):
            profiler.record(FlowSample(flow, size, float(i)))
        top = profiler.top_flows()
        assert top[0][0] == "big"
        assert top[1][0] == "mid"

    def test_flow_rate(self):
        profiler = FlowProfiler()
        profiler.record(FlowSample("f", 64, 0.0))
        profiler.record(FlowSample("f", 64, 64.0))
        # 128 bytes over 64 ns = 2 GB/s.
        assert profiler.flow_gbps("f") == pytest.approx(2.0)

    def test_rate_without_window(self):
        profiler = FlowProfiler()
        assert profiler.flow_gbps("f") == 0.0

    def test_report_lists_flows(self):
        profiler = FlowProfiler(top_k=3)
        for t in range(5):
            profiler.record(FlowSample("alpha", 64, float(t)))
        report = profiler.report()
        assert "alpha" in report
        assert "5 samples" in report

    def test_eviction_keeps_heavy_hitters(self):
        profiler = FlowProfiler(top_k=2, sketch_width=4096)
        for i in range(500):
            profiler.record(FlowSample(f"light-{i}", 1, float(i)))
        for __ in range(50):
            profiler.record(FlowSample("heavy", 1000, 1000.0))
        assert profiler.top_flows()[0][0] == "heavy"

    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FlowProfiler(top_k=0)


class TestDevtreeJson:
    def test_json_round_trips(self, p9634):
        import json

        from repro.telemetry.devtree import to_json

        tree = build_devtree(p9634)
        parsed = json.loads(to_json(tree))
        assert parsed["compatible"] == tree["compatible"]
        assert len(parsed["compute-chiplets"]) == 12

    def test_json_is_sorted_and_indented(self, p7302):
        from repro.telemetry.devtree import to_json

        text = to_json(build_devtree(p7302))
        assert text.startswith("{\n")
        # Top-level keys come out sorted.
        assert text.index('"compatible"') < text.index('"compute-chiplets"')
        assert text.index('"compute-chiplets"') < text.index('"io-chiplet"')
