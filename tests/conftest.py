"""Shared fixtures: the two paper platforms, built once per session."""

import os

import pytest

from repro.platform.presets import epyc_7302, epyc_9634

# Tests monkeypatch experiment functions and then drive cli.main(); the
# CLI's default-on result cache would persist those doctored values under
# real keys. Keep the whole test process uncached unless a test opts in
# explicitly (monkeypatch.setenv / an explicit ResultCache).
os.environ.setdefault("REPRO_CACHE", "0")


def pytest_addoption(parser):
    parser.addoption(
        "--update-goldens",
        action="store_true",
        default=False,
        help=(
            "rewrite tests/goldens/*.json from the current simulator "
            "output instead of comparing against it"
        ),
    )


@pytest.fixture(scope="session")
def update_goldens(request):
    """True when the run should rewrite golden snapshots, not check them."""
    return request.config.getoption("--update-goldens")


@pytest.fixture(scope="session")
def p7302():
    return epyc_7302()


@pytest.fixture(scope="session")
def p9634():
    return epyc_9634()


@pytest.fixture(scope="session", params=["7302", "9634"])
def platform(request, p7302, p9634):
    """Parametrized over both evaluated platforms."""
    return p7302 if request.param == "7302" else p9634
