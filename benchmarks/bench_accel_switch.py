"""Ablation: intra-host switching for accelerators (§4 direction #4).

Dispatches accelerator kernels while the host chiplet streams CXL writes
through the shared hub port, with and without the intra-host switch
provisioning bandwidth. The latency-sensitive signal plane (doorbell,
descriptor fetch, completion) must be protected; the data plane must not be
hurt (work conservation).
"""

import pytest

from repro.experiments import accel_dispatch

from benchmarks.conftest import emit


def bench_accel_dispatch_protection(benchmark, p9634):
    reports = benchmark.pedantic(
        accel_dispatch.compare, args=(p9634,), kwargs={"jobs": 10},
        rounds=1, iterations=1,
    )
    emit(accel_dispatch.render(reports))
    unmanaged = reports["unmanaged"]
    managed = reports["managed"]
    # Managed signal latency returns to near-unloaded (≈506 ns); unmanaged
    # queues behind the background writes at the hub port.
    assert managed.mean_signal_ns < 0.6 * unmanaged.mean_signal_ns
    assert unmanaged.mean_signal_ns > 900.0
    assert managed.mean_signal_ns == pytest.approx(510.0, rel=0.1)
    # Work conservation on the data plane.
    assert managed.mean_data_us == pytest.approx(
        unmanaged.mean_data_us, rel=0.1
    )
    # The background kept its max-min grant, not zero.
    assert managed.background_rate_gbps is not None
    assert managed.background_rate_gbps > 0.3 * (
        p9634.spec.bandwidth.hub_port_write_gbps
    )
