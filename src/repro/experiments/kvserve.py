"""``repro kvstore`` — open-loop kvstore serving tails, hybrid engine.

The sweep the ROADMAP's million-user item asks for: for each value-tier
placement (local DRAM vs CXL) × background arm (off, an unthrottled
same-CCD hog, the hog paced by a QoS grant), serve an open-loop Poisson
request stream through the hybrid batched/fluid engine
(:mod:`repro.apps.kvserve`) and report the p50/p99/p999 tail. One cell
per arm keeps every point independent, cacheable, and fan-out friendly;
``engine="des"`` runs the same cell on the per-event reference model
(:class:`repro.apps.kvstore.KvServerModel`) for small-cell validation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.analysis.report import render_table
from repro.apps.kvserve import HybridKvServer
from repro.apps.kvstore import KvServerModel, KvWorkload
from repro.errors import ConfigurationError
from repro.platform.topology import Platform
from repro.runner import Cell, CellResult, USE_DEFAULT_CACHE, run_cells_detailed

__all__ = [
    "ARMS",
    "ENGINES",
    "KvPointOutcome",
    "arms_for",
    "default_workers",
    "hog_cores",
    "run_point",
    "run",
    "render",
]

#: Background arms, in presentation order: no background, an unthrottled
#: same-CCD streaming hog, the same hog under an 8 GB/s QoS grant.
ARMS: Tuple[str, ...] = ("off", "hog", "qos")

ENGINES: Tuple[str, ...] = ("hybrid", "des")

#: The QoS grant (GB/s) the ``qos`` arm paces the hog to — what a traffic
#: manager admission grant would enforce.
QOS_RATE_GBPS = 8.0


@dataclass(frozen=True)
class KvPointOutcome:
    """One (tier, background) serving point, summarized."""

    tier: str
    background: str
    engine: str
    requests: int
    workers: int
    mean_ns: float
    p50_ns: float
    p99_ns: float
    p999_ns: float
    max_ns: float
    achieved_qps: float

    def meets_slo(self, p99_us: float) -> bool:
        """Whether the point's p99 clears a microsecond-scale SLO."""
        return self.p99_ns <= p99_us * 1e3


def default_workers(platform: Platform, server_ccd: int = 0) -> int:
    """Worker-pool size leaving same-CCD cores free for the hog arms."""
    cores = len(platform.cores_of_ccd(server_ccd))
    return 4 if cores >= 7 else max(1, cores // 2)


def hog_cores(
    platform: Platform, server_ccd: int = 0, workers: Optional[int] = None
) -> Tuple[int, ...]:
    """The server CCD's non-worker cores — where the hog arms run."""
    workers = default_workers(platform, server_ccd) if workers is None else workers
    return tuple(
        core.core_id
        for core in platform.cores_of_ccd(server_ccd)[workers:]
    )


def arms_for(platform: Platform) -> List[Tuple[str, str]]:
    """The (tier, background) grid, CXL rows only where the tier exists."""
    tiers = ["dram"] + (["cxl"] if platform.cxl_devices else [])
    return [(tier, background) for tier in tiers for background in ARMS]


def run_point(
    platform: Platform,
    tier: str,
    background: str,
    qps: float = 2_000_000.0,
    requests: int = 100_000,
    server_ccd: int = 0,
    workers: Optional[int] = None,
    engine: str = "hybrid",
    seed: int = 0,
) -> KvPointOutcome:
    """One serving arm as an independent, hardened-runner-friendly cell."""
    if background not in ARMS:
        raise ConfigurationError(
            f"unknown background arm {background!r} (choose from {ARMS})"
        )
    if engine not in ENGINES:
        raise ConfigurationError(
            f"unknown engine {engine!r} (choose from {ENGINES})"
        )
    workers = default_workers(platform, server_ccd) if workers is None else workers
    workload = KvWorkload(qps=qps, requests=requests, value_tier=tier)
    cores = list(hog_cores(platform, server_ccd, workers)) or None
    background_cores = cores if background != "off" else None
    if background != "off" and background_cores is None:
        raise ConfigurationError(
            f"CCD {server_ccd} of {platform.name} has no spare cores "
            f"for the {background!r} arm with {workers} workers"
        )
    rate = QOS_RATE_GBPS if background == "qos" else None
    if engine == "hybrid":
        report = HybridKvServer(platform, seed=seed).serve(
            workload,
            server_ccd=server_ccd,
            workers=workers,
            background_cores=background_cores,
            background_rate_gbps=rate,
        )
    else:
        # The per-event reference, jitter off so both engines time the
        # same deterministic fabric (the conformance comparison).
        report = KvServerModel(
            platform, server_ccd=server_ccd, workers=workers,
            seed=seed, with_dram_jitter=False,
        ).serve(
            workload,
            background_cores=background_cores,
            background_rate_gbps=rate,
        )
    stats = report.latency
    return KvPointOutcome(
        tier=tier,
        background=background,
        engine=engine,
        requests=requests,
        workers=workers,
        mean_ns=stats.mean,
        p50_ns=stats.p50,
        p99_ns=stats.p99,
        p999_ns=stats.p999,
        max_ns=stats.maximum,
        achieved_qps=report.achieved_qps,
    )


def run(
    platform: Platform,
    qps: float = 2_000_000.0,
    requests: int = 100_000,
    engine: str = "hybrid",
    seed: int = 0,
    jobs=None,
    cache=USE_DEFAULT_CACHE,
) -> List[CellResult]:
    """Every (tier, background) arm as one hardened-runner cell each."""
    cells = [
        Cell(
            run_point,
            (platform, tier, background),
            dict(qps=qps, requests=requests, engine=engine, seed=seed),
        )
        for tier, background in arms_for(platform)
    ]
    return run_cells_detailed(cells, jobs=jobs, cache=cache)


def render(platform_name: str, results: Sequence[CellResult]) -> str:
    """The serving-tail table, one row per (tier, background) arm."""
    headers = [
        "tier", "background", "engine", "requests",
        "mean ns", "p50 ns", "p99 ns", "p999 ns", "achieved qps",
    ]
    rows = []
    for result in results:
        if not result.ok:
            rows.append([
                f"cell {result.index}", f"FAILED ({result.failure.kind})",
                "-", "-", "-", "-", "-", "-", "-",
            ])
            continue
        point: KvPointOutcome = result.value
        rows.append([
            point.tier,
            point.background,
            point.engine,
            str(point.requests),
            f"{point.mean_ns:.1f}",
            f"{point.p50_ns:.1f}",
            f"{point.p99_ns:.1f}",
            f"{point.p999_ns:.1f}",
            f"{point.achieved_qps:.0f}",
        ])
    return render_table(
        headers, rows,
        title=f"Open-loop kvstore serving tails ({platform_name})",
    )
