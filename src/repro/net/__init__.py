"""``repro.net`` — the treatment layer: an intra-server networking stack.

The reproduction's other packages *diagnose* the paper's idiosyncrasies
(telemetry, faults, the fluid and DES backends); this package is the §4
*treatment*: receiver-driven credit-based congestion control
(:mod:`repro.net.credits`), telemetry-driven multipath selection
(:mod:`repro.net.multipath`), and QoS classes with admission control
(:mod:`repro.net.qos`), tied together by one configuration
(:class:`~repro.net.stack.NetStackConfig`) that realizes identically on
both backends — :func:`~repro.net.stack.fluid_allocation` for steady state,
:func:`~repro.net.inject.install` for the discrete-event simulator.
:mod:`repro.net.recovery` closes the loop with :mod:`repro.faults`:
link-health detection, credit reclamation through permanent failures,
deadline/backoff retransmission, and health-aware failover.
"""

from repro.net.credits import (
    CreditConfig,
    CreditScheduler,
    credit_budget,
    credit_rate_gbps,
    link_credit_budget,
    credit_share,
    endpoint_rate_gbps,
    endpoint_rtt_ns,
)
from repro.net.inject import CreditGate, NetInstallation, install
from repro.net.multipath import MultipathSelector, link_for_channel
from repro.net.qos import (
    CLASS_SPECS,
    AdmissionController,
    ClassSpec,
    QosClass,
    class_credit_scales,
    class_weights,
)
from repro.net.recovery import (
    FailoverRouter,
    HealthMonitor,
    HealthTransition,
    LinkHealth,
    ReclaimableTokenPool,
    ReclaimingCreditScheduler,
    RecoveryConfig,
    RecoveryGate,
    RecoveryInstallation,
    RecoveryStats,
    fluid_health,
    recovery_enabled_by_env,
)
from repro.net.recovery import install as install_recovery
from repro.net.stack import NetStackConfig, fluid_allocation

__all__ = [
    "CreditConfig",
    "CreditScheduler",
    "credit_budget",
    "credit_rate_gbps",
    "link_credit_budget",
    "credit_share",
    "endpoint_rate_gbps",
    "endpoint_rtt_ns",
    "CreditGate",
    "NetInstallation",
    "install",
    "MultipathSelector",
    "link_for_channel",
    "CLASS_SPECS",
    "AdmissionController",
    "ClassSpec",
    "QosClass",
    "class_credit_scales",
    "class_weights",
    "NetStackConfig",
    "fluid_allocation",
    "FailoverRouter",
    "HealthMonitor",
    "HealthTransition",
    "LinkHealth",
    "ReclaimableTokenPool",
    "ReclaimingCreditScheduler",
    "RecoveryConfig",
    "RecoveryGate",
    "RecoveryInstallation",
    "RecoveryStats",
    "fluid_health",
    "install_recovery",
    "recovery_enabled_by_env",
]
