"""``repro chaos`` — graceful-degradation curves under dynamic fabric faults.

The paper's four idiosyncrasies all sharpen when the fabric degrades, and
real GMI/xGMI links flap and derate over time rather than failing once at
t=0. This experiment sweeps a representative dynamic fault schedule across
severities (0 = healthy, 1 = full depth) and reports, per severity, one
indicator per idiosyncrasy:

* **heterogeneous bandwidth domains** — whole-CPU streaming read bandwidth
  on the worst-case degraded fabric (fluid backend), plus which domain
  binds it;
* **sender-driven partitioning** — the fraction of its demand a paced
  victim on the faulted chiplet still receives against an unthrottled hog
  elsewhere (fluid backend);
* **extended paths / inconsistent BDPs** — average and P999 loaded latency
  of a chiplet streaming through its faulted GMI port while the schedule
  plays out mid-run (DES backend with interposed fault processes, strict
  invariant checking on).

Severity 0 compiles to the null schedule everywhere, so its row is
byte-identical to a run that never heard of faults — the property
``tests/test_failure_injection.py`` pins down.

Each severity is one independent runner cell, executed through the hardened
:func:`repro.runner.run_cells_detailed` (per-cell timeouts, retry, crash
recovery), so one pathological severity cannot take down the sweep.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Generator, List, Optional, Sequence, Tuple

from repro.analysis.report import render_table
from repro.core.fabric import FabricModel
from repro.core.flows import Scope, StreamSpec
from repro.core.loadgen import ClosedLoopIssuer
from repro.core.microbench import MicroBench
from repro.errors import ConfigurationError
from repro.experiments.contention import (
    VICTIM_DEMAND_GBPS,
    contention_streams,
    shared_umc_ids,
)
from repro.faults.inject import install as install_faults
from repro.faults.schedule import FaultEvent, FaultSchedule
from repro.fluid.solver import Policy, solve
from repro.net.recovery import (
    FailoverRouter,
    RecoveryConfig,
    fluid_health,
    install as install_recovery,
)
from repro.net.stack import NetStackConfig
from repro.platform.topology import Platform
from repro.runner import (
    Cell,
    CellResult,
    USE_DEFAULT_CACHE,
    run_cells_detailed,
)
from repro.sim.engine import Environment, Event
from repro.transport.message import OpKind
from repro.transport.path import CompiledPath, PathResolver
from repro.transport.transaction import TransactionExecutor

__all__ = [
    "ChaosPoint", "SEVERITIES", "default_schedule", "run_point", "run",
    "render",
    "RecoveryPoint", "recovery_schedule", "run_recovery_point",
    "run_recovery", "render_recovery",
]

#: Default severity sweep: healthy first, then deepening degradation.
SEVERITIES: Tuple[float, ...] = (0.0, 0.25, 0.5, 0.75, 1.0)

#: Demand of the paced victim stream in the partitioning probe (GB/s);
#: shared with the other contention-cell experiments.
_VICTIM_DEMAND_GBPS = VICTIM_DEMAND_GBPS

#: Snapshot time (ns) for the fluid probes: mid-derate, post-UMC-failure,
#: outside the stall window at every severity (severity only shortens the
#: stall, which starts at t=1400 in :func:`default_schedule`). The worst-case
#: fabric (``with_faults`` default) always contains the full-depth stall, so
#: it flatlines instead of degrading gracefully with severity.
_FLUID_PROBE_T_NS = 900.0


@dataclass(frozen=True)
class ChaosPoint:
    """One severity's graceful-degradation indicators."""

    severity: float
    cpu_read_gbps: float
    binding: str
    victim_share: float
    avg_ns: float
    p999_ns: float


def default_schedule(seed: int = 0) -> FaultSchedule:
    """A representative dynamic fault mix (times in ns, the DES clock).

    One slow-rolling GMI derate, a flapping NoC, a permanent UMC failure and
    a brief full GMI stall — every event targets channels that exist on all
    evaluated platforms, so the same schedule sweeps 7302 and 9634. The
    windows sit inside the first ~2 µs, where the DES probe's measurement
    interval lies.
    """
    return FaultSchedule(
        [
            FaultEvent.derate("gmi0:r", start=200.0, end=1200.0, factor=0.35),
            FaultEvent.flapping(
                "noc:r", start=0.0, end=2500.0, period=250.0, factor=0.5,
            ),
            FaultEvent.failure("umc0:r", start=700.0, factor=0.3),
            FaultEvent.stall("gmi0:r", start=1400.0, end=1700.0),
        ],
        seed=seed,
    )


def run_point(
    platform: Platform,
    severity: float,
    seed: int = 0,
    transactions_per_core: int = 200,
) -> ChaosPoint:
    """All four indicators at one severity (one independent runner cell)."""
    schedule = default_schedule(seed=seed).scaled(severity)

    # Fluid backend: the fabric as degraded mid-schedule.
    fabric = FabricModel.with_faults(platform, schedule, at_time=_FLUID_PROBE_T_NS)
    cpu_cores = StreamSpec.cores_for_scope(platform, Scope.CPU)
    scan = StreamSpec("scan", OpKind.READ, cpu_cores)
    cpu_read = fabric.achieved_gbps([scan])["scan"]
    binding = fabric.binding_channel([scan]) or "-"

    victim, hog = contention_streams(platform)
    victim_cores = victim.core_ids
    granted = fabric.achieved_gbps([victim, hog])["victim"]
    victim_share = granted / _VICTIM_DEMAND_GBPS

    # DES backend: the faulted chiplet streaming through its GMI port while
    # the schedule plays out mid-run. Strict mode guards the injected run.
    bench = MicroBench(platform, seed=seed)
    result = bench.loaded_latency(
        list(victim_cores),
        OpKind.READ,
        offered_gbps=None,
        transactions_per_core=transactions_per_core,
        fault_schedule=schedule,
        strict=True,
    )
    return ChaosPoint(
        severity=severity,
        cpu_read_gbps=cpu_read,
        binding=binding,
        victim_share=victim_share,
        avg_ns=result.stats.mean,
        p999_ns=result.stats.p999,
    )


def run(
    platform: Platform,
    severities: Sequence[float] = SEVERITIES,
    seed: int = 0,
    transactions_per_core: int = 200,
    jobs=None,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    fail_fast: bool = False,
    cache=USE_DEFAULT_CACHE,
) -> List[CellResult]:
    """Sweep severities; one hardened-runner cell per severity.

    Returns the structured :class:`~repro.runner.CellResult` list (submission
    order = severity order): with ``fail_fast=False`` a failed severity is
    reported in its row instead of aborting the sweep.
    """
    cells = [
        Cell(
            run_point,
            (platform, float(severity)),
            dict(seed=seed, transactions_per_core=transactions_per_core),
        )
        for severity in severities
    ]
    return run_cells_detailed(
        cells, jobs=jobs, timeout_s=timeout_s, retries=retries,
        fail_fast=fail_fast, cache=cache,
    )


def render(platform_name: str, results: Sequence[CellResult]) -> str:
    """The graceful-degradation table, one row per severity."""
    headers = [
        "severity", "CPU read GB/s", "binding", "victim share",
        "avg ns", "P999 ns",
    ]
    rows = []
    for result in results:
        if result.ok:
            point = result.value
            rows.append([
                f"{point.severity:.2f}",
                f"{point.cpu_read_gbps:.1f}",
                point.binding,
                f"{point.victim_share:.3f}",
                f"{point.avg_ns:.1f}",
                f"{point.p999_ns:.1f}",
            ])
        else:
            rows.append([
                f"cell {result.index}",
                f"FAILED ({result.failure.kind})",
                "-", "-", "-", "-",
            ])
    return render_table(
        headers, rows,
        title=f"Chaos sweep: graceful degradation ({platform_name})",
    )


# --------------------------------------------------------------------------
# Recovery sweep (``repro chaos --recover``): collapse, then recovery.
#
# One clean failure scenario instead of the severity mix above: the victim
# chiplet stripes its paced demand over its NPS4 memory endpoints, and at
# ``_REC_FAIL_T_NS`` the cross-die path to the first endpoint permanently
# fails (lane-failure residue ``_REC_FAIL_FACTOR``). Without recovery the
# workers homed there strand — throughput collapses to the surviving
# endpoints plus the dead link's trickle, and stays there. With recovery the
# monitors declare the endpoint dead, stranded credits reclaim home, stuck
# transactions retransmit over failover paths, and the post-failure
# steady-state share returns to ~1× pre-failure. Both backends run both
# arms, from the same schedule and the same health state machine.
# --------------------------------------------------------------------------

#: When the cross-die path to the victim's first NPS4 endpoint fails (ns).
_REC_FAIL_T_NS = 1500.0

#: Lane-failure capacity residue of the failed link.
_REC_FAIL_FACTOR = 0.05

#: Pre-failure measurement window (ns): inside warm steady state, clear of
#: both the cold start and the failure instant.
_REC_PRE_WINDOW = (400.0, 1400.0)

#: Post-failure steady-state window (ns): past detection (~2.2 µs), credit
#: reclamation and the retransmission of every stranded attempt.
_REC_POST_WINDOW = (3200.0, 5600.0)

#: Fluid probe instant for the post-failure solve (mid post window).
_REC_FLUID_POST_T_NS = 4000.0


@dataclass(frozen=True)
class RecoveryPoint:
    """One (backend, recovery arm) cell of the failover comparison."""

    backend: str
    recover: bool
    pre_gbps: float
    post_gbps: float
    #: Post-failure steady-state throughput as a fraction of pre-failure.
    recovered: float
    #: Simulated time the monitor declared the endpoint dead (NaN: never).
    detect_ns: float
    reclaimed: int
    retries: int
    failovers: int


def recovery_schedule(seed: int = 0) -> FaultSchedule:
    """The recovery scenario: one permanent cross-die endpoint failure."""
    return FaultSchedule(
        [
            FaultEvent.failure(
                "umc0:r", start=_REC_FAIL_T_NS, factor=_REC_FAIL_FACTOR
            ),
        ],
        seed=seed,
    )


def _victim_cell(platform: Platform) -> Tuple[List[int], List[int], float]:
    """(victim core ids, NPS4 endpoint ids, per-worker paced rate)."""
    victim, __ = contention_streams(platform)
    cores = list(victim.core_ids)
    shared = sorted(shared_umc_ids(platform))
    return cores, shared, VICTIM_DEMAND_GBPS / len(cores)


class _DeliveryMeter:
    """A passive executor shim counting delivered bytes per endpoint.

    Sits between the gate and the real executor so both recovery arms are
    measured identically: bytes count at completion, against the endpoint
    that actually served the transaction (failover retries count at their
    failover endpoint).
    """

    def __init__(self, env: Environment, inner: TransactionExecutor) -> None:
        self.env = env
        self.inner = inner
        self.delivered: Dict[str, int] = {}

    def execute(self, txn, path: CompiledPath) -> Generator[Event, None, object]:
        result = yield from self.inner.execute(txn, path)
        endpoint = path.stages[-1].name
        self.delivered[endpoint] = (
            self.delivered.get(endpoint, 0) + txn.size_bytes
        )
        return result

    def total(self) -> int:
        return sum(self.delivered.values())


def _sample_at(
    env: Environment, times: Sequence[float], read, out: Dict[float, int]
) -> Generator[Event, None, None]:
    """Record ``read()`` at each simulated time in ``times`` (sorted)."""
    for t in sorted(times):
        if t > env.now:
            yield env.timeout(t - env.now)
        out[t] = read()


def _window_gbps(marks: Dict[float, int], window: Tuple[float, float]) -> float:
    start, end = window
    return (marks[end] - marks[start]) / (end - start)


def _fluid_worker_tput(
    platform: Platform,
    homes: Dict[int, str],
    cores: Sequence[int],
    rate_each: float,
    derates: Optional[Dict[str, float]] = None,
) -> float:
    """Aggregate victim throughput with each worker homed per ``homes``.

    One paced single-core stream per worker, striped onto its (possibly
    rerouted) endpoint, all solved together on the (possibly degraded)
    fabric — the fluid counterpart of the DES recovery cell.
    """
    fabric = FabricModel(platform, derates=derates or None)
    flows = []
    for index, core_id in enumerate(cores):
        spec = StreamSpec(
            f"w{index}", OpKind.READ, (core_id,), demand_gbps=rate_each
        )
        umc_id = int(homes[index][len("umc"):])
        flows.extend(fabric.flows_for(spec, umc_ids=[umc_id]))
    allocation = solve(flows, Policy.DEMAND_PROPORTIONAL)
    return sum(allocation.values())


def _initial_homes(cores: Sequence[int], shared: Sequence[int]) -> Dict[int, str]:
    """Stripe the workers over the NPS4 endpoint set, netstack-style."""
    return {
        index: f"umc{shared[index % len(shared)]}"
        for index in range(len(cores))
    }


def _fluid_recovery(
    platform: Platform, recover: bool, seed: int
) -> RecoveryPoint:
    schedule = recovery_schedule(seed=seed)
    config = RecoveryConfig.on()
    cores, shared, rate_each = _victim_cell(platform)
    homes = _initial_homes(cores, shared)
    endpoints = [f"umc{u}" for u in shared]

    pre = _fluid_worker_tput(platform, homes, cores, rate_each)
    post_derates = dict(schedule.derates_at(_REC_FLUID_POST_T_NS))
    detect = math.nan
    failovers = 0
    if recover:
        monitor = fluid_health(
            platform, schedule, config, endpoints,
            until_ns=_REC_POST_WINDOW[0],
        )
        detect = monitor.detect_ns("umc0")
        if detect is None:
            detect = math.nan
        router = FailoverRouter(platform, monitor)
        for index in range(len(cores)):
            for umc_id in sorted(platform.umcs):
                router.register(
                    index, f"umc{umc_id}",
                    primary=(f"umc{umc_id}" == homes[index]),
                    slice_gbps=rate_each,
                )
        for index in sorted(homes):
            if monitor.is_dead(homes[index]):
                rerouted = router.reroute(index)
                if rerouted is not None:
                    homes[index] = rerouted[0]
                    failovers += 1
        # Health-aware capacity masking: the dead link keeps only its
        # residue in the post-failure solve.
        for channel, factor in monitor.capacity_mask().items():
            post_derates[channel] = min(
                post_derates.get(channel, 1.0), factor
            )
    post = _fluid_worker_tput(
        platform, homes, cores, rate_each, derates=post_derates
    )
    return RecoveryPoint(
        backend="fluid",
        recover=recover,
        pre_gbps=pre,
        post_gbps=post,
        recovered=post / pre,
        detect_ns=detect,
        reclaimed=0,
        retries=0,
        failovers=failovers,
    )


def _des_recovery(
    platform: Platform,
    recover: bool,
    seed: int,
    transactions_per_core: int,
) -> RecoveryPoint:
    schedule = recovery_schedule(seed=seed)
    cores, shared, rate_each = _victim_cell(platform)
    homes = _initial_homes(cores, shared)
    endpoints = [f"umc{u}" for u in shared]

    env = Environment()
    resolver = PathResolver(env, platform, seed=seed)
    install_faults(resolver, schedule)
    stack = NetStackConfig.with_credits()
    recovery = RecoveryConfig.on() if recover else RecoveryConfig.off()
    installation = install_recovery(
        resolver, stack, recovery,
        flows=["victim"], endpoints=endpoints, seed=seed,
    )
    executor = TransactionExecutor(env, flow="victim")
    meter = _DeliveryMeter(env, executor)
    if recover:
        homed_gbps: Dict[str, float] = {}
        for index, core_id in enumerate(cores):
            for umc_id in sorted(platform.umcs):
                endpoint = f"umc{umc_id}"
                installation.router.register(
                    index, endpoint,
                    path=resolver.dram_path(core_id, umc_id),
                    primary=(endpoint == homes[index]),
                    slice_gbps=rate_each,
                )
            homed_gbps[homes[index]] = (
                homed_gbps.get(homes[index], 0.0) + rate_each
            )
        for endpoint in endpoints:
            umc_id = int(endpoint[len("umc"):])
            installation.watch(
                endpoint,
                homed_gbps.get(endpoint, 0.0),
                probe_path=resolver.dram_path(cores[0], umc_id),
            )
        installation.start()

    window = platform.spec.bandwidth.mlp_read
    finished = []
    for index, core_id in enumerate(cores):
        if recover:
            gate = installation.gate(meter, "victim", worker=index)
        else:
            gate = installation.gate(meter, "victim")
        umc_id = int(homes[index][len("umc"):])
        path = resolver.dram_path(core_id, umc_id)
        issuer = ClosedLoopIssuer(
            env,
            gate,
            lambda worker, path=path: path,
            OpKind.READ,
            workers=1,
            window=window,
            count_per_worker=transactions_per_core,
            rate_gbps=rate_each,
        )
        finished.append(issuer.start())
    marks: Dict[float, int] = {}
    boundaries = sorted(set(_REC_PRE_WINDOW) | set(_REC_POST_WINDOW))
    env.process(_sample_at(env, boundaries, meter.total, marks))
    env.run(env.all_of(finished))
    if recover:
        installation.stop()
    # Drain: abandoned wrecks trickling through the dead link, the last
    # probes, and the monitors' exit all land before quiescence — then the
    # extended conservation invariant must hold.
    env.run()
    installation.assert_credits_home()

    pre = _window_gbps(marks, _REC_PRE_WINDOW)
    post = _window_gbps(marks, _REC_POST_WINDOW)
    if recover:
        stats = installation.stats
        detect = installation.health.detect_ns("umc0")
        return RecoveryPoint(
            backend="des",
            recover=True,
            pre_gbps=pre,
            post_gbps=post,
            recovered=post / pre,
            detect_ns=math.nan if detect is None else detect,
            reclaimed=stats.reclaimed_credits,
            retries=stats.retries,
            failovers=stats.failovers,
        )
    return RecoveryPoint(
        backend="des",
        recover=False,
        pre_gbps=pre,
        post_gbps=post,
        recovered=post / pre,
        detect_ns=math.nan,
        reclaimed=0,
        retries=0,
        failovers=0,
    )


def run_recovery_point(
    platform: Platform,
    backend: str,
    recover: bool,
    seed: int = 0,
    transactions_per_core: int = 600,
) -> RecoveryPoint:
    """One (backend, arm) recovery cell (independent, runner-friendly)."""
    if backend == "fluid":
        return _fluid_recovery(platform, recover, seed)
    if backend == "des":
        return _des_recovery(platform, recover, seed, transactions_per_core)
    raise ConfigurationError(
        f"unknown backend {backend!r} (choose from fluid, des)"
    )


def run_recovery(
    platform: Platform,
    seed: int = 0,
    transactions_per_core: int = 600,
    jobs=None,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    fail_fast: bool = False,
    cache=USE_DEFAULT_CACHE,
) -> List[CellResult]:
    """Both backends × both recovery arms through the hardened runner."""
    cells = [
        Cell(
            run_recovery_point,
            (platform, backend, recover),
            dict(seed=seed, transactions_per_core=transactions_per_core),
        )
        for backend in ("fluid", "des")
        for recover in (False, True)
    ]
    return run_cells_detailed(
        cells, jobs=jobs, timeout_s=timeout_s, retries=retries,
        fail_fast=fail_fast, cache=cache,
    )


def render_recovery(platform_name: str, results: Sequence[CellResult]) -> str:
    """The collapse-then-recovery table, one row per (backend, arm)."""
    headers = [
        "backend", "recovery", "pre GB/s", "post GB/s", "post/pre",
        "detect ns", "reclaimed", "retries", "failovers",
    ]
    rows = []
    for result in results:
        if result.ok:
            point = result.value
            rows.append([
                point.backend,
                "on" if point.recover else "off",
                f"{point.pre_gbps:.2f}",
                f"{point.post_gbps:.2f}",
                f"{point.recovered:.3f}",
                "-" if math.isnan(point.detect_ns)
                else f"{point.detect_ns:.0f}",
                f"{point.reclaimed}",
                f"{point.retries}",
                f"{point.failovers}",
            ])
        else:
            rows.append([
                f"cell {result.index}",
                f"FAILED ({result.failure.kind})",
                "-", "-", "-", "-", "-", "-", "-",
            ])
    return render_table(
        headers, rows,
        title=(
            "Chaos recovery: permanent cross-die link failure "
            f"({platform_name})"
        ),
    )
