"""Admission queue: strict priority, per-client fairness, bounded depth.

The scheduler is a pure in-memory policy object — no asyncio, no I/O — so
its invariants are testable without a running server:

* **Strict priority.** A queued job with higher ``priority`` (larger int)
  always dispatches before any lower-priority job, regardless of arrival
  order or owner.
* **Round-robin fairness within a priority.** Clients at the same
  priority take turns: each dispatch serves the least-recently-served
  client that has work, then rotates it to the back. One client
  submitting 100 jobs cannot starve another's single job at the same
  priority; within one client, jobs stay FIFO.
* **Bounded depth.** At most ``max_depth`` jobs may be queued; the next
  submission raises :class:`QueueFull` carrying a ``retry_after_s`` hint
  derived from an EWMA of observed job durations. Rejection is loud and
  structured — a job is either accepted (and will eventually run or be
  cancelled) or rejected at the door; nothing is silently dropped.

Dispatch order is a pure function of (submission order, priorities,
clients), so a fixed submission sequence replays identically — the
server's determinism contract starts here.
"""

from __future__ import annotations

from collections import OrderedDict, deque
from dataclasses import dataclass, field
from typing import Any, Deque, Dict, List, Optional

from repro.errors import ServiceError

__all__ = ["DEFAULT_MAX_DEPTH", "JobScheduler", "QueueFull", "QueuedJob"]

#: Default admission bound: deep enough for a sweep per client, shallow
#: enough that a runaway submitter hits backpressure quickly.
DEFAULT_MAX_DEPTH = 16


class QueueFull(ServiceError):
    """Admission rejected: the queue is at depth; retry after the hint."""

    def __init__(self, depth: int, retry_after_s: float) -> None:
        super().__init__(
            f"queue full ({depth} job(s) queued); "
            f"retry in {retry_after_s:.1f}s",
            code="queue-full",
            retry_after_s=retry_after_s,
        )
        self.depth = depth


@dataclass
class QueuedJob:
    """One admitted job waiting to run."""

    job_id: str
    client: str
    priority: int
    spec: Dict[str, Any]
    #: Admission sequence number: total order on submissions, ties FIFO.
    seq: int = 0
    #: Cells already satisfied by the cache at submit time (index → key).
    cached: Dict[int, str] = field(default_factory=dict)
    #: Total cell count (known at admission: specs build deterministically).
    cells: int = 0


class JobScheduler:
    """The admission queue (see the module docstring for the policy)."""

    def __init__(
        self,
        max_depth: int = DEFAULT_MAX_DEPTH,
        *,
        ewma_alpha: float = 0.3,
        initial_estimate_s: float = 5.0,
    ) -> None:
        if max_depth < 1:
            raise ValueError(f"max_depth must be >= 1, got {max_depth}")
        self.max_depth = max_depth
        self._seq = 0
        # priority → (client → FIFO of jobs); the OrderedDict's key order
        # IS the round-robin rotation for that priority.
        self._levels: Dict[int, "OrderedDict[str, Deque[QueuedJob]]"] = {}
        self._by_id: Dict[str, QueuedJob] = {}
        self._ewma_alpha = ewma_alpha
        self._duration_ewma_s = initial_estimate_s

    # ------------------------------------------------------------ metrics

    def observe_duration(self, seconds: float) -> None:
        """Fold one completed job's wall time into the EWMA estimate."""
        if seconds >= 0:
            alpha = self._ewma_alpha
            self._duration_ewma_s = (
                alpha * seconds + (1 - alpha) * self._duration_ewma_s
            )

    def retry_after_s(self) -> float:
        """Backpressure hint: the estimated time for one slot to free."""
        return round(max(self._duration_ewma_s, 0.1), 3)

    # ---------------------------------------------------------- admission

    def __len__(self) -> int:
        return len(self._by_id)

    @property
    def depth(self) -> int:
        """Number of queued (not yet dispatched) jobs."""
        return len(self._by_id)

    def submit(self, job: QueuedJob) -> QueuedJob:
        """Admit one job, or raise :class:`QueueFull` (nothing dropped)."""
        if len(self._by_id) >= self.max_depth:
            raise QueueFull(len(self._by_id), self.retry_after_s())
        if job.job_id in self._by_id:
            raise ServiceError(
                f"duplicate job id {job.job_id!r}", code="bad-request"
            )
        self._seq += 1
        job.seq = self._seq
        level = self._levels.setdefault(job.priority, OrderedDict())
        level.setdefault(job.client, deque()).append(job)
        self._by_id[job.job_id] = job
        return job

    def next_job(self) -> Optional[QueuedJob]:
        """Dispatch the next job per policy, or None when idle."""
        if not self._by_id:
            return None
        priority = max(
            p for p, level in self._levels.items()
            if any(level.values())
        )
        level = self._levels[priority]
        # The least-recently-served client with work is the first key;
        # serve it, then rotate it to the back (move_to_end) so the next
        # dispatch at this priority picks a different client.
        for client in list(level):
            queue = level[client]
            if not queue:
                del level[client]
                continue
            job = queue.popleft()
            if queue:
                level.move_to_end(client)
            else:
                del level[client]
            if not level:
                del self._levels[priority]
            del self._by_id[job.job_id]
            return job
        del self._levels[priority]
        return self.next_job()

    def remove(self, job_id: str) -> Optional[QueuedJob]:
        """Withdraw a queued job (cancellation); None if not queued."""
        job = self._by_id.pop(job_id, None)
        if job is None:
            return None
        level = self._levels.get(job.priority)
        if level is not None:
            queue = level.get(job.client)
            if queue is not None:
                try:
                    queue.remove(job)
                except ValueError:
                    pass
                if not queue:
                    del level[job.client]
            if not level:
                del self._levels[job.priority]
        return job

    # -------------------------------------------------------- observation

    def snapshot(self) -> List[Dict[str, Any]]:
        """Queued jobs in dispatch order (what ``repro jobs`` shows)."""
        jobs: List[Dict[str, Any]] = []
        for priority in sorted(self._levels, reverse=True):
            level = self._levels[priority]
            # Interleave clients exactly as dispatch would: repeatedly
            # walk the rotation, taking one job per client per round.
            queues = {
                client: list(queue) for client, queue in level.items() if queue
            }
            rotation = [client for client in level if queues.get(client)]
            position = {client: 0 for client in rotation}
            while rotation:
                client = rotation.pop(0)
                job = queues[client][position[client]]
                position[client] += 1
                jobs.append({
                    "job": job.job_id,
                    "client": job.client,
                    "priority": job.priority,
                    "kind": job.spec.get("kind"),
                    "cells": job.cells,
                })
                if position[client] < len(queues[client]):
                    rotation.append(client)
        return jobs
