"""Cost models for shared-memory vs multikernel state maintenance.

Both designs are parameterized entirely by the platform's measured
characteristics (Table 2 latencies, IF link capacities), so the comparison
changes when the chiplet network does — which is the point of §4 #2.

Queueing uses the M/D/1 waiting-time formula ``W = ρ·S / (2(1−ρ))`` — the
update service is deterministic (a line transfer or a message apply), and
arrivals from many independent cores are approximately Poisson.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.errors import ConfigurationError
from repro.platform.topology import Platform
from repro.units import CACHELINE

__all__ = [
    "cacheline_transfer_ns",
    "DesignPoint",
    "SharedMemoryDesign",
    "MultikernelDesign",
]


def _md1_wait_ns(service_ns: float, utilization: float) -> float:
    """M/D/1 mean waiting time; infinite at or beyond saturation."""
    if utilization >= 1.0:
        return float("inf")
    if utilization <= 0.0:
        return 0.0
    return utilization * service_ns / (2.0 * (1.0 - utilization))


def cacheline_transfer_ns(
    platform: Platform, src_ccd: int, dst_ccd: int
) -> float:
    """Dirty-line transfer latency between two cores' caches.

    Same chiplet: an L3-slice hit. Across chiplets: the snoop and data
    response traverse IF → mesh → IF — the "extended data path" of §3.2.
    """
    lat = platform.spec.latency
    if src_ccd == dst_ccd:
        return lat.l3_ns
    src = platform.ccds[src_ccd].coord
    dst = platform.ccds[dst_ccd].coord
    dx, dy = platform.mesh_offset(src, dst)
    # Request out (IF + CCM), mesh both ways, response back (CCM + IF),
    # plus the victim L3 lookup on the far side.
    return (
        lat.l3_ns
        + 2.0 * (lat.if_link_ns + lat.ccm_ns)
        + 2.0 * lat.mesh_cost_ns(dx, dy)
        + lat.l3_ns
    )


@dataclass(frozen=True)
class DesignPoint:
    """One design evaluated at one offered update rate."""

    design: str
    platform: str
    offered_mops: float            # million updates / second
    #: Mean latency until the update is globally visible (ns); inf when the
    #: design cannot sustain the offered rate.
    visibility_ns: float
    #: Mean latency the *updating core* observes (ns).
    local_ns: float
    #: Utilization of the design's binding resource.
    utilization: float

    @property
    def sustainable(self) -> bool:
        return self.utilization < 1.0


class SharedMemoryDesign:
    """One shared object; writers migrate the line to themselves."""

    def __init__(self, platform: Platform, writer_ccds: Optional[int] = None):
        self.platform = platform
        self.writer_ccds = (
            writer_ccds if writer_ccds is not None else platform.spec.ccd_count
        )
        if not 1 <= self.writer_ccds <= platform.spec.ccd_count:
            raise ConfigurationError(
                f"writer_ccds must be in [1, {platform.spec.ccd_count}]"
            )

    def mean_transfer_ns(self) -> float:
        """Average line-migration cost over uniformly random writer pairs."""
        ccds = list(range(self.writer_ccds))
        total = 0.0
        for src in ccds:
            for dst in ccds:
                total += cacheline_transfer_ns(self.platform, src, dst)
        return total / (len(ccds) ** 2)

    def max_mops(self) -> float:
        """Updates serialize on the line: 1 / mean transfer cost."""
        return 1e3 / self.mean_transfer_ns()  # ns⁻¹ → Mops

    def evaluate(self, offered_mops: float) -> DesignPoint:
        """The design point at one offered update rate."""
        if offered_mops < 0:
            raise ConfigurationError("offered rate must be non-negative")
        service = self.mean_transfer_ns()
        utilization = offered_mops / self.max_mops()
        wait = _md1_wait_ns(service, utilization)
        # The writer holds the line for the whole transfer; visibility and
        # local completion coincide (it IS the shared object).
        latency = service + wait
        return DesignPoint(
            "shared-memory", self.platform.name, offered_mops,
            visibility_ns=latency, local_ns=latency, utilization=utilization,
        )


class MultikernelDesign:
    """Per-chiplet replicas synchronized with asynchronous messages."""

    def __init__(
        self,
        platform: Platform,
        replica_ccds: Optional[int] = None,
        message_bytes: int = CACHELINE,
        per_message_cpu_ns: float = 25.0,
    ) -> None:
        self.platform = platform
        self.replicas = (
            replica_ccds if replica_ccds is not None else platform.spec.ccd_count
        )
        if not 2 <= self.replicas <= platform.spec.ccd_count:
            raise ConfigurationError(
                f"replicas must be in [2, {platform.spec.ccd_count}]"
            )
        self.message_bytes = message_bytes
        #: Marshalling + dispatch cost per message on the receiving kernel
        #: (the multikernel's CPU tax).
        self.per_message_cpu_ns = per_message_cpu_ns

    def message_path_ns(self) -> float:
        """One-way message latency between the two most distant replicas."""
        lat = self.platform.spec.latency
        worst = 0.0
        for src in range(self.replicas):
            for dst in range(self.replicas):
                if src == dst:
                    continue
                dx, dy = self.platform.mesh_offset(
                    self.platform.ccds[src].coord,
                    self.platform.ccds[dst].coord,
                )
                cost = (
                    lat.if_link_ns + lat.ccm_ns
                    + lat.mesh_cost_ns(dx, dy)
                    + lat.ccm_ns + lat.if_link_ns
                )
                worst = max(worst, cost)
        return worst

    def _per_link_load_gbps(self, offered_mops: float) -> float:
        """Broadcast traffic crossing one chiplet's IF link.

        Each replica originates ``offered/replicas`` updates and sends each
        to the other ``replicas−1``; it also receives every other replica's
        updates. Outgoing + incoming both cross its IF link.
        """
        rate_per_replica = offered_mops / self.replicas  # Mops
        messages = rate_per_replica * (self.replicas - 1) * 2.0
        return messages * self.message_bytes / 1e3  # Mops×B → GB/s

    def max_mops(self) -> float:
        """The tighter of the IF-link budget and the receive-CPU budget."""
        if_cap = self.platform.link("if/ccd0").write_gbps
        link_bound = (
            if_cap * 1e3
            / (self.message_bytes * (self.replicas - 1) * 2.0)
            * self.replicas
        )
        # Each update is applied on replicas−1 receivers; one core per
        # replica drains its queue.
        cpu_bound = (
            self.replicas
            * 1e3
            / (self.per_message_cpu_ns * (self.replicas - 1))
        )
        return min(link_bound, cpu_bound)

    def evaluate(self, offered_mops: float) -> DesignPoint:
        """The design point at one offered update rate."""
        if offered_mops < 0:
            raise ConfigurationError("offered rate must be non-negative")
        lat = self.platform.spec.latency
        local = lat.l3_ns  # apply to the local replica
        utilization = offered_mops / self.max_mops()
        # Receive-side queueing: each replica's apply loop is an M/D/1
        # server draining (replicas-1)/replicas of the offered rate.
        service = self.per_message_cpu_ns
        per_replica_mops = offered_mops * (self.replicas - 1) / self.replicas
        rho_cpu = per_replica_mops * service / 1e3
        wait = _md1_wait_ns(service, min(rho_cpu, utilization))
        visibility = (
            local + self.message_path_ns() + service + wait
        )
        return DesignPoint(
            "multikernel", self.platform.name, offered_mops,
            visibility_ns=visibility, local_ns=local, utilization=utilization,
        )
