"""Exception hierarchy for the repro library.

All library-raised exceptions derive from :class:`ChipletError` so callers can
catch everything with a single ``except`` clause while still being able to
distinguish configuration problems from runtime simulation problems.
"""

from __future__ import annotations

from typing import Optional


class ChipletError(Exception):
    """Base class for all errors raised by the repro library."""


class ConfigurationError(ChipletError):
    """A platform or experiment was configured inconsistently."""


class TopologyError(ChipletError):
    """A requested route or component does not exist in the platform graph."""


class SimulationError(ChipletError):
    """The discrete-event simulation reached an invalid state."""


class ConvergenceError(ChipletError):
    """An iterative solver failed to converge within its iteration budget."""


class MeasurementError(ChipletError):
    """A measurement was requested on insufficient or invalid samples."""


class FaultInjectionError(ChipletError):
    """A fault schedule is invalid or targets hardware the platform lacks."""


class AdmissionError(ChipletError):
    """A guaranteed-rate flow was refused: admitting it would over-subscribe
    at least one fabric channel (the admission controller's invariant)."""


class ServiceError(ChipletError):
    """The simulation service refused or failed a request.

    ``code`` is the structured error code from the wire protocol (e.g.
    ``"queue-full"``, ``"bad-request"``, ``"unknown-job"``);
    ``retry_after_s`` is the server's backpressure hint for admission
    rejections — wait at least this long before resubmitting.
    """

    def __init__(
        self,
        message: str,
        *,
        code: str = "error",
        retry_after_s: Optional[float] = None,
    ) -> None:
        super().__init__(message)
        self.code = code
        self.retry_after_s = retry_after_s


class ProtocolError(ServiceError):
    """A malformed frame or value crossed the service's wire protocol."""

    def __init__(self, message: str) -> None:
        super().__init__(message, code="protocol")


class CellExecutionError(ChipletError):
    """A runner cell failed after exhausting its attempts.

    Carries enough context to re-run exactly the failing cell: the cell's
    submission index, how many attempts were made, and the underlying cause
    (also chained as ``__cause__`` so tracebacks stay informative).
    """

    def __init__(
        self,
        message: str,
        *,
        cell_index: int,
        attempts: int,
        cause: Optional[BaseException] = None,
    ) -> None:
        super().__init__(message)
        self.cell_index = cell_index
        self.attempts = attempts
        self.cause = cause
        if cause is not None:
            self.__cause__ = cause
