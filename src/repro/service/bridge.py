"""Async bridge: stream a blocking runner batch onto the event loop.

:func:`repro.runner.run_cells_detailed` is synchronous — it blocks on
worker pools, timeouts, and retries. The service must keep its event loop
responsive (accepting submissions, answering ``jobs``, honouring
cancellation) while a batch runs, so the batch executes on a worker
thread and every *final* per-cell result hops back onto the loop through
``loop.call_soon_threadsafe`` as it lands. Cancellation crosses the other
way as a plain :class:`threading.Event` the runner polls between cells
and attempts.

Pool crashes need no special path here: the hardened runner recovers
``BrokenProcessPool`` in-process and surfaces the damage as per-cell
``crash`` failures, which stream like any other cell event.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Callable, Dict, List, Optional

from repro.runner import CellResult, USE_DEFAULT_CACHE

__all__ = ["run_cells_streamed", "run_spec_streamed"]


async def run_cells_streamed(
    cells: Any,
    *,
    executor: Any = None,
    on_result: Optional[Callable[[CellResult], None]] = None,
    **runner_kwargs: Any,
) -> List[CellResult]:
    """Run arbitrary cells off-loop, streaming each final result.

    The generic sibling of :func:`run_spec_streamed` (no spec, no
    variants): ``runner_kwargs`` pass straight to
    :func:`repro.runner.run_cells_detailed`, so tests can force pooling
    (``pool_threshold_s=0``), inject crash cells, or set ``cancel`` and
    observe exactly what the service's executor would see.
    """
    from repro.runner import run_cells_detailed

    loop = asyncio.get_running_loop()

    def emit(result: CellResult) -> None:
        if on_result is not None:
            loop.call_soon_threadsafe(on_result, result)

    def blocking() -> List[CellResult]:
        return run_cells_detailed(cells, on_result=emit, **runner_kwargs)

    return await loop.run_in_executor(executor, blocking)


async def run_spec_streamed(
    spec: Dict[str, Any],
    *,
    jobs: Any = None,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    cache: Any = USE_DEFAULT_CACHE,
    cancel: Optional[threading.Event] = None,
    on_result: Optional[Callable[[CellResult], None]] = None,
    executor: Any = None,
) -> List[CellResult]:
    """Run one normalized spec off-loop, streaming each final cell result.

    ``on_result`` is invoked *on the event loop* (via
    ``call_soon_threadsafe``) once per cell, in completion order, with the
    cell's final :class:`CellResult` — cache hits first, then settled
    executions. Returns the full ordered result list, exactly as
    :func:`repro.service.registry.run_local` would.

    ``executor`` defaults to the loop's default thread pool; the server
    passes a single-thread executor so jobs serialize (one batch owns the
    process environment at a time — see
    :func:`repro.service.registry.apply_variants`).
    """
    from repro.service.registry import run_local

    loop = asyncio.get_running_loop()

    def emit(result: CellResult) -> None:
        if on_result is not None:
            loop.call_soon_threadsafe(on_result, result)

    def blocking() -> List[CellResult]:
        return run_local(
            spec,
            jobs=jobs,
            timeout_s=timeout_s,
            retries=retries,
            cache=cache,
            on_result=emit,
            cancel=cancel,
        )

    return await loop.run_in_executor(executor, blocking)
