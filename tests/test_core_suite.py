"""Tests for the cross-platform characterization suite (§4 #5)."""

import pytest

from repro.core.suite import CharacterizationSuite
from repro.platform.presets import synthetic_ucie


@pytest.fixture(scope="module")
def suite():
    return CharacterizationSuite(iterations=500)


@pytest.fixture(scope="module")
def synthetic_report(suite):
    return suite.run(synthetic_ucie())


class TestSuite:
    def test_runs_on_calibrated_platform(self, suite, p7302):
        report = suite.run(p7302)
        assert report.platform == "EPYC 7302"
        assert report.latency.near == pytest.approx(124.0, rel=0.05)
        assert report.bandwidth.read_gbps("cpu") == pytest.approx(106.7, rel=0.05)

    def test_runs_on_uncalibrated_platform(self, synthetic_report):
        # The framework works on a platform it was never tuned for.
        assert synthetic_report.platform == "Synthetic UCIe"
        assert synthetic_report.latency.near == pytest.approx(127.0, abs=4.0)
        assert synthetic_report.latency.cxl == pytest.approx(190.0, abs=5.0)

    def test_guidelines_are_generated(self, synthetic_report):
        assert len(synthetic_report.guidelines) >= 5
        text = " ".join(synthetic_report.guidelines)
        assert "interconnect wall" in text
        assert "CXL" in text

    def test_guideline_numbers_match_measurements(self, synthetic_report):
        bandwidth = synthetic_report.bandwidth
        wall_line = next(
            g for g in synthetic_report.guidelines if "interconnect wall" in g
        )
        assert f"{bandwidth.read_gbps('cpu'):.0f} GB/s" in wall_line

    def test_render_contains_sections(self, synthetic_report):
        text = synthetic_report.render()
        assert "bandwidth domains" in text
        assert "practical guidelines:" in text

    def test_compare_multiple(self, suite, p7302):
        reports = suite.compare([p7302, synthetic_ucie()])
        assert set(reports) == {"EPYC 7302", "Synthetic UCIe"}

    def test_synthetic_keeps_the_interconnect_wall(self, synthetic_report):
        # The designed-in property: even the next-gen part's NoC binds
        # below Σ(GMI) — the paper's wall persists.
        spec = synthetic_ucie().spec
        gmi_sum = spec.ccd_count * spec.bandwidth.gmi_read_gbps
        assert synthetic_report.bandwidth.read_gbps("cpu") < gmi_sum

    def test_synthetic_partitioning_still_aggressive(self, synthetic_report):
        cases = synthetic_report.partitioning.outcomes["gmi"]
        outcome = cases["case4-unequal-demands"]
        assert outcome.achieved["flow1"] > outcome.equal_share()
