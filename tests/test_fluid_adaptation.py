"""Tests for rate adaptation dynamics."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.fluid.adaptation import (
    FirstOrderAdaptation,
    InstantAdaptation,
    SecondOrderAdaptation,
)


class TestInstant:
    def test_jumps_to_target(self):
        model = InstantAdaptation()
        model.reset(0.0)
        assert model.step(15.0, 0.001) == 15.0


class TestFirstOrder:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            FirstOrderAdaptation(0.0)

    def test_converges_toward_target(self):
        model = FirstOrderAdaptation(tau_s=0.05)
        model.reset(0.0)
        values = [model.step(10.0, 0.01) for __ in range(100)]
        assert values[-1] == pytest.approx(10.0, abs=1e-3)
        assert all(b >= a for a, b in zip(values, values[1:]))

    def test_one_tau_is_63_percent(self):
        model = FirstOrderAdaptation(tau_s=0.1)
        model.reset(0.0)
        value = model.step(1.0, 0.1)
        assert value == pytest.approx(1 - math.exp(-1), rel=1e-6)

    def test_step_size_independence(self):
        # The exact exponential update must not depend on dt granularity.
        coarse = FirstOrderAdaptation(0.1)
        coarse.reset(0.0)
        coarse_val = coarse.step(1.0, 0.2)
        fine = FirstOrderAdaptation(0.1)
        fine.reset(0.0)
        for __ in range(200):
            fine_val = fine.step(1.0, 0.001)
        assert coarse_val == pytest.approx(fine_val, rel=1e-2)

    def test_from_settling_time(self):
        # 90% of a unit step must be reached at the configured settle time.
        model = FirstOrderAdaptation.from_settling_time(0.1)
        model.reset(0.0)
        steps = 100
        for __ in range(steps):
            value = model.step(1.0, 0.1 / steps)
        assert value == pytest.approx(0.9, abs=0.01)

    def test_tracks_downward(self):
        model = FirstOrderAdaptation(0.05)
        model.reset(20.0)
        for __ in range(200):
            value = model.step(5.0, 0.01)
        assert value == pytest.approx(5.0, abs=1e-3)


class TestSecondOrder:
    def test_validation(self):
        with pytest.raises(ConfigurationError):
            SecondOrderAdaptation(0.0, 0.5)
        with pytest.raises(ConfigurationError):
            SecondOrderAdaptation(10.0, 0.0)

    def test_underdamped_overshoots(self):
        model = SecondOrderAdaptation(omega_rad_s=20.0, zeta=0.15)
        model.reset(0.0)
        values = [model.step(10.0, 0.001) for __ in range(3000)]
        assert max(values) > 10.5  # rings past the target
        assert values[-1] == pytest.approx(10.0, abs=0.2)  # eventually settles

    def test_overdamped_does_not_overshoot(self):
        model = SecondOrderAdaptation(omega_rad_s=20.0, zeta=2.0)
        model.reset(0.0)
        values = [model.step(10.0, 0.001) for __ in range(5000)]
        assert max(values) <= 10.0 + 1e-6

    def test_never_negative(self):
        model = SecondOrderAdaptation(omega_rad_s=30.0, zeta=0.05)
        model.reset(20.0)
        values = [model.step(0.5, 0.001) for __ in range(5000)]
        assert min(values) >= 0.0

    def test_oscillation_amplitude_grows_with_lower_damping(self):
        def peak(zeta):
            model = SecondOrderAdaptation(omega_rad_s=20.0, zeta=zeta)
            model.reset(0.0)
            return max(model.step(10.0, 0.001) for __ in range(3000))

        assert peak(0.1) > peak(0.5) > peak(1.5)
