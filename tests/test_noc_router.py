"""Tests for the hop-by-hop mesh network."""

import pytest

from repro.errors import TopologyError
from repro.noc.mesh import Mesh
from repro.noc.router import MeshNetwork
from repro.sim.engine import Environment


@pytest.fixture
def mesh():
    return Mesh(3, 2, x_hop_ns=8.5, y_hop_ns=7.0, turn_ns=5.0)


class TestPorts:
    def test_ports_connect_neighbors_only(self, mesh):
        env = Environment()
        net = MeshNetwork(env, mesh, port_gbps=100.0)
        assert net.port((0, 0), (1, 0)).hop_ns == 8.5
        assert net.port((0, 0), (0, 1)).hop_ns == 7.0
        with pytest.raises(TopologyError):
            net.port((0, 0), (2, 0))  # not adjacent

    def test_port_count(self, mesh):
        env = Environment()
        net = MeshNetwork(env, mesh, port_gbps=100.0)
        # 3x2 grid: horizontal 2*2 per row direction... count directed edges:
        # horizontal edges: 2 per row x 2 rows x 2 directions = 8;
        # vertical edges: 3 columns x 1 x 2 directions = 6.
        assert len(net._ports) == 14


class TestSend:
    def test_unloaded_latency_matches_analytic(self, mesh):
        env = Environment()
        net = MeshNetwork(env, mesh, port_gbps=100.0)
        done = env.process(net.send((0, 0), (2, 1), 64))
        measured = env.run(done)
        hops = mesh.hop_count((0, 0), (2, 1))
        expected = mesh.cost_ns((0, 0), (2, 1)) + hops * 64 / 100.0
        assert measured == pytest.approx(expected)

    def test_send_to_self_is_free(self, mesh):
        env = Environment()
        net = MeshNetwork(env, mesh, port_gbps=100.0)
        done = env.process(net.send((1, 1), (1, 1), 64))
        assert env.run(done) == 0.0

    def test_straight_route_has_no_turn(self, mesh):
        env = Environment()
        net = MeshNetwork(env, mesh, port_gbps=100.0)
        done = env.process(net.send((0, 0), (2, 0), 64))
        measured = env.run(done)
        assert measured == pytest.approx(2 * 8.5 + 2 * 64 / 100.0)

    def test_bytes_forwarded_accounting(self, mesh):
        env = Environment()
        net = MeshNetwork(env, mesh, port_gbps=100.0)
        env.run(env.process(net.send((0, 0), (2, 0), 64)))
        # Two hops, each forwards 64 bytes.
        assert net.total_bytes_forwarded() == 128

    def test_contention_serializes_on_shared_port(self, mesh):
        env = Environment()
        net = MeshNetwork(env, mesh, port_gbps=1.0)  # 64 ns per hop service
        latencies = []

        def sender():
            result = yield env.process(net.send((0, 0), (1, 0), 64))
            latencies.append(result)

        env.process(sender())
        env.process(sender())
        env.run()
        # Second packet queues behind the first on the (0,0)->(1,0) port.
        assert max(latencies) > min(latencies)
        assert max(latencies) >= min(latencies) + 64.0

    def test_disjoint_routes_do_not_interact(self, mesh):
        env = Environment()
        net = MeshNetwork(env, mesh, port_gbps=1.0)
        latencies = []

        def sender(src, dst):
            result = yield env.process(net.send(src, dst, 64))
            latencies.append(result)

        env.process(sender((0, 0), (1, 0)))
        env.process(sender((0, 1), (1, 1)))
        env.run()
        assert latencies[0] == pytest.approx(latencies[1])
