"""Benchmarks for the §4 observability proposals: device tree, sketch
profiler, traffic matrix — the pieces around direction #1 and #5.

These are genuine performance benchmarks (the profiler must keep up with
per-transaction event rates), plus artifact regeneration for the
`/sys/firmware/chiplet-net` and `/proc/chiplet-net` proposals.
"""

from repro.sim.rng import make_rng
from repro.telemetry.counters import CounterRegistry
from repro.telemetry.devtree import build_devtree, proc_chiplet_net, render_dts
from repro.telemetry.matrix import TrafficMatrix
from repro.telemetry.profiler import FlowProfiler, FlowSample
from repro.telemetry.sketch import CountMinSketch

from benchmarks.conftest import emit


def bench_devtree_export(benchmark, p9634):
    text = benchmark(lambda: render_dts(build_devtree(p9634)))
    emit("\n".join(text.splitlines()[:24]) + "\n\t... (truncated)")
    assert "cxl0" in text


def bench_proc_chiplet_net(benchmark, p9634):
    registry = CounterRegistry()
    rng = make_rng(0)
    links = list(p9634.links.values())
    for __ in range(2000):
        link = links[rng.integers(len(links))]
        registry.record(link, 64, bool(rng.integers(2)))
    report = benchmark(
        lambda: proc_chiplet_net(p9634, registry, elapsed_ns=1e6)
    )
    emit("\n".join(report.splitlines()[:12]) + "\n... (truncated)")
    assert "chiplet-net: EPYC 9634" in report


def bench_sketch_update_rate(benchmark):
    """Per-event cost of the count-min sketch (the profiler's hot path)."""
    sketch = CountMinSketch(width=2048, depth=4)
    keys = [f"flow-{i}" for i in range(64)]

    def update_block():
        for i in range(256):
            sketch.add(keys[i % 64], 64)

    benchmark(update_block)
    assert sketch.estimate("flow-0") > 0


def bench_profiler_throughput(benchmark):
    profiler = FlowProfiler(top_k=8)
    samples = [
        FlowSample(f"flow-{i % 16}", 64, float(i)) for i in range(512)
    ]

    def record_block():
        for sample in samples:
            profiler.record(sample)

    benchmark(record_block)
    assert profiler.top_flows()


def bench_traffic_matrix_gravity(benchmark):
    sources = [f"ccd{i}" for i in range(12)]
    destinations = [f"umc{i}" for i in range(12)] + ["cxl"]
    truth = TrafficMatrix(sources, destinations)
    rng = make_rng(1)
    for src in sources:
        out = float(rng.uniform(5, 30))
        weights = rng.random(len(destinations))
        weights /= weights.sum()
        for dst, w in zip(destinations, weights):
            truth.record(src, dst, out * float(w))

    estimate = benchmark(
        lambda: TrafficMatrix.gravity_estimate(
            truth.row_sums(), truth.col_sums()
        )
    )
    assert estimate.total_gbps() > 0
