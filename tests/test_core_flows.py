"""Tests for stream specifications and scopes."""

import pytest

from repro.core.flows import Scope, StreamSpec
from repro.errors import ConfigurationError
from repro.transport.message import OpKind


class TestStreamSpec:
    def test_valid(self):
        spec = StreamSpec("s", OpKind.READ, (0, 1), demand_gbps=5.0)
        assert spec.target == "dram"

    def test_empty_cores_rejected(self):
        with pytest.raises(ConfigurationError):
            StreamSpec("s", OpKind.READ, ())

    def test_bad_target_rejected(self):
        with pytest.raises(ConfigurationError):
            StreamSpec("s", OpKind.READ, (0,), target="hbm")

    def test_negative_demand_rejected(self):
        with pytest.raises(ConfigurationError):
            StreamSpec("s", OpKind.READ, (0,), demand_gbps=-1.0)

    def test_none_demand_means_unthrottled(self):
        assert StreamSpec("s", OpKind.READ, (0,)).demand_gbps is None


class TestScopes:
    def test_core_scope(self, platform):
        assert StreamSpec.cores_for_scope(platform, Scope.CORE) == (0,)

    def test_ccx_scope(self, p7302, p9634):
        assert len(StreamSpec.cores_for_scope(p7302, Scope.CCX)) == 2
        assert len(StreamSpec.cores_for_scope(p9634, Scope.CCX)) == 7

    def test_ccd_scope(self, p7302, p9634):
        assert len(StreamSpec.cores_for_scope(p7302, Scope.CCD)) == 4
        assert len(StreamSpec.cores_for_scope(p9634, Scope.CCD)) == 7

    def test_cpu_scope(self, platform):
        cores = StreamSpec.cores_for_scope(platform, Scope.CPU)
        assert len(cores) == platform.spec.cores

    def test_scopes_nest(self, platform):
        core = set(StreamSpec.cores_for_scope(platform, Scope.CORE))
        ccx = set(StreamSpec.cores_for_scope(platform, Scope.CCX))
        ccd = set(StreamSpec.cores_for_scope(platform, Scope.CCD))
        cpu = set(StreamSpec.cores_for_scope(platform, Scope.CPU))
        assert core <= ccx <= ccd <= cpu
