"""Explore-sweep benchmarks: the design-space walk stays interactively fast.

Two timings against the generated-topology catalog:

* one full ``squeeze-3x2`` contention cell (routed fluid solve + open-loop
  DES mesh), the sweep's most contended point — each sample carries the
  adaptive-vs-XY victim-share delta as metadata, so the trajectory in
  ``BENCH_results.json`` records what the sweep *finds* per second spent;
* the whole 16-cell catalog sweep through the hardened runner, jobs=1 and
  uncached — the worst-case interactive ``repro explore`` latency.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_explore.py -q
"""

from repro.experiments import explore
from repro.platform.generator import catalog_names, from_catalog

#: Generous hang-catching ceilings (seconds), not jitter-sensitive bars.
POINT_CEILING_S = 10.0
SWEEP_CEILING_S = 60.0

#: Reduced DES packet count: a sub-second bench body per cell.
_PACKETS = 40


def bench_explore_point_squeeze(benchmark, record_timing):
    """The most contended catalog cell, adaptive routing, both backends."""
    gen = from_catalog("squeeze-3x2")
    point = benchmark.pedantic(
        explore.run_point,
        args=("squeeze-3x2", gen, "adaptive", "contention"),
        kwargs=dict(packets_per_sender=_PACKETS),
        rounds=3, iterations=1,
    )
    xy = explore.run_point(
        "squeeze-3x2", gen, "xy", "contention", packets_per_sender=_PACKETS
    )
    best = benchmark.stats.stats.min
    record_timing(
        "bench_explore_point_squeeze",
        best,
        victim_share_xy=xy.victim_share,
        victim_share_adaptive=point.victim_share,
        packets_per_sender=_PACKETS,
    )
    assert point.victim_share > xy.victim_share
    assert best < POINT_CEILING_S


def bench_explore_catalog_sweep(benchmark, record_timing):
    """The full catalog sweep, serial and uncached (worst-case CLI run)."""
    results = benchmark.pedantic(
        explore.run,
        kwargs=dict(packets_per_sender=_PACKETS, jobs=1, cache=None),
        rounds=1, iterations=1,
    )
    best = benchmark.stats.stats.min
    record_timing(
        "bench_explore_catalog_sweep",
        best,
        cells=len(results),
        topologies=len(catalog_names()),
        packets_per_sender=_PACKETS,
    )
    assert all(result.ok for result in results)
    assert best < SWEEP_CEILING_S
