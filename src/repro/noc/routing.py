"""Routing policies over generated router grids (2D meshes, 3D pillars).

The preset I/O die is a fixed 2D mesh with XY dimension-order routing
(:mod:`repro.noc.mesh`). The topology generator (ISSUE: "topology
design-space exploration") produces a wider family — X×Y meshes of any
dimension, optionally stacked into Z layers connected by *sparse vertical
pillars* (TSV columns at a subset of (x, y) stops), with per-link weight
encodings in the gem5 style (intra-layer weight 1, vertical weight 3).

This module carries the routing machinery those grids need:

* :class:`RouterGrid` — the grid itself: dimensions, pillars, link weights,
  neighbor/weight/distance queries;
* **escape routing** (:meth:`RouterGrid.escape_route`) — a deterministic
  dimension-ordered path (X, then Y, then the designated escape pillar's
  vertical traversal, then X, then Y in the destination layer) carried on
  escape virtual channels. VC 0 serves pre-vertical movement, VC 1
  post-vertical, which is what keeps the channel-dependency graph acyclic
  (:func:`channel_dependency_graph`, :func:`is_deadlock_free`) — the
  classic Duato argument: a network whose escape channels form an acyclic
  CDG cannot deadlock no matter what the adaptive channels do;
* **adaptive minimal routing** (:meth:`RouterGrid.adaptive_ports`) — the
  candidate set the credit-aware router picks from: productive (weighted-
  distance-reducing) outports filtered to the minimum link weight; and
  :func:`route_split`, its fluid limit — recursive equal splitting over
  those ports, which is what perfectly balanced downstream credits
  converge to in steady state.
"""

from __future__ import annotations

import enum
import functools
import heapq
from dataclasses import dataclass
from typing import Dict, Iterator, List, Tuple

from repro.errors import TopologyError

Coord = Tuple[int, int]
Coord3 = Tuple[int, int, int]
#: One directed grid link (an output port of the source router).
Link = Tuple[Coord3, Coord3]

__all__ = [
    "RouterGrid",
    "RoutingPolicy",
    "channel_dependency_graph",
    "is_deadlock_free",
    "route_split",
]


class RoutingPolicy(enum.Enum):
    """Which routing discipline a compiled network uses.

    * ``XY`` — deterministic dimension-order (escape-path) routing only:
      the preset hardware's behaviour (§1: data FLITs are routed
      "deterministically ... from the source to the destination").
    * ``ADAPTIVE`` — credit-aware adaptive minimal routing with the escape
      path as deadlock-safe fallback.
    """

    XY = "xy"
    ADAPTIVE = "adaptive"


@dataclass(frozen=True)
class RouterGrid:
    """An X×Y×Z router grid with sparse vertical pillars and link weights.

    ``layers == 1`` is the plain 2D mesh every preset uses. With more
    layers, vertical links exist only at the ``pillars`` coordinates —
    the sparse-TSV design of 3D NoCs. Link weights encode routing
    preference exactly like gem5 topology generators (intra-layer links
    weight 1, vertical links heavier): minimal routing breaks ties toward
    lighter links.
    """

    width: int
    height: int
    layers: int = 1
    pillars: Tuple[Coord, ...] = ()
    x_weight: int = 1
    y_weight: int = 1
    z_weight: int = 3

    def __post_init__(self) -> None:
        if self.width < 1 or self.height < 1:
            raise TopologyError(
                f"grid must be at least 1x1, got {self.width}x{self.height}"
            )
        if self.layers < 1:
            raise TopologyError(f"layers must be >= 1, got {self.layers}")
        if self.layers > 1 and not self.pillars:
            raise TopologyError(
                f"{self.layers} layers need at least one vertical pillar"
            )
        seen = set()
        for x, y in self.pillars:
            if not (0 <= x < self.width and 0 <= y < self.height):
                raise TopologyError(
                    f"pillar ({x}, {y}) outside {self.width}x{self.height} grid"
                )
            if (x, y) in seen:
                raise TopologyError(f"duplicate pillar ({x}, {y})")
            seen.add((x, y))
        for name in ("x_weight", "y_weight", "z_weight"):
            if getattr(self, name) < 1:
                raise TopologyError(
                    f"{name} must be >= 1, got {getattr(self, name)}"
                )

    # ------------------------------------------------------------- geometry

    def contains(self, coord: Coord3) -> bool:
        """True when the 3D coordinate lies inside the grid."""
        x, y, z = coord
        return (
            0 <= x < self.width
            and 0 <= y < self.height
            and 0 <= z < self.layers
        )

    def _check(self, coord: Coord3) -> None:
        if not self.contains(coord):
            raise TopologyError(
                f"coordinate {coord} outside {self.width}x{self.height}"
                f"x{self.layers} grid"
            )

    def nodes(self) -> Iterator[Coord3]:
        """Every router coordinate, in deterministic (z, y, x) order."""
        for z in range(self.layers):
            for y in range(self.height):
                for x in range(self.width):
                    yield (x, y, z)

    def neighbors(self, coord: Coord3) -> List[Coord3]:
        """Adjacent routers, in deterministic +x, -x, +y, -y, +z, -z order."""
        self._check(coord)
        x, y, z = coord
        out: List[Coord3] = []
        for candidate in (
            (x + 1, y, z), (x - 1, y, z), (x, y + 1, z), (x, y - 1, z),
        ):
            if self.contains(candidate):
                out.append(candidate)
        if self.layers > 1 and (x, y) in self.pillars:
            for candidate in ((x, y, z + 1), (x, y, z - 1)):
                if self.contains(candidate):
                    out.append(candidate)
        return out

    def links(self) -> List[Link]:
        """Every directed link, in deterministic node/neighbor order."""
        return [
            (node, neighbor)
            for node in self.nodes()
            for neighbor in self.neighbors(node)
        ]

    def link_weight(self, src: Coord3, dst: Coord3) -> int:
        """The routing weight of one directed link (gem5-style encoding)."""
        if dst not in self.neighbors(src):
            raise TopologyError(f"no link from {src} to {dst}")
        if dst[2] != src[2]:
            return self.z_weight
        if dst[0] != src[0]:
            return self.x_weight
        return self.y_weight

    def distance(self, src: Coord3, dst: Coord3) -> int:
        """Minimal weighted distance between two routers."""
        self._check(src)
        self._check(dst)
        return _distances(self, dst)[src]

    def hop_distance(self, src: Coord3, dst: Coord3) -> int:
        """Hop count of the minimal *weighted* route (ties share it)."""
        return len(self.escape_route(src, dst)) - 1

    # -------------------------------------------------------- port selection

    def minimal_ports(self, here: Coord3, dst: Coord3) -> List[Coord3]:
        """Productive outports: neighbors on some minimal-weight route."""
        self._check(here)
        self._check(dst)
        if here == dst:
            return []
        dist = _distances(self, dst)
        return [
            neighbor
            for neighbor in self.neighbors(here)
            if self.link_weight(here, neighbor) + dist[neighbor] == dist[here]
        ]

    def adaptive_ports(self, here: Coord3, dst: Coord3) -> List[Coord3]:
        """The adaptive candidate set: minimal ports of minimum link weight.

        This is the selection rule of the credit-aware router: among the
        minimal-quadrant outports, only the lightest links qualify; the
        router then picks the qualifying port with the most downstream
        credits (round-robin on ties).
        """
        ports = self.minimal_ports(here, dst)
        if not ports:
            return []
        lightest = min(self.link_weight(here, port) for port in ports)
        return [
            port for port in ports
            if self.link_weight(here, port) == lightest
        ]

    # ---------------------------------------------------------- escape path

    def escape_pillar(self) -> Coord:
        """The designated escape pillar (lexicographically smallest).

        Escape routes funnel *all* vertical traversals through one pillar
        so the escape channel-dependency graph stays small and provably
        acyclic; adaptive routing is free to use every pillar.
        """
        if not self.pillars:
            raise TopologyError("grid has no vertical pillars")
        return min(self.pillars)

    def escape_route(
        self, src: Coord3, dst: Coord3
    ) -> List[Tuple[Coord3, int]]:
        """The escape-VC dimension-ordered route, as ``(coord, vc)`` stops.

        Each entry is a router plus the virtual channel the packet
        *arrives* on (the source arrives on VC 0 by convention). Same-layer
        traffic is plain XY on VC 0. Cross-layer traffic goes X→Y to the
        escape pillar on VC 0, traverses the pillar vertically, then X→Y
        to the destination on VC 1 — the VC switch after the vertical hop
        is what breaks the cyclic dependency XY→Z→XY would otherwise
        close (see :func:`channel_dependency_graph`).
        """
        self._check(src)
        self._check(dst)
        route: List[Tuple[Coord3, int]] = [(src, 0)]

        def walk_xy(frm: Coord3, to_x: int, to_y: int, vc: int) -> Coord3:
            x, y, z = frm
            step = 1 if to_x > x else -1
            while x != to_x:
                x += step
                route.append(((x, y, z), vc))
            step = 1 if to_y > y else -1
            while y != to_y:
                y += step
                route.append(((x, y, z), vc))
            return (x, y, z)

        if src[2] == dst[2]:
            walk_xy(src, dst[0], dst[1], 0)
            return route
        pillar = self.escape_pillar()
        here = walk_xy(src, pillar[0], pillar[1], 0)
        x, y, z = here
        step = 1 if dst[2] > z else -1
        while z != dst[2]:
            z += step
            route.append(((x, y, z), 0))
        walk_xy((x, y, z), dst[0], dst[1], 1)
        return route

    def escape_next(self, here: Coord3, dst: Coord3, vc: int) -> Tuple[Coord3, int]:
        """The next escape stop from ``here`` given the current VC.

        A packet already on VC 1 (post-vertical) must stay there — its
        remaining journey is in-layer XY toward the destination.
        """
        if vc >= 1:
            # Post-vertical: plain XY in the destination layer on VC 1.
            # (Re-deriving the escape route from here would detour back
            # through the escape pillar.)
            x, y, z = here
            if x != dst[0]:
                x += 1 if dst[0] > x else -1
            elif y != dst[1]:
                y += 1 if dst[1] > y else -1
            return (x, y, z), 1
        route = self.escape_route(here, dst)
        if len(route) < 2:
            raise TopologyError(f"already at destination {dst}")
        return route[1]


@functools.lru_cache(maxsize=4096)
def _distances(grid: RouterGrid, dst: Coord3) -> Dict[Coord3, int]:
    """Weighted shortest-path distance from every router to ``dst``."""
    dist: Dict[Coord3, int] = {dst: 0}
    frontier: List[Tuple[int, Coord3]] = [(0, dst)]
    while frontier:
        d, node = heapq.heappop(frontier)
        if d > dist.get(node, 1 << 60):
            continue
        for neighbor in grid.neighbors(node):
            # Links are symmetric in weight, so relaxing the reverse
            # direction gives distances *to* dst.
            candidate = d + grid.link_weight(neighbor, node)
            if candidate < dist.get(neighbor, 1 << 60):
                dist[neighbor] = candidate
                heapq.heappush(frontier, (candidate, neighbor))
    return dist


def route_split(
    grid: RouterGrid,
    src: Coord3,
    dst: Coord3,
    policy: RoutingPolicy,
) -> Dict[Link, float]:
    """Fraction of a flow's traffic each directed link carries.

    ``XY`` puts the whole flow on the escape (dimension-ordered) path.
    ``ADAPTIVE`` is the fluid limit of credit balancing: at every router
    the flow splits *equally* over the adaptive candidate ports — with
    symmetric demand, downstream credit counts equalize and the
    round-robin tie-break degenerates to an even split. Fractions on a
    link sum over all partial paths through it; the fractions into ``dst``
    sum to 1.
    """
    if src == dst:
        return {}
    if policy is RoutingPolicy.XY:
        route = grid.escape_route(src, dst)
        return {
            (a, b): 1.0
            for (a, __), (b, ___) in zip(route, route[1:])
        }
    shares: Dict[Coord3, float] = {src: 1.0}
    result: Dict[Link, float] = {}
    dist = _distances(grid, dst)
    # Process nodes farthest-first: every adaptive hop strictly reduces
    # the weighted distance, so this order is topological.
    pending = [src]
    while pending:
        pending.sort(key=lambda node: (-dist[node], node))
        node = pending.pop(0)
        share = shares.pop(node)
        if node == dst or share <= 0.0:
            continue
        ports = grid.adaptive_ports(node, dst)
        part = share / len(ports)
        for port in ports:
            result[(node, port)] = result.get((node, port), 0.0) + part
            if port not in shares:
                if port != dst:
                    pending.append(port)
                shares[port] = 0.0
            shares[port] += part
    return result


def channel_dependency_graph(grid: RouterGrid):
    """The escape network's channel-dependency graph (a networkx DiGraph).

    Nodes are ``(link, vc)`` pairs — one per escape virtual channel of
    each directed link. An edge connects two channels whenever some
    escape route holds the first while requesting the second (consecutive
    hops of :meth:`RouterGrid.escape_route`, over every source/destination
    pair). Deadlock freedom of the escape layer — and therefore of the
    whole adaptive network, by Duato's theorem — is acyclicity of this
    graph (:func:`is_deadlock_free`; property-tested over the generated
    design space).
    """
    import networkx as nx

    graph = nx.DiGraph()
    nodes = list(grid.nodes())
    for src in nodes:
        for dst in nodes:
            if src == dst:
                continue
            route = grid.escape_route(src, dst)
            hops = [
                ((a, b), vc_b)
                for (a, __), (b, vc_b) in zip(route, route[1:])
            ]
            for channel in hops:
                graph.add_node(channel)
            for held, requested in zip(hops, hops[1:]):
                graph.add_edge(held, requested)
    return graph


def is_deadlock_free(grid: RouterGrid) -> bool:
    """True when the escape channel-dependency graph is acyclic."""
    import networkx as nx

    return nx.is_directed_acyclic_graph(channel_dependency_graph(grid))
