"""Tests for time-varying channel capacity (thermal throttling etc.)."""

import pytest

from repro.errors import ConfigurationError
from repro.fluid.adaptation import FirstOrderAdaptation
from repro.fluid.solver import Channel, FluidFlow
from repro.fluid.timeseries import DemandSchedule, FluidSimulator


def build(capacity_schedules=None, adaptations=None):
    channel = Channel("plink", 20.0)
    flows = [
        FluidFlow("a", 100.0, elastic=True).add(channel),
        FluidFlow("b", 100.0, elastic=True).add(channel),
    ]
    schedules = {
        "a": DemandSchedule(100.0),
        "b": DemandSchedule(100.0),
    }
    return FluidSimulator(
        flows, schedules,
        adaptations=adaptations,
        dt_s=0.01,
        capacity_schedules=capacity_schedules,
    )


class TestValidation:
    def test_unknown_channel_rejected(self):
        with pytest.raises(ConfigurationError):
            build(capacity_schedules={"ghost": DemandSchedule(1.0)})

    def test_zero_factor_rejected_at_runtime(self):
        sim = build(
            capacity_schedules={
                "plink": DemandSchedule(1.0, ((0.5, 1.0, -1.0),))
            }
        )
        with pytest.raises(ConfigurationError):
            sim.run(1.0)


class TestThrottling:
    def test_capacity_drop_shrinks_both_flows(self):
        sim = build(
            capacity_schedules={
                # 40% thermal throttle during [1s, 2s).
                "plink": DemandSchedule(1.0, ((1.0, 2.0, -0.4),))
            }
        )
        traces = sim.run(3.0)
        a = traces["a"].achieved_series()
        assert a.mean_between(0.2, 0.9) == pytest.approx(10.0)
        assert a.mean_between(1.2, 1.9) == pytest.approx(6.0)
        assert a.mean_between(2.2, 3.0) == pytest.approx(10.0)

    def test_total_respects_throttled_capacity(self):
        sim = build(
            capacity_schedules={
                "plink": DemandSchedule(1.0, ((1.0, 2.0, -0.5),))
            }
        )
        traces = sim.run(3.0)
        for t, a, b in zip(
            traces["a"].times_s,
            traces["a"].achieved_gbps,
            traces["b"].achieved_gbps,
        ):
            limit = 10.0 if 1.0 <= t < 2.0 else 20.0
            assert a + b <= limit + 1e-6

    def test_recovery_lag_with_adaptation(self):
        adaptations = {
            "a": FirstOrderAdaptation.from_settling_time(0.3),
            "b": FirstOrderAdaptation.from_settling_time(0.3),
        }
        sim = build(
            capacity_schedules={
                "plink": DemandSchedule(1.0, ((1.0, 2.0, -0.5),))
            },
            adaptations=adaptations,
        )
        traces = sim.run(3.5)
        a = traces["a"].achieved_series()
        # Just after recovery the slow sender has not ramped back yet.
        assert a.mean_between(2.0, 2.1) < 8.0
        settle = a.settling_time_s(2.0, target=10.0, tolerance=0.5)
        assert settle == pytest.approx(0.3, abs=0.1)

    def test_no_schedule_means_static(self):
        sim = build()
        traces = sim.run(1.0)
        values = traces["a"].achieved_series().values
        assert values.min() == values.max() == pytest.approx(10.0)
