"""Tests for weighted max-min allocation (the manager's tenant weights)."""

import pytest

from repro.errors import ConfigurationError
from repro.fluid.solver import Channel, FluidFlow, Policy, solve


def weighted_pair(capacity, w0, w1, d0=100.0, d1=100.0):
    channel = Channel("link", capacity)
    return [
        FluidFlow("f0", d0, weight=w0).add(channel),
        FluidFlow("f1", d1, weight=w1).add(channel),
    ]


class TestWeighted:
    def test_weights_divide_capacity(self):
        alloc = solve(weighted_pair(30.0, 2.0, 1.0), Policy.WEIGHTED)
        assert alloc["f0"] == pytest.approx(20.0)
        assert alloc["f1"] == pytest.approx(10.0)

    def test_equal_weights_reduce_to_max_min(self):
        flows_weighted = weighted_pair(30.0, 1.0, 1.0, d0=8.0, d1=100.0)
        flows_plain = weighted_pair(30.0, 1.0, 1.0, d0=8.0, d1=100.0)
        weighted = solve(flows_weighted, Policy.WEIGHTED)
        plain = solve(flows_plain, Policy.MAX_MIN)
        assert weighted == pytest.approx(plain)

    def test_satisfied_flow_releases_its_share(self):
        # f0 (weight 3) only wants 6: the rest goes to f1.
        alloc = solve(
            weighted_pair(30.0, 3.0, 1.0, d0=6.0, d1=100.0), Policy.WEIGHTED
        )
        assert alloc["f0"] == pytest.approx(6.0)
        assert alloc["f1"] == pytest.approx(24.0)

    def test_max_min_ignores_weights(self):
        alloc = solve(weighted_pair(30.0, 5.0, 1.0), Policy.MAX_MIN)
        assert alloc["f0"] == pytest.approx(alloc["f1"])

    def test_invalid_weight_rejected(self):
        channel = Channel("link", 10.0)
        flows = [FluidFlow("f", 5.0, weight=0.0).add(channel)]
        with pytest.raises(ConfigurationError):
            solve(flows, Policy.WEIGHTED)

    def test_three_tenants(self):
        channel = Channel("link", 60.0)
        flows = [
            FluidFlow("gold", 100.0, weight=3.0).add(channel),
            FluidFlow("silver", 100.0, weight=2.0).add(channel),
            FluidFlow("bronze", 100.0, weight=1.0).add(channel),
        ]
        alloc = solve(flows, Policy.WEIGHTED)
        assert alloc["gold"] == pytest.approx(30.0)
        assert alloc["silver"] == pytest.approx(20.0)
        assert alloc["bronze"] == pytest.approx(10.0)

    def test_capacity_conserved(self):
        alloc = solve(weighted_pair(30.0, 7.0, 3.0), Policy.WEIGHTED)
        assert sum(alloc.values()) == pytest.approx(30.0)

    def test_weighted_on_fabric_manager(self, p9634):
        # End to end: a gold and a bronze tenant on one chiplet's GMI port.
        from repro.core.fabric import FabricModel
        from repro.core.flows import StreamSpec
        from repro.transport.message import OpKind

        fabric = FabricModel(p9634)
        cores = [c.core_id for c in p9634.cores_of_ccd(0)]
        specs = [
            StreamSpec("gold", OpKind.READ, tuple(cores[:3])),
            StreamSpec("bronze", OpKind.READ, tuple(cores[3:6])),
        ]
        flows = []
        for spec, weight in zip(specs, (3.0, 1.0)):
            for flow in fabric.flows_for(spec):
                flow.weight = weight
                flows.append(flow)
        alloc = solve(flows, Policy.WEIGHTED)
        gold = sum(v for k, v in alloc.items() if k.startswith("gold"))
        bronze = sum(v for k, v in alloc.items() if k.startswith("bronze"))
        assert gold == pytest.approx(3 * bronze, rel=0.05)
