"""Time-series utilities for the bandwidth-over-time experiments (Figure 5)."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence

import numpy as np

from repro.errors import MeasurementError

__all__ = ["TimeSeries"]


@dataclass(frozen=True)
class TimeSeries:
    """A sampled signal: times (seconds) and values (e.g. GB/s)."""

    times_s: np.ndarray
    values: np.ndarray

    def __post_init__(self) -> None:
        times = np.asarray(self.times_s, dtype=float)
        values = np.asarray(self.values, dtype=float)
        if times.shape != values.shape:
            raise MeasurementError(
                f"times/values shape mismatch: {times.shape} vs {values.shape}"
            )
        if times.size and np.any(np.diff(times) <= 0):
            raise MeasurementError("times must be strictly increasing")
        object.__setattr__(self, "times_s", times)
        object.__setattr__(self, "values", values)

    @classmethod
    def from_pairs(cls, pairs: Sequence[tuple[float, float]]) -> "TimeSeries":
        if not pairs:
            raise MeasurementError("empty time series")
        times, values = zip(*pairs)
        return cls(np.asarray(times, float), np.asarray(values, float))

    def mean_between(self, t0: float, t1: float) -> float:
        """Mean value over the half-open window ``[t0, t1)``."""
        mask = (self.times_s >= t0) & (self.times_s < t1)
        if not mask.any():
            raise MeasurementError(f"no samples in [{t0}, {t1})")
        return float(self.values[mask].mean())

    def settling_time_s(
        self,
        start_s: float,
        target: float,
        tolerance: float,
        end_s: Optional[float] = None,
    ) -> Optional[float]:
        """Time after ``start_s`` until the signal stays within ±``tolerance``
        of ``target`` (first sample from which it never leaves the band before
        ``end_s``). Returns None if it never settles.

        This is how the Figure 5 "bandwidth harvesting delay" (≈100 ms on the
        IF, ≈500 ms on the P Link) is extracted from the simulated series.
        """
        mask = self.times_s >= start_s
        if end_s is not None:
            mask &= self.times_s < end_s
        times = self.times_s[mask]
        values = self.values[mask]
        if times.size == 0:
            raise MeasurementError(f"no samples after {start_s}")
        inside = np.abs(values - target) <= tolerance
        # Find the first index from which every later sample is inside.
        ever_outside_after = np.flip(np.logical_or.accumulate(np.flip(~inside)))
        settled = np.nonzero(~ever_outside_after)[0]
        if settled.size == 0:
            return None
        return float(times[settled[0]] - start_s)
