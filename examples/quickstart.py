#!/usr/bin/env python3
"""Quickstart: characterize a chiplet server in a dozen lines.

Builds the EPYC 9634 platform of the paper, measures the pointer-chase
latency ladder (Table 2 style), then the bandwidth-domain ladder (Table 3
style) — the two measurements that expose "server chiplet networking".

Run:  python examples/quickstart.py
"""

from repro import MicroBench, OpKind, Position, Scope, epyc_9634
from repro.units import KIB, MIB

def main() -> None:
    platform = epyc_9634()
    bench = MicroBench(platform, seed=42)
    print(f"platform: {platform}")

    print("\n-- latency ladder (pointer chasing, growing working set) --")
    for working_set in (32 * KIB, 512 * KIB, 16 * MIB, 256 * MIB):
        level, stats = bench.pointer_chase(working_set, iterations=1000)
        print(
            f"  {working_set / MIB:8.3f} MiB -> {level.value:5s} "
            f"{stats.mean:7.1f} ns (P999 {stats.p999:7.1f} ns)"
        )
    for position in Position:
        __, stats = bench.pointer_chase(
            256 * MIB, position=position, iterations=1000
        )
        print(f"  DRAM {position.value:10s} -> {stats.mean:7.1f} ns")
    __, stats = bench.pointer_chase(256 * MIB, target="cxl", iterations=1000)
    print(f"  CXL DIMM        -> {stats.mean:7.1f} ns")

    print("\n-- bandwidth domains (max-rate streams, read/NT-write GB/s) --")
    for scope in Scope:
        read = bench.stream_bandwidth(scope, OpKind.READ)
        write = bench.stream_bandwidth(scope, OpKind.NT_WRITE)
        print(f"  from {scope.value:5s} to DIMMs: {read:6.1f} / {write:6.1f}")
    for scope in Scope:
        read = bench.stream_bandwidth(scope, OpKind.READ, target="cxl")
        write = bench.stream_bandwidth(scope, OpKind.NT_WRITE, target="cxl")
        print(f"  from {scope.value:5s} to CXL:   {read:6.1f} / {write:6.1f}")


if __name__ == "__main__":
    main()
