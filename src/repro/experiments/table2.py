"""Table 2 — the data-path latency breakdown.

Method (as in §3.1): pointer chasing with a growing working set resolves the
cache levels; saturation probes read back the traffic-control queueing
bounds; per-position DRAM accesses and the CXL DIMM access exercise the full
routed path. Every value is *measured* from the simulation — the platform
presets only hold per-stage constants, and the sums/queueing emerge.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from repro.analysis.report import render_table
from repro.core.flows import Scope
from repro.core.microbench import MicroBench
from repro.platform.numa import Position
from repro.platform.topology import Platform

__all__ = ["Table2Row", "run", "run_many", "render", "PAPER_TABLE2"]

#: The paper's Table 2 (ns) for comparison. None = N/A on that platform.
PAPER_TABLE2: Dict[str, Dict[str, Optional[float]]] = {
    "EPYC 7302": {
        "l1": 1.24, "l2": 5.66, "l3": 34.3,
        "max_ccx_q": 30.0, "max_ccd_q": 20.0,
        "switching_hop": 8.0, "io_hub": 15.0,
        "near": 124.0, "vertical": 131.0, "horizontal": 141.0,
        "diagonal": 145.0, "cxl": None,
    },
    "EPYC 9634": {
        "l1": 1.19, "l2": 7.51, "l3": 40.8,
        "max_ccx_q": 20.0, "max_ccd_q": None,
        "switching_hop": 4.0, "io_hub": 15.0,
        "near": 141.0, "vertical": 145.0, "horizontal": 150.0,
        "diagonal": 149.0, "cxl": 243.0,
    },
}


@dataclass(frozen=True)
class Table2Row:
    """Measured latency breakdown for one platform (ns; None = N/A)."""

    platform: str
    l1: float
    l2: float
    l3: float
    max_ccx_q: float
    max_ccd_q: Optional[float]
    switching_hop: float
    io_hub: float
    near: float
    vertical: float
    horizontal: float
    diagonal: float
    cxl: Optional[float]

    def as_dict(self) -> Dict[str, Optional[float]]:
        """The row as a plain {field: value} mapping."""
        return {
            "l1": self.l1, "l2": self.l2, "l3": self.l3,
            "max_ccx_q": self.max_ccx_q, "max_ccd_q": self.max_ccd_q,
            "switching_hop": self.switching_hop, "io_hub": self.io_hub,
            "near": self.near, "vertical": self.vertical,
            "horizontal": self.horizontal, "diagonal": self.diagonal,
            "cxl": self.cxl,
        }


def run(platform: Platform, iterations: int = 2000, seed: int = 0) -> Table2Row:
    """Measure the full Table 2 column for one platform."""
    bench = MicroBench(platform, seed=seed)
    spec = platform.spec

    # Cache levels: pointer chase with working sets at half of each capacity.
    results = {}
    for label, working_set in (
        ("l1", spec.l1_bytes // 2),
        ("l2", spec.l2_bytes // 2),
        ("l3", spec.l3_per_ccx_bytes // 2),
    ):
        __, stats = bench.pointer_chase(working_set, iterations=iterations)
        results[label] = stats.mean

    # Traffic-control queueing: saturate one CCX, then one whole CCD.
    ccx_probe = bench.queueing_probe(Scope.CCX)
    results["max_ccx_q"] = ccx_probe["ccx_max_wait_ns"]
    if spec.latency.ccd_queue_max_ns > 0:
        ccd_probe = bench.queueing_probe(Scope.CCD)
        results["max_ccd_q"] = ccd_probe["ccd_max_wait_ns"]
    else:
        results["max_ccd_q"] = None

    # DRAM by mesh position; use a working set far beyond the L3 slice.
    dram_ws = 4 * spec.l3_per_ccx_bytes
    for position in Position:
        __, stats = bench.pointer_chase(
            dram_ws, position=position, iterations=iterations
        )
        results[position.value] = stats.mean

    # CXL DIMM (9634 only).
    if platform.cxl_devices:
        __, stats = bench.pointer_chase(
            dram_ws, target="cxl", iterations=iterations
        )
        results["cxl"] = stats.mean
    else:
        results["cxl"] = None

    return Table2Row(
        platform=platform.name,
        l1=results["l1"],
        l2=results["l2"],
        l3=results["l3"],
        max_ccx_q=results["max_ccx_q"],
        max_ccd_q=results["max_ccd_q"],
        switching_hop=spec.latency.switching_hop_ns,
        io_hub=spec.latency.io_hub_ns,
        near=results["near"],
        vertical=results["vertical"],
        horizontal=results["horizontal"],
        diagonal=results["diagonal"],
        cxl=results["cxl"],
    )


def run_many(
    platforms, iterations: int = 2000, seed: int = 0, jobs=None
) -> Dict[str, Table2Row]:
    """Measure one Table 2 column per platform, fanned out over processes."""
    from repro.runner import platform_map

    return platform_map(run, platforms, jobs=jobs, iterations=iterations, seed=seed)


def render(rows: Dict[str, Table2Row]) -> str:
    """Render measured columns side by side with the paper's values."""
    labels = {
        "l1": "L1",
        "l2": "L2",
        "l3": "L3",
        "max_ccx_q": "Max CCX Q",
        "max_ccd_q": "Max CCD Q",
        "switching_hop": "Switching hop",
        "io_hub": "I/O hub",
        "near": "DRAM near",
        "vertical": "DRAM vertical",
        "horizontal": "DRAM horizontal",
        "diagonal": "DRAM diagonal",
        "cxl": "CXL DIMM",
    }
    names = list(rows)
    headers = ["Latency (ns)"]
    for name in names:
        headers += [f"{name} (sim)", f"{name} (paper)"]
    table_rows = []
    for key, label in labels.items():
        row = [label]
        for name in names:
            measured = rows[name].as_dict()[key]
            paper = PAPER_TABLE2[name][key]
            row.append("N/A" if measured is None else f"{measured:.2f}")
            row.append("N/A" if paper is None else f"{paper:.2f}")
        table_rows.append(row)
    return render_table(
        headers, table_rows, title="Table 2: data path latency breakdown"
    )
