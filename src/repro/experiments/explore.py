"""``repro explore`` — topology × routing × workload design-space sweep.

The generator (:mod:`repro.platform.generator`) turns the two calibrated
presets into points of a design space; this experiment walks that space the
way RapidChiplet walks chiplet design sweeps. Every (topology, routing,
workload) cell builds the generated platform, compiles its routed fabric
for the chosen policy, and scores the point on four axes:

* **victim share** — the Figure 4–6 contention probe on the generated
  mesh: a paced single-CCX victim against a whole-chiplet hog, both on
  the victim's memory endpoints; reported for the fluid steady state and
  the DES packet model independently;
* **Jain fairness** — across every stream's achieved throughput;
* **p99 latency** — tail packet latency through the DES mesh
  (:class:`~repro.noc.router.AdaptiveMeshNetwork`), open-loop paced
  injection;
* **bisection utilization** — mean fluid utilization of the mesh links
  crossing the vertical midline: how much of the topology's bisection the
  workload actually keeps busy.

The scalar ``score`` folds them into one ranking number::

    score = 100 × jain × bisection_util × share_term / p99_us

with ``share_term`` the fluid victim share on the contention workload and
1.0 on workloads without a victim — fair, bisection-busy, low-tail points
win. Every cell is one hardened-runner :class:`~repro.runner.Cell` whose
arguments fold the full :class:`~repro.platform.generator.TopologyGen`
spec into the content-addressed cache key, so sweeps re-run incrementally
and ``--jobs`` fan-out stays byte-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import render_table
from repro.core.fabric import FabricModel
from repro.core.flows import StreamSpec
from repro.errors import ConfigurationError
from repro.experiments.contention import (
    VICTIM_DEMAND_GBPS,
    contention_streams,
    shared_umc_ids,
)
from repro.noc.router import AdaptiveMeshNetwork
from repro.noc.routing import RoutingPolicy
from repro.platform.generator import TopologyGen, catalog_names, from_catalog
from repro.platform.topology import Platform
from repro.runner import (
    Cell,
    CellResult,
    USE_DEFAULT_CACHE,
    run_cells_detailed,
)
from repro.sim.engine import Environment
from repro.sim.rng import SplitRng
from repro.transport.message import OpKind

__all__ = [
    "ROUTINGS", "WORKLOADS", "ExplorePoint", "run_point", "run", "render",
]

#: Routing policies the sweep compares, in presentation order.
ROUTINGS: Tuple[str, ...] = ("xy", "adaptive")

#: Workloads the sweep drives, in presentation order.
WORKLOADS: Tuple[str, ...] = ("contention", "uniform")

#: Offered rate of the contention hog (GB/s), as in ``repro netstack``.
_HOG_DEMAND_GBPS = 64.0

#: DES packet size: one pipelined mesh FLIT train (4 KiB transfer).
_PACKET_BYTES = 4096


@dataclass(frozen=True)
class ExplorePoint:
    """One scored (topology, routing, workload) cell of the sweep."""

    topology: str
    routing: str
    workload: str
    #: Fluid / DES victim share of demand (NaN on victim-less workloads).
    victim_share: float
    des_victim_share: float
    jain: float
    p99_ns: float
    bisection_util: float
    score: float


def _jain(values: Sequence[float]) -> float:
    total = sum(values)
    squares = sum(value * value for value in values)
    if squares == 0:
        return 1.0
    return total * total / (len(values) * squares)


def _workload_streams(
    platform: Platform, workload: str
) -> Tuple[List[StreamSpec], List[int]]:
    """The workload's streams plus the UMC interleave set they target."""
    if workload == "contention":
        victim_cores = tuple(
            core.core_id for core in platform.cores_of_ccx(0)
        )
        victim, hog = contention_streams(
            platform,
            victim_cores=victim_cores,
            hog_demand_gbps=_HOG_DEMAND_GBPS,
        )
        return [victim, hog], shared_umc_ids(platform)
    if workload == "uniform":
        # Every chiplet offers its full GMI rate, interleaved over all
        # memory channels (NPS1) — the all-to-all background the bisection
        # metric is about.
        rate = platform.spec.bandwidth.gmi_read_gbps
        streams = [
            StreamSpec(
                f"ccd{ccd_id}",
                OpKind.READ,
                tuple(core.core_id for core in platform.cores_of_ccd(ccd_id)),
                demand_gbps=rate,
            )
            for ccd_id in sorted(platform.ccds)
        ]
        return streams, sorted(platform.umcs)
    raise ConfigurationError(
        f"unknown workload {workload!r} (choose from {', '.join(WORKLOADS)})"
    )


def _bisection_utilization(
    fabric: FabricModel,
    specs: Sequence[StreamSpec],
    umc_ids: Sequence[int],
) -> float:
    """Mean read-direction utilization of the mesh links crossing x=W/2."""
    routing = fabric.routing
    assert routing is not None
    mid = routing.grid.width / 2.0
    utilizations = fabric.utilizations(specs, umc_ids=umc_ids)
    cut = [
        value
        for name, value in sorted(utilizations.items())
        if name.startswith("mesh:") and name.endswith(":r")
        and _crosses_midline(name, mid)
    ]
    return sum(cut) / len(cut) if cut else 0.0


def _crosses_midline(channel_name: str, mid: float) -> bool:
    stem = channel_name.split(":")[1]  # "x,y,z>x,y,z"
    src, dst = stem.split(">")
    src_x = int(src.split(",")[0])
    dst_x = int(dst.split(",")[0])
    return (src_x < mid) != (dst_x < mid)


def _des_metrics(
    gen: TopologyGen,
    policy: RoutingPolicy,
    specs: Sequence[StreamSpec],
    umc_ids: Sequence[int],
    platform: Platform,
    seed: int,
    packets_per_sender: int,
) -> Tuple[float, float]:
    """(victim share, p99 ns) from open-loop paced DES packet injection.

    One sender per stream, placed at the stream's chiplet mesh stop,
    striping packets over the interleave set's stops. Injection is
    open-loop (each packet is its own process released at its due time),
    so congested paths grow queues and stretch the sender's makespan —
    achieved throughput and tail latency emerge rather than being assumed.
    """
    routing = gen.noc_routing(policy)
    env = Environment()
    net = AdaptiveMeshNetwork(
        env,
        routing.grid,
        port_gbps=routing.link_read_gbps,
        x_hop_ns=routing.x_hop_ns,
        y_hop_ns=routing.y_hop_ns,
        z_hop_ns=routing.z_hop_ns,
        policy=policy,
    )
    rng = SplitRng(seed)
    latencies: List[float] = []
    finished: Dict[str, List[float]] = {}
    starts: Dict[str, float] = {}

    def packet(src, dst, due, stream_name):
        if env.now < due:
            yield env.timeout(due - env.now)
        latency = yield from net.send(src, dst, _PACKET_BYTES)
        latencies.append(latency)
        finished[stream_name].append(env.now)

    for index, spec in enumerate(specs):
        demand = spec.demand_gbps or platform.spec.bandwidth.gmi_read_gbps
        interval = _PACKET_BYTES / demand
        stream_rng = rng.stream(f"explore/{spec.name}")
        offset = float(stream_rng.uniform(0.0, interval))
        ccd_id = platform.core(spec.core_ids[0]).ccd_id
        src = routing.ccd_coords3[ccd_id % len(routing.ccd_coords3)]
        starts[spec.name] = offset
        finished[spec.name] = []
        for i in range(packets_per_sender):
            dst_umc = umc_ids[(index + i) % len(umc_ids)]
            dst = routing.umc_coords3[dst_umc % len(routing.umc_coords3)]
            due = offset + i * interval
            if src == dst:
                # Co-located stop: delivery never enters the mesh. Count
                # it at its due time with zero mesh latency so the
                # sender's achieved rate reflects the local path.
                latencies.append(0.0)
                finished[spec.name].append(due)
                continue
            env.process(packet(src, dst, due, spec.name))
    env.run()

    def achieved(name: str) -> float:
        completions = finished[name]
        if not completions:
            return 0.0
        span = max(completions) - starts[name]
        return len(completions) * _PACKET_BYTES / span if span > 0 else 0.0

    if specs[0].name == "victim":
        # A paced sender cannot beat its own demand; the clamp absorbs the
        # one-interval makespan bias of all-local delivery.
        victim_share = min(
            1.0, achieved("victim") / (specs[0].demand_gbps or 1.0)
        )
    else:
        victim_share = math.nan
    import numpy as np

    p99 = float(np.percentile(np.asarray(latencies), 99.0))
    return victim_share, p99


def run_point(
    topology: str,
    gen: TopologyGen,
    routing: str,
    workload: str,
    seed: int = 0,
    packets_per_sender: int = 60,
) -> ExplorePoint:
    """One scored sweep cell (independent, hardened-runner friendly).

    ``gen`` rides along as an explicit argument so the runner's cache key
    folds the full generator spec (via ``TopologyGen.__repro_cache_key__``)
    — editing a topology's geometry invalidates exactly its cells.
    """
    if routing not in ROUTINGS:
        raise ConfigurationError(
            f"unknown routing {routing!r} (choose from {', '.join(ROUTINGS)})"
        )
    policy = RoutingPolicy(routing)
    platform = gen.platform()
    fabric = FabricModel(platform, routing=gen.noc_routing(policy))
    specs, umc_ids = _workload_streams(platform, workload)
    achieved = fabric.achieved_gbps(specs, umc_ids=umc_ids)
    rates = [achieved[spec.name] for spec in specs]
    jain = _jain(rates)
    if workload == "contention":
        victim_share = achieved["victim"] / VICTIM_DEMAND_GBPS
    else:
        victim_share = math.nan
    bisection = _bisection_utilization(fabric, specs, umc_ids)
    des_victim_share, p99_ns = _des_metrics(
        gen, policy, specs, umc_ids, platform, seed, packets_per_sender
    )
    share_term = 1.0 if math.isnan(victim_share) else victim_share
    p99_us = max(p99_ns / 1000.0, 1e-9)
    score = 100.0 * jain * bisection * share_term / p99_us
    return ExplorePoint(
        topology=topology,
        routing=routing,
        workload=workload,
        victim_share=victim_share,
        des_victim_share=des_victim_share,
        jain=jain,
        p99_ns=p99_ns,
        bisection_util=bisection,
        score=score,
    )


def run(
    topologies: Optional[Sequence[str]] = None,
    routings: Sequence[str] = ROUTINGS,
    workloads: Sequence[str] = WORKLOADS,
    seed: int = 0,
    packets_per_sender: int = 60,
    jobs=None,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    fail_fast: bool = False,
    cache=USE_DEFAULT_CACHE,
) -> List[CellResult]:
    """The full sweep through the hardened runner.

    Submission order is topology-major (all of one topology's cells, then
    the next), matching the rendered table; output is byte-identical for
    any ``--jobs`` and with or without a result ``cache``.
    """
    names = list(topologies) if topologies is not None else list(catalog_names())
    cells = [
        Cell(
            run_point,
            (name, from_catalog(name), routing, workload),
            dict(seed=seed, packets_per_sender=packets_per_sender),
        )
        for name in names
        for workload in workloads
        for routing in routings
    ]
    return run_cells_detailed(
        cells, jobs=jobs, timeout_s=timeout_s, retries=retries,
        fail_fast=fail_fast, cache=cache,
    )


def render(results: Sequence[CellResult]) -> str:
    """The scored sweep table, one row per (topology, workload, routing)."""
    headers = [
        "topology", "workload", "routing", "victim share", "victim (DES)",
        "Jain", "p99 ns", "bisection", "score",
    ]
    rows = []
    for result in results:
        if result.ok:
            point = result.value
            rows.append([
                point.topology,
                point.workload,
                point.routing,
                "-" if math.isnan(point.victim_share)
                else f"{point.victim_share:.3f}",
                "-" if math.isnan(point.des_victim_share)
                else f"{point.des_victim_share:.3f}",
                f"{point.jain:.4f}",
                f"{point.p99_ns:.1f}",
                f"{point.bisection_util:.3f}",
                f"{point.score:.3f}",
            ])
        else:
            rows.append([
                f"cell {result.index}",
                f"FAILED ({result.failure.kind})",
                "-", "-", "-", "-", "-", "-", "-",
            ])
    return render_table(
        headers, rows,
        title="Explore: generated topology x routing x workload sweep",
    )
