"""Figure 3 — average and P999 latency versus offered load.

Six panels, each a transaction-level DES sweep: rate-controlled sequential
reads and non-temporal writes from a set of cores toward DRAM or CXL memory,
with per-transaction latency sampling. Queueing at whichever resource
saturates (GMI port, UMC channel, hub port/P Link) produces the latency
rise; DRAM timing jitter produces the P999 tail.

Panel configurations (core counts and per-op issue windows) are calibration
constants chosen so the *endpoint* latencies land near the paper's; the
shape — flat at low load, knee near capacity, tails amplifying before
averages — is emergent. Paper endpoints (avg/P999 ns, low load → max load):

=========================  ======================  ======================
panel                      read                    write
=========================  ======================  ======================
(a) IF intra-CC, 7302      144.5/490 flat          142.5/500 flat
(b) IF intra-CC, 9634      ≈2× rise near peak      ≈2× rise near peak
(c) IF inter-CC, 7302      flat                    flat
(d) GMI, 7302              123.7/470 → 172.5/800   123.9/480 → 153.5/630
(e) GMI, 9634              143.7/380 → 249.5/810   144.1/350 → 695.8/1750
(f) P Link/CXL, 9634       ≈1.7×/1.4× rise         ≈2.1×/1.6× rise
=========================  ======================  ======================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.analysis.report import render_table
from repro.core.loadgen import LoadResult
from repro.core.microbench import MicroBench
from repro.errors import ConfigurationError
from repro.platform.numa import Position
from repro.platform.topology import Platform
from repro.transport.message import OpKind

__all__ = [
    "PanelConfig", "PanelSweep", "run_panel", "run_all", "panel_configs",
    "render",
]

#: Offered-load fractions of the panel's saturation bandwidth; the final
#: point is unthrottled (None rate → window-limited saturation).
LOAD_FRACTIONS = (0.2, 0.4, 0.6, 0.8, 0.9)


@dataclass(frozen=True)
class PanelConfig:
    """One Figure 3 panel's workload definition."""

    panel: str
    platform_name: str
    description: str
    core_count: int
    target: str                       # "dram" or "cxl"
    position: Optional[Position]      # DRAM position (None → near group)
    window_read: int
    window_write: int
    #: Offered-load sweep ceiling (GB/s); roughly the bottleneck capacity.
    max_offered_read: float
    max_offered_write: float
    #: Whether cores span multiple chiplets (inter-CC panels).
    spread_ccds: bool = False


def panel_configs(platform: Platform) -> List[PanelConfig]:
    """The paper's panels available on ``platform``."""
    bw = platform.spec.bandwidth
    if "7302" in platform.name:
        return [
            # (a) IF intra-CC: one CCX, windows kept inside the token pool →
            # nothing saturates, latency is flat at the diagonal-DRAM base.
            PanelConfig(
                "a", platform.name, "IF intra-CC (7302)",
                core_count=2, target="dram", position=Position.DIAGONAL,
                window_read=20, window_write=6,
                max_offered_read=16.0, max_offered_write=4.5,
            ),
            # (c) IF inter-CC: two chiplets, load well inside the NoC.
            PanelConfig(
                "c", platform.name, "IF inter-CC (7302)",
                core_count=4, target="dram", position=Position.DIAGONAL,
                window_read=20, window_write=6, spread_ccds=True,
                max_offered_read=32.0, max_offered_write=9.0,
            ),
            # (d) GMI: one chiplet saturating its GMI port toward the near
            # UMC group; reads pile up to the CCD token pool.
            PanelConfig(
                "d", platform.name, "GMI (7302)",
                core_count=4, target="dram", position=Position.NEAR,
                window_read=22, window_write=9,
                max_offered_read=bw.gmi_read_gbps,
                max_offered_write=bw.gmi_write_gbps,
            ),
        ]
    if "9634" in platform.name:
        return [
            # (b) IF intra-CC: the whole 7-core chiplet against its
            # less-provisioned IF/GMI — ≈2× latency at peak.
            PanelConfig(
                "b", platform.name, "IF intra-CC (9634)",
                core_count=7, target="dram", position=Position.DIAGONAL,
                window_read=22, window_write=15,
                max_offered_read=bw.gmi_read_gbps,
                max_offered_write=bw.gmi_write_gbps,
            ),
            # (e) GMI: one chiplet against its near UMC group; deep NT-write
            # coalescing buffers produce the paper's write-tail blowup.
            PanelConfig(
                "e", platform.name, "GMI (9634)",
                core_count=7, target="dram", position=Position.NEAR,
                window_read=19, window_write=37,
                max_offered_read=bw.gmi_read_gbps,
                max_offered_write=bw.gmi_write_gbps,
            ),
            # (f) P Link/CXL: one chiplet against the hub port + CXL pool.
            PanelConfig(
                "f", platform.name, "P Link/CXL (9634)",
                core_count=7, target="cxl", position=None,
                window_read=22, window_write=18,
                max_offered_read=bw.hub_port_read_gbps,
                max_offered_write=bw.hub_port_write_gbps,
            ),
        ]
    raise ConfigurationError(f"no Figure 3 panels for {platform.name}")


@dataclass(frozen=True)
class PanelSweep:
    """One panel × one op: latency stats across the offered-load sweep."""

    config: PanelConfig
    op: OpKind
    offered_gbps: Tuple[Optional[float], ...]
    results: Tuple[LoadResult, ...]

    @property
    def base(self) -> LoadResult:
        return self.results[0]

    @property
    def peak(self) -> LoadResult:
        return self.results[-1]

    def mean_rise(self) -> float:
        """Peak-to-base ratio of the average latency."""
        return self.peak.stats.mean / self.base.stats.mean

    def tail_rise(self) -> float:
        """Peak-to-base ratio of the P999 latency."""
        return self.peak.stats.p999 / self.base.stats.p999


def _core_ids(platform: Platform, config: PanelConfig) -> List[int]:
    ccd_ids = sorted(platform.ccds)
    if not config.spread_ccds:
        cores = platform.cores_of_ccd(ccd_ids[0])[: config.core_count]
        return [core.core_id for core in cores]
    # Spread over the first two chiplets the platform actually has (one,
    # on single-CCD generated topologies, degenerates to no spread).
    spread = ccd_ids[:2]
    per_ccd = max(1, config.core_count // len(spread))
    ids: List[int] = []
    for ccd_id in spread:
        ids += [
            core.core_id
            for core in platform.cores_of_ccd(ccd_id)[:per_ccd]
        ]
    return ids[: config.core_count]


def _target_umcs(platform: Platform, config: PanelConfig) -> Optional[List[int]]:
    if config.target != "dram" or config.position is None:
        return None
    return sorted(
        umc.umc_id for umc in platform.umcs_at(0, config.position)
    )


def run_panel(
    platform: Platform,
    config: PanelConfig,
    op: OpKind,
    transactions_per_core: int = 600,
    fractions: Sequence[float] = LOAD_FRACTIONS,
    seed: int = 0,
) -> PanelSweep:
    """Sweep offered load for one panel and op kind."""
    bench = MicroBench(platform, seed=seed)
    core_ids = _core_ids(platform, config)
    umc_ids = _target_umcs(platform, config)
    max_offered = (
        config.max_offered_write if op.is_write else config.max_offered_read
    )
    window = config.window_write if op.is_write else config.window_read
    offered: List[Optional[float]] = [f * max_offered for f in fractions]
    offered.append(None)  # unthrottled: the panel's saturation point
    results = [
        bench.loaded_latency(
            core_ids, op, rate,
            umc_ids=umc_ids,
            target=config.target,
            window_per_core=window,
            transactions_per_core=transactions_per_core,
        )
        for rate in offered
    ]
    return PanelSweep(config, op, tuple(offered), tuple(results))


def run_all(
    platforms: Sequence[Platform],
    transactions_per_core: int = 600,
    fractions: Sequence[float] = LOAD_FRACTIONS,
    seed: int = 0,
    jobs=None,
) -> List[PanelSweep]:
    """Every (platform, panel, op) sweep, fanned out over worker processes.

    Each sweep is one independent runner cell (its own Environment and seed
    streams), so the result list is bit-identical for any ``jobs`` value and
    ordered canonically: platforms in the given order, panels in
    ``panel_configs`` order, READ before NT_WRITE.
    """
    from repro.runner import Cell, run_cells

    cells = [
        Cell(
            run_panel,
            (platform, config, op),
            dict(
                transactions_per_core=transactions_per_core,
                fractions=tuple(fractions),
                seed=seed,
            ),
        )
        for platform in platforms
        for config in panel_configs(platform)
        for op in (OpKind.READ, OpKind.NT_WRITE)
    ]
    return run_cells(cells, jobs=jobs)


def export_csv(sweeps: Sequence[PanelSweep], out_dir) -> List[str]:
    """Write one CSV per (panel, op) sweep; returns the file paths.

    Columns: offered GB/s (empty for the unthrottled point), achieved GB/s,
    average ns, P999 ns - everything needed to re-plot the figure.
    """
    from pathlib import Path

    from repro.analysis.export import rows_to_csv

    directory = Path(out_dir)
    directory.mkdir(parents=True, exist_ok=True)
    written: List[str] = []
    for sweep in sweeps:
        rows = []
        for rate, result in zip(sweep.offered_gbps, sweep.results):
            rows.append([
                "" if rate is None else f"{rate:.3f}",
                f"{result.achieved_gbps:.3f}",
                f"{result.stats.mean:.2f}",
                f"{result.stats.p999:.2f}",
            ])
        path = directory / (
            f"fig3_{sweep.config.panel}_{sweep.op.value}.csv"
        )
        rows_to_csv(
            ["offered_gbps", "achieved_gbps", "avg_ns", "p999_ns"],
            rows, path,
        )
        written.append(str(path))
    return written


def render(sweeps: Sequence[PanelSweep]) -> str:
    """Render the result as an aligned paper-style text table."""
    headers = [
        "panel", "op", "offered GB/s", "achieved GB/s",
        "avg ns", "P999 ns",
    ]
    rows = []
    for sweep in sweeps:
        for rate, result in zip(sweep.offered_gbps, sweep.results):
            rows.append([
                f"({sweep.config.panel}) {sweep.config.description}",
                sweep.op.value,
                "max" if rate is None else f"{rate:.1f}",
                f"{result.achieved_gbps:.1f}",
                f"{result.stats.mean:.1f}",
                f"{result.stats.p999:.1f}",
            ])
    return render_table(
        headers, rows, title="Figure 3: latency vs offered load"
    )
