"""Smoke tests: the fast examples run end to end as subprocesses."""

import subprocess
import sys
from pathlib import Path

import pytest

_EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"

#: The examples that finish within a few seconds (the DES-heavy ones are
#: exercised through the benchmark suite instead).
_FAST_EXAMPLES = [
    "interconnect_wall.py",
    "storage_relay.py",
    "thermal_throttle.py",
    "bandwidth_harvesting.py",
    "noisy_neighbor.py",
]


@pytest.mark.parametrize("script", _FAST_EXAMPLES)
def test_example_runs(script):
    path = _EXAMPLES_DIR / script
    assert path.exists(), path
    completed = subprocess.run(
        [sys.executable, str(path)],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert completed.returncode == 0, completed.stderr[-2000:]
    assert completed.stdout.strip(), "example produced no output"
