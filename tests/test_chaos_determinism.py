"""``repro chaos`` determinism: byte-identical output for any --jobs/cache.

The chaos sweep and its recovery comparison run through the hardened
runner: every cell is a pure function of its arguments, results come back
in submission order, and the renderer is deterministic — so stdout must
be byte-identical whether cells ran inline, fanned out over worker
processes, or came back from the content-addressed result cache. The
``--recover`` cells ride the same contract (the backoff jitter is a
seeded SplitRng stream, not wall-clock randomness).
"""

import pytest

from repro.cli import main

_ARGS = [
    "chaos", "--platform", "7302", "--severity", "0.5",
    "--transactions", "40", "--recover",
]


def _run(capsys, tag, *extra):
    assert main([*_ARGS, *extra]) == 0
    return capsys.readouterr().out


class TestJobsInvariance:
    @pytest.mark.parametrize("jobs", ["2", "4"])
    def test_stdout_identical_across_jobs(self, capsys, jobs):
        baseline = _run(capsys, "j1", "--jobs", "1")
        fanned = _run(capsys, f"j{jobs}", "--jobs", jobs)
        assert fanned == baseline
        assert "Chaos recovery" in baseline
        assert "Chaos sweep" in baseline


class TestCacheInvariance:
    def test_cache_miss_then_hit_byte_identical(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        cold = _run(capsys, "miss")  # populates the cache
        warm = _run(capsys, "hit", "--jobs", "3")
        assert warm == cold
        monkeypatch.setenv("REPRO_CACHE", "0")
        uncached = _run(capsys, "nocache")
        assert uncached == cold

    def test_no_cache_flag_matches_cached(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE", "1")
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "cache"))
        cached = _run(capsys, "cached")
        flagged = _run(capsys, "flagged", "--no-cache")
        assert flagged == cached


class TestRecoveryTable:
    def test_recover_flag_adds_the_failover_table(self, capsys):
        without = _run(capsys, "plain", "--no-cache")
        assert "Chaos recovery" in without
        assert main(["chaos", "--platform", "7302", "--severity", "0.5",
                     "--transactions", "40", "--no-cache"]) == 0
        plain = capsys.readouterr().out
        assert "Chaos recovery" not in plain
        # The severity sweep itself is unchanged by --recover.
        assert plain.split("Chaos recovery")[0] in without

    def test_recovery_rows_tell_the_story(self, capsys):
        out = _run(capsys, "story", "--no-cache")
        recovery = out.split("Chaos recovery", 1)[1]
        lines = [l for l in recovery.splitlines() if "|" in l]
        rows = {
            (cells[0], cells[1]): cells
            for cells in (
                [c.strip() for c in line.split("|")] for line in lines[1:]
            )
        }
        for backend in ("fluid", "des"):
            collapsed = float(rows[(backend, "off")][4])
            recovered = float(rows[(backend, "on")][4])
            assert collapsed < 0.8, (backend, collapsed)
            assert recovered >= 0.8, (backend, recovered)
