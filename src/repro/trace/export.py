"""Chrome trace-event / Perfetto export of trace recordings.

The exporter emits the JSON object format both ``chrome://tracing`` and
`Perfetto <https://ui.perfetto.dev>`_ load: a ``traceEvents`` list of
complete (``"ph": "X"``) events with microsecond timestamps, plus metadata
events naming each process and thread. One *cell* (an independently
simulated experiment — a netstack arm, a Table 2 position) becomes one
process; each span *track* (a flow/worker lane) becomes one thread.

Everything is deterministic: cells keep their submission order (the same
order the hardened runner returns results in, for any ``--jobs`` value),
tracks are numbered by first appearance inside the recording's sorted
span list, and :func:`dumps` serializes with sorted keys and fixed
separators — so the emitted bytes are a pure function of the cell
arguments, which is what the byte-identity tests pin down.
"""

from __future__ import annotations

import json
from typing import Any, Dict, List, Sequence, Tuple

from repro.trace.tracer import TraceRecording

__all__ = ["chrome_trace", "dumps", "event_count"]

#: Simulated nanoseconds per Chrome trace-event time unit (microseconds).
_NS_PER_US = 1000.0


def chrome_trace(
    cells: Sequence[Tuple[str, TraceRecording]],
) -> Dict[str, Any]:
    """Merge labelled recordings into one Chrome trace-event object.

    ``cells`` is an ordered ``(label, recording)`` sequence; ordering is
    the caller's contract (use runner submission order for determinism).
    """
    events: List[Dict[str, Any]] = []
    for pid, (label, recording) in enumerate(cells, start=1):
        events.append({
            "ph": "M",
            "name": "process_name",
            "pid": pid,
            "tid": 0,
            "args": {"name": label},
        })
        tids: Dict[str, int] = {}
        for span in recording.spans:
            track = span["track"]
            tid = tids.get(track)
            if tid is None:
                tid = len(tids) + 1
                tids[track] = tid
                events.append({
                    "ph": "M",
                    "name": "thread_name",
                    "pid": pid,
                    "tid": tid,
                    "args": {"name": track},
                })
            event: Dict[str, Any] = {
                "ph": "X",
                "name": span["name"],
                "cat": span["cat"],
                "pid": pid,
                "tid": tid,
                "ts": span["ts"] / _NS_PER_US,
                "dur": span["dur"] / _NS_PER_US,
            }
            args = dict(span.get("args") or {})
            args["seq"] = span["seq"]
            if span.get("parent") is not None:
                args["parent"] = span["parent"]
            event["args"] = args
            events.append(event)
    return {
        "traceEvents": events,
        "displayTimeUnit": "ns",
        "otherData": {"producer": "repro.trace", "clock": "simulated-ns"},
    }


def dumps(trace: Dict[str, Any]) -> str:
    """Serialize a trace object to deterministic JSON text.

    Sorted keys plus fixed separators make the bytes reproducible; float
    round-tripping uses ``repr`` (exact for doubles), so equal simulated
    timestamps serialize to equal bytes on every platform.
    """
    return json.dumps(trace, sort_keys=True, separators=(",", ":"))


def event_count(trace: Dict[str, Any]) -> int:
    """Number of span events (excluding metadata) in a trace object."""
    return sum(1 for event in trace["traceEvents"] if event["ph"] == "X")
