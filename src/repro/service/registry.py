"""The submittable cell kinds and their job specs.

A *job spec* is the JSON-friendly description of one batch a client
submits: which experiment kind, on which platform preset, with which
parameters and execution variants. :func:`normalize_spec` canonicalizes a
raw spec (fills defaults, validates every field, sorts structure) so that
two clients asking for the same work produce byte-identical specs — and
therefore the same cells, the same cache keys, and the same dedup
behaviour.

Five kinds cover the service's surface, one per family of the repo's
experiment layers:

* ``netstack`` — the §4 stack-on/off contention comparison
  (:func:`repro.experiments.netstack.run_point`), one cell per
  (backend, arm);
* ``chaos`` — the graceful-degradation severity sweep
  (:func:`repro.experiments.chaos.run_point`), one cell per severity,
  optionally with the fault-reactive recovery layer enabled per job;
* ``trace`` — the span-traced cells
  (:mod:`repro.experiments.trace`), whose values carry
  :class:`~repro.trace.TraceRecording` artifacts the server exports as
  Perfetto JSON handles;
* ``kvstore`` — the open-loop serving-tail sweep
  (:func:`repro.experiments.kvserve.run_point`), one cell per
  (value tier, background arm) on the hybrid batched/fluid engine;
* ``explore`` — the generated-topology design-space sweep
  (:func:`repro.experiments.explore.run_point`), one cell per
  (topology, workload, routing). The spec's ``platform`` field is
  carried (and validated) for spec uniformity but ignored: each cell's
  platform comes from its generated topology.

Execution *variants* (sharded DES engine, recovery layer) are carried in
the spec, not in the server's environment: :func:`variant_raws` exposes
them as the raw strings :func:`repro.cache.cell_key` folds into content
keys, and :func:`apply_variants` applies them to ``os.environ`` only for
the duration of one (serialized) batch execution.
"""

from __future__ import annotations

import contextlib
import os
from typing import Any, Callable, Dict, Iterator, List, Optional, Sequence, Tuple

from repro.errors import ConfigurationError
from repro.runner import Cell, CellResult, USE_DEFAULT_CACHE, run_cells_detailed

__all__ = [
    "KINDS",
    "apply_variants",
    "build_cells",
    "kind_names",
    "normalize_spec",
    "render_results",
    "resolve_platform",
    "run_local",
    "trace_recordings",
    "variant_raws",
]

#: The submittable experiment kinds, in presentation order.
KINDS: Tuple[str, ...] = ("netstack", "chaos", "trace", "kvstore", "explore")

#: Platform presets the service accepts (the CLI's map raises SystemExit
#: on bad names; the service needs a catchable ConfigurationError).
_PLATFORM_NAMES: Tuple[str, ...] = ("7302", "9634", "synthetic")

_PLATFORM_ALIASES = {
    "epyc7302": "7302",
    "epyc-7302": "7302",
    "epyc9634": "9634",
    "epyc-9634": "9634",
}


def kind_names() -> Tuple[str, ...]:
    """The accepted ``kind`` values, for help strings and validation."""
    return KINDS


def resolve_platform(name: str):
    """Build the platform preset ``name`` denotes.

    Accepts the CLI's short names and long aliases; raises
    :class:`ConfigurationError` (not SystemExit) on unknown names so the
    server can turn it into a structured ``bad-request`` event.
    """
    from repro.platform.presets import epyc_7302, epyc_9634, synthetic_ucie

    presets = {
        "7302": epyc_7302,
        "9634": epyc_9634,
        "synthetic": synthetic_ucie,
    }
    canonical = _PLATFORM_ALIASES.get(str(name).strip().lower(), str(name).strip().lower())
    try:
        factory = presets[canonical]
    except KeyError:
        raise ConfigurationError(
            f"unknown platform {name!r} (choose from "
            f"{', '.join(_PLATFORM_NAMES)})"
        ) from None
    return factory()


# ------------------------------------------------------------- validation


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigurationError(message)


def _as_int(value: Any, field: str, minimum: int) -> int:
    _require(
        isinstance(value, int) and not isinstance(value, bool),
        f"{field} must be an integer, got {value!r}",
    )
    _require(value >= minimum, f"{field} must be >= {minimum}, got {value}")
    return value


def _normalize_variants(raw: Any) -> Dict[str, Any]:
    if raw is None:
        raw = {}
    _require(isinstance(raw, dict), f"variants must be an object, got {raw!r}")
    unknown = set(raw) - {"des_shards", "recovery"}
    _require(
        not unknown,
        f"unknown variant field(s): {', '.join(sorted(unknown))} "
        "(accepted: des_shards, recovery)",
    )
    shards = raw.get("des_shards")
    if shards is not None:
        shards = _as_int(shards, "variants.des_shards", 1)
    recovery = raw.get("recovery", False)
    _require(
        isinstance(recovery, bool),
        f"variants.recovery must be a boolean, got {recovery!r}",
    )
    return {"des_shards": shards, "recovery": recovery}


def _normalize_netstack(params: Dict[str, Any]) -> Dict[str, Any]:
    from repro.experiments.netstack import ARMS

    arms = params.get("arms")
    if arms is None:
        arms = list(ARMS)
    _require(
        isinstance(arms, list) and arms,
        f"params.arms must be a non-empty list, got {arms!r}",
    )
    for arm in arms:
        _require(
            arm in ARMS,
            f"unknown arm {arm!r} (choose from {', '.join(ARMS)})",
        )
    transactions = _as_int(
        params.get("transactions_per_core", 400),
        "params.transactions_per_core", 1,
    )
    return {"arms": arms, "transactions_per_core": transactions}


def _normalize_chaos(params: Dict[str, Any]) -> Dict[str, Any]:
    from repro.experiments.chaos import SEVERITIES

    severities = params.get("severities")
    if severities is None:
        severities = list(SEVERITIES)
    _require(
        isinstance(severities, list) and severities,
        f"params.severities must be a non-empty list, got {severities!r}",
    )
    normalized = []
    for severity in severities:
        _require(
            isinstance(severity, (int, float)) and not isinstance(severity, bool)
            and 0.0 <= float(severity) <= 1.0,
            f"severity must be a number in [0, 1], got {severity!r}",
        )
        normalized.append(float(severity))
    transactions = _as_int(
        params.get("transactions_per_core", 200),
        "params.transactions_per_core", 1,
    )
    return {"severities": normalized, "transactions_per_core": transactions}


def _normalize_trace(params: Dict[str, Any]) -> Dict[str, Any]:
    from repro.experiments.trace import CELLS, default_samples

    cell = params.get("cell", "netstack")
    _require(
        cell in CELLS,
        f"unknown trace cell {cell!r} (choose from {', '.join(CELLS)})",
    )
    samples = params.get("samples")
    if samples is None:
        samples = default_samples(cell)
    samples = _as_int(samples, "params.samples", 10)
    return {"cell": cell, "samples": samples}


def _normalize_kvserve(params: Dict[str, Any]) -> Dict[str, Any]:
    qps = params.get("qps", 2_000_000.0)
    _require(
        isinstance(qps, (int, float)) and not isinstance(qps, bool)
        and float(qps) > 0.0,
        f"params.qps must be a positive number, got {qps!r}",
    )
    requests = _as_int(params.get("requests", 100_000), "params.requests", 10)
    return {"qps": float(qps), "requests": requests}


def _normalize_explore(params: Dict[str, Any]) -> Dict[str, Any]:
    from repro.experiments.explore import ROUTINGS, WORKLOADS
    from repro.platform.generator import catalog_names

    known = catalog_names()
    topologies = params.get("topologies")
    if topologies is None:
        topologies = list(known)
    _require(
        isinstance(topologies, list) and topologies,
        f"params.topologies must be a non-empty list, got {topologies!r}",
    )
    for name in topologies:
        _require(
            name in known,
            f"unknown topology {name!r} (choose from {', '.join(known)})",
        )
    routings = params.get("routings")
    if routings is None:
        routings = list(ROUTINGS)
    _require(
        isinstance(routings, list) and routings,
        f"params.routings must be a non-empty list, got {routings!r}",
    )
    for routing in routings:
        _require(
            routing in ROUTINGS,
            f"unknown routing {routing!r} (choose from {', '.join(ROUTINGS)})",
        )
    workloads = params.get("workloads")
    if workloads is None:
        workloads = list(WORKLOADS)
    _require(
        isinstance(workloads, list) and workloads,
        f"params.workloads must be a non-empty list, got {workloads!r}",
    )
    for workload in workloads:
        _require(
            workload in WORKLOADS,
            f"unknown workload {workload!r} "
            f"(choose from {', '.join(WORKLOADS)})",
        )
    packets = _as_int(
        params.get("packets_per_sender", 60), "params.packets_per_sender", 1
    )
    return {
        "topologies": topologies,
        "routings": routings,
        "workloads": workloads,
        "packets_per_sender": packets,
    }


_NORMALIZERS: Dict[str, Callable[[Dict[str, Any]], Dict[str, Any]]] = {
    "netstack": _normalize_netstack,
    "chaos": _normalize_chaos,
    "trace": _normalize_trace,
    "kvstore": _normalize_kvserve,
    "explore": _normalize_explore,
}


def normalize_spec(spec: Any) -> Dict[str, Any]:
    """Canonicalize one raw job spec; invalid specs raise ConfigurationError.

    The returned dict always has exactly the keys ``kind``, ``platform``,
    ``seed``, ``params``, ``variants``, with every default filled in, so
    equal requests normalize to equal specs regardless of which optional
    fields the client spelled out.
    """
    _require(isinstance(spec, dict), f"spec must be an object, got {spec!r}")
    unknown = set(spec) - {"kind", "platform", "seed", "params", "variants"}
    _require(
        not unknown,
        f"unknown spec field(s): {', '.join(sorted(unknown))}",
    )
    kind = spec.get("kind")
    _require(
        kind in KINDS,
        f"unknown kind {kind!r} (choose from {', '.join(KINDS)})",
    )
    platform = str(spec.get("platform", "7302")).strip().lower()
    platform = _PLATFORM_ALIASES.get(platform, platform)
    _require(
        platform in _PLATFORM_NAMES,
        f"unknown platform {spec.get('platform')!r} (choose from "
        f"{', '.join(_PLATFORM_NAMES)})",
    )
    seed = spec.get("seed", 0)
    _require(
        isinstance(seed, int) and not isinstance(seed, bool),
        f"seed must be an integer, got {seed!r}",
    )
    params = spec.get("params") or {}
    _require(
        isinstance(params, dict),
        f"params must be an object, got {params!r}",
    )
    return {
        "kind": kind,
        "platform": platform,
        "seed": seed,
        "params": _NORMALIZERS[kind](params),
        "variants": _normalize_variants(spec.get("variants")),
    }


# --------------------------------------------------------------- variants


def variant_raws(spec: Dict[str, Any]) -> Tuple[Optional[str], Optional[str]]:
    """The spec's variants as ``(engine_raw, recovery_raw)`` cache-key raws.

    Matches what :func:`apply_variants` will put in the environment — the
    submit-time cache probe and the execution-time default cache must key
    identically or warm hits would silently miss (or worse, collide).
    """
    variants = spec.get("variants") or {}
    shards = variants.get("des_shards")
    engine_raw = "" if shards is None else str(shards)
    recovery_raw = "1" if variants.get("recovery") else ""
    return engine_raw, recovery_raw


@contextlib.contextmanager
def apply_variants(spec: Dict[str, Any]) -> Iterator[None]:
    """Apply the spec's execution variants to ``os.environ``, then restore.

    Only safe while batches are serialized (the server runs one job at a
    time for exactly this reason): the environment is process-global, and
    the experiment layers read it at cell-execution time.
    """
    from repro.cache import DES_SHARDS_ENV_VAR, RECOVERY_ENV_VAR

    engine_raw, recovery_raw = variant_raws(spec)
    saved = {
        name: os.environ.get(name)
        for name in (DES_SHARDS_ENV_VAR, RECOVERY_ENV_VAR)
    }
    try:
        for name, value in ((DES_SHARDS_ENV_VAR, engine_raw),
                            (RECOVERY_ENV_VAR, recovery_raw)):
            if value:
                os.environ[name] = value
            else:
                os.environ.pop(name, None)
        yield
    finally:
        for name, value in saved.items():
            if value is None:
                os.environ.pop(name, None)
            else:
                os.environ[name] = value


# ------------------------------------------------------------------ cells


def build_cells(spec: Dict[str, Any]) -> List[Cell]:
    """The runner cells one normalized spec denotes, in submission order.

    Deterministic: the same normalized spec always yields the same cells
    in the same order, which is what makes per-cell events addressable by
    index alone.
    """
    platform = resolve_platform(spec["platform"])
    params = spec["params"]
    seed = spec["seed"]
    if spec["kind"] == "netstack":
        from repro.experiments.netstack import BACKENDS, run_point

        return [
            Cell(
                run_point,
                (platform, arm, backend),
                dict(
                    seed=seed,
                    transactions_per_core=params["transactions_per_core"],
                ),
            )
            for backend in BACKENDS
            for arm in params["arms"]
        ]
    if spec["kind"] == "chaos":
        from repro.experiments.chaos import run_point

        return [
            Cell(
                run_point,
                (platform, severity),
                dict(
                    seed=seed,
                    transactions_per_core=params["transactions_per_core"],
                ),
            )
            for severity in params["severities"]
        ]
    if spec["kind"] == "kvstore":
        from repro.experiments.kvserve import arms_for, run_point

        return [
            Cell(
                run_point,
                (platform, tier, background),
                dict(
                    qps=params["qps"],
                    requests=params["requests"],
                    engine="hybrid",
                    seed=seed,
                ),
            )
            for tier, background in arms_for(platform)
        ]
    if spec["kind"] == "explore":
        from repro.experiments.explore import run_point
        from repro.platform.generator import from_catalog

        # Topology-major, matching repro.experiments.explore.run — the
        # generated platforms replace the spec's (ignored) preset.
        return [
            Cell(
                run_point,
                (name, from_catalog(name), routing, workload),
                dict(
                    seed=seed,
                    packets_per_sender=params["packets_per_sender"],
                ),
            )
            for name in params["topologies"]
            for workload in params["workloads"]
            for routing in params["routings"]
        ]
    from repro.experiments.trace import _netstack_cell, _positions, _table2_cell

    if params["cell"] == "netstack":
        from repro.experiments.netstack import ARMS

        return [
            Cell(_netstack_cell, (platform, arm, seed, params["samples"]))
            for arm in ARMS
        ]
    return [
        Cell(_table2_cell, (platform, position, seed, params["samples"]))
        for position in _positions(platform)
    ]


def render_results(spec: Dict[str, Any], results: Sequence[CellResult]) -> str:
    """The spec's human-readable artifact, identical to the CLI's rendering.

    Pure function of (spec, decoded results): the client renders locally
    from streamed values, and the output is byte-identical to running the
    same spec in process.
    """
    platform = resolve_platform(spec["platform"])
    if spec["kind"] == "netstack":
        from repro.experiments.netstack import render

        return render(platform.name, results)
    if spec["kind"] == "chaos":
        from repro.experiments.chaos import render

        return render(platform.name, results)
    if spec["kind"] == "kvstore":
        from repro.experiments.kvserve import render

        return render(platform.name, results)
    if spec["kind"] == "explore":
        from repro.experiments.explore import render

        return render(results)
    from repro.experiments.trace import render

    return render(platform, spec["params"]["cell"], results)


def trace_recordings(
    spec: Dict[str, Any], results: Sequence[CellResult]
) -> List[Tuple[int, str, Any]]:
    """``(index, label, recording)`` for each traced cell value.

    Empty for kinds whose values carry no recording — the server uses
    this to decide which cells get trace-artifact handles.
    """
    if spec["kind"] != "trace":
        return []
    return [
        (result.index, result.value.label, result.value.recording)
        for result in results
        if result.ok
    ]


def run_local(
    spec: Dict[str, Any],
    *,
    jobs: Any = None,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    cache: Any = USE_DEFAULT_CACHE,
    on_result: Optional[Callable[[CellResult], None]] = None,
    cancel: Any = None,
) -> List[CellResult]:
    """Execute one normalized spec in this process, variants applied.

    The single code path both the server's executor and the client's
    in-process fallback run — which is what makes the fallback
    byte-identical to the served path by construction.
    """
    with apply_variants(spec):
        return run_cells_detailed(
            build_cells(spec),
            jobs=jobs,
            timeout_s=timeout_s,
            retries=retries,
            cache=cache,
            on_result=on_result,
            cancel=cancel,
        )
