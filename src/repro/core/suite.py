"""Cross-platform characterization suite (§4 direction #5).

"It would be useful to develop a benchmarking framework for cross-platform
systematic characterization and to produce practical guidelines."

:class:`CharacterizationSuite` runs the paper's methodology — latency
ladder, queueing probes, bandwidth-domain ladder, partitioning cases —
against *any* :class:`~repro.platform.topology.Platform`, then distills the
numeric guidelines a systems developer would act on (placement penalty,
interconnect-wall position, CXL tiering cost, write asymmetry).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.analysis.report import render_table
from repro.core.coretocore import measure_matrix
from repro.experiments import fig4, table2, table3
from repro.platform.topology import Platform

__all__ = ["CharacterizationReport", "CharacterizationSuite"]


@dataclass(frozen=True)
class CharacterizationReport:
    """Everything the suite measured for one platform, plus guidelines."""

    platform: str
    latency: table2.Table2Row
    bandwidth: table3.Table3Result
    partitioning: fig4.Fig4Result
    guidelines: Tuple[str, ...]

    def render(self) -> str:
        """The full report as paper-style text."""
        lines = [
            f"=== characterization: {self.platform} ===",
            table2.render({self.platform: self.latency})
            if self.platform in table2.PAPER_TABLE2
            else self._render_latency(),
            "",
            self._render_bandwidth(),
            "",
            "practical guidelines:",
        ]
        lines += [f"  * {guideline}" for guideline in self.guidelines]
        return "\n".join(lines)

    def _render_latency(self) -> str:
        row = self.latency.as_dict()
        cells = [
            [key, "N/A" if value is None else f"{value:.2f}"]
            for key, value in row.items()
        ]
        return render_table(
            ["latency (ns)", self.platform], cells,
            title="data-path latency breakdown",
        )

    def _render_bandwidth(self) -> str:
        rows = []
        for (scope, target), (read, write) in sorted(self.bandwidth.cells.items()):
            rows.append([scope, target, f"{read:.1f}", f"{write:.1f}"])
        return render_table(
            ["from", "to", "read GB/s", "write GB/s"], rows,
            title="bandwidth domains",
        )


def _handoff_matrix(platform: Platform):
    """The sampled core-to-core matrix (one core per CCX) — a runner cell."""
    sample = sorted(
        {platform.cores_of_ccx(ccx_id)[0].core_id for ccx_id in platform.ccxs}
    )
    return measure_matrix(platform, core_ids=sample)


class CharacterizationSuite:
    """Runs the full §3 methodology on any platform.

    ``jobs`` fans the suite's independent measurement cells (the latency
    ladder, the bandwidth ladder, the partitioning cases, and the handoff
    matrix — per platform) out over worker processes; every cell builds its
    own simulation environment, so reports are bit-identical for any value.
    """

    def __init__(self, iterations: int = 1200, seed: int = 0, jobs=None) -> None:
        self.iterations = iterations
        self.seed = seed
        self.jobs = jobs

    def run(self, platform: Platform) -> CharacterizationReport:
        """Characterize one platform and derive guidelines."""
        return self.run_many([platform])[platform.name]

    def run_many(
        self, platforms: List[Platform]
    ) -> Dict[str, CharacterizationReport]:
        """Characterize several platforms with one flat cell fan-out."""
        from repro.runner import Cell, run_cells

        cells: List[Cell] = []
        for platform in platforms:
            cells += [
                Cell(
                    table2.run, (platform,),
                    {"iterations": self.iterations, "seed": self.seed},
                ),
                Cell(table3.run, (platform,), {"seed": self.seed}),
                Cell(fig4.run, (platform,)),
                Cell(_handoff_matrix, (platform,)),
            ]
        results = run_cells(cells, jobs=self.jobs)
        reports: Dict[str, CharacterizationReport] = {}
        for index, platform in enumerate(platforms):
            latency, bandwidth, partitioning, matrix = results[
                4 * index: 4 * index + 4
            ]
            guidelines = tuple(
                self.derive_guidelines(platform, latency, bandwidth, matrix=matrix)
            )
            reports[platform.name] = CharacterizationReport(
                platform.name, latency, bandwidth, partitioning, guidelines
            )
        return reports

    def derive_guidelines(
        self,
        platform: Platform,
        latency: table2.Table2Row,
        bandwidth: table3.Table3Result,
        matrix=None,
    ) -> List[str]:
        """Numeric, actionable guidance from the measurements.

        ``matrix`` is the sampled core-to-core handoff matrix; when omitted
        it is measured here (the serial, single-platform convenience path).
        """
        guidelines: List[str] = []

        worst = max(latency.vertical, latency.horizontal, latency.diagonal)
        placement_penalty = (worst - latency.near) / latency.near
        guidelines.append(
            f"place latency-critical data in the local NUMA domain: the "
            f"worst DIMM position costs {placement_penalty:.0%} more than "
            f"near ({worst:.0f} vs {latency.near:.0f} ns)"
        )

        core_read = bandwidth.read_gbps("core")
        cpu_read = bandwidth.read_gbps("cpu")
        linear = core_read * platform.spec.cores
        wall = cpu_read / linear
        guidelines.append(
            f"the interconnect wall caps aggregate reads at "
            f"{cpu_read:.0f} GB/s — {wall:.0%} of linear core scaling "
            f"({platform.spec.cores} x {core_read:.1f} GB/s); plan for "
            f"~{cpu_read / platform.spec.cores:.1f} GB/s per core at scale"
        )

        ccx_read = bandwidth.read_gbps("ccx")
        guidelines.append(
            f"a single chiplet saturates at {ccx_read:.1f} GB/s; spread "
            f"bandwidth-hungry threads across chiplets before adding "
            f"threads within one"
        )

        write_ratio = bandwidth.write_gbps("cpu") / cpu_read
        guidelines.append(
            f"streaming writes deliver only {write_ratio:.0%} of read "
            f"bandwidth; prefer read-mostly layouts for hot aggregate paths"
        )

        if latency.cxl is not None:
            premium = latency.cxl / latency.near
            cxl_cpu = bandwidth.read_gbps("cpu", "cxl")
            guidelines.append(
                f"CXL memory costs {premium:.2f}x local DRAM latency and "
                f"caps at {cxl_cpu:.0f} GB/s; tier bandwidth-insensitive, "
                f"capacity-hungry data there"
            )

        if latency.max_ccd_q is not None:
            guidelines.append(
                f"traffic-control queueing adds up to "
                f"{latency.max_ccx_q + latency.max_ccd_q:.0f} ns under "
                f"chiplet saturation; latency-critical threads should not "
                f"share a chiplet with streaming ones"
            )
        else:
            guidelines.append(
                f"traffic-control queueing adds up to "
                f"{latency.max_ccx_q:.0f} ns under chiplet saturation; "
                f"latency-critical threads should not share a chiplet with "
                f"streaming ones"
            )

        # Thread-placement tiers from the core-to-core handoff matrix
        # (sampled: one core per CCX is enough for the tier means).
        if matrix is None:
            matrix = _handoff_matrix(platform)
        tiers = {t.name: t for t in matrix.classes(platform)}
        if "cross-ccd" in tiers:
            cross = tiers["cross-ccd"].latency_ns
            local = platform.spec.latency.l3_ns
            guidelines.append(
                f"a cross-chiplet cacheline handoff costs {cross:.0f} ns "
                f"({cross / local:.1f}x a same-CCX handoff); pin "
                f"communicating thread pairs to one core complex"
            )
        return guidelines

    def compare(
        self, platforms: List[Platform]
    ) -> Dict[str, CharacterizationReport]:
        """Characterize several platforms (the cross-platform use case)."""
        return self.run_many(platforms)
