"""Flow specifications for the characterization utility."""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import ConfigurationError
from repro.platform.topology import Platform
from repro.transport.message import OpKind

__all__ = ["Scope", "StreamSpec"]


class Scope(enum.Enum):
    """Which sender granularity a stream uses (the rows of Table 3)."""

    CORE = "core"
    CCX = "ccx"
    CCD = "ccd"
    CPU = "cpu"


class Pattern(enum.Enum):
    """Spatial access pattern of a stream (§3.1: the utility generates
    "random/sequential read/write access patterns").

    * ``SEQUENTIAL`` — prefetchers keep the full MLP window busy; the
      per-core ceiling is ``mlp × 64 B / latency``.
    * ``RANDOM`` — independent accesses without prefetch: only the
      demand-miss queues sustain parallelism, so the effective window is
      the platform's ``mlp_random_read``.
    * ``POINTER_CHASE`` — fully dependent loads (window of 1); the latency
      measurement mode of Table 2.
    """

    SEQUENTIAL = "sequential"
    RANDOM = "random"
    POINTER_CHASE = "pointer-chase"


@dataclass(frozen=True)
class StreamSpec:
    """One steady data stream: who sends, what op, where to, how fast.

    ``demand_gbps=None`` means "as fast as the cores can issue" (the paper's
    maximum-rate streams); a number models NOP-padded rate control.
    """

    name: str
    op: OpKind
    core_ids: Tuple[int, ...]
    target: str = "dram"          # "dram" or "cxl"
    demand_gbps: Optional[float] = None
    pattern: Pattern = Pattern.SEQUENTIAL
    #: True targets DRAM homed on the *other* socket (2-socket boxes only).
    remote: bool = False

    def __post_init__(self) -> None:
        if not self.core_ids:
            raise ConfigurationError(f"stream {self.name}: no cores")
        if self.target not in ("dram", "cxl"):
            raise ConfigurationError(
                f"stream {self.name}: target must be 'dram' or 'cxl'"
            )
        if self.demand_gbps is not None and self.demand_gbps < 0:
            raise ConfigurationError(f"stream {self.name}: negative demand")
        if self.remote and self.target != "dram":
            raise ConfigurationError(
                f"stream {self.name}: remote-socket access targets DRAM"
            )

    @staticmethod
    def cores_for_scope(platform: Platform, scope: Scope) -> Tuple[int, ...]:
        """The core set a Table 3 row uses (always anchored at core 0)."""
        if scope is Scope.CORE:
            return (0,)
        if scope is Scope.CCX:
            return tuple(core.core_id for core in platform.cores_of_ccx(0))
        if scope is Scope.CCD:
            return tuple(core.core_id for core in platform.cores_of_ccd(0))
        return tuple(sorted(platform.cores))
