"""Units and conversion helpers used throughout the library.

Conventions
-----------
* **Time** is measured in nanoseconds (``float``). One simulated second is
  ``1e9`` ns. Helpers :func:`us`, :func:`ms`, and :func:`seconds` convert the
  more readable units into nanoseconds.
* **Bandwidth** is measured in GB/s (decimal gigabytes, as in the paper's
  tables). A convenient identity falls out of these choices::

      1 GB/s == 1e9 bytes / 1e9 ns == 1 byte/ns

  so GB/s values can be used directly as bytes-per-nanosecond rates.
* **Sizes** are measured in bytes. Cache capacities in the paper are binary
  (KiB/MiB), so the binary constants are provided alongside.
"""

from __future__ import annotations

#: Size of one cacheline, the unit of most transactions in the paper (bytes).
CACHELINE = 64

#: CXL.mem FLIT sizes (bytes) defined by the CXL specification (68B for
#: CXL 1.1/2.0 protocol FLITs, 256B for CXL 3.x standard FLITs).
CXL_FLIT_SMALL = 68
CXL_FLIT_LARGE = 256

KIB = 1024
MIB = 1024 * KIB
GIB = 1024 * MIB

#: Decimal gigabyte, used for bandwidth figures (GB/s) as in the paper.
GB = 10**9


def us(value: float) -> float:
    """Convert microseconds to nanoseconds."""
    return value * 1e3


def ms(value: float) -> float:
    """Convert milliseconds to nanoseconds."""
    return value * 1e6


def seconds(value: float) -> float:
    """Convert seconds to nanoseconds."""
    return value * 1e9


def to_seconds(nanoseconds: float) -> float:
    """Convert nanoseconds to seconds."""
    return nanoseconds * 1e-9


def gbps_to_bytes_per_ns(gbps: float) -> float:
    """Convert GB/s to bytes/ns (numerically the identity; kept for clarity)."""
    return gbps


def bytes_per_ns_to_gbps(rate: float) -> float:
    """Convert bytes/ns to GB/s (numerically the identity; kept for clarity)."""
    return rate


def service_time_ns(size_bytes: float, gbps: float) -> float:
    """Time to serialize ``size_bytes`` over a link running at ``gbps`` GB/s."""
    if gbps <= 0:
        raise ValueError(f"bandwidth must be positive, got {gbps}")
    return size_bytes / gbps


def achieved_gbps(total_bytes: float, elapsed_ns: float) -> float:
    """Average bandwidth in GB/s for ``total_bytes`` moved in ``elapsed_ns``."""
    if elapsed_ns <= 0:
        raise ValueError(f"elapsed time must be positive, got {elapsed_ns}")
    return total_bytes / elapsed_ns
