"""Fluid → batched coupling: background load as effective service rates.

The hybrid serving engine (:mod:`repro.apps.kvserve`) times foreground
requests with exact FIFO recurrences but cannot afford to simulate the
bulk/background traffic those requests share the fabric with. The fluid
solver carries the background instead: :func:`background_utilizations`
solves the steady-state allocation of the background streams (fault/QoS
derates included via :class:`~repro.core.fabric.FabricModel`'s
``derates`` — the same ``capacity_factors`` plumbing the chaos tier
uses) and reports per-channel utilization.

:func:`effective_service_ns` couples that utilization back into the
foreground's per-stage timing the way the DES elements actually behave:
a stage is a ``c``-lane serializer (1 for links, the bank count for a
UMC), so background load does not slow the foreground's own occupancy —
it adds *queueing* in front of it. Per stage visit the expected wait is

    ``L_q(u) × drain_ns``,  ``L_q(u) = u^c · u / (1 - u)``

where ``drain_ns`` is the time the whole stage needs to retire one
queued background cacheline (``CACHELINE / aggregate_rate``) and
``L_q`` is the M/M/1 queue length damped by ``u^c`` — the probability
proxy that all ``c`` lanes are busy, which is what lets a 16-bank UMC at
60% utilization show (correctly) almost no queueing while a single-lane
GMI at the same utilization does. Utilization is clamped at
:data:`MAX_UTILIZATION` because an elastic hog fills all residual
capacity in the fluid view (``u = 1``) while the DES twin is
issue-window-limited: the clamp keeps the implied queue finite and is
the coupling's documented calibration knob.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, List, Optional, Sequence

from repro.fluid.solver import FluidFlow, Policy, solve
from repro.units import CACHELINE

if TYPE_CHECKING:  # circular at runtime: core.fabric imports fluid.solver
    from repro.core.fabric import FabricModel
    from repro.core.flows import StreamSpec
    from repro.transport.path import CompiledPath

__all__ = [
    "MAX_UTILIZATION",
    "stage_channel",
    "background_utilizations",
    "effective_service_ns",
]

#: Clamp on coupled channel utilization: a saturated single-lane stage
#: behaves like an M/M/1 queue holding ``0.95/0.05 = 19`` background
#: cachelines — about what a window-limited DES hog keeps in flight at
#: one stage. Calibrated against the DES reference on the colocated-hog
#: cells (see tests/test_apps_kvserve.py).
MAX_UTILIZATION = 0.95


def stage_channel(stage_name: str, is_write: bool = False) -> Optional[str]:
    """The fluid channel a DES queued stage maps to (None: no channel).

    Mirrors and extends the sharded engine's mapping: bandwidth-carrying
    stages map to their fluid twin; pure arbitration points with no
    capacity partition (``if/ccd*``, ``pciedev*``) map to None.
    """
    direction = "w" if is_write else "r"
    if stage_name == "noc":
        return f"noc:{direction}"
    if stage_name == "xgmi":
        return f"xgmi:{direction}"
    if stage_name.startswith("umc"):
        return f"{stage_name}:{direction}"
    if stage_name.startswith("cxldev"):
        return f"{stage_name}:{direction}"
    if stage_name.startswith("gmi/ccd"):
        return f"gmi{stage_name[len('gmi/ccd'):]}:{direction}"
    if stage_name.startswith("hubport/ccd"):
        return f"hub{stage_name[len('hubport/ccd'):]}:{direction}"
    if stage_name.startswith("plink/rc"):
        return f"plink{stage_name[len('plink/rc'):]}:{direction}"
    return None


def background_utilizations(
    fabric: "FabricModel",
    specs: Sequence["StreamSpec"],
    umc_ids: Optional[Sequence[int]] = None,
    dev_ids: Optional[Sequence[int]] = None,
    policy: Policy = Policy.DEMAND_PROPORTIONAL,
) -> Dict[str, float]:
    """Per-channel utilization (0..1) of the background streams alone.

    Identical math to :meth:`FabricModel.utilizations`, but taking the
    fabric (so the caller controls derates) and tolerating an empty
    stream list — no background means every channel reads 0.
    """
    if not specs:
        return {}
    flows: List[FluidFlow] = []
    for spec in specs:
        flows.extend(fabric.flows_for(spec, umc_ids=umc_ids, dev_ids=dev_ids))
    allocation = solve(flows, policy)
    loads: Dict[str, float] = {}
    for flow in flows:
        for channel, weight in flow.path:
            loads[channel.name] = (
                loads.get(channel.name, 0.0) + allocation[flow.name] * weight
            )
    return {
        name: min(1.0, load / fabric.channel(name).capacity_gbps)
        for name, load in loads.items()
    }


def effective_service_ns(
    path: "CompiledPath",
    size_bytes: int,
    utilizations: Dict[str, float],
    is_write: bool = False,
) -> float:
    """Load-coupled end-to-end service time of one transaction on ``path``.

    Fixed propagation and the transaction's own serializer occupancy are
    load-independent; each queued stage adds the expected wait behind
    queued background cachelines, ``L_q(u) × drain_ns`` (module
    docstring). Stages whose fluid channel carries no background (or
    maps to no channel at all) add nothing.
    """
    total = path.fixed_ns
    for stage in path.stages:
        total += stage.unloaded_service_ns(size_bytes, is_write)
        channel = stage_channel(stage.name, is_write)
        if channel is None:
            continue
        u = min(utilizations.get(channel, 0.0), MAX_UTILIZATION)
        if u <= 0.0:
            continue
        arbiter = getattr(stage.server, "arbiter", stage.server)
        direction = arbiter.write_dir if is_write else arbiter.read_dir
        lanes = direction.resource.capacity
        queued = u ** lanes * u / (1.0 - u)
        total += queued * CACHELINE / direction.gbps
    return total
