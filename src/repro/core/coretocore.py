"""Core-to-core communication latency — the LLC snooping path.

"A cacheline-sized LLC snooping request mostly traverses the Infinity
Fabric" (§2.3). This module measures the classic producer→consumer
cacheline-handoff matrix: a consumer loads a line that is dirty in the
producer's cache, and the transfer cost depends entirely on where the two
cores sit in the chiplet hierarchy:

* same CCX — served from the shared L3 slice;
* different CCX — the snoop crosses the Infinity Fabric to the I/O die and
  back, *even on the same CCD* (Zen 2's two CCXs per die have no direct
  path — the reason the 7302's "on-die" handoffs cost the same as
  cross-die ones);
* different CCD — additionally pays the mesh hops between the two
  chiplets' ports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from repro.errors import TopologyError
from repro.platform.topology import Platform

__all__ = ["HandoffClass", "core_to_core_ns", "CoreToCoreMatrix", "measure_matrix"]


@dataclass(frozen=True)
class HandoffClass:
    """One tier of the core-to-core latency hierarchy."""

    name: str
    latency_ns: float
    pair_count: int


def core_to_core_ns(platform: Platform, src_core: int, dst_core: int) -> float:
    """Unloaded dirty-cacheline handoff latency between two cores."""
    src = platform.core(src_core)
    dst = platform.core(dst_core)
    lat = platform.spec.latency
    if src.core_id == dst.core_id:
        return lat.l1_ns
    if src.ccx_id == dst.ccx_id:
        return lat.l3_ns
    # Cross-CCX: request to the I/O die, snoop to the owner, data response
    # back — two IF crossings each way plus the inter-port mesh distance.
    dx, dy = platform.mesh_offset(
        platform.ccds[src.ccd_id].coord, platform.ccds[dst.ccd_id].coord
    )
    return (
        lat.l3_ns                                   # local slice miss
        + 2.0 * (lat.if_link_ns + lat.ccm_ns)       # out and back
        + 2.0 * lat.mesh_cost_ns(dx, dy)            # to the owner port and back
        + lat.l3_ns                                 # owner slice lookup
    )


@dataclass(frozen=True)
class CoreToCoreMatrix:
    """The full pairwise handoff-latency matrix for one platform."""

    platform: str
    core_ids: List[int]
    latencies_ns: np.ndarray

    def classes(self, platform: Platform) -> List[HandoffClass]:
        """Group pairs into hierarchy tiers (same CCX / same CCD / cross)."""
        same_ccx: List[float] = []
        same_ccd: List[float] = []
        cross: List[float] = []
        for i, a in enumerate(self.core_ids):
            for j, b in enumerate(self.core_ids):
                if i >= j:
                    continue
                core_a, core_b = platform.core(a), platform.core(b)
                value = float(self.latencies_ns[i, j])
                if core_a.ccx_id == core_b.ccx_id:
                    same_ccx.append(value)
                elif core_a.ccd_id == core_b.ccd_id:
                    same_ccd.append(value)
                else:
                    cross.append(value)
        tiers = []
        for name, values in (
            ("same-ccx", same_ccx),
            ("same-ccd-cross-ccx", same_ccd),
            ("cross-ccd", cross),
        ):
            if values:
                tiers.append(
                    HandoffClass(name, float(np.mean(values)), len(values))
                )
        return tiers

    def heatmap(self, cell_width: int = 6) -> str:
        """Render the matrix as a text heatmap (ns)."""
        header = " " * 7 + "".join(
            f"c{core:<{cell_width - 1}}" for core in self.core_ids
        )
        lines = [header]
        for i, core in enumerate(self.core_ids):
            row = "".join(
                f"{self.latencies_ns[i, j]:>{cell_width}.0f}"
                for j in range(len(self.core_ids))
            )
            lines.append(f"c{core:<5} {row}")
        return "\n".join(lines)


def measure_matrix(
    platform: Platform, core_ids: List[int] | None = None
) -> CoreToCoreMatrix:
    """Pairwise handoff latencies for ``core_ids`` (default: all cores)."""
    cores = core_ids if core_ids is not None else sorted(platform.cores)
    for core in cores:
        if core not in platform.cores:
            raise TopologyError(f"unknown core {core}")
    n = len(cores)
    matrix = np.zeros((n, n))
    for i, a in enumerate(cores):
        for j, b in enumerate(cores):
            matrix[i, j] = core_to_core_ns(platform, a, b)
    return CoreToCoreMatrix(platform.name, list(cores), matrix)
