"""Cross-model validation: DES vs fluid agreement + in-mesh hotspot.

The two simulation engines share one platform description; where their
domains overlap, throughput must agree. The DES lands a few percent below
the fluid ceilings (closed-loop ramp edges and token-pool granularity) —
the benchmark bounds that gap. The hop-by-hop mesh additionally shows
hotspot head-of-line blocking the collapsed model cannot represent.
"""

from repro.experiments import validation

from benchmarks.conftest import emit


def bench_des_vs_fluid(benchmark, p7302, p9634):
    def measure():
        return {
            p.name: validation.des_vs_fluid(p, transactions_per_core=1200)
            for p in (p7302, p9634)
        }

    agreement = benchmark.pedantic(measure, rounds=1, iterations=1)
    hotspots = {
        p.name: validation.mesh_hotspot(p) for p in (p7302, p9634)
    }
    emit(validation.render(agreement, hotspots))
    for points in agreement.values():
        for point in points:
            # DES throughput within (78%, 102%] of the fluid ceiling. The
            # widest gap is the 7302 CCX read: its token pool (calibrated
            # to the 30 ns queueing bound of Table 2) holds the DES at
            # ~48 x 64 B / RTT, a shade under the 25.1 GB/s fluid ceiling.
            assert 0.78 <= point.ratio <= 1.02, point


def bench_mesh_hotspot(benchmark, p7302):
    result = benchmark.pedantic(
        validation.mesh_hotspot, args=(p7302,), rounds=1, iterations=1
    )
    emit(
        f"mesh hotspot (EPYC 7302): {result.hotspot_mean_ns:.1f} ns vs "
        f"{result.spread_mean_ns:.1f} ns spread ({result.slowdown:.2f}x)"
    )
    assert result.slowdown > 1.2
