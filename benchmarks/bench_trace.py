"""Tracing overhead benchmarks: the null path must stay free.

Two numbers, measured on the netstack DES contention cell (the hottest
instrumented loop):

* the *null-tracer* run — ``env.tracer is None``, the default — which is
  the path every existing experiment takes and must stay inside the
  ``make bench-check`` regression budget (the 25% gate vs the previous
  sample of this bench);
* the *traced* run, whose slowdown factor each sample records as
  metadata so the trajectory in ``BENCH_results.json`` tracks what
  turning tracing on actually costs.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_trace.py -q
"""

from repro.experiments import netstack

#: Generous hang-catching ceilings (seconds), not jitter-sensitive bars.
DES_CEILING_S = 30.0

#: Traced runs append ~8 span dicts per transaction; anything beyond this
#: factor over the untraced twin means tracing leaked into the hot loop.
TRACED_SLOWDOWN_CEILING = 5.0

_TRANSACTIONS = 150


def bench_trace_null_path(benchmark, p7302, record_timing):
    """The untraced DES cell — the default path every experiment takes."""
    point = benchmark.pedantic(
        netstack.run_point, args=(p7302, "credits", "des"),
        kwargs=dict(transactions_per_core=_TRANSACTIONS),
        rounds=3, iterations=1,
    )
    best = benchmark.stats.stats.min
    record_timing(
        "bench_trace_null_path",
        best,
        transactions_per_core=_TRANSACTIONS,
        jain=point.jain,
    )
    assert best < DES_CEILING_S


def bench_trace_recording(benchmark, p7302, record_timing):
    """The same cell with a live tracer: bit-identical results, spans out."""
    import time

    point, recording, __ = benchmark.pedantic(
        netstack.run_point_traced, args=(p7302, "credits"),
        kwargs=dict(transactions_per_core=_TRANSACTIONS),
        rounds=3, iterations=1,
    )
    traced_best = benchmark.stats.stats.min
    started = time.perf_counter()
    untraced = netstack.run_point(
        p7302, "credits", "des", transactions_per_core=_TRANSACTIONS
    )
    untraced_s = time.perf_counter() - started
    assert point == untraced  # tracing observes, never perturbs
    assert recording.spans and recording.dropped_open == 0
    slowdown = traced_best / untraced_s if untraced_s > 0 else 1.0
    record_timing(
        "bench_trace_recording",
        traced_best,
        transactions_per_core=_TRANSACTIONS,
        spans=len(recording.spans),
        slowdown_vs_untraced=slowdown,
    )
    assert traced_best < DES_CEILING_S
    assert slowdown < TRACED_SLOWDOWN_CEILING
