"""Sharded-engine benchmark: the tentpole throughput multiple.

One question: how many closed-loop transactions per wall-second does each
engine push through the multi-CCD contention cell on the 9634 (12 CCDs,
the largest cell in the tree)? The sharded engine replaces the serial
engine's per-event generator machinery with exact batched recurrences per
shard plus lookahead-synchronized boundary windows, so the multiple is
algorithmic — it holds on a single core.

Each timing sample carries ``transactions_per_wall_second`` for both
engines plus the speedup, so ``BENCH_results.json`` records the multiple's
trajectory under the >25% regression gate.

Run with::

    PYTHONPATH=src python -m pytest benchmarks/bench_sharded_des.py -q
"""

import time

from repro.core.shardexec import run_cell

#: Generous hang-catching ceilings (seconds), not jitter-sensitive bars.
SERIAL_CEILING_S = 60.0
SHARDED_CEILING_S = 10.0

#: The ISSUE's floor is >=10x; assert a lower bar so scheduler jitter on a
#: loaded runner cannot flake the gate (measured ~16x; the recorded
#: metadata keeps the true multiple visible).
MIN_SPEEDUP = 8.0

_TRANSACTIONS = 150


def bench_sharded_des_speedup(benchmark, p9634, record_timing):
    """Serial vs sharded (one shard per CCD) on the 12-CCD contention cell."""
    shards = len(p9634.ccds)

    began = time.perf_counter()
    serial = run_cell(
        p9634, engine="serial", transactions_per_core=_TRANSACTIONS
    )
    serial_s = time.perf_counter() - began

    outcome = benchmark.pedantic(
        run_cell,
        args=(p9634,),
        kwargs=dict(
            engine="sharded",
            shards=shards,
            transactions_per_core=_TRANSACTIONS,
        ),
        rounds=3,
        iterations=1,
    )
    sharded_s = benchmark.stats.stats.min

    speedup = serial_s / sharded_s
    record_timing(
        "bench_sharded_des_speedup",
        sharded_s,
        serial_s=serial_s,
        shards=shards,
        transactions=outcome.transactions,
        transactions_per_wall_second=outcome.transactions / sharded_s,
        serial_transactions_per_wall_second=serial.transactions / serial_s,
        speedup=speedup,
        victim_share_serial=serial.victim_share,
        victim_share_sharded=outcome.victim_share,
    )
    assert outcome.transactions == serial.transactions
    assert speedup >= MIN_SPEEDUP
    assert serial_s < SERIAL_CEILING_S
    assert sharded_s < SHARDED_CEILING_S
