"""One module per table/figure of the paper's evaluation (§3).

Each module exposes ``run(...)`` returning a structured result and
``render(result)`` producing the paper-style text artifact. The benchmark
harness under ``benchmarks/`` calls these and checks the shape criteria of
DESIGN.md §6; EXPERIMENTS.md records paper-vs-measured values.
"""

from repro.experiments import (  # noqa: F401
    ablations,
    accel_dispatch,
    chaos,
    fig3,
    fig4,
    fig5,
    fig6,
    noc_routing,
    os_scaling,
    patterns,
    summary,
    table1,
    table2,
    table3,
    validation,
)

__all__ = [
    "table1",
    "table2",
    "table3",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "ablations",
    "accel_dispatch",
    "chaos",
    "os_scaling",
    "noc_routing",
    "patterns",
    "summary",
    "validation",
]
