"""Golden snapshots of paper-cell outputs, pinned as committed JSON.

Each golden freezes a reduced-size run of one artifact cell — the Table 2
column, the Figure 4 partitioning cases, the Figure 4–6 style netstack
contention cell (both backends), and the per-hop trace breakdown — so an
unintended change to any simulated number shows up as a diff against a
reviewed file, not as silent drift.

Refresh intentionally with::

    PYTHONPATH=src python -m pytest tests/test_goldens.py --update-goldens

Floats are compared with ``rel=1e-9`` (``abs=1e-12``): tight enough that
any model change trips, loose enough to survive JSON round-tripping.
"""

import dataclasses
import json
import math
from pathlib import Path

import pytest

GOLDEN_DIR = Path(__file__).resolve().parent / "goldens"

#: Reduced sample counts: goldens must be cheap enough for tier-1.
_TABLE2_ITERATIONS = 300
_NETSTACK_TXNS = 60
_TRACE_TXNS = 20
_RECOVERY_TXNS = 600


def _check(name: str, payload, update: bool) -> None:
    """Compare ``payload`` against the committed golden (or rewrite it)."""
    path = GOLDEN_DIR / f"{name}.json"
    text = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    if update:
        GOLDEN_DIR.mkdir(exist_ok=True)
        path.write_text(text)
        pytest.skip(f"updated {path.name}")
    if not path.exists():
        pytest.fail(
            f"missing golden {path.name}; create it with --update-goldens"
        )
    expected = json.loads(path.read_text())
    mismatches: list = []
    _compare(expected, json.loads(text), name, mismatches)
    assert not mismatches, (
        f"{len(mismatches)} mismatch(es) vs {path.name} "
        f"(refresh intentionally with --update-goldens):\n"
        + "\n".join(mismatches[:20])
    )


def _compare(expected, actual, where: str, out: list) -> None:
    if isinstance(expected, dict) and isinstance(actual, dict):
        if sorted(expected) != sorted(actual):
            out.append(
                f"{where}: keys {sorted(expected)} != {sorted(actual)}"
            )
            return
        for key in expected:
            _compare(expected[key], actual[key], f"{where}.{key}", out)
    elif isinstance(expected, list) and isinstance(actual, list):
        if len(expected) != len(actual):
            out.append(
                f"{where}: length {len(expected)} != {len(actual)}"
            )
            return
        for index, (e, a) in enumerate(zip(expected, actual)):
            _compare(e, a, f"{where}[{index}]", out)
    elif isinstance(expected, float) or isinstance(actual, float):
        if expected is None or actual is None:
            if expected is not actual:
                out.append(f"{where}: {expected!r} != {actual!r}")
        elif not math.isclose(
            float(expected), float(actual), rel_tol=1e-9, abs_tol=1e-12
        ):
            out.append(f"{where}: {expected!r} != {actual!r}")
    elif expected != actual:
        out.append(f"{where}: {expected!r} != {actual!r}")


class TestGoldens:
    def test_table2_rows(self, platform, update_goldens):
        from repro.experiments import table2

        row = table2.run(platform, iterations=_TABLE2_ITERATIONS, seed=0)
        slug = platform.name.lower().replace(" ", "-")
        _check(f"table2-{slug}", dataclasses.asdict(row), update_goldens)

    def test_fig4_partitioning_cases(self, platform, update_goldens):
        from repro.experiments import fig4

        result = fig4.run(platform)
        payload = {
            link: {
                case: {
                    "requested": flows.requested,
                    "achieved": flows.achieved,
                    "capacity_gbps": flows.capacity_gbps,
                }
                for case, flows in cases.items()
            }
            for link, cases in result.outcomes.items()
        }
        slug = platform.name.lower().replace(" ", "-")
        _check(f"fig4-{slug}", payload, update_goldens)

    def test_netstack_contention_cell(self, p7302, update_goldens):
        from repro.experiments import netstack

        payload = {}
        for backend in netstack.BACKENDS:
            for arm in netstack.ARMS:
                point = netstack.run_point(
                    p7302, arm, backend,
                    transactions_per_core=_NETSTACK_TXNS,
                )
                payload[f"{backend}/{arm}"] = {
                    "victim_gbps": point.victim_gbps,
                    "hog_gbps": point.hog_gbps,
                    "victim_share": point.victim_share,
                    "jain": point.jain,
                    "p50_ns": None if math.isnan(point.p50_ns) else point.p50_ns,
                    "p99_ns": None if math.isnan(point.p99_ns) else point.p99_ns,
                }
        _check("netstack-epyc-7302", payload, update_goldens)

    def test_trace_per_hop_breakdown(self, p7302, update_goldens):
        from repro.experiments import netstack
        from repro.trace import assert_tiles, hop_stats, txn_latency_stats

        __, recording, __p = netstack.run_point_traced(
            p7302, "credits+qos", transactions_per_core=_TRACE_TXNS
        )
        txns = assert_tiles(recording)
        count, mean_ns = txn_latency_stats(recording)
        payload = {
            "transactions": txns,
            "sampled": count,
            "end_to_end_mean_ns": mean_ns,
            "hops": [
                {
                    "hop": stat.hop,
                    "count": stat.count,
                    "bytes_moved": stat.bytes_moved,
                    "total_ns": stat.total_ns,
                    "service_ns": stat.service_ns,
                }
                for stat in hop_stats(recording)
            ],
        }
        _check("trace-breakdown-epyc-7302", payload, update_goldens)

    def test_chaos_recovery_cells(self, p7302, update_goldens):
        from repro.experiments import chaos

        payload = {}
        for backend in ("fluid", "des"):
            for recover in (False, True):
                point = chaos.run_recovery_point(
                    p7302, backend, recover,
                    transactions_per_core=_RECOVERY_TXNS,
                )
                payload[f"{backend}/{'on' if recover else 'off'}"] = {
                    "pre_gbps": point.pre_gbps,
                    "post_gbps": point.post_gbps,
                    "recovered": point.recovered,
                    "detect_ns": (
                        None if math.isnan(point.detect_ns)
                        else point.detect_ns
                    ),
                    "reclaimed": point.reclaimed,
                    "retries": point.retries,
                    "failovers": point.failovers,
                }
        _check("chaos-recovery-epyc-7302", payload, update_goldens)
