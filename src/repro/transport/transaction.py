"""Transaction execution on the discrete-event simulator."""

from __future__ import annotations

from typing import Generator, List, Optional

from repro.sim.engine import Environment, Event
from repro.transport.message import Transaction
from repro.transport.path import CompiledPath

__all__ = ["TransactionExecutor"]


class TransactionExecutor:
    """Drives transactions through compiled paths, collecting latency samples.

    The execution order mirrors the hardware: the request first claims the
    chiplet's traffic-control tokens (backpressure happens here — §3.2), then
    clears each queued stage in path order, then spends the remaining fixed
    propagation latency. Tokens are held until completion, which is what
    couples read and write streams sharing a chiplet (Figure 6).
    """

    def __init__(self, env: Environment) -> None:
        self.env = env
        self.completed: List[Transaction] = []

    def execute(
        self, txn: Transaction, path: CompiledPath
    ) -> Generator[Event, None, Transaction]:
        """DES process: run one transaction end-to-end; returns it completed."""
        txn.issued_ns = self.env.now
        for pool in path.tokens:
            yield pool.acquire()
        try:
            for stage in path.stages:
                yield from stage.serve(txn.size_bytes, txn.op.is_write)
            yield self.env.timeout(path.fixed_ns)
        finally:
            for pool in reversed(path.tokens):
                pool.release()
        txn.completed_ns = self.env.now
        self.completed.append(txn)
        return txn

    def latencies_ns(self, flow_id: Optional[int] = None) -> List[float]:
        """Latency samples of completed transactions (optionally one flow's)."""
        return [
            txn.latency_ns
            for txn in self.completed
            if flow_id is None or txn.flow_id == flow_id
        ]

    def reset(self) -> None:
        """Clear the completed-transaction log."""
        self.completed.clear()
