"""One-call reproduction: every paper artifact in a single report.

``reproduce_all`` is the "run everything" entry point a new user reaches
for first: it regenerates Tables 1-3 and Figures 3-6 (plus the headline
ablations) and concatenates the paper-style renderings. Two quality levels
trade DES sample counts for wall-clock time.
"""

from __future__ import annotations

from typing import Dict, List

from repro.errors import ConfigurationError
from repro.platform.presets import epyc_7302, epyc_9634
from repro.transport.message import OpKind

__all__ = ["QUALITY_PRESETS", "reproduce_all"]

#: (pointer-chase iterations, DES transactions/core, fig3 load fractions).
QUALITY_PRESETS: Dict[str, tuple] = {
    "quick": (600, 300, (0.3, 0.8)),
    "full": (2500, 1500, (0.2, 0.4, 0.6, 0.8, 0.9)),
}


def reproduce_all(quality: str = "quick", seed: int = 0, jobs=None) -> str:
    """Regenerate every table and figure; returns the combined report.

    ``jobs`` fans each artifact's independent cells out over worker
    processes (see :mod:`repro.runner`); the report is byte-identical for
    any value.
    """
    try:
        iterations, transactions, fractions = QUALITY_PRESETS[quality]
    except KeyError:
        raise ConfigurationError(
            f"unknown quality {quality!r} (choose from "
            f"{sorted(QUALITY_PRESETS)})"
        ) from None
    from repro.experiments import (
        ablations,
        fig3,
        fig4,
        fig5,
        fig6,
        table1,
        table2,
        table3,
    )
    from repro.runner import starmap

    p7302, p9634 = epyc_7302(), epyc_9634()
    sections: List[str] = []

    sections.append(table1.render(table1.run()))
    sections.append(table2.render(table2.run_many(
        (p7302, p9634), iterations=iterations, seed=seed, jobs=jobs
    )))
    sections.append(table3.render(table3.run_many(
        (p7302, p9634), seed=seed, jobs=jobs
    )))

    sections.append(fig3.render(fig3.run_all(
        (p7302, p9634),
        transactions_per_core=transactions,
        fractions=fractions,
        seed=seed,
        jobs=jobs,
    )))

    sections.append(fig4.render(fig4.run_many((p7302, p9634), jobs=jobs)))
    sections.append(fig5.render(starmap(
        fig5.run, [(p9634, "if"), (p9634, "plink"), (p7302, "if")], jobs=jobs,
    )))
    sections.append(fig6.render(fig6.run(p9634)))

    managed = ablations.manager_vs_sender_driven(p9634)
    fair_before, fair_after = managed["case4-unequal-demands"].fairness()
    sections.append(
        "Ablation highlights: the max-min traffic manager lifts case-4 "
        f"Jain fairness from {fair_before:.3f} to {fair_after:.3f}; see "
        "benchmarks/ for the full ablation set."
    )
    return "\n\n".join(sections)
