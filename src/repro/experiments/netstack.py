"""``repro netstack`` — the networking stack vs. sender-driven partitioning.

The paper's closing argument (§4): chiplet fabrics need a real networking
stack, because the hardware's sender-driven, aggressive bandwidth
partitioning (§3.5, Figures 4–6) lets a noisy stream crush a victim. This
experiment re-runs the contention cell those figures built — here shaped as
Figure 4 case 2, a *small* paced victim (one CCX) against an *aggressive*
whole-chiplet hog, both forced onto the victim's NPS4 memory endpoints —
three times:

* **off** — the hardware as-is (demand-proportional FIFO splitting);
* **credits** — receiver-driven credit control: each endpoint splits its
  BDP-sized credit budget equally between the streams;
* **credits+qos** — the victim rides the latency class (2× fill weight),
  the hog the bulk class (half the credit share).

Each arm runs on *both* backends — the fluid steady state via
:func:`repro.net.stack.fluid_allocation` and the DES via
:func:`repro.net.inject.install` interposing credit gates — and reports
victim/hog throughput, the victim's share of its demand, Jain fairness,
and (DES) the victim's p50/p99 loaded latency. Every (arm, backend) pair
is one independent hardened-runner cell, so ``--jobs`` fan-out keeps the
output byte-identical.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.analysis.report import render_table
from repro.core.fabric import FabricModel
from repro.core.loadgen import ClosedLoopIssuer
from repro.errors import ConfigurationError
from repro.experiments.contention import (
    VICTIM_DEMAND_GBPS,
    contention_streams,
    shared_umc_ids,
)
from repro.net.inject import install
from repro.net.qos import QosClass
from repro.net.stack import NetStackConfig, fluid_allocation
from repro.platform.topology import Platform
from repro.runner import (
    Cell,
    CellResult,
    USE_DEFAULT_CACHE,
    run_cells_detailed,
)
from repro.sim.engine import Environment
from repro.transport.path import PathResolver
from repro.transport.transaction import TransactionExecutor

__all__ = [
    "ARMS", "BACKENDS", "NetPoint", "config_for", "run_point",
    "run_point_traced", "run", "render",
]

#: The stack arms, in presentation order.
ARMS: Tuple[str, ...] = ("off", "credits", "credits+qos")

#: The two simulation backends every arm runs on.
BACKENDS: Tuple[str, ...] = ("fluid", "des")

#: Offered rate of the aggressive hog (GB/s) — far above its fair share of
#: the two shared ~21 GB/s endpoints, mirroring Figure 4's 0.90-fraction
#: aggressive sender.
_HOG_DEMAND_GBPS = 64.0


@dataclass(frozen=True)
class NetPoint:
    """One (arm, backend) cell of the netstack comparison."""

    arm: str
    backend: str
    victim_gbps: float
    hog_gbps: float
    victim_share: float
    jain: float
    #: Victim loaded-latency percentiles (DES backend only; NaN on fluid).
    p50_ns: float
    p99_ns: float


def config_for(arm: str) -> NetStackConfig:
    """The stack configuration one arm name denotes."""
    if arm == "off":
        return NetStackConfig.off()
    if arm == "credits":
        return NetStackConfig.with_credits()
    if arm == "credits+qos":
        return NetStackConfig.with_qos(
            {"victim": QosClass.LATENCY, "hog": QosClass.BULK}
        )
    raise ConfigurationError(
        f"unknown arm {arm!r} (choose from {', '.join(ARMS)})"
    )


def _cell_streams(platform: Platform):
    """The small-victim / aggressive-hog variant of the contention cell."""
    victim_cores = tuple(
        core.core_id for core in platform.cores_of_ccx(0)
    )
    return contention_streams(
        platform,
        victim_cores=victim_cores,
        hog_demand_gbps=_HOG_DEMAND_GBPS,
    )


def _jain(values: Sequence[float]) -> float:
    total = sum(values)
    squares = sum(value * value for value in values)
    if squares == 0:
        return 1.0
    return total * total / (len(values) * squares)


def _run_fluid(platform: Platform, config: NetStackConfig) -> NetPoint:
    fabric = FabricModel(platform)
    victim, hog = _cell_streams(platform)
    shared = shared_umc_ids(platform)
    grants = fluid_allocation(fabric, [victim, hog], config, umc_ids=shared)
    return NetPoint(
        arm=config.label,
        backend="fluid",
        victim_gbps=grants["victim"],
        hog_gbps=grants["hog"],
        victim_share=grants["victim"] / VICTIM_DEMAND_GBPS,
        jain=_jain([grants["victim"], grants["hog"]]),
        p50_ns=math.nan,
        p99_ns=math.nan,
    )


def _run_des(
    platform: Platform,
    config: NetStackConfig,
    seed: int,
    transactions_per_core: int,
    tracer=None,
) -> NetPoint:
    victim, hog = _cell_streams(platform)
    shared = shared_umc_ids(platform)
    env = Environment()
    if tracer is not None:
        tracer.attach(env)
    resolver = PathResolver(env, platform, seed=seed)
    installation = install(
        resolver, config,
        flows=[victim.name, hog.name],
        endpoints=[f"umc{umc_id}" for umc_id in shared],
    )
    window = platform.spec.bandwidth.mlp_read
    issuers: Dict[str, ClosedLoopIssuer] = {}
    finished = []
    for spec in (victim, hog):
        executor = TransactionExecutor(env, flow=spec.name)
        gate = installation.gate(executor, spec.name)
        # Stripe the stream's workers over the shared endpoints, exactly
        # like the BIOS interleave the fluid flows model.
        paths = {
            index: resolver.dram_path(core_id, shared[index % len(shared)])
            for index, core_id in enumerate(spec.core_ids)
        }
        issuer = ClosedLoopIssuer(
            env,
            gate,
            lambda worker, paths=paths: paths[worker],
            spec.op,
            workers=len(spec.core_ids),
            window=window,
            count_per_worker=transactions_per_core,
            rate_gbps=spec.demand_gbps,
        )
        issuers[spec.name] = issuer
        finished.append(issuer.start())
    env.run(env.all_of(finished))
    installation.assert_credits_home()
    results = {name: issuer.result() for name, issuer in issuers.items()}
    victim_result = results[victim.name]
    rates = [results[victim.name].achieved_gbps, results[hog.name].achieved_gbps]
    return NetPoint(
        arm=config.label,
        backend="des",
        victim_gbps=rates[0],
        hog_gbps=rates[1],
        victim_share=rates[0] / VICTIM_DEMAND_GBPS,
        jain=_jain(rates),
        p50_ns=victim_result.stats.p50,
        p99_ns=victim_result.stats.p99,
    )


def run_point(
    platform: Platform,
    arm: str,
    backend: str,
    seed: int = 0,
    transactions_per_core: int = 400,
) -> NetPoint:
    """One (arm, backend) cell (independent, hardened-runner friendly)."""
    config = config_for(arm)
    if backend == "fluid":
        return _run_fluid(platform, config)
    if backend == "des":
        return _run_des(platform, config, seed, transactions_per_core)
    raise ConfigurationError(
        f"unknown backend {backend!r} (choose from {', '.join(BACKENDS)})"
    )


def run_point_traced(
    platform: Platform,
    arm: str,
    seed: int = 0,
    transactions_per_core: int = 40,
    profiler_top_k: int = 4,
):
    """One traced DES cell: ``(NetPoint, TraceRecording, profiler report)``.

    Tracing only observes the simulated clock, so the returned
    :class:`NetPoint` is bit-identical to ``run_point(..., "des")`` with
    the same arguments (asserted in the conformance suite). The attached
    :class:`~repro.telemetry.profiler.FlowProfiler` receives one sample
    per completed transaction keyed by the span's flow label, so spans
    and profiler telemetry share flow identities.
    """
    from repro.telemetry.profiler import FlowProfiler
    from repro.trace import Tracer

    profiler = FlowProfiler(top_k=profiler_top_k)
    tracer = Tracer(profiler=profiler)
    point = _run_des(
        platform, config_for(arm), seed, transactions_per_core, tracer=tracer
    )
    return point, tracer.recording(arm=arm), profiler.report()


def run(
    platform: Platform,
    arms: Sequence[str] = ARMS,
    seed: int = 0,
    transactions_per_core: int = 400,
    jobs=None,
    timeout_s: Optional[float] = None,
    retries: int = 0,
    fail_fast: bool = False,
    cache=USE_DEFAULT_CACHE,
) -> List[CellResult]:
    """All (arm, backend) cells through the hardened runner.

    Submission order is backends-major (all fluid arms, then all DES arms),
    matching the rendered table; output is byte-identical for any --jobs
    and with or without a result ``cache``.
    """
    cells = [
        Cell(
            run_point,
            (platform, arm, backend),
            dict(seed=seed, transactions_per_core=transactions_per_core),
        )
        for backend in BACKENDS
        for arm in arms
    ]
    return run_cells_detailed(
        cells, jobs=jobs, timeout_s=timeout_s, retries=retries,
        fail_fast=fail_fast, cache=cache,
    )


def render(platform_name: str, results: Sequence[CellResult]) -> str:
    """The stack-on/off comparison table, one row per (backend, arm)."""
    headers = [
        "backend", "stack", "victim GB/s", "hog GB/s", "victim share",
        "Jain", "p50 ns", "p99 ns",
    ]
    rows = []
    for result in results:
        if result.ok:
            point = result.value
            rows.append([
                point.backend,
                point.arm,
                f"{point.victim_gbps:.2f}",
                f"{point.hog_gbps:.2f}",
                f"{point.victim_share:.3f}",
                f"{point.jain:.4f}",
                "-" if math.isnan(point.p50_ns) else f"{point.p50_ns:.1f}",
                "-" if math.isnan(point.p99_ns) else f"{point.p99_ns:.1f}",
            ])
        else:
            rows.append([
                f"cell {result.index}",
                f"FAILED ({result.failure.kind})",
                "-", "-", "-", "-", "-", "-",
            ])
    return render_table(
        headers, rows,
        title=(
            "Netstack: receiver-driven credits vs sender-driven "
            f"partitioning ({platform_name})"
        ),
    )
