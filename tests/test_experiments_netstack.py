"""Tests for the ``repro netstack`` experiment (repro.experiments.netstack)."""

import math

import pytest

from repro.errors import ConfigurationError
from repro.experiments import netstack


class TestConfigFor:
    def test_arms_map_to_their_labels(self):
        for arm in netstack.ARMS:
            assert netstack.config_for(arm).label == arm

    def test_unknown_arm_rejected(self):
        with pytest.raises(ConfigurationError):
            netstack.config_for("turbo")

    def test_unknown_backend_rejected(self, p7302):
        with pytest.raises(ConfigurationError):
            netstack.run_point(p7302, "off", "quantum")


class TestFairnessRestoration:
    """The acceptance property, on both backends of the contended cell."""

    @pytest.fixture(scope="class")
    def points(self, p7302):
        return {
            (arm, backend): netstack.run_point(
                p7302, arm, backend, transactions_per_core=200
            )
            for arm in ("off", "credits")
            for backend in netstack.BACKENDS
        }

    @pytest.mark.parametrize("backend", netstack.BACKENDS)
    def test_credits_improve_victim_share(self, points, backend):
        off = points[("off", backend)]
        on = points[("credits", backend)]
        assert off.victim_share < 1.0  # the cell actually contends
        assert on.victim_share > off.victim_share

    @pytest.mark.parametrize("backend", netstack.BACKENDS)
    def test_credits_strictly_increase_jain(self, points, backend):
        assert (
            points[("credits", backend)].jain
            > points[("off", backend)].jain
        )

    def test_fluid_points_carry_no_latency(self, points):
        point = points[("off", "fluid")]
        assert math.isnan(point.p50_ns) and math.isnan(point.p99_ns)

    def test_des_points_carry_latency(self, points):
        point = points[("off", "des")]
        assert point.p50_ns > 0 and point.p99_ns >= point.p50_ns


class TestRunner:
    def test_jobs_invariance(self, p7302):
        serial = netstack.run(
            p7302, arms=("off",), transactions_per_core=100, jobs=1
        )
        parallel = netstack.run(
            p7302, arms=("off",), transactions_per_core=100, jobs=2
        )
        assert netstack.render("x", serial) == netstack.render("x", parallel)

    def test_render_table_shape(self, p7302):
        results = netstack.run(
            p7302, arms=("off",), transactions_per_core=100, jobs=1
        )
        table = netstack.render(p7302.name, results)
        assert "Netstack" in table
        assert "fluid" in table and "des" in table
        # Fluid rows render their missing latency columns as dashes.
        fluid_row = next(
            line for line in table.splitlines() if "fluid" in line
        )
        assert "- " in fluid_row or fluid_row.rstrip().endswith("-")

    def test_failed_cell_renders_in_place(self, p7302):
        results = netstack.run(
            p7302, arms=("bogus",), transactions_per_core=100, jobs=1
        )
        assert all(not result.ok for result in results)
        table = netstack.render(p7302.name, results)
        assert "FAILED" in table
