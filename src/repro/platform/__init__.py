"""Chiplet-based server SoC platform model.

This package encodes the structure the paper characterizes (§2.2, Figure 1):
compute chiplets (CCDs) containing core complexes (CCXs) that share L3 slices,
a single I/O die with a mesh NoC, unified memory controllers (UMCs) with
attached DIMMs, I/O hubs with P Links to PCIe/CXL devices, and the
heterogeneous links connecting them.

Two presets reproduce the evaluated machines of Table 1:

* :func:`~repro.platform.presets.epyc_7302` — Zen 2, 16 cores / 8 CCX / 4 CCD
* :func:`~repro.platform.presets.epyc_9634` — Zen 4, 84 cores / 12 CCX / 12 CCD
  with four CXL memory modules

Beyond the presets, :mod:`repro.platform.generator` generalizes the model
into a topology *generator* (:class:`~repro.platform.generator.TopologyGen`):
mesh dimensions, component placement, 3D sparse-pillar layers, and link
width/weight encodings, materializing the same :class:`Platform` objects —
the presets are two points of that generated space.
"""

from repro.platform.components import (
    CCD,
    CCX,
    Core,
    CXLDevice,
    DIMM,
    IOHub,
    RootComplex,
    UMC,
)
from repro.platform.generator import (
    CATALOG,
    EPYC_7302_GEN,
    EPYC_9634_GEN,
    NocRouting,
    TopologyGen,
    catalog_names,
    from_catalog,
)
from repro.platform.interconnect import LinkKind, LinkSpec
from repro.platform.numa import NpsMode, Position
from repro.platform.presets import epyc_7302, epyc_9634
from repro.platform.topology import (
    BandwidthParams,
    LatencyParams,
    Platform,
    PlatformSpec,
)

__all__ = [
    "CCD",
    "CCX",
    "Core",
    "CXLDevice",
    "DIMM",
    "IOHub",
    "RootComplex",
    "UMC",
    "LinkKind",
    "LinkSpec",
    "NpsMode",
    "Position",
    "BandwidthParams",
    "LatencyParams",
    "Platform",
    "PlatformSpec",
    "epyc_7302",
    "epyc_9634",
    "TopologyGen",
    "NocRouting",
    "CATALOG",
    "EPYC_7302_GEN",
    "EPYC_9634_GEN",
    "catalog_names",
    "from_catalog",
]
