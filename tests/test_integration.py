"""Integration tests crossing module boundaries (end-to-end scenarios)."""

import pytest

from repro import MicroBench, OpKind, Position, Scope, StreamSpec
from repro.core.fabric import FabricModel
from repro.manager.manager import TrafficManager
from repro.telemetry.devtree import build_devtree, render_dts
from repro.telemetry.matrix import TrafficMatrix
from repro.telemetry.profiler import FlowProfiler, FlowSample
from repro.units import MIB


class TestQuickstartFlow:
    """The README quickstart, end to end."""

    def test_latency_then_bandwidth(self, p9634):
        bench = MicroBench(p9634)
        level, stats = bench.pointer_chase(64 * MIB, iterations=300)
        assert level.value == "DRAM"
        assert stats.mean == pytest.approx(141.0, rel=0.05)
        peak = bench.stream_bandwidth(Scope.CPU, OpKind.READ)
        assert peak == pytest.approx(366.2, rel=0.05)


class TestNoisyNeighborScenario:
    """A latency-sensitive service next to a bandwidth hog, with and
    without the traffic manager."""

    def test_manager_restores_victim_bandwidth(self, p9634):
        fabric = FabricModel(p9634)
        ccd0 = [c.core_id for c in p9634.cores_of_ccd(0)]
        victim = StreamSpec(
            "victim", OpKind.READ, tuple(ccd0[:2]), demand_gbps=10.0
        )
        hog = StreamSpec("hog", OpKind.READ, tuple(ccd0[2:]))
        # Sender-driven: the hog's in-flight pressure squeezes the victim.
        raw = fabric.achieved_gbps([victim, hog])
        # Managed: max-min protects the victim's modest demand.
        manager = TrafficManager(fabric)
        manager.register(victim)
        manager.register(hog)
        managed = manager.allocate().grants_gbps
        assert managed["victim"] == pytest.approx(10.0, abs=0.2)
        assert managed["victim"] >= raw["victim"]
        # The hog still gets the leftovers — work conservation.
        assert managed["hog"] > 0.5 * raw["hog"]

    def test_shaped_hog_behaves_under_hardware_policy(self, p9634):
        fabric = FabricModel(p9634)
        ccd0 = [c.core_id for c in p9634.cores_of_ccd(0)]
        victim = StreamSpec(
            "victim", OpKind.READ, tuple(ccd0[:2]), demand_gbps=10.0
        )
        hog = StreamSpec("hog", OpKind.READ, tuple(ccd0[2:]))
        manager = TrafficManager(fabric)
        manager.register(victim)
        manager.register(hog)
        shaped = manager.shaped_streams()
        achieved = fabric.achieved_gbps(shaped)
        assert achieved["victim"] == pytest.approx(10.0, abs=0.3)


class TestTelemetryPipeline:
    """Fluid allocation feeding the traffic matrix and profiler."""

    def test_matrix_from_streams(self, p9634):
        fabric = FabricModel(p9634)
        specs = [
            StreamSpec("dram-stream", OpKind.READ,
                       tuple(c.core_id for c in p9634.cores_of_ccd(0))),
            StreamSpec("cxl-stream", OpKind.READ,
                       tuple(c.core_id for c in p9634.cores_of_ccd(1)),
                       target="cxl"),
        ]
        achieved = fabric.achieved_gbps(specs)
        matrix = TrafficMatrix(["ccd0", "ccd1"], ["dram", "cxl"])
        matrix.record("ccd0", "dram", achieved["dram-stream"])
        matrix.record("ccd1", "cxl", achieved["cxl-stream"])
        assert matrix.total_gbps() == pytest.approx(sum(achieved.values()))
        hottest = matrix.hottest(1)[0]
        assert hottest[0] == "ccd0"  # DRAM stream is the bigger one

    def test_profiler_orders_streams(self, p9634):
        fabric = FabricModel(p9634)
        cores = tuple(c.core_id for c in p9634.cores_of_ccd(0))
        specs = [
            StreamSpec("big", OpKind.READ, cores[:5]),
            StreamSpec("small", OpKind.READ, cores[5:6], demand_gbps=2.0),
        ]
        achieved = fabric.achieved_gbps(specs)
        profiler = FlowProfiler(top_k=2)
        window_ns = 1000.0
        for name, gbps in achieved.items():
            profiler.record(FlowSample(name, int(gbps * window_ns), window_ns))
        top = profiler.top_flows()
        assert top[0][0] == "big"

    def test_devtree_roundtrip_against_platform(self, p9634):
        tree = build_devtree(p9634)
        text = render_dts(tree)
        # Every UMC and CCD of the platform appears in the rendered tree.
        for name in list(p9634.umcs) + list(p9634.ccds):
            pass
        for umc in p9634.umcs.values():
            assert f"{umc.name} {{" in text
        for ccd in p9634.ccds.values():
            assert f"{ccd.name} {{" in text


class TestCrossModelConsistency:
    """The DES and the fluid model must agree where their domains overlap."""

    def test_single_core_bandwidth_des_vs_fluid(self, p7302):
        bench = MicroBench(p7302)
        fluid = bench.stream_bandwidth(Scope.CORE, OpKind.READ)
        # Long enough that the ramp-up/drain edges of the closed loop
        # amortize (each of the 29 issue lanes runs ~100 rounds).
        des = bench.loaded_latency(
            [0], OpKind.READ, offered_gbps=None, transactions_per_core=3000
        )
        assert des.achieved_gbps == pytest.approx(fluid, rel=0.12)

    def test_pointer_chase_matches_platform_analytic(self, platform):
        bench = MicroBench(platform)
        for position in Position:
            __, stats = bench.pointer_chase(
                256 * MIB, position=position, iterations=250
            )
            analytic = platform.dram_latency_at(0, position)
            assert stats.mean == pytest.approx(analytic, rel=0.05)

    def test_ccx_scope_bandwidth_des_vs_fluid(self, p9634):
        bench = MicroBench(p9634)
        fluid = bench.stream_bandwidth(Scope.CCX, OpKind.READ)
        cores = [c.core_id for c in p9634.cores_of_ccx(0)]
        des = bench.loaded_latency(
            cores, OpKind.READ, offered_gbps=None, transactions_per_core=300
        )
        assert des.achieved_gbps == pytest.approx(fluid, rel=0.15)
