"""Table 1 — hardware specifications of the two evaluated processors.

Static by construction (the specs *are* the platform presets); regenerating
it verifies the presets encode what the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from repro.analysis.report import render_table
from repro.platform.presets import epyc_7302, epyc_9634
from repro.platform.topology import Platform
from repro.units import KIB, MIB

__all__ = ["Table1Result", "run", "render", "PAPER_TABLE1"]

#: The paper's Table 1, for comparison in tests and EXPERIMENTS.md.
PAPER_TABLE1 = {
    "EPYC 7302": {
        "microarchitecture": "Zen 2",
        "l1_kib": 32, "l2_kib": 512, "l3_mib": 128,
        "cores": 16, "ccx": 8, "ccd": 4,
        "compute_nm": 7, "io_nm": 12,
        "pcie_gen": 4, "pcie_lanes": 128,
        "base_ghz": 3.0, "turbo_ghz": 3.3,
    },
    "EPYC 9634": {
        "microarchitecture": "Zen 4",
        "l1_kib": 64, "l2_kib": 1024, "l3_mib": 384,
        "cores": 84, "ccx": 12, "ccd": 12,
        "compute_nm": 5, "io_nm": 6,
        "pcie_gen": 5, "pcie_lanes": 128,
        "base_ghz": 2.25, "turbo_ghz": 3.7,
    },
}


@dataclass(frozen=True)
class Table1Result:
    rows: Dict[str, Dict[str, object]]

    def row(self, platform_name: str) -> Dict[str, object]:
        """The described spec fields for one platform."""
        return self.rows[platform_name]


def _describe(platform: Platform) -> Dict[str, object]:
    spec = platform.spec
    return {
        "microarchitecture": spec.microarchitecture,
        "l1_kib": spec.l1_bytes // KIB,
        "l2_kib": spec.l2_bytes // KIB,
        "l3_mib": spec.l3_total_bytes // MIB,
        "cores": spec.cores,
        "ccx": spec.ccx_count,
        "ccd": spec.ccd_count,
        "compute_nm": spec.compute_process_nm,
        "io_nm": spec.io_process_nm,
        "pcie_gen": spec.pcie_gen,
        "pcie_lanes": spec.pcie_lanes,
        "base_ghz": spec.base_ghz,
        "turbo_ghz": spec.turbo_ghz,
    }


def run() -> Table1Result:
    """Describe both preset platforms."""
    return Table1Result(
        {plat.name: _describe(plat) for plat in (epyc_7302(), epyc_9634())}
    )


def render(result: Table1Result) -> str:
    """Render the result as an aligned paper-style text table."""
    names = list(result.rows)
    header = ["Parameters"] + names
    rows: List[List[object]] = []
    labels = {
        "microarchitecture": "Microarchitecture",
        "l1_kib": "L1 (per core, KiB)",
        "l2_kib": "L2 (per core, KiB)",
        "l3_mib": "L3 (per CPU, MiB)",
        "cores": "Core # (per CPU)",
        "ccx": "CCX # (per CPU)",
        "ccd": "Compute chiplets # (per CPU)",
        "compute_nm": "Process (compute die, nm)",
        "io_nm": "Process (I/O die, nm)",
        "pcie_gen": "PCIe Gen",
        "pcie_lanes": "PCIe lanes",
        "base_ghz": "Base frequency (GHz)",
        "turbo_ghz": "Turbo frequency (GHz)",
    }
    for key, label in labels.items():
        rows.append([label] + [result.rows[name][key] for name in names])
    return render_table(header, rows, title="Table 1: HW specifications")
