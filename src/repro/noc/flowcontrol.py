"""Token-based traffic control with backpressure.

Each compute (sub-)chiplet has "a traffic control module that limits the
number of outstanding requests … a queueless structure (like Phantom Queue)
[using] tokens and backpressure for overload control" (§3.2). Bounding the
tokens bounds the queueing delay a request can experience at the module —
the paper measures the bound at up to 30 ns (CCX) / 20 ns (CCD) on the 7302
and 20 ns (CCX) on the 9634 (Table 2).

:class:`TokenPool` is the DES realization: a counted semaphore with a FIFO
wait queue and wait-time statistics. The factory helpers size the pool so
that the *measured* worst-case queueing under full-chiplet saturation lands
on the platform's calibrated bound.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Optional

from repro.errors import SimulationError
from repro.sim.engine import Environment, Event
from repro.units import CACHELINE

__all__ = ["TokenPool", "ccx_token_pool", "ccd_token_pool"]


class TokenPool:
    """A counted token pool with FIFO backpressure and wait statistics."""

    def __init__(self, env: Environment, tokens: int, name: str = "tokens") -> None:
        if tokens < 1:
            raise SimulationError(f"{name}: token count must be >= 1, got {tokens}")
        self.env = env
        self.name = name
        self.capacity = tokens
        self._available = tokens
        self._waiting: Deque[tuple[Event, float]] = deque()
        # Statistics for the Table 2 "Max CCX/CCD Q" rows.
        self.max_wait_ns = 0.0
        self.total_wait_ns = 0.0
        self.acquired_count = 0

    @property
    def available(self) -> int:
        return self._available

    @property
    def in_use(self) -> int:
        return self.capacity - self._available

    @property
    def queue_length(self) -> int:
        return len(self._waiting)

    def acquire(self) -> Event:
        """Claim one token; the event fires when the token is granted."""
        event = Event(self.env)
        if self._available > 0 and not self._waiting:
            self._available -= 1
            self._record_wait(0.0)
            event.succeed()
        else:
            self._waiting.append((event, self.env.now))
        return event

    def release(self) -> None:
        """Return one token, granting the oldest waiter if any."""
        if self._waiting:
            event, enqueued_at = self._waiting.popleft()
            self._record_wait(self.env.now - enqueued_at)
            event.succeed()
        else:
            self._available += 1
            if self._available > self.capacity:
                raise SimulationError(f"{self.name}: released more tokens than held")

    def _record_wait(self, wait_ns: float) -> None:
        self.acquired_count += 1
        self.total_wait_ns += wait_ns
        if wait_ns > self.max_wait_ns:
            self.max_wait_ns = wait_ns

    @property
    def mean_wait_ns(self) -> float:
        if self.acquired_count == 0:
            return 0.0
        return self.total_wait_ns / self.acquired_count

    def reset_stats(self) -> None:
        """Zero the wait-time statistics (keeps token state)."""
        self.max_wait_ns = 0.0
        self.total_wait_ns = 0.0
        self.acquired_count = 0


def _sized_pool(
    env: Environment,
    name: str,
    issue_capability: int,
    queue_max_ns: float,
    drain_gbps: float,
) -> TokenPool:
    """Size a pool so saturation queueing is bounded by ``queue_max_ns``.

    Under full saturation the module's backlog drains at ``drain_gbps``; the
    worst-case wait is ``backlog × CACHELINE / drain_gbps``. Given the
    chiplet can put ``issue_capability`` requests in flight, granting
    ``issue_capability − backlog_max`` tokens bounds the wait at the
    calibrated maximum.
    """
    backlog_max = round(queue_max_ns * drain_gbps / CACHELINE)
    tokens = max(1, issue_capability - backlog_max)
    return TokenPool(env, tokens, name=name)


def ccx_token_pool(env: Environment, platform, ccx_id: int = 0) -> TokenPool:
    """The per-CCX traffic-control module, sized from the platform calibration."""
    spec = platform.spec
    bw = spec.bandwidth
    if bw.ccx_tokens is not None:
        return TokenPool(env, bw.ccx_tokens, name=f"ccx{ccx_id}-tokens")
    drain = bw.ccx_read_gbps if bw.ccx_read_gbps is not None else bw.gmi_read_gbps
    issue = spec.cores_per_ccx * bw.mlp_read
    return _sized_pool(
        env, f"ccx{ccx_id}-tokens", issue, spec.latency.ccx_queue_max_ns, drain
    )


def ccd_token_pool(env: Environment, platform, ccd_id: int = 0) -> Optional[TokenPool]:
    """The CCD-level module, or None on platforms without one (e.g. 9634)."""
    spec = platform.spec
    if spec.latency.ccd_queue_max_ns <= 0:
        return None
    bw = spec.bandwidth
    if bw.ccd_tokens is not None:
        return TokenPool(env, bw.ccd_tokens, name=f"ccd{ccd_id}-tokens")
    # The CCD module sits behind the CCX pools: its offered load is what the
    # CCX pools let through, draining into the GMI port.
    ccx_pool_tokens = ccx_token_pool(env, platform).capacity
    issue = spec.ccx_per_ccd * ccx_pool_tokens
    return _sized_pool(
        env, f"ccd{ccd_id}-tokens", issue, spec.latency.ccd_queue_max_ns,
        bw.gmi_read_gbps,
    )
