"""Tests for the token-based traffic-control module."""

import pytest

from repro.errors import SimulationError
from repro.noc.flowcontrol import TokenPool, ccd_token_pool, ccx_token_pool
from repro.sim.engine import Environment


class TestTokenPool:
    def test_requires_positive_tokens(self):
        env = Environment()
        with pytest.raises(SimulationError):
            TokenPool(env, 0)

    def test_grants_until_exhausted(self):
        env = Environment()
        pool = TokenPool(env, 2)
        assert pool.acquire().triggered
        assert pool.acquire().triggered
        third = pool.acquire()
        assert not third.triggered
        assert pool.available == 0
        assert pool.queue_length == 1

    def test_release_grants_oldest_waiter(self):
        env = Environment()
        pool = TokenPool(env, 1)
        pool.acquire()
        first_waiter = pool.acquire()
        second_waiter = pool.acquire()
        pool.release()
        assert first_waiter.triggered
        assert not second_waiter.triggered

    def test_over_release_rejected(self):
        env = Environment()
        pool = TokenPool(env, 1)
        pool.acquire()
        pool.release()
        with pytest.raises(SimulationError):
            pool.release()

    def test_wait_time_statistics(self):
        env = Environment()
        pool = TokenPool(env, 1)

        def holder():
            yield pool.acquire()
            yield env.timeout(12.0)
            pool.release()

        def waiter():
            yield env.timeout(2.0)
            yield pool.acquire()
            pool.release()

        env.process(holder())
        env.process(waiter())
        env.run()
        assert pool.max_wait_ns == pytest.approx(10.0)
        assert pool.acquired_count == 2
        assert pool.mean_wait_ns == pytest.approx(5.0)

    def test_reset_stats(self):
        env = Environment()
        pool = TokenPool(env, 1)
        pool.acquire()
        pool.release()
        pool.reset_stats()
        assert pool.max_wait_ns == 0.0
        assert pool.acquired_count == 0

    def test_mean_wait_empty(self):
        env = Environment()
        assert TokenPool(env, 1).mean_wait_ns == 0.0

    def test_in_use_accounting(self):
        env = Environment()
        pool = TokenPool(env, 3)
        pool.acquire()
        pool.acquire()
        assert pool.in_use == 2
        pool.release()
        assert pool.in_use == 1

    def test_fifo_no_overtaking_when_queue_nonempty(self):
        # A release must go to the waiter, not refill the free pool.
        env = Environment()
        pool = TokenPool(env, 1)
        pool.acquire()
        waiter = pool.acquire()
        pool.release()
        assert waiter.triggered
        assert pool.available == 0


class TestFactories:
    def test_ccx_pool_uses_calibrated_tokens(self, p7302, p9634):
        env = Environment()
        assert ccx_token_pool(env, p7302).capacity == 50
        assert ccx_token_pool(env, p9634).capacity == 213

    def test_ccd_pool_only_on_7302(self, p7302, p9634):
        env = Environment()
        assert ccd_token_pool(env, p7302).capacity == 94
        assert ccd_token_pool(env, p9634) is None

    def test_derived_sizing_fallback(self, p7302):
        # With explicit token counts removed, the sizing formula applies.
        from dataclasses import replace

        from repro.platform.topology import Platform

        spec = replace(
            p7302.spec,
            bandwidth=replace(
                p7302.spec.bandwidth, ccx_tokens=None, ccd_tokens=None
            ),
        )
        platform = Platform(spec)
        env = Environment()
        pool = ccx_token_pool(env, platform)
        issue = spec.cores_per_ccx * spec.bandwidth.mlp_read
        assert 1 <= pool.capacity < issue
        ccd = ccd_token_pool(env, platform)
        assert ccd is not None and ccd.capacity >= 1
