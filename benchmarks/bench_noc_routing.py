"""§2.3's two router kinds: buffered vs bufferless NoC routing under load.

Shape criteria: comparable at light load; under load the bufferless mesh
pays for contention in deflected hops — higher mean, much higher tail —
while the buffered mesh pays in queue occupancy.
"""

from repro.experiments import noc_routing

from benchmarks.conftest import emit


def bench_noc_routing_comparison(benchmark, p7302):
    def sweep():
        return {
            lanes: noc_routing.run(p7302, lanes_per_sender=lanes)
            for lanes in (1, 4, 8)
        }

    results = benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(noc_routing.render(results))
    light, heavy = results[1], results[8]
    assert light.bufferless_mean_ns < 1.3 * light.buffered_mean_ns
    assert heavy.bufferless_mean_ns > 1.2 * heavy.buffered_mean_ns
    assert heavy.bufferless_p99_ns > 2.0 * heavy.buffered_p99_ns
    assert heavy.deflection_rate > 1.0  # more than one deflection per packet
