"""Hop-by-hop mesh network simulation.

The transaction-level experiments collapse a route's switching hops into a
single latency term for speed (see :mod:`repro.transport.path`). This module
keeps the *detailed* alternative: a full mesh of routers with per-hop output
serializers, used to validate the collapsed model (they agree on unloaded
latency by construction) and to study in-mesh contention directly.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Generator, Tuple

from repro.errors import TopologyError
from repro.noc.mesh import Mesh
from repro.sim.engine import Environment, Event, Resource

Coord = Tuple[int, int]

__all__ = ["MeshNetwork"]


@dataclass
class _Port:
    """One router output port: a serializer plus the wire to the next stop."""

    resource: Resource
    hop_ns: float
    gbps: float
    bytes_forwarded: int = 0


class MeshNetwork:
    """A mesh of routers with XY routing and per-port FIFO serialization."""

    def __init__(
        self,
        env: Environment,
        mesh: Mesh,
        port_gbps: float,
        lanes_per_port: int = 1,
    ) -> None:
        self.env = env
        self.mesh = mesh
        self.port_gbps = port_gbps
        self._ports: Dict[Tuple[Coord, Coord], _Port] = {}
        for x in range(mesh.width):
            for y in range(mesh.height):
                here = (x, y)
                for neighbor in ((x + 1, y), (x - 1, y), (x, y + 1), (x, y - 1)):
                    if mesh.contains(neighbor):
                        hop_ns = (
                            mesh.x_hop_ns
                            if neighbor[0] != x
                            else mesh.y_hop_ns
                        )
                        self._ports[(here, neighbor)] = _Port(
                            Resource(env, capacity=lanes_per_port),
                            hop_ns,
                            port_gbps,
                        )

    def port(self, src: Coord, dst: Coord) -> _Port:
        """The output port from one stop to an adjacent stop."""
        try:
            return self._ports[(src, dst)]
        except KeyError:
            raise TopologyError(f"no port from {src} to {dst}") from None

    def send(
        self, src: Coord, dst: Coord, size_bytes: int
    ) -> Generator[Event, None, float]:
        """DES process: forward one packet along the XY route.

        Returns the network traversal latency (ns) experienced by the packet.
        """
        start = self.env.now
        path = self.mesh.route(src, dst)
        hops = list(zip(path, path[1:]))
        previous_axis = None
        for here, nxt in hops:
            axis = "x" if nxt[0] != here[0] else "y"
            if previous_axis is not None and axis != previous_axis:
                # XY routing turns at most once (x-moves precede y-moves).
                # Express channels (negative turn_ns) cannot make the DES go
                # backwards; they are handled analytically in Mesh.cost_ns.
                yield self.env.timeout(max(0.0, self.mesh.turn_ns))
            previous_axis = axis
            port = self.port(here, nxt)
            with port.resource.request() as grant:
                yield grant
                service = size_bytes / port.gbps
                port.bytes_forwarded += size_bytes
                yield self.env.timeout(service + port.hop_ns)
        return self.env.now - start

    def total_bytes_forwarded(self) -> int:
        """Total bytes forwarded across every port."""
        return sum(port.bytes_forwarded for port in self._ports.values())
