"""Tests for access patterns and temporal-write (RFO) semantics (§3.1).

The paper's utility generates "random/sequential read/write access patterns,
and temporal or non-temporal writes"; these tests pin the bandwidth
consequences of each mode.
"""

import pytest

from repro.core.fabric import FabricModel
from repro.core.flows import Pattern, Scope, StreamSpec
from repro.core.microbench import MicroBench
from repro.transport.message import OpKind


@pytest.fixture(scope="module")
def fabric7(p7302):
    return FabricModel(p7302)


@pytest.fixture(scope="module")
def fabric9(p9634):
    return FabricModel(p9634)


class TestPatterns:
    def test_random_reads_below_sequential(self, fabric7):
        sequential = fabric7.per_core_ceiling_gbps(
            OpKind.READ, "dram", 0, pattern=Pattern.SEQUENTIAL
        )
        random = fabric7.per_core_ceiling_gbps(
            OpKind.READ, "dram", 0, pattern=Pattern.RANDOM
        )
        assert random < sequential
        assert random == pytest.approx(sequential / 2, rel=0.1)

    def test_pointer_chase_window_one(self, fabric9):
        chase = fabric9.per_core_ceiling_gbps(
            OpKind.READ, "dram", 0, pattern=Pattern.POINTER_CHASE
        )
        # One cacheline per 141 ns.
        assert chase == pytest.approx(64 / 141, rel=0.02)

    def test_random_cxl_reads_scale_down(self, fabric9):
        sequential = fabric9.per_core_ceiling_gbps(
            OpKind.READ, "cxl", 0, pattern=Pattern.SEQUENTIAL
        )
        random = fabric9.per_core_ceiling_gbps(
            OpKind.READ, "cxl", 0, pattern=Pattern.RANDOM
        )
        assert random < sequential

    def test_nt_writes_unaffected_by_pattern(self, fabric7):
        sequential = fabric7.per_core_ceiling_gbps(
            OpKind.NT_WRITE, "dram", 0, pattern=Pattern.SEQUENTIAL
        )
        random = fabric7.per_core_ceiling_gbps(
            OpKind.NT_WRITE, "dram", 0, pattern=Pattern.RANDOM
        )
        # The write-combining buffer limit does not depend on prefetch.
        assert sequential == random

    def test_microbench_exposes_pattern(self, p9634):
        bench = MicroBench(p9634)
        sequential = bench.stream_bandwidth(Scope.CORE, OpKind.READ)
        random = bench.stream_bandwidth(
            Scope.CORE, OpKind.READ, pattern=Pattern.RANDOM
        )
        assert random < sequential

    def test_default_random_mlp_derivation(self, p7302):
        bw = p7302.spec.bandwidth
        assert bw.effective_random_mlp == max(4, bw.mlp_read // 2)


class TestTemporalWrites:
    def test_temporal_write_loads_both_directions(self, fabric7):
        spec = StreamSpec("s", OpKind.WRITE, (0,))
        flow = fabric7.flows_for(spec)[0]
        directions = {channel.name.split(":")[1] for channel, __ in flow.path}
        assert directions == {"r", "w"}

    def test_nt_write_loads_write_direction_only(self, fabric7):
        spec = StreamSpec("s", OpKind.NT_WRITE, (0,))
        flow = fabric7.flows_for(spec)[0]
        directions = {channel.name.split(":")[1] for channel, __ in flow.path}
        assert directions == {"w"}

    def test_temporal_writes_interfere_with_reads(self, fabric9):
        # RFO fills share the read direction: a temporal-write stream
        # reduces a concurrent read stream where an NT stream would not.
        cores = [c.core_id for c in fabric9.platform.cores_of_ccd(0)]
        reader = StreamSpec("reader", OpKind.READ, tuple(cores[:4]))
        nt = StreamSpec(
            "writer", OpKind.NT_WRITE, tuple(cores[4:]), demand_gbps=9.0
        )
        temporal = StreamSpec(
            "writer", OpKind.WRITE, tuple(cores[4:]), demand_gbps=9.0
        )
        with_nt = fabric9.achieved_gbps([reader, nt])["reader"]
        with_temporal = fabric9.achieved_gbps([reader, temporal])["reader"]
        assert with_temporal < with_nt

    def test_ccd_temporal_write_throughput(self, p7302):
        bench = MicroBench(p7302)
        temporal = bench.stream_bandwidth(Scope.CCD, OpKind.WRITE)
        nt = bench.stream_bandwidth(Scope.CCD, OpKind.NT_WRITE)
        read = bench.stream_bandwidth(Scope.CCD, OpKind.READ)
        # Temporal writes land between NT writes and reads on the 7302
        # (the CCX write pool binds both write flavours).
        assert nt <= temporal < read
