"""DES driver for accelerator job dispatch.

One job runs six phases over the chiplet network:

1. **doorbell** — posted MMIO write from the host core (signal plane);
2. **descriptor fetch** — the device DMA-reads the 64 B command descriptor;
3. **input DMA** — the device DMA-reads the input buffer in chunks, several
   chunks in flight (the data plane crossing P Link → NoC → UMC);
4. **compute** — device-side kernel execution (launch overhead + streaming);
5. **output DMA** — chunked DMA writes of the results;
6. **completion** — the device DMA-writes a 64 B completion record that the
   polling host observes.

Every phase queues at the same arbiters background traffic uses, so
interference is emergent — the experiment behind the intra-host-switch
ablation.
"""

from __future__ import annotations

import math
from typing import Callable, Generator, List, Optional

from repro.accel.device import AcceleratorJob, AcceleratorModel, JobTrace
from repro.errors import ConfigurationError
from repro.platform.numa import Position
from repro.platform.topology import Platform
from repro.sim.engine import Environment, Event
from repro.transport.message import OpKind, Transaction
from repro.transport.path import CompiledPath, PathResolver
from repro.transport.transaction import TransactionExecutor
from repro.units import CACHELINE

__all__ = ["DispatchSimulator", "bulk_transfer"]


def bulk_transfer(
    env: Environment,
    executor: TransactionExecutor,
    path_of_chunk: Callable[[int], CompiledPath],
    op: OpKind,
    total_bytes: int,
    chunk_bytes: int = 4096,
    window: int = 8,
) -> Generator[Event, None, float]:
    """DES process: move ``total_bytes`` in chunks with ``window`` in flight.

    Returns the elapsed time (ns). This is the DMA engine's behaviour: it
    pipelines chunk transfers, bounded by its outstanding-request window.
    """
    if total_bytes <= 0 or chunk_bytes <= 0 or window < 1:
        raise ConfigurationError("bulk transfer sizes must be positive")
    start = env.now
    chunks = math.ceil(total_bytes / chunk_bytes)

    def lane(lane_id: int) -> Generator[Event, None, None]:
        base, extra = divmod(chunks, window)
        quota = base + (1 if lane_id < extra else 0)
        for i in range(quota):
            remaining = total_bytes - (lane_id + i * window) * chunk_bytes
            size = max(1, min(chunk_bytes, remaining))
            txn = Transaction(op, size_bytes=size)
            yield env.process(
                executor.execute(txn, path_of_chunk(lane_id + i * window))
            )

    lanes = [env.process(lane(i)) for i in range(min(window, chunks))]
    yield env.all_of(lanes)
    return env.now - start


class DispatchSimulator:
    """Dispatches accelerator jobs through the simulated chiplet network."""

    def __init__(
        self,
        env: Environment,
        platform: Platform,
        accelerator: AcceleratorModel,
        resolver: Optional[PathResolver] = None,
        chunk_bytes: int = 4096,
        dma_window: int = 16,
        seed: int = 0,
    ) -> None:
        if accelerator.pcie_dev_id not in platform.pcie_devices:
            raise ConfigurationError(
                f"{platform.name} has no PCIe device "
                f"{accelerator.pcie_dev_id} for {accelerator.name}"
            )
        self.env = env
        self.platform = platform
        self.accelerator = accelerator
        self.resolver = resolver or PathResolver(env, platform, seed=seed)
        self.executor = TransactionExecutor(env)
        self.chunk_bytes = chunk_bytes
        self.dma_window = dma_window
        # DMA buffers live in the hub-near NUMA domain.
        hub = platform.io_hubs[0]
        self._dma_umcs = sorted(
            umc.umc_id
            for umc in platform.umcs.values()
        )
        self.traces: List[JobTrace] = []

    def _dma_path(self, index: int, op: OpKind, size: int) -> CompiledPath:
        umc_id = self._dma_umcs[index % len(self._dma_umcs)]
        return self.resolver.dma_path(
            self.accelerator.pcie_dev_id, umc_id, op=op, size_bytes=size
        )

    def dispatch(self, job: AcceleratorJob) -> Generator[Event, None, JobTrace]:
        """DES process: run one job end to end; returns its trace."""
        env = self.env
        dev_id = self.accelerator.pcie_dev_id
        trace = JobTrace(start_ns=env.now)

        # 1. Doorbell (posted MMIO write from the host core).
        mark = env.now
        doorbell = self.resolver.doorbell_path(job.host_core, dev_id)
        yield env.process(
            self.executor.execute(Transaction(OpKind.NT_WRITE, 8), doorbell)
        )
        trace.phases["doorbell"] = env.now - mark

        # 2. Descriptor fetch (device DMA-reads the 64 B command).
        mark = env.now
        descriptor = self._dma_path(0, OpKind.READ, CACHELINE)
        yield env.process(
            self.executor.execute(
                Transaction(OpKind.READ, CACHELINE), descriptor
            )
        )
        trace.phases["descriptor_fetch"] = env.now - mark

        # 3. Input DMA (chunked, pipelined).
        mark = env.now
        yield env.process(
            bulk_transfer(
                env, self.executor,
                lambda i: self._dma_path(i, OpKind.READ, self.chunk_bytes),
                OpKind.READ, job.bytes_in, self.chunk_bytes, self.dma_window,
            )
        )
        trace.phases["input_dma"] = env.now - mark

        # 4. Compute.
        mark = env.now
        yield env.timeout(self.accelerator.kernel_time_ns(job.bytes_in))
        trace.phases["compute"] = env.now - mark

        # 5. Output DMA.
        mark = env.now
        yield env.process(
            bulk_transfer(
                env, self.executor,
                lambda i: self._dma_path(i, OpKind.NT_WRITE, self.chunk_bytes),
                OpKind.NT_WRITE, job.bytes_out, self.chunk_bytes,
                self.dma_window,
            )
        )
        trace.phases["output_dma"] = env.now - mark

        # 6. Completion record (device DMA-write; the polling host sees it
        #    one local DRAM access later).
        mark = env.now
        completion = self._dma_path(0, OpKind.NT_WRITE, CACHELINE)
        yield env.process(
            self.executor.execute(
                Transaction(OpKind.NT_WRITE, CACHELINE), completion
            )
        )
        host_ccd = self.platform.core(job.host_core).ccd_id
        yield env.timeout(
            self.platform.dram_latency_at(host_ccd, Position.NEAR)
        )
        trace.phases["completion"] = env.now - mark

        trace.end_ns = env.now
        self.traces.append(trace)
        return trace

    def run_jobs(self, jobs: List[AcceleratorJob]) -> List[JobTrace]:
        """Dispatch jobs back to back and run the DES to completion."""

        def sequence() -> Generator[Event, None, None]:
            for job in jobs:
                yield self.env.process(self.dispatch(job))

        self.env.run(self.env.process(sequence()))
        return list(self.traces)
