"""Latency statistics.

The paper reports average and tail (P999) latency throughout (Figure 3);
:class:`LatencyStats` bundles both plus the usual distribution summary.

Multi-million-sample runs (the open-loop kvstore serving sweeps) never
need to hold every latency in one Python list: each shard keeps its own
sorted numpy array and :meth:`LatencyStats.merge` computes exact
percentiles across shards by multi-array order-statistic selection
(``searchsorted`` window narrowing — O(shards · log n) per percentile,
O(shards) extra memory). When even per-shard arrays are too much,
:class:`SampleReservoir` keeps a deterministic fixed-size uniform sample
(vectorized Algorithm R on a seeded generator) alongside *exact* streaming
count/mean/min/max/std, trading only the percentiles for approximation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

import numpy as np

from repro.errors import MeasurementError

__all__ = ["percentile", "LatencyStats", "SampleReservoir"]

#: Below this many remaining candidates the multi-array selection just
#: concatenates the windows — cheaper than further narrowing passes.
_SELECT_DIRECT = 4096


def _kth_of_sorted(parts: Sequence[np.ndarray], k: int) -> float:
    """The ``k``-th smallest (0-based) value across sorted arrays.

    Pivot-and-narrow selection: counts below/through a pivot come from
    ``searchsorted`` on each part's live window, so memory stays O(parts)
    no matter how many samples the parts hold.
    """
    windows: List[Tuple[np.ndarray, int, int]] = [
        (part, 0, part.size) for part in parts if part.size
    ]
    while True:
        total = sum(hi - lo for __, lo, hi in windows)
        if total <= _SELECT_DIRECT:
            merged = np.concatenate(
                [part[lo:hi] for part, lo, hi in windows]
            )
            return float(np.partition(merged, k)[k])
        # Pivot: the middle element of the largest live window.
        part, lo, hi = max(windows, key=lambda w: w[2] - w[1])
        pivot = part[(lo + hi) // 2]
        below = 0
        through = 0
        cuts = []
        for part, lo, hi in windows:
            left = int(np.searchsorted(part[lo:hi], pivot, side="left"))
            right = int(np.searchsorted(part[lo:hi], pivot, side="right"))
            below += left
            through += right
            cuts.append((left, right))
        if k < below:
            windows = [
                (part, lo, lo + left)
                for (part, lo, hi), (left, __) in zip(windows, cuts)
            ]
        elif k < through:
            return float(pivot)
        else:
            k -= through
            windows = [
                (part, lo + right, hi)
                for (part, lo, hi), (__, right) in zip(windows, cuts)
            ]
        windows = [w for w in windows if w[2] > w[1]]


def _percentiles_of_sorted(
    parts: Sequence[np.ndarray], qs: Sequence[float], count: int
) -> List[float]:
    """Exact linear-interpolation percentiles over sorted shards."""
    values = []
    for q in qs:
        rank = q / 100.0 * (count - 1)
        j = int(rank)
        gamma = rank - j
        low = _kth_of_sorted(parts, j)
        if gamma == 0.0 or j + 1 >= count:
            values.append(low)
            continue
        high = _kth_of_sorted(parts, j + 1)
        values.append(low + gamma * (high - low))
    return values


def percentile(samples: Sequence[float], q: float) -> float:
    """The ``q``-th percentile (0-100) of ``samples`` (linear interpolation)."""
    if len(samples) == 0:
        raise MeasurementError("percentile of an empty sample set")
    if not 0.0 <= q <= 100.0:
        raise MeasurementError(f"percentile must be in [0, 100], got {q}")
    return float(np.percentile(np.asarray(samples, dtype=float), q))


@dataclass(frozen=True)
class LatencyStats:
    """Summary of a latency sample set (all values in ns)."""

    count: int
    mean: float
    p50: float
    p99: float
    p999: float
    minimum: float
    maximum: float
    std: float

    @classmethod
    def from_samples(cls, samples: Sequence[float]) -> "LatencyStats":
        if len(samples) == 0:
            raise MeasurementError("cannot summarize an empty sample set")
        data = np.asarray(samples, dtype=float)
        p50, p99, p999 = np.percentile(data, [50.0, 99.0, 99.9])
        return cls(
            count=int(data.size),
            mean=float(data.mean()),
            p50=float(p50),
            p99=float(p99),
            p999=float(p999),
            minimum=float(data.min()),
            maximum=float(data.max()),
            std=float(data.std()),
        )

    @classmethod
    def from_sorted(cls, samples: np.ndarray) -> "LatencyStats":
        """Summarize an already-sorted 1-D array without re-sorting it.

        Percentiles come from direct index interpolation on the sorted
        data — the path :meth:`merge` and the batched engines use after
        they have sorted shards once.
        """
        data = np.asarray(samples, dtype=float)
        if data.ndim != 1:
            raise MeasurementError("from_sorted needs a 1-D sample array")
        if data.size == 0:
            raise MeasurementError("cannot summarize an empty sample set")
        if data.size > 1 and np.any(np.diff(data) < 0):
            raise MeasurementError("from_sorted needs non-decreasing samples")
        n = data.size
        values = []
        for q in (50.0, 99.0, 99.9):
            rank = q / 100.0 * (n - 1)
            j = int(rank)
            gamma = rank - j
            low = float(data[j])
            high = float(data[min(j + 1, n - 1)])
            values.append(low + gamma * (high - low))
        return cls(
            count=int(n),
            mean=float(data.mean()),
            p50=values[0],
            p99=values[1],
            p999=values[2],
            minimum=float(data[0]),
            maximum=float(data[-1]),
            std=float(data.std()),
        )

    @classmethod
    def merge(cls, parts: Sequence[np.ndarray]) -> "LatencyStats":
        """Exact summary across per-shard *sorted* sample arrays.

        Never concatenates the shards: moments stream shard by shard and
        tail percentiles come from multi-array order-statistic selection,
        so the extra memory is O(shards), not O(samples). The result is
        identical (to float arithmetic) to ``from_samples`` over the
        concatenation.
        """
        arrays = []
        for part in parts:
            data = np.asarray(part, dtype=float)
            if data.ndim != 1:
                raise MeasurementError("merge needs 1-D sample arrays")
            if data.size > 1 and np.any(np.diff(data) < 0):
                raise MeasurementError(
                    "merge needs non-decreasing per-shard samples"
                )
            if data.size:
                arrays.append(data)
        count = sum(int(a.size) for a in arrays)
        if count == 0:
            raise MeasurementError("cannot summarize an empty sample set")
        total = sum(float(a.sum()) for a in arrays)
        mean = total / count
        sumsq = sum(float(np.square(a - mean).sum()) for a in arrays)
        p50, p99, p999 = _percentiles_of_sorted(
            arrays, (50.0, 99.0, 99.9), count
        )
        return cls(
            count=count,
            mean=mean,
            p50=p50,
            p99=p99,
            p999=p999,
            minimum=min(float(a[0]) for a in arrays),
            maximum=max(float(a[-1]) for a in arrays),
            std=float(np.sqrt(sumsq / count)),
        )

    def mean_confidence_ns(self, z: float = 1.96) -> float:
        """Half-width of the normal-approximation CI on the mean."""
        if self.count < 2:
            return float("inf")
        return z * self.std / (self.count ** 0.5)

    def __str__(self) -> str:
        return (
            f"n={self.count} mean={self.mean:.1f}ns p50={self.p50:.1f}ns "
            f"p99={self.p99:.1f}ns p999={self.p999:.1f}ns max={self.maximum:.1f}ns"
        )


class SampleReservoir:
    """A deterministic fixed-size uniform sample of an unbounded stream.

    Vectorized Algorithm R on a seeded PCG64 generator: item ``i``
    (1-based) replaces a uniformly random reservoir slot with probability
    ``capacity / i``. Count, mean, min, max, and std are tracked exactly
    as streaming moments; only the percentiles are estimated from the
    reservoir. The same seed and the same sequence of ``extend`` batches
    reproduce the same reservoir bit-for-bit (batch draws consume the
    generator in the same order as scalar draws would).
    """

    __slots__ = (
        "capacity", "_rng", "_buffer", "_count",
        "_sum", "_sumsq", "_min", "_max",
    )

    def __init__(self, capacity: int, seed: int = 0) -> None:
        if capacity < 1:
            raise MeasurementError(
                f"reservoir capacity must be >= 1, got {capacity}"
            )
        from repro.sim.rng import SplitRng

        self.capacity = int(capacity)
        self._rng = SplitRng(seed).stream("sample-reservoir")
        self._buffer = np.empty(self.capacity, dtype=float)
        self._count = 0
        self._sum = 0.0
        self._sumsq = 0.0
        self._min = float("inf")
        self._max = float("-inf")

    @property
    def count(self) -> int:
        """Items seen so far (not the reservoir occupancy)."""
        return self._count

    def extend(self, samples: Sequence[float]) -> None:
        """Fold a batch of samples into the reservoir and exact moments."""
        data = np.asarray(samples, dtype=float).ravel()
        if data.size == 0:
            return
        self._sum += float(data.sum())
        self._sumsq += float(np.square(data).sum())
        self._min = min(self._min, float(data.min()))
        self._max = max(self._max, float(data.max()))
        seen = self._count
        self._count += int(data.size)
        fill = min(max(self.capacity - seen, 0), data.size)
        if fill:
            self._buffer[seen:seen + fill] = data[:fill]
            data = data[fill:]
            seen += fill
        if data.size == 0:
            return
        # Algorithm R, batched: item with 1-based global index i keeps a
        # uniform draw in [0, i); draws below capacity replace that slot.
        # Fancy assignment applies accepted items in order, so duplicate
        # slots keep the latest item — exactly the scalar algorithm.
        indices = np.arange(seen + 1, seen + data.size + 1)
        slots = self._rng.integers(0, indices)
        accept = slots < self.capacity
        self._buffer[slots[accept]] = data[accept]

    def stats(self) -> LatencyStats:
        """Exact moments, reservoir-estimated percentiles."""
        if self._count == 0:
            raise MeasurementError("cannot summarize an empty sample set")
        held = np.sort(self._buffer[: min(self._count, self.capacity)])
        n = held.size
        values = []
        for q in (50.0, 99.0, 99.9):
            rank = q / 100.0 * (n - 1)
            j = int(rank)
            gamma = rank - j
            low = float(held[j])
            high = float(held[min(j + 1, n - 1)])
            values.append(low + gamma * (high - low))
        mean = self._sum / self._count
        variance = max(self._sumsq / self._count - mean * mean, 0.0)
        return LatencyStats(
            count=self._count,
            mean=mean,
            p50=values[0],
            p99=values[1],
            p999=values[2],
            minimum=self._min,
            maximum=self._max,
            std=float(np.sqrt(variance)),
        )
