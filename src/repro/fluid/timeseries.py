"""Time-stepped fluid simulation for bandwidth-over-time experiments.

Each step the simulator (1) evaluates every flow's offered demand from its
:class:`DemandSchedule`, (2) solves the steady-state allocation with the
configured policy, and (3) advances every flow's *achieved* rate toward its
allocation through the flow's adaptation model. The output is one
:class:`FlowTrace` per flow — directly comparable to Figure 5's bandwidth
utilization timelines.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.analysis.timeseries import TimeSeries
from repro.errors import ConfigurationError, SimulationError
from repro.fluid.adaptation import AdaptationModel, InstantAdaptation
from repro.fluid.solver import (
    Channel,
    FluidFlow,
    Policy,
    resolve_backend,
    solve,
)
from repro.fluid.vectorized import CompiledProblem

#: Tolerance for the strict-mode allocation invariants (GB/s).
_INVARIANT_EPS = 1e-6

__all__ = ["DemandSchedule", "FlowTrace", "FluidSimulator"]


@dataclass(frozen=True)
class DemandSchedule:
    """A base demand plus timed deltas (e.g. "throttle by 2 GB/s in [2s,3s)")."""

    base_gbps: float
    #: (start_s, end_s, delta_gbps) — delta is *added* during the interval.
    deltas: Tuple[Tuple[float, float, float], ...] = ()

    def __post_init__(self) -> None:
        if self.base_gbps < 0:
            raise ConfigurationError("base demand must be non-negative")
        for start, end, __ in self.deltas:
            if end <= start:
                raise ConfigurationError(f"empty delta interval [{start}, {end})")

    def at(self, t_s: float) -> float:
        """Offered demand (GB/s) at time t (seconds)."""
        demand = self.base_gbps
        for start, end, delta in self.deltas:
            if start <= t_s < end:
                demand += delta
        return max(0.0, demand)

    def at_many(self, times_s: Sequence[float]) -> np.ndarray:
        """Vectorized :meth:`at` — applies the deltas in the same order per
        element, so ``at_many(ts)[i] == at(ts[i])`` bit-for-bit."""
        times = np.asarray(times_s, dtype=float)
        demand = np.full(times.shape, self.base_gbps)
        for start, end, delta in self.deltas:
            demand[(times >= start) & (times < end)] += delta
        return np.maximum(0.0, demand)


@dataclass
class FlowTrace:
    """One flow's sampled achieved bandwidth (plus demand, for reference)."""

    name: str
    times_s: List[float] = field(default_factory=list)
    achieved_gbps: List[float] = field(default_factory=list)
    demand_gbps: List[float] = field(default_factory=list)

    def achieved_series(self) -> TimeSeries:
        """The achieved-bandwidth samples as a TimeSeries."""
        return TimeSeries(np.asarray(self.times_s), np.asarray(self.achieved_gbps))

    def demand_series(self) -> TimeSeries:
        """The offered-demand samples as a TimeSeries."""
        return TimeSeries(np.asarray(self.times_s), np.asarray(self.demand_gbps))


class FluidSimulator:
    """Drives scheduled flows through the allocation solver over time.

    ``capacity_schedules`` makes channel capacities time-varying: a mapping
    from channel name to a schedule of capacity *multipliers* (base 1.0,
    deltas negative for throttling). Any object with an ``at(t_s) -> float``
    method qualifies — a :class:`DemandSchedule`, or the multiplicative
    per-channel factor curves a :class:`~repro.faults.schedule.FaultSchedule`
    compiles to (``schedule.capacity_factors()``). This models link-level
    events — a thermally throttled P Link, a flapping xGMI lane — and the
    flows' adaptation to them.

    ``strict=True`` checks the solver's allocation invariants every step —
    no flow above its demand, no channel above its (scheduled) capacity —
    raising :class:`~repro.errors.SimulationError` with the offending flow
    or channel and timestamp instead of silently producing plausible-but-
    wrong curves.
    """

    def __init__(
        self,
        flows: Sequence[FluidFlow],
        schedules: Dict[str, DemandSchedule],
        adaptations: Optional[Dict[str, AdaptationModel]] = None,
        policy: Policy = Policy.DEMAND_PROPORTIONAL,
        dt_s: float = 0.005,
        capacity_schedules: Optional[Dict[str, DemandSchedule]] = None,
        strict: bool = False,
    ) -> None:
        if dt_s <= 0:
            raise ConfigurationError(f"dt must be positive, got {dt_s}")
        names = {flow.name for flow in flows}
        missing = names - set(schedules)
        if missing:
            raise ConfigurationError(f"flows without a demand schedule: {missing}")
        channel_names = {
            channel.name for flow in flows for channel, __ in flow.path
        }
        unknown = set(capacity_schedules or {}) - channel_names
        if unknown:
            raise ConfigurationError(
                f"capacity schedules for unknown channels: {unknown}"
            )
        self.flows = list(flows)
        self.schedules = schedules
        self.capacity_schedules = dict(capacity_schedules or {})
        self.adaptations: Dict[str, AdaptationModel] = {
            name: (adaptations or {}).get(name, InstantAdaptation())
            for name in names
        }
        self.policy = policy
        self.dt_s = dt_s
        self.strict = bool(strict)

    def _check_invariants(
        self, flows: List[FluidFlow], allocation: Dict[str, float], t_s: float
    ) -> None:
        """Strict mode: the solver's contract, verified on every step."""
        loads: Dict[str, float] = {}
        capacities: Dict[str, float] = {}
        for flow in flows:
            granted = allocation[flow.name]
            if granted < -_INVARIANT_EPS:
                raise SimulationError(
                    f"t={t_s:.4f}s: flow {flow.name!r} got a negative "
                    f"allocation ({granted} GB/s)"
                )
            if granted > flow.demand_gbps + _INVARIANT_EPS:
                raise SimulationError(
                    f"t={t_s:.4f}s: flow {flow.name!r} was allocated "
                    f"{granted} GB/s above its demand {flow.demand_gbps}"
                )
            for channel, weight in flow.path:
                loads[channel.name] = (
                    loads.get(channel.name, 0.0) + granted * weight
                )
                capacities[channel.name] = channel.capacity_gbps
        for name, load in loads.items():
            if load > capacities[name] * (1.0 + 1e-9) + _INVARIANT_EPS:
                raise SimulationError(
                    f"t={t_s:.4f}s: channel {name!r} oversubscribed — "
                    f"load {load} GB/s exceeds capacity {capacities[name]}"
                )

    def _flows_at(self, t_s: float) -> List[FluidFlow]:
        """The flow set with channel capacities scaled for time ``t``."""
        if not self.capacity_schedules:
            return self.flows
        scaled: Dict[str, Channel] = {}
        for flow in self.flows:
            for channel, __ in flow.path:
                if channel.name in scaled:
                    continue
                schedule = self.capacity_schedules.get(channel.name)
                factor = schedule.at(t_s) if schedule is not None else 1.0
                if factor <= 0:
                    raise ConfigurationError(
                        f"channel {channel.name}: capacity factor must stay "
                        f"positive (got {factor} at t={t_s})"
                    )
                scaled[channel.name] = Channel(
                    channel.name, channel.capacity_gbps * factor
                )
        return [
            FluidFlow(
                flow.name,
                flow.demand_gbps,
                [(scaled[c.name], w) for c, w in flow.path],
                elastic=flow.elastic,
                weight=flow.weight,
            )
            for flow in self.flows
        ]

    def run(self, duration_s: float) -> Dict[str, FlowTrace]:
        """Simulate ``duration_s`` seconds; returns a trace per flow.

        Two equivalent implementations sit behind the
        :data:`~repro.fluid.solver.BACKEND_ENV_VAR` switch: the reference
        loop (backend ``python``) re-evaluates schedules and re-solves every
        step, while the fast path (default) precomputes the demand and
        capacity series as arrays and only calls the solver when the inputs
        actually changed — piecewise-constant schedules like Figure 5's
        collapse from thousands of solves to a handful. Memoized steps reuse
        the solver's own earlier output, so the traces are identical.
        """
        if duration_s <= 0:
            raise ConfigurationError("duration must be positive")
        if resolve_backend() == "python":
            return self._run_reference(duration_s)
        return self._run_fast(duration_s)

    def _run_reference(self, duration_s: float) -> Dict[str, FlowTrace]:
        """The straightforward step loop (reference backend)."""
        traces = {flow.name: FlowTrace(flow.name) for flow in self.flows}
        # Start every flow at its t=0 allocation (steady state before the run).
        for flow in self.flows:
            flow.demand_gbps = self.schedules[flow.name].at(0.0)
        initial = solve(self._flows_at(0.0), self.policy)
        for flow in self.flows:
            self.adaptations[flow.name].reset(initial[flow.name])

        steps = int(round(duration_s / self.dt_s))
        for step in range(steps):
            t = step * self.dt_s
            for flow in self.flows:
                flow.demand_gbps = self.schedules[flow.name].at(t)
            stepped = self._flows_at(t)
            allocation = solve(stepped, self.policy)
            if self.strict:
                self._check_invariants(stepped, allocation, t)
            for flow in self.flows:
                achieved = self.adaptations[flow.name].step(
                    allocation[flow.name], self.dt_s
                )
                # A sender can undershoot its allocation while ramping, but it
                # can never exceed what the channels actually grant it... with
                # one exception: an under-damped sender (the 7302 IF) briefly
                # overshoots into the other flow's share — that *is* the
                # "drastic variation" of Figure 5, so only clamp to demand.
                achieved = min(achieved, flow.demand_gbps)
                trace = traces[flow.name]
                trace.times_s.append(t)
                trace.achieved_gbps.append(achieved)
                trace.demand_gbps.append(flow.demand_gbps)
        return traces

    # ------------------------------------------------------------- fast path

    @staticmethod
    def _series(schedule, times: List[float]) -> np.ndarray:
        """Evaluate a schedule over all ``times`` (vectorized when it can)."""
        at_many = getattr(schedule, "at_many", None)
        if at_many is not None:
            return np.asarray(at_many(times), dtype=float)
        return np.array([schedule.at(t) for t in times], dtype=float)

    def _solve_step(
        self, demand_column: np.ndarray, caps_column: Optional[List[float]]
    ) -> np.ndarray:
        """One cold solve: materialize the flow set and call :func:`solve`.

        Goes through the module-global ``solve`` exactly like the reference
        loop, so backend selection — and test monkeypatching — see the same
        seam on both paths.
        """
        for j, flow in enumerate(self.flows):
            flow.demand_gbps = float(demand_column[j])
        if caps_column is None:
            stepped = self.flows
        else:
            scaled = {
                channel.name: Channel(channel.name, cap)
                for channel, cap in zip(self._visit_channels, caps_column)
            }
            stepped = [
                FluidFlow(
                    flow.name,
                    flow.demand_gbps,
                    [(scaled[c.name], w) for c, w in flow.path],
                    elastic=flow.elastic,
                    weight=flow.weight,
                )
                for flow in self.flows
            ]
        allocation = solve(stepped, self.policy)
        return np.array(
            [allocation[flow.name] for flow in self.flows], dtype=float
        )

    def _check_fast(
        self,
        alloc: np.ndarray,
        demands: np.ndarray,
        caps: np.ndarray,
        matrix: np.ndarray,
        t_s: float,
    ) -> None:
        """Strict invariants on one step's vectors; first-violation order
        (flow order, negative before above-demand, then channels in path
        visit order) matches :meth:`_check_invariants`."""
        negative = alloc < -_INVARIANT_EPS
        above = alloc > demands + _INVARIANT_EPS
        if (negative | above).any():
            j = int(np.argmax(negative | above))
            name = self.flows[j].name
            if negative[j]:
                raise SimulationError(
                    f"t={t_s:.4f}s: flow {name!r} got a negative "
                    f"allocation ({float(alloc[j])} GB/s)"
                )
            raise SimulationError(
                f"t={t_s:.4f}s: flow {name!r} was allocated "
                f"{float(alloc[j])} GB/s above its demand "
                f"{float(demands[j])}"
            )
        loads = matrix @ alloc
        over = loads > caps * (1.0 + 1e-9) + _INVARIANT_EPS
        if over.any():
            k = int(np.argmax(over))
            raise SimulationError(
                f"t={t_s:.4f}s: channel {self._visit_channels[k].name!r} "
                f"oversubscribed — load {float(loads[k])} GB/s exceeds "
                f"capacity {float(caps[k])}"
            )

    def _run_fast(self, duration_s: float) -> Dict[str, FlowTrace]:
        """Array-driven run: precomputed schedules + solve memoization.

        Per step the solver is consulted only when (demands, capacities)
        differ from the previous step; a max-min/weighted step whose
        capacities changed may additionally reuse the previous allocation
        when the bottleneck-verification warm start proves it still optimal
        (see :class:`repro.fluid.vectorized.CompiledProblem`).
        """
        flows = self.flows
        n_flows = len(flows)
        steps = int(round(duration_s / self.dt_s))
        times = [step * self.dt_s for step in range(steps)]
        eval_times = times if steps else [0.0]

        demand_matrix = np.empty((n_flows, len(eval_times)))
        for j, flow in enumerate(flows):
            demand_matrix[j] = self._series(
                self.schedules[flow.name], eval_times
            )

        # Channels in path-visit order (first appearance), like _flows_at.
        visit: List[Channel] = []
        seen = set()
        for flow in flows:
            for channel, __ in flow.path:
                if channel.name not in seen:
                    seen.add(channel.name)
                    visit.append(channel)
        self._visit_channels = visit
        matrix = np.zeros((len(visit), n_flows))
        index_of = {channel.name: k for k, channel in enumerate(visit)}
        for j, flow in enumerate(flows):
            for channel, weight in flow.path:
                matrix[index_of[channel.name], j] += weight
        base_caps = np.array([channel.capacity_gbps for channel in visit])

        caps_matrix: Optional[np.ndarray] = None
        if self.capacity_schedules:
            factors = np.ones((len(visit), len(eval_times)))
            for k, channel in enumerate(visit):
                schedule = self.capacity_schedules.get(channel.name)
                if schedule is not None:
                    factors[k] = self._series(schedule, eval_times)
            if (factors <= 0.0).any():
                # Same first offender as the reference loop: earliest step,
                # then first channel in visit order.
                s = int(np.flatnonzero((factors <= 0.0).any(axis=0))[0])
                k = int(np.flatnonzero(factors[:, s] <= 0.0)[0])
                raise ConfigurationError(
                    f"channel {visit[k].name}: capacity factor must stay "
                    f"positive (got {factors[k, s]} at t={eval_times[s]})"
                )
            caps_matrix = base_caps[:, None] * factors

        # Bottleneck-verification warm starts only apply to the max-min
        # family with time-varying capacities.
        problem: Optional[CompiledProblem] = None
        perm: Optional[List[int]] = None
        if caps_matrix is not None and self.policy in (
            Policy.MAX_MIN,
            Policy.WEIGHTED,
        ):
            problem = CompiledProblem(flows)
            perm = [index_of[name] for name in problem.channel_names]

        def caps_at(step: int):
            if caps_matrix is None:
                return None, base_caps
            column = caps_matrix[:, step]
            return column.tolist(), column

        # Initial solve at t=0 (steady state before the run). times[0] is
        # also 0.0, so it seeds the memo for step 0.
        caps_list0, caps_vec0 = caps_at(0)
        alloc = self._solve_step(demand_matrix[:, 0], caps_list0)
        for j, flow in enumerate(flows):
            self.adaptations[flow.name].reset(float(alloc[j]))
        memo_demands = demand_matrix[:, 0].tobytes()
        memo_caps = caps_vec0.tobytes()

        alloc_matrix = np.empty((n_flows, steps))
        for step in range(steps):
            demand_column = demand_matrix[:, step]
            caps_list, caps_vec = caps_at(step)
            demand_key = demand_column.tobytes()
            caps_key = caps_vec.tobytes()
            if demand_key != memo_demands or caps_key != memo_caps:
                warm_ok = (
                    problem is not None
                    and demand_key == memo_demands
                    and problem.verify_max_min(
                        alloc,
                        demand_column,
                        caps_vec[perm],
                        use_weights=self.policy is Policy.WEIGHTED,
                    )
                )
                if not warm_ok:
                    alloc = self._solve_step(demand_column, caps_list)
                memo_demands, memo_caps = demand_key, caps_key
            if self.strict:
                self._check_fast(
                    alloc, demand_column, caps_vec, matrix, times[step]
                )
            alloc_matrix[:, step] = alloc

        traces = {flow.name: FlowTrace(flow.name) for flow in flows}
        for j, flow in enumerate(flows):
            if steps:
                flow.demand_gbps = float(demand_matrix[j, -1])
            model = self.adaptations[flow.name]
            targets = alloc_matrix[j].tolist()
            run_series = getattr(model, "run_series", None)
            if run_series is not None:
                raw = run_series(targets, self.dt_s)
            else:
                raw = [model.step(target, self.dt_s) for target in targets]
            demand_list = demand_matrix[j].tolist() if steps else []
            trace = traces[flow.name]
            trace.times_s = list(times)
            trace.achieved_gbps = [
                min(achieved, demand)
                for achieved, demand in zip(raw, demand_list)
            ]
            trace.demand_gbps = demand_list
        return traces
