"""Tests for cache hierarchy resolution."""

import pytest

from repro.errors import ConfigurationError
from repro.memory.cache import CacheHierarchy, MemoryLevel
from repro.units import KIB, MIB


class TestLevelResolution:
    def test_l1_boundary(self, p7302):
        hierarchy = CacheHierarchy(p7302)
        assert hierarchy.level_for(1) is MemoryLevel.L1
        assert hierarchy.level_for(32 * KIB) is MemoryLevel.L1
        assert hierarchy.level_for(32 * KIB + 1) is MemoryLevel.L2

    def test_l2_boundary(self, p7302):
        hierarchy = CacheHierarchy(p7302)
        assert hierarchy.level_for(512 * KIB) is MemoryLevel.L2
        assert hierarchy.level_for(512 * KIB + 1) is MemoryLevel.L3

    def test_l3_slice_boundary(self, p7302):
        # The working set competes for the CCX's slice (16 MiB), not the
        # whole 128 MiB L3.
        hierarchy = CacheHierarchy(p7302)
        assert hierarchy.level_for(16 * MIB) is MemoryLevel.L3
        assert hierarchy.level_for(16 * MIB + 1) is MemoryLevel.DRAM

    def test_9634_larger_caches(self, p9634):
        hierarchy = CacheHierarchy(p9634)
        assert hierarchy.level_for(64 * KIB) is MemoryLevel.L1
        assert hierarchy.level_for(1 * MIB) is MemoryLevel.L2
        assert hierarchy.level_for(32 * MIB) is MemoryLevel.L3

    def test_resolution_is_monotonic(self, platform):
        hierarchy = CacheHierarchy(platform)
        order = [MemoryLevel.L1, MemoryLevel.L2, MemoryLevel.L3, MemoryLevel.DRAM]
        previous = 0
        for size in (2**k for k in range(8, 30)):
            level = hierarchy.level_for(size)
            index = order.index(level)
            assert index >= previous
            previous = index

    def test_non_positive_rejected(self, platform):
        hierarchy = CacheHierarchy(platform)
        with pytest.raises(ConfigurationError):
            hierarchy.level_for(0)


class TestLatency:
    def test_cache_latencies(self, p9634):
        hierarchy = CacheHierarchy(p9634)
        assert hierarchy.latency_ns(MemoryLevel.L1) == pytest.approx(1.19)
        assert hierarchy.latency_ns(MemoryLevel.L2) == pytest.approx(7.51)
        assert hierarchy.latency_ns(MemoryLevel.L3) == pytest.approx(40.8)

    def test_latency_ordering(self, platform):
        hierarchy = CacheHierarchy(platform)
        l1 = hierarchy.latency_ns(MemoryLevel.L1)
        l2 = hierarchy.latency_ns(MemoryLevel.L2)
        l3 = hierarchy.latency_ns(MemoryLevel.L3)
        assert l1 < l2 < l3

    def test_dram_latency_rejected(self, platform):
        hierarchy = CacheHierarchy(platform)
        with pytest.raises(ConfigurationError):
            hierarchy.latency_ns(MemoryLevel.DRAM)
