"""The characterization utility — the paper's measurement tool (§3.1).

"We developed a micro benchmark utility … that can flexibly generate
different data flows (such as one or multiple concurrent cachelines,
random/sequential read/write access patterns, and temporal or non-temporal
writes) over a size-configurable working set, originating from and destined
to compute chiplets, memory domains, and device domains."

:class:`~repro.core.microbench.MicroBench` is that utility, pointed at the
simulated platform instead of real silicon:

* pointer-chase latency mode (Table 2),
* streaming bandwidth mode with core/CCX/CCD/CPU scaling (Table 3),
* rate-controlled loaded-latency mode (Figure 3),
* competing-flow mode (Figures 4-6) via :mod:`repro.core.partition`.
"""

from repro.core.fabric import FabricModel
from repro.core.flows import StreamSpec, Scope
from repro.core.loadgen import ClosedLoopIssuer, LoadResult
from repro.core.microbench import MicroBench
from repro.core.partition import CompetingFlows, contend

__all__ = [
    "FabricModel",
    "StreamSpec",
    "Scope",
    "ClosedLoopIssuer",
    "LoadResult",
    "MicroBench",
    "CompetingFlows",
    "contend",
]
