"""Tests for the Figure 3/4/5/6 experiment harnesses (shape criteria)."""

import pytest

from repro.experiments import ablations, fig3, fig4, fig5, fig6
from repro.transport.message import OpKind


# ------------------------------------------------------------------ Figure 3

@pytest.fixture(scope="module")
def fig3_gmi_9634(p9634):
    config = [
        c for c in fig3.panel_configs(p9634) if c.panel == "e"
    ][0]
    return {
        op: fig3.run_panel(
            p9634, config, op, transactions_per_core=350, fractions=(0.3, 0.7)
        )
        for op in (OpKind.READ, OpKind.NT_WRITE)
    }


class TestFig3:
    def test_panels_cover_both_platforms(self, p7302, p9634):
        panels7 = {c.panel for c in fig3.panel_configs(p7302)}
        panels9 = {c.panel for c in fig3.panel_configs(p9634)}
        assert panels7 == {"a", "c", "d"}
        assert panels9 == {"b", "e", "f"}

    def test_latency_rises_toward_saturation(self, fig3_gmi_9634):
        sweep = fig3_gmi_9634[OpKind.READ]
        assert sweep.mean_rise() > 1.4

    def test_base_latency_matches_unloaded(self, fig3_gmi_9634, p9634):
        from repro.platform.numa import Position

        sweep = fig3_gmi_9634[OpKind.READ]
        near = p9634.dram_latency_at(0, Position.NEAR)
        assert sweep.base.stats.mean == pytest.approx(near, rel=0.05)

    def test_write_blowup_on_9634_gmi(self, fig3_gmi_9634):
        # Paper: write average rises to ≈695.8 ns (≈4.8× base).
        sweep = fig3_gmi_9634[OpKind.NT_WRITE]
        assert sweep.mean_rise() > 3.5

    def test_tail_above_mean_everywhere(self, fig3_gmi_9634):
        for sweep in fig3_gmi_9634.values():
            for result in sweep.results:
                assert result.stats.p999 > result.stats.mean

    def test_flat_panel_a(self, p7302):
        config = [c for c in fig3.panel_configs(p7302) if c.panel == "a"][0]
        sweep = fig3.run_panel(
            p7302, config, OpKind.READ,
            transactions_per_core=350, fractions=(0.3, 0.7),
        )
        # Paper: "regardless of the load" — flat within a few percent.
        assert sweep.mean_rise() < 1.05
        assert sweep.base.stats.mean == pytest.approx(144.5, rel=0.03)

    def test_render(self, fig3_gmi_9634):
        text = fig3.render(list(fig3_gmi_9634.values()))
        assert "GMI (9634)" in text
        assert "avg ns" in text


# ------------------------------------------------------------------ Figure 4

@pytest.fixture(scope="module")
def fig4_results(p7302, p9634):
    return [fig4.run(p7302), fig4.run(p9634)]


class TestFig4:
    def test_links_per_platform(self, fig4_results):
        assert set(fig4_results[0].outcomes) == {"if", "gmi"}
        assert set(fig4_results[1].outcomes) == {"if", "gmi", "plink"}

    def test_case1_everyone_gets_demand(self, fig4_results):
        for result in fig4_results:
            for cases in result.outcomes.values():
                outcome = cases["case1-undersubscribed"]
                assert not outcome.oversubscribed
                for flow, requested in outcome.requested.items():
                    assert outcome.achieved[flow] == pytest.approx(requested)

    def test_case2_aggressive_beats_equal_share(self, fig4_results):
        for result in fig4_results:
            for cases in result.outcomes.values():
                outcome = cases["case2-small-vs-aggressive"]
                assert outcome.achieved["flow1"] > outcome.equal_share()

    def test_case3_equilibrium(self, fig4_results):
        for result in fig4_results:
            for cases in result.outcomes.values():
                outcome = cases["case3-equal-demands"]
                assert outcome.achieved["flow0"] == pytest.approx(
                    outcome.achieved["flow1"]
                )
                assert outcome.achieved["flow0"] == pytest.approx(
                    outcome.equal_share()
                )

    def test_case4_higher_demand_wins(self, fig4_results):
        for result in fig4_results:
            for cases in result.outcomes.values():
                outcome = cases["case4-unequal-demands"]
                assert outcome.achieved["flow1"] > outcome.achieved["flow0"]
                assert outcome.achieved["flow1"] > outcome.equal_share()

    def test_capacity_never_exceeded(self, fig4_results):
        for result in fig4_results:
            for cases in result.outcomes.values():
                for outcome in cases.values():
                    total = sum(outcome.achieved.values())
                    assert total <= outcome.capacity_gbps * (1 + 1e-9)

    def test_plink_requires_cxl(self, p7302):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            fig4.link_capacity_gbps(p7302, "plink")

    def test_render(self, fig4_results):
        text = fig4.render(fig4_results)
        assert "case2-small-vs-aggressive" in text
        assert "EPYC 9634" in text


# ------------------------------------------------------------------ Figure 5

class TestFig5:
    def test_9634_if_harvest_100ms(self, p9634):
        result = fig5.run(p9634, "if")
        assert result.harvest_delay_s == pytest.approx(0.1, abs=0.03)

    def test_9634_plink_harvest_500ms(self, p9634):
        result = fig5.run(p9634, "plink")
        assert result.harvest_delay_s == pytest.approx(0.5, abs=0.1)

    def test_7302_if_oscillates(self, p7302, p9634):
        noisy = fig5.run(p7302, "if")
        smooth = fig5.run(p9634, "if")
        assert noisy.variation_gbps > 3 * smooth.variation_gbps

    def test_harvested_bandwidth_is_the_freed_share(self, p9634):
        result = fig5.run(p9634, "if")
        series = result.traces["flow1"].achieved_series()
        capacity = result.scenario.capacity_gbps
        # Late in the throttle window flow 1 holds C/2 + 2.
        assert series.mean_between(2.7, 3.0) == pytest.approx(
            capacity / 2 + 2.0, abs=0.2
        )

    def test_equal_share_restored_after_throttle(self, p9634):
        result = fig5.run(p9634, "if")
        series = result.traces["flow1"].achieved_series()
        capacity = result.scenario.capacity_gbps
        assert series.mean_between(5.5, 6.0) == pytest.approx(
            capacity / 2, abs=0.3
        )

    def test_flow0_keeps_paced_rate(self, p9634):
        result = fig5.run(p9634, "if")
        series = result.traces["flow0"].achieved_series()
        capacity = result.scenario.capacity_gbps
        assert series.mean_between(2.2, 3.0) == pytest.approx(
            capacity / 2 - 2.0, abs=0.2
        )

    def test_unknown_link_rejected(self, p9634):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            fig5.run(p9634, "sata")

    def test_plink_requires_cxl(self, p7302):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            fig5.scenario_for(p7302, "plink")


# ------------------------------------------------------------------ Figure 6

@pytest.fixture(scope="module")
def fig6_result(p9634):
    return fig6.run(p9634)


class TestFig6:
    def test_16_curves(self, fig6_result):
        assert len(fig6_result.curves) == 16

    def test_if_intra_cc_knees_match_paper(self, fig6_result):
        write_vs_read = fig6_result.curve(
            "if-intra-cc", OpKind.NT_WRITE, OpKind.READ
        )
        read_vs_read = fig6_result.curve(
            "if-intra-cc", OpKind.READ, OpKind.READ
        )
        assert write_vs_read.knee_gbps == pytest.approx(32.8, abs=1.0)
        assert read_vs_read.knee_gbps == pytest.approx(27.7, abs=1.0)

    def test_background_writes_mostly_harmless_intra_cc(self, fig6_result):
        curve = fig6_result.curve("if-intra-cc", OpKind.READ, OpKind.NT_WRITE)
        assert curve.knee_gbps is None

    def test_inter_cc_read_aggregate_55_7(self, fig6_result):
        curve = fig6_result.curve("if-inter-cc", OpKind.READ, OpKind.READ)
        assert curve.knee_aggregate_gbps == pytest.approx(55.7, abs=1.5)

    def test_inter_cc_writes_never_affected(self, fig6_result):
        for y_op in (OpKind.READ, OpKind.NT_WRITE):
            curve = fig6_result.curve("if-inter-cc", OpKind.NT_WRITE, y_op)
            assert curve.knee_gbps is None

    def test_gmi_aggregates(self, fig6_result):
        read = fig6_result.curve("gmi", OpKind.READ, OpKind.READ)
        write = fig6_result.curve("gmi", OpKind.NT_WRITE, OpKind.NT_WRITE)
        assert read.knee_aggregate_gbps == pytest.approx(31.8, abs=1.0)
        assert write.knee_aggregate_gbps == pytest.approx(29.1, abs=1.0)

    def test_plink_aggregates(self, fig6_result):
        read = fig6_result.curve("plink-cxl", OpKind.READ, OpKind.READ)
        write = fig6_result.curve(
            "plink-cxl", OpKind.NT_WRITE, OpKind.NT_WRITE
        )
        assert read.knee_aggregate_gbps == pytest.approx(62.8, abs=1.5)
        assert write.knee_aggregate_gbps == pytest.approx(44.0, abs=1.5)

    def test_x_flat_before_knee_then_declines(self, fig6_result):
        curve = fig6_result.curve("if-inter-cc", OpKind.READ, OpKind.READ)
        flat = [
            x for y, x in zip(curve.y_offered, curve.x_achieved)
            if curve.knee_gbps and y < curve.knee_gbps - 1
        ]
        assert all(x == pytest.approx(curve.baseline) for x in flat)
        assert curve.x_achieved[-1] < curve.baseline

    def test_requires_cxl_platform(self, p7302):
        from repro.errors import ConfigurationError

        with pytest.raises(ConfigurationError):
            fig6.scenarios_for(p7302)

    def test_render(self, fig6_result):
        text = fig6.render(fig6_result)
        assert "if-intra-cc" in text
        assert "knee" in text


# ------------------------------------------------------------------ Ablations

class TestAblations:
    def test_manager_restores_fairness_case4(self, p9634):
        out = ablations.manager_vs_sender_driven(p9634)
        ablation = out["case4-unequal-demands"]
        sender_fair, managed_fair = ablation.fairness()
        assert managed_fair > sender_fair
        assert managed_fair == pytest.approx(1.0)

    def test_manager_protects_small_flow_case2(self, p9634):
        out = ablations.manager_vs_sender_driven(p9634)
        ablation = out["case2-small-vs-aggressive"]
        assert ablation.managed["flow0"] == pytest.approx(
            ablation.requested["flow0"]
        )
        assert ablation.sender_driven["flow0"] < ablation.requested["flow0"]

    def test_detailed_noc_matches_collapsed_model(self, platform):
        deltas = ablations.detailed_vs_collapsed_noc(platform)
        for position, delta in deltas.items():
            assert abs(delta) < 1e-9, position

    def test_token_pools_move_backlog_off_the_io_die(self, p7302):
        out = ablations.token_pool_ablation(p7302, transactions_per_core=200)
        assert (
            out["with_tokens"]["gmi_max_backlog"]
            < out["without_tokens"]["gmi_max_backlog"]
        )
        # Little's law: end-to-end latency is roughly conserved.
        assert out["with_tokens"]["mean_latency_ns"] == pytest.approx(
            out["without_tokens"]["mean_latency_ns"], rel=0.1
        )
