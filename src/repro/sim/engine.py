"""A compact discrete-event simulation engine.

The engine follows the simpy programming model: simulation logic is written as
generator functions that ``yield`` events. The three building blocks are

* :class:`Environment` — the event loop and simulated clock (nanoseconds),
* :class:`Event` and its subclasses (:class:`Timeout`, :class:`Process`,
  :class:`AllOf`, :class:`AnyOf`),
* :class:`Resource` / :class:`Store` — queued shared resources.

The implementation is single-threaded and deterministic: events scheduled for
the same timestamp fire in scheduling order (a monotonically increasing
sequence number breaks ties).

**Ordering contract.** The event queue holds ``(time, seq, event)`` tuples
and pops them in ascending tuple order, so the total order of a simulation
is fully determined by ``(time, seq)``. ``seq`` is *shard-stable*: an
environment draws its sequence numbers from the arithmetic progression
``seq_offset + k * seq_step`` (defaults ``0 + k * 1``). A serial run and a
:mod:`repro.sim.sharded` run therefore draw from disjoint, interleavable
progressions — shard ``i`` of ``N`` uses ``offset=i, step=N`` — which makes
the merged event order of N shards directly comparable with (and for one
shard identical to) the serial order. Anything that influences results must
flow through ``(time, seq)``: callbacks run in list order, and no code may
depend on heap internals beyond this contract.

Every class on the hot path declares ``__slots__`` — a simulation allocates
millions of short-lived events, and slotted instances are both smaller and
faster to initialize than ``__dict__``-backed ones. The :meth:`Environment.run`
loops additionally inline :meth:`Environment.step`'s pop-and-fire body; the
scheduling order (and therefore every simulation result) is unchanged.
"""

from __future__ import annotations

from heapq import heappop as _heappop, heappush as _heappush
from collections import deque
from typing import Any, Callable, Generator, Iterable, Optional

from repro.errors import SimulationError

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Process",
    "AllOf",
    "AnyOf",
    "Resource",
    "Store",
]

#: Sentinel for "event not yet triggered".
_PENDING = object()


class Event:
    """A one-shot occurrence that processes can wait on.

    An event is *triggered* by :meth:`succeed` or :meth:`fail`; at that point
    it is scheduled and its callbacks run when the environment reaches it.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok")

    def __init__(self, env: "Environment") -> None:
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = _PENDING
        self._ok = True

    @property
    def triggered(self) -> bool:
        """True once the event has a value (it may not have fired yet)."""
        return self._value is not _PENDING

    @property
    def processed(self) -> bool:
        """True once the event's callbacks have been executed."""
        return self.callbacks is None

    @property
    def ok(self) -> bool:
        """True when the event succeeded (only meaningful once triggered)."""
        return self._ok

    @property
    def value(self) -> Any:
        if self._value is _PENDING:
            raise SimulationError("event value accessed before it was triggered")
        return self._value

    def succeed(self, value: Any = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError("event has already been triggered")
        self._value = value
        self.env._schedule(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with an exception to raise in the waiter."""
        if self._value is not _PENDING:
            raise SimulationError("event has already been triggered")
        if not isinstance(exception, BaseException):
            raise TypeError(f"fail() expects an exception, got {exception!r}")
        self._ok = False
        self._value = exception
        self.env._schedule(self)
        return self

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            for callback in callbacks:
                callback(self)


class Timeout(Event):
    """An event that fires after a fixed simulated delay."""

    __slots__ = ()

    def __init__(self, env: "Environment", delay: float, value: Any = None) -> None:
        if delay < 0:
            raise SimulationError(f"negative timeout delay: {delay}")
        # Fast path: timeouts dominate event traffic, so initialize and
        # schedule inline rather than via Event.__init__/_schedule.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        env._sequence = sequence = env._sequence + env._seq_step
        _heappush(env._queue, (env._now + delay, sequence, self))


class Process(Event):
    """Wraps a generator; completes (as an event) when the generator returns.

    Yield values must be :class:`Event` instances. The value of a yielded
    event is sent back into the generator; failed events raise inside it.
    """

    __slots__ = ("_generator",)

    def __init__(self, env: "Environment", generator: Generator[Event, Any, Any]) -> None:
        super().__init__(env)
        if not hasattr(generator, "send"):
            raise TypeError(f"process requires a generator, got {generator!r}")
        self._generator = generator
        # Bootstrap: resume the generator at the current time.
        bootstrap = Event(env)
        bootstrap._value = None
        bootstrap.callbacks.append(self._resume)
        env._schedule(bootstrap)

    def _resume(self, event: Event) -> None:
        generator = self._generator
        while True:
            try:
                if event._ok:
                    target = generator.send(event._value)
                else:
                    target = generator.throw(event._value)
            except StopIteration as stop:
                self.succeed(stop.value)
                return
            if not isinstance(target, Event):
                raise SimulationError(
                    f"process yielded a non-event: {target!r} "
                    "(yield Timeout/Process/Resource requests instead)"
                )
            callbacks = target.callbacks
            if callbacks is None:
                # Already fired: loop around immediately with its value.
                event = target
                continue
            callbacks.append(self._resume)
            return


class AllOf(Event):
    """Fires when all child events have fired; value is their list of values."""

    __slots__ = ("_children", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._children = list(events)
        self._remaining = 0
        for child in self._children:
            if child.processed:
                continue
            self._remaining += 1
            child.callbacks.append(self._on_child)
        if self._remaining == 0:
            self.succeed([child.value for child in self._children])

    def _on_child(self, event: Event) -> None:
        if not event.ok:
            if not self.triggered:
                self.fail(event.value)
            return
        self._remaining -= 1
        if self._remaining == 0 and not self.triggered:
            self.succeed([child.value for child in self._children])


class AnyOf(Event):
    """Fires as soon as any child event fires; value is that child's value."""

    __slots__ = ("_children",)

    def __init__(self, env: "Environment", events: Iterable[Event]) -> None:
        super().__init__(env)
        self._children = list(events)
        fired = [child for child in self._children if child.processed]
        if fired:
            self.succeed(fired[0].value)
            return
        for child in self._children:
            child.callbacks.append(self._on_child)

    def _on_child(self, event: Event) -> None:
        if self.triggered:
            return
        if event.ok:
            self.succeed(event.value)
        else:
            self.fail(event.value)


class Environment:
    """The event loop: a simulated clock plus a priority queue of events.

    ``strict=True`` turns on invariant checking: every event pop verifies
    monotonic simulated time and reports the offending event on violation
    (see :meth:`step`). The checked loop costs a few percent, so the
    default ``run`` loops stay inlined and check-free; the scheduling order
    — and therefore every simulation result — is identical either way.
    """

    __slots__ = ("_now", "_queue", "_sequence", "_seq_step", "strict", "tracer")

    def __init__(
        self,
        initial_time: float = 0.0,
        strict: bool = False,
        seq_offset: int = 0,
        seq_step: int = 1,
    ) -> None:
        if seq_step < 1 or seq_offset < 0 or seq_offset >= seq_step:
            raise SimulationError(
                f"invalid sequence progression: offset={seq_offset}, "
                f"step={seq_step} (need 0 <= offset < step)"
            )
        self._now = float(initial_time)
        self._queue: list[tuple[float, int, Event]] = []
        #: Shard-stable sequence counter (see the module ordering contract):
        #: sequence numbers are drawn from ``seq_offset + k * seq_step``, so
        #: shard ``i`` of ``N`` (``offset=i, step=N``) never collides with a
        #: sibling shard and the defaults reproduce the serial ``1, 2, 3...``.
        self._sequence = seq_offset
        self._seq_step = seq_step
        self.strict = bool(strict)
        #: Optional :class:`repro.trace.Tracer`. ``None`` (the default) is
        #: the null fast path: instrumented components branch on it once
        #: per transaction and otherwise run the exact pre-tracing code.
        #: The run loops never touch it, so tracing-off costs nothing.
        self.tracer = None

    @property
    def now(self) -> float:
        """Current simulated time in nanoseconds."""
        return self._now

    def _schedule(self, event: Event, delay: float = 0.0) -> None:
        self._sequence = sequence = self._sequence + self._seq_step
        _heappush(self._queue, (self._now + delay, sequence, event))

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        """Create an event firing ``delay`` ns from now."""
        return Timeout(self, delay, value)

    def event(self) -> Event:
        """Create an untriggered event (trigger it with ``succeed``/``fail``)."""
        return Event(self)

    def process(self, generator: Generator[Event, Any, Any]) -> Process:
        """Start a process from a generator; returns its completion event."""
        return Process(self, generator)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        """Event that fires when all child events have fired."""
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        """Event that fires when the first child event fires."""
        return AnyOf(self, events)

    def step(self) -> None:
        """Process the single next event."""
        if not self._queue:
            raise SimulationError("step() on an empty event queue")
        when, __, event = _heappop(self._queue)
        if when < self._now:
            raise SimulationError(
                f"simulated time went backwards: {type(event).__name__} "
                f"fired at t={when} ns with the clock already at "
                f"t={self._now} ns"
            )
        self._now = when
        event._run_callbacks()

    def _run_checked(self, until: Optional[float | Event]) -> Any:
        """The strict-mode run loop: same semantics as :meth:`run`, but every
        pop goes through :meth:`step` so time-monotonicity violations raise
        :class:`~repro.errors.SimulationError` with the offending event."""
        queue = self._queue
        if isinstance(until, Event):
            while until.callbacks is not None:
                if not queue:
                    raise SimulationError(
                        "simulation ran out of events before the awaited "
                        "event fired"
                    )
                self.step()
            if not until._ok:
                raise until._value
            return until._value
        if until is not None:
            horizon = float(until)
            if horizon < self._now:
                raise SimulationError(
                    f"cannot run until {horizon}: clock is already at {self._now}"
                )
            while queue and queue[0][0] <= horizon:
                self.step()
            self._now = horizon
            return None
        while queue:
            self.step()
        return None

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run the simulation.

        ``until`` may be a timestamp (run until the clock passes it), an
        :class:`Event` (run until it fires; its value is returned), or ``None``
        (run until no events remain).

        The loops below inline :meth:`step`'s pop-and-fire body (minus its
        can't-happen past-event check): the heap guarantees monotonic pop
        order, and ``_schedule`` never targets the past. Strict environments
        route through the checked loop instead.
        """
        if self.strict:
            return self._run_checked(until)
        queue = self._queue
        if isinstance(until, Event):
            stop_event = until
            while stop_event.callbacks is not None:
                if not queue:
                    raise SimulationError(
                        "simulation ran out of events before the awaited event fired"
                    )
                self._now, __, event = _heappop(queue)
                callbacks, event.callbacks = event.callbacks, None
                if callbacks:
                    for callback in callbacks:
                        callback(event)
            if not stop_event._ok:
                raise stop_event._value
            return stop_event._value
        if until is not None:
            horizon = float(until)
            if horizon < self._now:
                raise SimulationError(
                    f"cannot run until {horizon}: clock is already at {self._now}"
                )
            while queue and queue[0][0] <= horizon:
                self._now, __, event = _heappop(queue)
                callbacks, event.callbacks = event.callbacks, None
                if callbacks:
                    for callback in callbacks:
                        callback(event)
            self._now = horizon
            return None
        while queue:
            self._now, __, event = _heappop(queue)
            callbacks, event.callbacks = event.callbacks, None
            if callbacks:
                for callback in callbacks:
                    callback(event)
        return None


class _ResourceRequest(Event):
    """A pending claim on a :class:`Resource` slot (usable as a context manager)."""

    __slots__ = ("resource",)

    def __init__(self, resource: "Resource") -> None:
        super().__init__(resource.env)
        self.resource = resource

    def __enter__(self) -> "_ResourceRequest":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        self.resource.release(self)


class Resource:
    """A shared resource with ``capacity`` slots and a FIFO wait queue.

    FIFO service with no flow awareness is exactly the "traffic-oblivious"
    arbitration the paper identifies (§3.5): whichever sender has more requests
    in flight receives proportionally more service.
    """

    __slots__ = ("env", "capacity", "_in_use", "_waiting")

    def __init__(self, env: Environment, capacity: int = 1) -> None:
        if capacity < 1:
            raise SimulationError(f"resource capacity must be >= 1, got {capacity}")
        self.env = env
        self.capacity = capacity
        self._in_use = 0
        self._waiting: deque[_ResourceRequest] = deque()

    @property
    def count(self) -> int:
        """Number of slots currently held."""
        return self._in_use

    @property
    def queue_length(self) -> int:
        """Number of requests waiting for a slot."""
        return len(self._waiting)

    def request(self) -> _ResourceRequest:
        """Claim a slot; the returned event fires when the slot is granted."""
        req = _ResourceRequest(self)
        if self._in_use < self.capacity:
            self._in_use += 1
            req.succeed()
        else:
            self._waiting.append(req)
        return req

    def release(self, request: _ResourceRequest) -> None:
        """Return a slot; the oldest waiter (if any) is granted immediately."""
        if request.resource is not self:
            raise SimulationError("release() with a request from another resource")
        if self._waiting:
            nxt = self._waiting.popleft()
            nxt.succeed()
        else:
            self._in_use -= 1
            if self._in_use < 0:
                raise SimulationError("resource released more times than requested")


class Store:
    """An unbounded FIFO buffer of items with blocking ``get``."""

    __slots__ = ("env", "_items", "_getters")

    def __init__(self, env: Environment) -> None:
        self.env = env
        self._items: deque[Any] = deque()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: Any) -> Event:
        """Insert an item (never blocks); returns an already-completed event.

        The returned event is already *processed* (``triggered`` and
        ``processed`` both true, value = the item): it never goes through the
        event queue, so a ``put`` costs one object allocation instead of a
        heap push plus a deferred callback sweep.
        """
        if self._getters:
            self._getters.popleft().succeed(item)
        else:
            self._items.append(item)
        done = Event.__new__(Event)
        done.env = self.env
        done.callbacks = None
        done._value = item
        done._ok = True
        return done

    def get(self) -> Event:
        """Remove and return the oldest item, waiting if the store is empty."""
        event = Event(self.env)
        if self._items:
            event.succeed(self._items.popleft())
        else:
            self._getters.append(event)
        return event
